/**
 * @file
 * Autotuned stencil pipeline example.
 *
 * A PDE time-stepping loop runs a 7-point Jacobi stencil with three
 * registered implementations whose work assignment factors differ by
 * up to 128x (base / z-coarsened / scratchpad-tiled).  This exercises
 * the parts of the registration API that matter for such pools:
 * work-assignment factors for the safe-point normalization, explicit
 * orchestration choice, and the per-variant profile report.
 *
 * Build & run:   ./build/examples/autotuned_stencil [cpu|gpu]
 */
#include <cstdio>
#include <cstring>

#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/stencil.hh"

using namespace dysel;
using namespace dysel::workloads;

int
main(int argc, char **argv)
{
    const bool gpu = argc < 2 || std::strcmp(argv[1], "cpu") != 0;
    std::printf("autotuned stencil on the simulated %s\n\n",
                gpu ? "GPU (K20c-like)" : "CPU (i7-3820-like)");

    Workload w = makeStencilMixed();
    std::printf("kernel pool:\n");
    for (const auto &v : w.variants)
        std::printf("  %-18s waf=%-4llu groupSize=%-4u scratch=%lluB\n",
                    v.name.c_str(), (unsigned long long)v.waFactor,
                    v.groupSize,
                    (unsigned long long)v.traits.scratchBytes);

    auto device = (gpu ? gpuFactory() : cpuFactory())();
    runtime::Runtime rt(*device);
    w.registerWith(rt);
    w.resetOutput();

    runtime::LaunchOptions opt;
    opt.orch = runtime::Orchestration::Async; // overlap with profiling

    for (unsigned step = 0; step < w.iterations; ++step) {
        opt.profiling = step == 0; // re-selection only on step 0
        const auto report =
            rt.launchKernel(w.signature, w.units, w.args, opt);
        if (step == 0) {
            std::printf("\nmicro-profiling (%s, %s):\n",
                        compiler::profilingModeName(report.mode),
                        runtime::orchestrationName(report.orch));
            for (const auto &p : report.profiles)
                std::printf("  %-18s %9.1f us over %llu units\n",
                            p.name.c_str(),
                            static_cast<double>(p.metric) / 1e3,
                            (unsigned long long)p.units);
            std::printf("selected '%s' with %llu eager chunks "
                        "dispatched during profiling\n",
                        report.selectedName.c_str(),
                        (unsigned long long)report.eagerChunks);
        }
    }

    std::printf("\n%u time steps in %.2f ms of virtual time; result "
                "%s\n",
                w.iterations, static_cast<double>(device->now()) / 1e6,
                w.check() ? "correct" : "WRONG");
    return 0;
}
