/**
 * @file
 * Iterative solver example: the paper's "profiling activation flag"
 * use case (§3.1).
 *
 * A conjugate-gradient-style solver calls the same spmv kernel every
 * iteration with an unchanged matrix.  DySel profiles the kernel pool
 * on the first iteration only; later iterations reuse the cached
 * selection, so the profiling cost is amortized across the whole
 * solve.
 *
 * Build & run:   ./build/examples/iterative_solver
 */
#include <cstdio>

#include "dysel/runtime.hh"
#include "sim/gpu/gpu_device.hh"
#include "workloads/evaluate.hh"
#include "workloads/spmv_csr.hh"

using namespace dysel;
using namespace dysel::workloads;

int
main()
{
    // The spmv-csr workload ships with scalar and vector kernels; on
    // this (random) matrix the vector kernel should win on the GPU.
    Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Random);

    sim::GpuDevice device;
    runtime::Runtime rt(device);
    w.registerWith(rt);
    w.resetOutput();

    constexpr unsigned iterations = 12;
    sim::TimeNs profile_time = 0;

    for (unsigned it = 0; it < iterations; ++it) {
        runtime::LaunchOptions opt;
        // The profiling activation flag: on for the first iteration,
        // off afterwards (the selection cache serves the rest).
        opt.profiling = it == 0;
        const auto report =
            rt.launchKernel(w.signature, w.units, w.args, opt);
        if (it == 0) {
            profile_time = report.elapsed();
            std::printf("iteration 0: profiled %zu variants, selected "
                        "'%s'\n",
                        report.profiles.size(),
                        report.selectedName.c_str());
        } else if (it == 1) {
            std::printf("iteration %u: cache hit -> '%s' (%s)\n", it,
                        report.selectedName.c_str(),
                        report.fromCache ? "from cache" : "re-profiled");
        }
    }

    const sim::TimeNs total = device.now();
    std::printf("\n%u iterations in %.2f ms of virtual time\n",
                iterations, static_cast<double>(total) / 1e6);
    std::printf("first (profiling) iteration: %.2f ms; later "
                "iterations: %.3f ms each\n",
                static_cast<double>(profile_time) / 1e6,
                static_cast<double>(total - profile_time)
                    / (iterations - 1) / 1e6);
    std::printf("result %s\n", w.check() ? "correct" : "WRONG");
    return 0;
}
