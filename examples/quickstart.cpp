/**
 * @file
 * Quickstart: the smallest complete DySel program.
 *
 * We register two implementations of the same "scale and offset"
 * kernel -- a straightforward one and a deliberately wasteful one --
 * and let the runtime micro-profile both on a slice of the actual
 * workload before committing the rest to the winner.
 *
 * Build & run:   ./build/examples/quickstart
 */
#include <cstdio>

#include "dysel/runtime.hh"
#include "sim/cpu/cpu_device.hh"

using namespace dysel;

namespace {

/** y[i] = a * x[i] + b, one work-group per 64 elements. */
kdp::KernelVariant
makeVariant(const char *name, unsigned wasted_flops)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = 64;
    v.waFactor = 1;      // one workload unit per work-group
    v.sandboxIndex = {1}; // y is the output argument
    v.fn = [wasted_flops](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto &x = args.buf<float>(0);
        auto &y = args.buf<float>(1);
        const double a = args.scalarDouble(2);
        const double b = args.scalarDouble(3);
        kdp::forEachItem(g, [&](kdp::ItemCtx &item) {
            const float xv = item.load(x, item.globalId());
            item.store(y, item.globalId(),
                       static_cast<float>(a) * xv
                           + static_cast<float>(b));
            item.flops(2 + wasted_flops);
        });
    };
    return v;
}

} // namespace

int
main()
{
    // 1. A device.  The library ships cycle-level CPU and GPU
    //    simulators; swap in sim::GpuDevice to target the GPU model.
    sim::CpuDevice device;
    runtime::Runtime rt(device);

    // 2. Register the kernel pool (the paper's DySelAddKernel).
    rt.addKernel("saxpy", makeVariant("wasteful", 600));
    rt.addKernel("saxpy", makeVariant("lean", 0));

    // 3. Data.  Buffers are real storage plus a virtual device
    //    address for the timing models.
    constexpr std::uint64_t n = 64 * 4096;
    kdp::Buffer<float> x(n, kdp::MemSpace::Global, "x");
    kdp::Buffer<float> y(n, kdp::MemSpace::Global, "y");
    for (std::uint64_t i = 0; i < n; ++i)
        x.host()[i] = static_cast<float>(i % 100);

    kdp::KernelArgs args;
    args.add(x).add(y).add(2.0).add(1.0);

    // 4. Launch (the paper's DySelLaunchKernel).  The runtime
    //    micro-profiles every variant on a slice of this very
    //    workload and finishes with the winner.
    const auto report = rt.launchKernel("saxpy", n / 64, args);

    std::printf("selected variant: %s\n", report.selectedName.c_str());
    std::printf("profiled %llu of %llu workload units (%.1f%%)\n",
                (unsigned long long)report.profiledUnits,
                (unsigned long long)report.totalUnits,
                100.0 * static_cast<double>(report.profiledUnits)
                    / static_cast<double>(report.totalUnits));
    std::printf("virtual execution time: %.1f us\n",
                static_cast<double>(report.elapsed()) / 1e3);
    for (const auto &p : report.profiles)
        std::printf("  %-10s measured %8.1f us over %llu units\n",
                    p.name.c_str(), static_cast<double>(p.metric) / 1e3,
                    (unsigned long long)p.units);

    // 5. The output is real: verify it.
    for (std::uint64_t i = 0; i < n; ++i) {
        const float expect = 2.0f * x.host()[i] + 1.0f;
        if (y.host()[i] != expect) {
            std::printf("MISMATCH at %llu\n", (unsigned long long)i);
            return 1;
        }
    }
    std::printf("output verified: y = 2x + 1 across all %llu elements\n",
                (unsigned long long)n);
    return 0;
}
