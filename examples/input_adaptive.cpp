/**
 * @file
 * Input-adaptive selection example (the paper's Case Study IV).
 *
 * The right spmv kernel depends on the matrix structure, which no
 * compile-time heuristic can see: a warp-per-row "vector" kernel wins
 * on a dense-ish random matrix, while a thread-per-row "scalar"
 * kernel wins on a diagonal matrix where the vector kernel would
 * waste 31 of its 32 lanes.  The same binary, run on both inputs,
 * picks a different kernel each time.
 *
 * Build & run:   ./build/examples/input_adaptive
 */
#include <cstdio>

#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/spmv_csr.hh"

using namespace dysel;
using namespace dysel::workloads;

namespace {

void
solve(SpmvInput input)
{
    Workload w = makeSpmvCsrGpuInputDep(input);
    std::printf("--- %s matrix (%llu workload units) ---\n",
                spmvInputName(input), (unsigned long long)w.units);

    // What would each fixed choice have cost?
    const auto oracle = runOracle(gpuFactory(), w);
    for (const auto &run : oracle.runs)
        std::printf("  fixed %-8s %8.2f ms%s\n", run.name.c_str(),
                    static_cast<double>(run.elapsed) / 1e6,
                    run.ok ? "" : "  (WRONG RESULT)");

    // DySel decides at runtime, per input.
    const auto run = runDysel(gpuFactory(), w, runtime::LaunchOptions{});
    std::printf("  DySel -> %-7s %8.2f ms (%.1f%% over the best fixed "
                "choice), result %s\n\n",
                run.firstIteration.selectedName.c_str(),
                static_cast<double>(run.elapsed) / 1e6,
                (relative(run.elapsed, oracle.best()) - 1.0) * 100.0,
                run.ok ? "correct" : "WRONG");
}

} // namespace

int
main()
{
    std::printf("One binary, two inputs, two different winning "
                "kernels:\n\n");
    solve(SpmvInput::Random);
    solve(SpmvInput::Diagonal);
    std::printf("A static heuristic must commit to one kernel and eats "
                "the slowdown on the other input; DySel adapts.\n");
    return 0;
}
