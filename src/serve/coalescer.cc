#include "coalescer.hh"

namespace dysel {
namespace serve {

std::string
ProfileCoalescer::key(const std::string &signature,
                      const std::string &fingerprint, unsigned bucket)
{
    std::string k;
    k.reserve(signature.size() + fingerprint.size() + 8);
    k += signature;
    k += '\x1f';
    k += fingerprint;
    k += '\x1f';
    k += std::to_string(bucket);
    return k;
}

ProfileCoalescer::Ticket
ProfileCoalescer::acquire(const std::string &key, std::uint64_t jobId)
{
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = leaders.emplace(key, jobId);
    Ticket t;
    t.leader = inserted;
    t.leaderId = it->second;
    return t;
}

void
ProfileCoalescer::awaitRelease(const std::string &key)
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return leaders.count(key) == 0; });
}

void
ProfileCoalescer::release(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        leaders.erase(key);
    }
    cv.notify_all();
}

std::size_t
ProfileCoalescer::inFlight() const
{
    std::lock_guard<std::mutex> lock(mu);
    return leaders.size();
}

} // namespace serve
} // namespace dysel
