/**
 * @file
 * Multi-device dispatch service (dyseld core).
 *
 * Owns one DySel Runtime per registered device, each driven by a
 * dedicated worker thread.  Launch jobs enter through per-device
 * queue shards and are routed least-loaded, with a per-signature
 * affinity once a selection exists so repeated launches of a kernel
 * keep hitting the device whose selection is cached.  Every worker is
 * warm-started from a shared persistent SelectionStore: a job whose
 * (signature, device fingerprint, size bucket) has a valid record
 * runs plain with the stored winner (zero profiled units); a miss
 * runs with micro-profiling and feeds the store through the runtime's
 * launch observer.  Counters and latency histograms are exposed
 * through a support::MetricsRegistry.
 *
 * Submission API (DESIGN §10): the stable public surface is the
 * builder-style JobSpec plus submitMany(), which admits a whole span
 * of jobs under one shard-lock acquisition per destination shard and
 * returns their handles; submit(Job) remains as a thin deprecated
 * shim.  Kernel pools are installed through registerKernelPool(),
 * which is thread-safe before *and* after start(); runtimeAt() is
 * const observation only.
 *
 * Batched serving (DESIGN §10): with ServiceConfig::batch.maxJobs
 * > 1, a worker that claims a job gathers every compatible queued job
 * (same signature, size bucket, and launch policy; bounded by
 * batch.maxJobs/maxUnits, topped up for batch.windowNs of bounded
 * delay) and runs them as ONE fused launch with per-job output
 * slicing -- one store consult, one device submit.  Handles, done
 * callbacks, deadlines, and tracer correlation stay per job; a fused
 * launch that fails demotes every member to solo re-execution (where
 * the normal retry machinery applies) instead of failing the batch.
 *
 * Allocation-free hot path (DESIGN §10): job states and queued-job
 * shells are recycled through a per-shard serve::BufferPool and the
 * queues are vector-backed rings, so a steady-state submit->complete
 * cycle performs no heap allocation on the submitter side (see
 * BufferPool::Stats for the worker-side accounting).
 *
 * Scaling (DESIGN §8): the hot path is sharded.  submitMany() and
 * completion touch only the target device's queue shard (its own
 * mutex + condition variables); device loads and the in-flight count
 * are atomics, so routing reads them lock-free.  The one remaining
 * global lock (routeMu) covers just the affinity table and the
 * circuit-breaker state -- it is held for a map lookup, never across
 * queue operations or wakeups.
 *
 * Profiling coalescing: concurrent jobs that miss the store on the
 * same (signature, device fingerprint, size bucket) elect one
 * *leader* which runs the micro-profiling launch; the *followers*
 * wait for the leader's record to land in the store and then run as
 * plain warm-started launches (coalesce.* counters; a tracer instant
 * ties each follower to its leader's correlation id).  A leader that
 * fails hands leadership to one of its followers.
 *
 * Admission control: with maxQueueDepth > 0, a submit against a
 * full device queue either blocks until the queue has room
 * (AdmissionPolicy::Block, backpressure) or returns a handle already
 * completed with RESOURCE_EXHAUSTED (AdmissionPolicy::Shed).
 * Retried jobs bypass admission -- re-queueing an admitted job must
 * never deadlock a worker.
 *
 * Fault tolerance: a job whose launch fails with a retryable code
 * (Unavailable, DeadlineExceeded, Internal) is retried up to
 * maxAttempts times with exponential virtual backoff, re-routed away
 * from the devices that already failed it.  Devices that fail
 * breakerThreshold jobs in a row trip a circuit breaker and stop
 * receiving work for breakerCooldown routing decisions, after which
 * a single probe job decides whether the breaker closes or reopens.
 * Warm-started launch failures also feed SelectionStore::
 * reportFailure so a bad stored selection is quarantined.  All
 * recovery events are counted in the metrics registry.
 *
 * Variant guard: with runtime.guard.enabled, each runtime validates
 * variants during micro-profiling (output cross-check, canary
 * redzones, NaN screen, watchdog); detections surface as guard.*
 * counters, and a variant that strikes out is blacklisted in the
 * shared store keyed by (signature, variant, device fingerprint).
 * Jobs seed their runtime's guard from the store, so blacklist
 * entries loaded from disk keep excluding their variants after a
 * restart, and a warm start whose stored winner was since
 * blacklisted is demoted to a re-profiling miss.
 *
 * The simulated devices are single-threaded event loops, so each
 * runtime is touched only by its worker thread; the store, the
 * coalescer, and the metrics registry are the only shared state and
 * are thread-safe.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dysel/obs/selection_auditor.hh"
#include "dysel/options.hh"
#include "dysel/predict/predictor.hh"
#include "dysel/report.hh"
#include "dysel/runtime.hh"
#include "dysel/store/selection_store.hh"
#include "kdp/args.hh"
#include "sim/device.hh"
#include "support/metrics.hh"
#include "support/status.hh"
#include "support/tracing/flight_recorder.hh"
#include "support/tracing/tracer.hh"

#include "batcher.hh"
#include "buffer_pool.hh"
#include "coalescer.hh"
#include "job.hh"

namespace dysel {

namespace fed {
class Replicator;
}

namespace serve {

/** What submission does when the target device queue is full. */
enum class AdmissionPolicy {
    /** Block the submitter until the queue has room (backpressure). */
    Block,
    /** Complete the handle immediately with RESOURCE_EXHAUSTED. */
    Shed,
};

/** Service-wide configuration. */
struct ServiceConfig
{
    /** Configuration applied to every per-device runtime. */
    runtime::RuntimeConfig runtime;

    /**
     * Route every job of a signature to the device that first cached
     * a selection for it (keeps cache warm and outputs ordered);
     * disable for pure least-loaded spreading.  A retry re-pins the
     * affinity to the device that eventually succeeded.
     */
    bool affinity = true;

    /**
     * Coalesce concurrent micro-profiling of the same (signature,
     * device fingerprint, size bucket): one leader profiles, its
     * followers wait and then warm-start from the fresh record.
     * Only jobs large enough to profile (runtime.minUnitsForProfiling)
     * take part.
     */
    bool coalesce = true;

    /**
     * Batch aggregation (DESIGN §10): batch.maxJobs > 1 lets each
     * worker fuse compatible queued jobs into one launch, bounded by
     * batch.maxUnits summed units and topped up for batch.windowNs
     * of wall-clock delay.
     */
    BatchLimits batch;

    /**
     * Queued jobs each device accepts before admission control kicks
     * in; 0 means unbounded (no admission control).
     */
    std::size_t maxQueueDepth = 0;

    /** Full-queue behaviour (only meaningful with maxQueueDepth > 0). */
    AdmissionPolicy admission = AdmissionPolicy::Block;

    /** Attempts per job (first run + retries) before giving up. */
    unsigned maxAttempts = 3;

    /**
     * Virtual backoff charged before retry n is
     * backoffBaseNs << (n - 1).  Backoff is accounted, not slept:
     * the simulated devices keep their own clocks, so the service
     * records the penalty in JobResult::backoffNs and the
     * job.backoff_ns histogram instead of stalling a worker thread.
     */
    sim::TimeNs backoffBaseNs = 1'000'000;

    /** Consecutive device faults that trip its circuit breaker. */
    unsigned breakerThreshold = 3;

    /**
     * Routing decisions an open breaker sheds before it lets one
     * probe job through (half-open).
     */
    unsigned breakerCooldown = 4;

    /**
     * Entries each worker's always-on flight recorder retains; a
     * failing job's Status payload carries the dump (the last things
     * its worker did: device, phase, detail).  The admin plane's
     * /debug/flight endpoint snapshots the same ring on demand.
     */
    std::size_t flightRecorderCapacity = 64;

    /**
     * Continuous selection-quality audit (DESIGN §11): with
     * audit.sampleRate > 0, every round(1/rate)-th warm store hit is
     * followed by a shadow probe of the served winner against the
     * stored runner-up, realized regret is tracked per key, and a key
     * whose regret EMA stays above audit.regretThreshold is demoted
     * into the store quarantine.  Disabled by default.
     */
    obs::AuditConfig audit;

    /**
     * Typed consistency check, called by the DispatchService ctor
     * (throwing on error) and by dyseld flag parsing (reported to
     * the user).  Catches the silently-accepted nonsense configs:
     * zero attempts, a backoff shift that overflows, a zero breaker
     * threshold, a batch that can never fit its queue, and a batch
     * window with batching disabled.
     */
    support::Status validate() const;
};

/**
 * The dispatch service.
 */
class DispatchService
{
  public:
    /**
     * @p st is the shared selection store; it must outlive the
     * service (the caller typically loads it from disk before and
     * saves it after).  Throws std::invalid_argument when
     * cfg.validate() fails.
     */
    explicit DispatchService(store::SelectionStore &st,
                             ServiceConfig cfg = ServiceConfig());
    ~DispatchService();

    DispatchService(const DispatchService &) = delete;
    DispatchService &operator=(const DispatchService &) = delete;

    /**
     * Register a device (before start()).  The service owns the
     * device and its runtime.  Returns the device index.  Kernel
     * pools already registered through registerKernelPool() are
     * installed on the new device's runtime immediately.
     */
    unsigned addDevice(std::unique_ptr<sim::Device> device);

    std::size_t deviceCount() const { return workers.size(); }
    sim::Device &device(unsigned idx);

    /**
     * Const observation of a device's runtime (selection cache,
     * guard state, registered variants).  For installing kernels use
     * registerKernelPool() -- mutable access from outside the worker
     * thread is no longer part of the API.
     */
    const runtime::Runtime &runtimeAt(unsigned idx) const;

    /**
     * Install a kernel pool on every device runtime, before or after
     * start().  The installer runs immediately on all current
     * runtimes when the service is not running; once workers run,
     * each worker applies pending installers on its own thread
     * before its next job, so no cross-thread runtime access ever
     * happens.  Installers are retained and applied to devices added
     * later.  Fails with InvalidArgument for an empty installer and
     * Internal when an immediate application throws.
     */
    support::Status registerKernelPool(
        std::function<void(runtime::Runtime &)> installer);

    /**
     * Attach a selection predictor (before start(); nullptr
     * detaches).  The service wires the store's profile feed into the
     * predictor as its online training stream and consults it on
     * every profilable store miss: a prediction at or above the
     * predictor's confidence threshold seeds the store and the job
     * runs warm with zero profiled units (predict.hit); below it the
     * job micro-profiles as usual (predict.miss).  A predicted
     * selection that drifts, fails, or gets blacklisted is demoted to
     * a forced profile and fed back as a corrective example
     * (predict.demoted).  The predictor must outlive the service.
     */
    void setPredictor(predict::SelectionPredictor *predictor);

    /**
     * Attach a fleet federation replicator (before start(); nullptr
     * detaches).  On every profilable cold miss the service asks the
     * replicator who profiles: the key's rendezvous-hash owner pays
     * the fleet's single profiling pass, everyone else parks on the
     * remote-pending state and warm-starts from the replicated
     * record (fed.warm_hit; a tracer instant carries the owner's
     * profiling cid).  The replicator must outlive the service.
     */
    void setFederation(fed::Replicator *fedp);

    /** Spawn one worker thread per device. */
    void start();

    /**
     * Submit a span of job specs; their handles are written to
     * @p out (out.size() >= specs.size()).  Requires start().  Jobs
     * are routed first, then each destination shard's lock is taken
     * once for all of its jobs -- a burst of compatible jobs lands in
     * one lock acquisition and is immediately fusable by the worker.
     * Admission control applies per job, exactly as with submit().
     * Steady-state calls perform no heap allocation on this thread
     * (see the JobSpec reuse contract).
     */
    void submitMany(std::span<const JobSpec> specs,
                    std::span<JobHandle> out);

    /** Convenience overload returning the handles in a vector. */
    std::vector<JobHandle> submitMany(std::span<const JobSpec> specs);

    /**
     * Enqueue one job; returns its handle.
     *
     * @deprecated Thin shim over submitMany(); build a JobSpec and
     * use submitMany() instead.
     */
    JobHandle submit(Job job);

    /** Block until every submitted job has completed. */
    void drain();

    /** Drain, then join all workers.  Idempotent. */
    void stop();

    support::MetricsRegistry &metrics() { return reg; }
    const store::SelectionStore &selectionStore() const { return store_; }

    /**
     * The selection auditor, or nullptr when config.audit is
     * disabled.  Observation only (totals, mean regret, per-key
     * state); the auditor is driven by the workers.
     */
    const obs::SelectionAuditor *auditor() const
    {
        return auditor_.get();
    }

    /** Live health snapshot of one device worker. */
    struct DeviceHealth
    {
        unsigned index = 0;
        std::string name;
        std::string fingerprint;
        /** Jobs queued on the shard (excludes the running job). */
        std::size_t queueDepth = 0;
        /** Queued + running jobs (the routing load input). */
        std::uint64_t load = 0;
        bool breakerOpen = false;
        unsigned breakerCooldownLeft = 0;
        unsigned consecFailures = 0;
        /** Published device-clock snapshot (virtual ns). */
        std::uint64_t clockNs = 0;
    };

    /** Live health snapshot of the whole service. */
    struct ServiceHealth
    {
        bool running = false;
        std::uint64_t inFlight = 0;
        std::vector<DeviceHealth> devices;
        /** Any breaker currently open. */
        bool anyBreakerOpen() const
        {
            for (const auto &d : devices)
                if (d.breakerOpen)
                    return true;
            return false;
        }
    };

    /**
     * Snapshot queue depths, loads, breaker states, and the in-flight
     * count.  Safe from any thread while workers run: takes routeMu
     * for the breaker fields, then each shard lock briefly for its
     * queue depth -- never both at once.
     */
    ServiceHealth health() const;

    /**
     * On-demand dump of worker @p idx's flight recorder (the last
     * things that worker did).  Safe from any thread; throws
     * std::out_of_range for a bad index.
     */
    std::string flightDump(unsigned idx) const;

    /**
     * Allocation accounting of @p idx's shard pool: fresh vs reused
     * states and shells.  In a steady-state window the fresh counts
     * stay flat -- the invariant the stress batch test asserts.
     */
    BufferPool::Stats poolStats(unsigned idx) const;

    /**
     * The service-wide trace sink (disabled by default; call
     * tracer().setEnabled(true) before start()).  Jobs emit queue
     * spans, retry/re-route instants, coalescing attach/served
     * instants, and store hit/quarantine instants here, and every
     * per-device runtime is wired to the same sink with the job id as
     * correlation id -- so one job's service-, runtime-, and
     * device-level events share a cid.
     */
    support::tracing::Tracer &tracer() { return tracer_; }

  private:
    struct Worker
    {
        std::unique_ptr<sim::Device> dev;
        std::unique_ptr<runtime::Runtime> rt;
        std::string fingerprint;
        std::thread thread;

        /**
         * Queue shard: its own lock and wakeups, so submission and
         * completion touch only the target device's shard.
         */
        std::mutex qmu;
        std::condition_variable qcv;     ///< worker: new job or stop
        std::condition_variable spaceCv; ///< submitters: queue has room
        JobRing queue;                   ///< guarded by qmu
        /** Shell / job-state freelists for this shard's jobs. */
        BufferPool pool;
        /** Queued + running jobs (lock-free routing input). */
        std::atomic<std::uint64_t> load{0};

        /** Gathered batch members + fused slices (worker thread
         * only; capacity reused across batches). */
        std::vector<detail::QueuedJob> batchMembers;
        std::vector<runtime::FusedSlice> batchSlices;

        /** Installers from registerKernelPool() this worker has
         * applied to its runtime (worker thread only). */
        std::size_t installersApplied = 0;

        /** Circuit breaker (guarded by DispatchService::routeMu). */
        unsigned consecFailures = 0;
        bool breakerOpen = false;
        /** Routing decisions left before a half-open probe. */
        unsigned breakerCooldownLeft = 0;

        /** Cached per-device metric handles (hot path: no name
         * formatting, no registry lookup). */
        support::Counter *jobsCounter = nullptr;
        support::Counter *storeHitsCounter = nullptr;
        support::Counter *profiledCounter = nullptr;
        support::Histogram *latencyHist = nullptr;

        /** This worker's trace track id. */
        std::uint64_t traceTrack = 0;
        /** Always-on ring of recent phases (worker thread only). */
        support::tracing::FlightRecorder flight;
        /**
         * Published device-clock snapshot: the worker stores its
         * device's virtual time whenever the device is idle, so
         * submission can timestamp queue spans without touching the
         * (possibly running) event engine from another thread.
         */
        std::atomic<sim::TimeNs> clockNs{0};
    };

    void workerLoop(unsigned idx);
    JobResult runJob(unsigned idx, detail::QueuedJob &qj);

    /**
     * Gather a batch behind @p head (bounded-delay top-up included)
     * and run it as one fused launch with per-job completion.
     * Consumes @p head and the gathered members.  Falls back to the
     * solo path internally when nothing fuses; returns false when
     * @p head was not even eligible, leaving it untouched for the
     * solo path.
     */
    bool tryRunBatch(unsigned idx, detail::QueuedJob &head);

    /** Fused execution of w.batchMembers (head at index 0). */
    void runBatch(unsigned idx,
                  const std::optional<store::SelectionRecord> &rec);

    /** Worker-side completion of a solo job (shared tail of the
     * worker loop): retry decision, breaker, affinity, metrics. */
    void completeSolo(unsigned idx, detail::QueuedJob &qj,
                      JobResult res);

    /** A queued job lost its claim race to cancel(): deliver the
     * exactly-once callback and drop it from the system. */
    void finishCancelled(unsigned idx, detail::QueuedJob &&qj);

    /** Deliver @p res to the handle and the done callback. */
    static void finishJob(detail::QueuedJob &qj, JobResult res);

    /** Apply registerKernelPool() installers this worker has not yet
     * run (worker thread; cheap relaxed check when up to date). */
    void applyPendingInstallers(unsigned idx);

    /** Push @p qj onto @p idx's shard and wake its worker. */
    void enqueue(unsigned idx, detail::QueuedJob qj);

    /** One job left the system: drop inFlight and wake drain(). */
    void jobDone();

    /**
     * Pick the worker for @p signature, skipping @p excluded devices
     * and open breakers (takes routeMu).  Decrements open-breaker
     * cooldowns as a side effect; an expired cooldown makes the
     * device eligible for one probe job.  Allocation-free for fleets
     * of up to 64 devices.
     */
    unsigned route(const std::string &signature,
                   const std::vector<unsigned> &excluded);

    /** Breaker bookkeeping after an attempt on @p idx (routeMu). */
    void breakerObserve(unsigned idx, bool deviceFault);

    /**
     * Shadow-audit a warm solo hit (worker thread, inside runJob
     * while the job's buffers are still alive): probe the served
     * winner and the stored runner-up over equal forced-variant
     * slices and hand the measurements to the auditor.
     */
    void auditWarmHit(unsigned idx, const detail::QueuedJob &qj,
                      const store::SelectionRecord &rec);

    store::SelectionStore &store_;
    ServiceConfig config;
    Batcher batcher;
    predict::SelectionPredictor *predictor_ = nullptr;
    fed::Replicator *fed_ = nullptr;
    support::MetricsRegistry reg;
    support::tracing::Tracer tracer_;
    ProfileCoalescer coalescer;
    std::unique_ptr<obs::SelectionAuditor> auditor_;
    std::vector<std::unique_ptr<Worker>> workers;

    /** Kernel-pool installers (guarded by poolMu); installerCount
     * mirrors installers.size() for the workers' cheap check. */
    std::mutex poolMu;
    std::vector<std::function<void(runtime::Runtime &)>> installers;
    std::atomic<std::size_t> installerCount{0};

    /**
     * Routing state: affinity map + circuit breakers.  Held for map
     * lookups only -- never across queue operations, wakeups, or
     * launches.
     */
    mutable std::mutex routeMu;
    std::map<std::string, unsigned> affinityMap;

    /** drain() support: jobs somewhere in the system. */
    std::atomic<std::uint64_t> inFlight{0};
    std::mutex idleMu;
    std::condition_variable idle;

    /** Cached hot-path metric handles (stable addresses). */
    support::Counter *submittedCounter = nullptr;
    support::Counter *completedCounter = nullptr;
    support::Counter *failedCounter = nullptr;
    support::Counter *cancelledCounter = nullptr;
    support::Counter *storeHitCounter = nullptr;
    support::Counter *storeMissCounter = nullptr;
    support::Counter *batchLaunchCounter = nullptr;
    support::Counter *batchJobsCounter = nullptr;
    support::Counter *batchDemotedCounter = nullptr;
    support::Histogram *batchSizeHist = nullptr;
    support::Histogram *deviceNsHist = nullptr;
    support::Histogram *attemptsHist = nullptr;
    support::Histogram *backoffHist = nullptr;

    std::atomic<std::uint64_t> nextId{1};
    std::atomic<bool> started{false};
    std::atomic<bool> stopping{false};
};

} // namespace serve
} // namespace dysel
