/**
 * @file
 * Multi-device dispatch service (dyseld core).
 *
 * Owns one DySel Runtime per registered device, each driven by a
 * dedicated worker thread.  Launch jobs enter through a thread-safe
 * queue and are routed least-loaded, with a per-signature affinity
 * once a selection exists so repeated launches of a kernel keep
 * hitting the device whose selection is cached.  Every worker is
 * warm-started from a shared persistent SelectionStore: a job whose
 * (signature, device fingerprint, size bucket) has a valid record
 * runs plain with the stored winner (zero profiled units); a miss
 * runs with micro-profiling and feeds the store through the runtime's
 * launch observer.  Counters and latency histograms are exposed
 * through a support::MetricsRegistry.
 *
 * Fault tolerance: a job whose launch fails with a retryable code
 * (Unavailable, DeadlineExceeded, Internal) is retried up to
 * maxAttempts times with exponential virtual backoff, re-routed away
 * from the devices that already failed it.  Devices that fail
 * breakerThreshold jobs in a row trip a circuit breaker and stop
 * receiving work for breakerCooldown routing decisions, after which
 * a single probe job decides whether the breaker closes or reopens.
 * Warm-started launch failures also feed SelectionStore::
 * reportFailure so a bad stored selection is quarantined.  All
 * recovery events are counted in the metrics registry.
 *
 * Variant guard: with runtime.guard.enabled, each runtime validates
 * variants during micro-profiling (output cross-check, canary
 * redzones, NaN screen, watchdog); detections surface as guard.*
 * counters, and a variant that strikes out is blacklisted in the
 * shared store keyed by (signature, variant, device fingerprint).
 * Jobs seed their runtime's guard from the store, so blacklist
 * entries loaded from disk keep excluding their variants after a
 * restart, and a warm start whose stored winner was since
 * blacklisted is demoted to a re-profiling miss.
 *
 * The simulated devices are single-threaded event loops, so each
 * runtime is touched only by its worker thread; the store and the
 * metrics registry are the only shared state and are thread-safe.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dysel/options.hh"
#include "dysel/report.hh"
#include "dysel/runtime.hh"
#include "dysel/store/selection_store.hh"
#include "kdp/args.hh"
#include "sim/device.hh"
#include "support/metrics.hh"
#include "support/status.hh"
#include "support/tracing/flight_recorder.hh"
#include "support/tracing/tracer.hh"

namespace dysel {
namespace serve {

/** Service-wide configuration. */
struct ServiceConfig
{
    /** Configuration applied to every per-device runtime. */
    runtime::RuntimeConfig runtime;

    /**
     * Route every job of a signature to the device that first cached
     * a selection for it (keeps cache warm and outputs ordered);
     * disable for pure least-loaded spreading.  A retry re-pins the
     * affinity to the device that eventually succeeded.
     */
    bool affinity = true;

    /** Attempts per job (first run + retries) before giving up. */
    unsigned maxAttempts = 3;

    /**
     * Virtual backoff charged before retry n is
     * backoffBaseNs << (n - 1).  Backoff is accounted, not slept:
     * the simulated devices keep their own clocks, so the service
     * records the penalty in JobResult::backoffNs and the
     * job.backoff_ns histogram instead of stalling a worker thread.
     */
    sim::TimeNs backoffBaseNs = 1'000'000;

    /** Consecutive device faults that trip its circuit breaker. */
    unsigned breakerThreshold = 3;

    /**
     * Routing decisions an open breaker sheds before it lets one
     * probe job through (half-open).
     */
    unsigned breakerCooldown = 4;

    /**
     * Entries each worker's always-on flight recorder retains; a
     * failing job's Status payload carries the dump (the last things
     * its worker did: device, phase, detail).
     */
    std::size_t flightRecorderCapacity = 64;
};

/** Completion record of one job. */
struct JobResult
{
    std::uint64_t id = 0;
    /** Ok, or why the job ultimately failed. */
    support::Status status;
    bool ok() const { return status.ok(); }

    unsigned deviceIndex = 0;
    std::string deviceName;
    /** Selection came from the persistent store (no profiling ran). */
    bool warmStart = false;
    runtime::LaunchReport report;
    /** Virtual device time the last attempt consumed. */
    sim::TimeNs deviceTimeNs = 0;

    /** Attempts the job took (1 = no retries). */
    unsigned attempts = 1;
    /** Total virtual backoff charged across retries. */
    sim::TimeNs backoffNs = 0;
};

/** One launch job. */
struct Job
{
    std::string signature;
    std::uint64_t units = 0;
    kdp::KernelArgs args;
    runtime::LaunchOptions opt;

    /**
     * Ensures the job's kernel pool is registered on the runtime it
     * lands on (called from the worker thread before the launch).
     * Typically `w.registerWith(rt)` guarded by Runtime::hasKernel,
     * or a removeKernel + re-register when the pool's geometry
     * changed.  Optional: jobs may rely on pre-registered kernels.
     */
    std::function<void(runtime::Runtime &)> ensureRegistered;

    /**
     * Optional completion callback (invoked on the worker thread);
     * JobHandle::wait() / result() cover the common case.
     */
    std::function<void(const JobResult &)> done;

    /**
     * Virtual-time budget (device time + charged backoff) across all
     * attempts; 0 disables the deadline.  A job that exhausts it
     * fails with DeadlineExceeded instead of retrying further.
     */
    sim::TimeNs deadlineNs = 0;

    /** Assigned by submit(). */
    std::uint64_t id = 0;
};

namespace detail {

/** Shared completion state behind a JobHandle. */
struct JobState
{
    enum Phase { Queued = 0, Running = 1, Done = 2, Cancelled = 3 };

    std::uint64_t id = 0;
    std::atomic<int> phase{Queued};
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    JobResult result; ///< valid once phase is Done or Cancelled
};

} // namespace detail

/**
 * Caller-side handle of a submitted job: wait for it, read its
 * result, or cancel it while it is still queued.  Copyable; all
 * copies refer to the same job.  A default-constructed handle is
 * empty.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    /** Whether the handle refers to a job. */
    bool valid() const { return static_cast<bool>(state_); }

    /** The job id assigned by submit(). */
    std::uint64_t id() const { return state_ ? state_->id : 0; }

    /** Whether the job has finished (done or cancelled). */
    bool done() const;

    /** Block until the job is done or cancelled. */
    void wait() const;

    /**
     * Block until completion, then the final JobResult.  A cancelled
     * job's result carries StatusCode::Cancelled.  The reference is
     * only valid while this handle (or a copy) is alive -- don't
     * bind it off a temporary handle.
     */
    const JobResult &result() const;

    /**
     * Withdraw the job if it has not started running.  Returns true
     * on success (the job will never run; its result is Cancelled);
     * false once the job is running or finished.
     */
    bool cancel();

  private:
    friend class DispatchService;
    explicit JobHandle(std::shared_ptr<detail::JobState> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<detail::JobState> state_;
};

/**
 * The dispatch service.
 */
class DispatchService
{
  public:
    /**
     * @p st is the shared selection store; it must outlive the
     * service (the caller typically loads it from disk before and
     * saves it after).
     */
    explicit DispatchService(store::SelectionStore &st,
                             ServiceConfig cfg = ServiceConfig());
    ~DispatchService();

    DispatchService(const DispatchService &) = delete;
    DispatchService &operator=(const DispatchService &) = delete;

    /**
     * Register a device (before start()).  The service owns the
     * device and its runtime.  Returns the device index.
     */
    unsigned addDevice(std::unique_ptr<sim::Device> device);

    std::size_t deviceCount() const { return workers.size(); }
    sim::Device &device(unsigned idx);

    /**
     * Direct runtime access for kernel pre-registration before
     * start(); not thread-safe once workers run.
     */
    runtime::Runtime &runtimeAt(unsigned idx);

    /** Spawn one worker thread per device. */
    void start();

    /** Enqueue a job; returns its handle.  Requires start(). */
    JobHandle submit(Job job);

    /** Block until every submitted job has completed. */
    void drain();

    /** Drain, then join all workers.  Idempotent. */
    void stop();

    support::MetricsRegistry &metrics() { return reg; }
    const store::SelectionStore &selectionStore() const { return store_; }

    /**
     * The service-wide trace sink (disabled by default; call
     * tracer().setEnabled(true) before start()).  Jobs emit queue
     * spans, retry/re-route instants, and store hit/quarantine
     * instants here, and every per-device runtime is wired to the
     * same sink with the job id as correlation id -- so one job's
     * service-, runtime-, and device-level events share a cid.
     */
    support::tracing::Tracer &tracer() { return tracer_; }

  private:
    /** A job in flight, with its retry state. */
    struct QueuedJob
    {
        Job job;
        std::shared_ptr<detail::JobState> state;
        unsigned attempt = 0; ///< failed attempts so far
        std::vector<unsigned> excluded; ///< devices that failed it
        sim::TimeNs backoffNs = 0; ///< charged virtual backoff
        sim::TimeNs spentNs = 0; ///< device time across attempts
        /** Destination device's clock when (re-)enqueued (queue span). */
        sim::TimeNs enqueuedNs = 0;
    };

    struct Worker
    {
        std::unique_ptr<sim::Device> dev;
        std::unique_ptr<runtime::Runtime> rt;
        std::string fingerprint;
        std::deque<QueuedJob> queue;
        std::uint64_t load = 0; ///< queued + running jobs
        std::thread thread;

        /** Circuit breaker (guarded by DispatchService::mu). */
        unsigned consecFailures = 0;
        bool breakerOpen = false;
        /** Routing decisions left before a half-open probe. */
        unsigned breakerCooldownLeft = 0;

        /** This worker's trace track id. */
        std::uint64_t traceTrack = 0;
        /** Always-on ring of recent phases (worker thread only). */
        support::tracing::FlightRecorder flight;
        /**
         * Published device-clock snapshot: the worker stores its
         * device's virtual time whenever the device is idle, so
         * submit() can timestamp queue spans without touching the
         * (possibly running) event engine from another thread.
         */
        std::atomic<sim::TimeNs> clockNs{0};
    };

    void workerLoop(unsigned idx);
    JobResult runJob(unsigned idx, QueuedJob &qj);

    /** Deliver @p res to the handle and the done callback. */
    static void finishJob(QueuedJob &qj, JobResult res);

    /**
     * Pick the worker for @p signature, skipping @p excluded devices
     * and open breakers (mu held).  Decrements open-breaker
     * cooldowns as a side effect; an expired cooldown makes the
     * device eligible for one probe job.
     */
    unsigned route(const std::string &signature,
                   const std::vector<unsigned> &excluded);

    /** Breaker bookkeeping after an attempt on @p idx (mu held). */
    void breakerObserve(unsigned idx, bool deviceFault);

    store::SelectionStore &store_;
    ServiceConfig config;
    support::MetricsRegistry reg;
    support::tracing::Tracer tracer_;
    std::vector<std::unique_ptr<Worker>> workers;

    mutable std::mutex mu;
    std::condition_variable wake; ///< workers: new job or stop
    std::condition_variable idle; ///< drain(): inFlight hit zero
    std::map<std::string, unsigned> affinityMap;
    std::uint64_t nextId = 1;
    std::uint64_t inFlight = 0;
    bool started = false;
    bool stopping = false;
};

} // namespace serve
} // namespace dysel
