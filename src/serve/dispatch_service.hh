/**
 * @file
 * Multi-device dispatch service (dyseld core).
 *
 * Owns one DySel Runtime per registered device, each driven by a
 * dedicated worker thread.  Launch jobs enter through per-device
 * queue shards and are routed least-loaded, with a per-signature
 * affinity once a selection exists so repeated launches of a kernel
 * keep hitting the device whose selection is cached.  Every worker is
 * warm-started from a shared persistent SelectionStore: a job whose
 * (signature, device fingerprint, size bucket) has a valid record
 * runs plain with the stored winner (zero profiled units); a miss
 * runs with micro-profiling and feeds the store through the runtime's
 * launch observer.  Counters and latency histograms are exposed
 * through a support::MetricsRegistry.
 *
 * Scaling (DESIGN §8): the hot path is sharded.  submit() and
 * completion touch only the target device's queue shard (its own
 * mutex + condition variables); device loads and the in-flight count
 * are atomics, so routing reads them lock-free.  The one remaining
 * global lock (routeMu) covers just the affinity table and the
 * circuit-breaker state -- it is held for a map lookup, never across
 * queue operations or wakeups.
 *
 * Profiling coalescing: concurrent jobs that miss the store on the
 * same (signature, device fingerprint, size bucket) elect one
 * *leader* which runs the micro-profiling launch; the *followers*
 * wait for the leader's record to land in the store and then run as
 * plain warm-started launches (coalesce.* counters; a tracer instant
 * ties each follower to its leader's correlation id).  A leader that
 * fails hands leadership to one of its followers.
 *
 * Admission control: with maxQueueDepth > 0, a submit() against a
 * full device queue either blocks until the queue has room
 * (AdmissionPolicy::Block, backpressure) or returns a handle already
 * completed with RESOURCE_EXHAUSTED (AdmissionPolicy::Shed).
 * Retried jobs bypass admission -- re-queueing an admitted job must
 * never deadlock a worker.
 *
 * Fault tolerance: a job whose launch fails with a retryable code
 * (Unavailable, DeadlineExceeded, Internal) is retried up to
 * maxAttempts times with exponential virtual backoff, re-routed away
 * from the devices that already failed it.  Devices that fail
 * breakerThreshold jobs in a row trip a circuit breaker and stop
 * receiving work for breakerCooldown routing decisions, after which
 * a single probe job decides whether the breaker closes or reopens.
 * Warm-started launch failures also feed SelectionStore::
 * reportFailure so a bad stored selection is quarantined.  All
 * recovery events are counted in the metrics registry.
 *
 * Variant guard: with runtime.guard.enabled, each runtime validates
 * variants during micro-profiling (output cross-check, canary
 * redzones, NaN screen, watchdog); detections surface as guard.*
 * counters, and a variant that strikes out is blacklisted in the
 * shared store keyed by (signature, variant, device fingerprint).
 * Jobs seed their runtime's guard from the store, so blacklist
 * entries loaded from disk keep excluding their variants after a
 * restart, and a warm start whose stored winner was since
 * blacklisted is demoted to a re-profiling miss.
 *
 * The simulated devices are single-threaded event loops, so each
 * runtime is touched only by its worker thread; the store, the
 * coalescer, and the metrics registry are the only shared state and
 * are thread-safe.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dysel/options.hh"
#include "dysel/predict/predictor.hh"
#include "dysel/report.hh"
#include "dysel/runtime.hh"
#include "dysel/store/selection_store.hh"
#include "kdp/args.hh"
#include "sim/device.hh"
#include "support/metrics.hh"
#include "support/status.hh"
#include "support/tracing/flight_recorder.hh"
#include "support/tracing/tracer.hh"

#include "coalescer.hh"

namespace dysel {
namespace serve {

/** What submit() does when the target device queue is full. */
enum class AdmissionPolicy {
    /** Block the submitter until the queue has room (backpressure). */
    Block,
    /** Complete the handle immediately with RESOURCE_EXHAUSTED. */
    Shed,
};

/** Service-wide configuration. */
struct ServiceConfig
{
    /** Configuration applied to every per-device runtime. */
    runtime::RuntimeConfig runtime;

    /**
     * Route every job of a signature to the device that first cached
     * a selection for it (keeps cache warm and outputs ordered);
     * disable for pure least-loaded spreading.  A retry re-pins the
     * affinity to the device that eventually succeeded.
     */
    bool affinity = true;

    /**
     * Coalesce concurrent micro-profiling of the same (signature,
     * device fingerprint, size bucket): one leader profiles, its
     * followers wait and then warm-start from the fresh record.
     * Only jobs large enough to profile (runtime.minUnitsForProfiling)
     * take part.
     */
    bool coalesce = true;

    /**
     * Queued jobs each device accepts before admission control kicks
     * in; 0 means unbounded (no admission control).
     */
    std::size_t maxQueueDepth = 0;

    /** Full-queue behaviour (only meaningful with maxQueueDepth > 0). */
    AdmissionPolicy admission = AdmissionPolicy::Block;

    /** Attempts per job (first run + retries) before giving up. */
    unsigned maxAttempts = 3;

    /**
     * Virtual backoff charged before retry n is
     * backoffBaseNs << (n - 1).  Backoff is accounted, not slept:
     * the simulated devices keep their own clocks, so the service
     * records the penalty in JobResult::backoffNs and the
     * job.backoff_ns histogram instead of stalling a worker thread.
     */
    sim::TimeNs backoffBaseNs = 1'000'000;

    /** Consecutive device faults that trip its circuit breaker. */
    unsigned breakerThreshold = 3;

    /**
     * Routing decisions an open breaker sheds before it lets one
     * probe job through (half-open).
     */
    unsigned breakerCooldown = 4;

    /**
     * Entries each worker's always-on flight recorder retains; a
     * failing job's Status payload carries the dump (the last things
     * its worker did: device, phase, detail).
     */
    std::size_t flightRecorderCapacity = 64;
};

/** Completion record of one job. */
struct JobResult
{
    std::uint64_t id = 0;
    /** Ok, or why the job ultimately failed. */
    support::Status status;
    bool ok() const { return status.ok(); }

    unsigned deviceIndex = 0;
    std::string deviceName;
    /** Selection came from the persistent store (no profiling ran). */
    bool warmStart = false;
    /**
     * The selection was seeded by the predictor (learned selection):
     * the job ran warm without any profiling pass ever having covered
     * its (signature, device, bucket) key.
     */
    bool predicted = false;
    /**
     * Job id of the profiling leader this job coalesced behind
     * (0 = the job did not ride another job's profiling pass).
     */
    std::uint64_t coalescedWith = 0;
    runtime::LaunchReport report;
    /** Virtual device time the last attempt consumed. */
    sim::TimeNs deviceTimeNs = 0;

    /** Attempts the job took (1 = no retries). */
    unsigned attempts = 1;
    /** Total virtual backoff charged across retries. */
    sim::TimeNs backoffNs = 0;
};

/** One launch job. */
struct Job
{
    std::string signature;
    std::uint64_t units = 0;
    kdp::KernelArgs args;
    runtime::LaunchOptions opt;

    /**
     * Ensures the job's kernel pool is registered on the runtime it
     * lands on (called from the worker thread before the launch).
     * Typically `w.registerWith(rt)` guarded by Runtime::hasKernel,
     * or a removeKernel + re-register when the pool's geometry
     * changed.  Optional: jobs may rely on pre-registered kernels.
     */
    std::function<void(runtime::Runtime &)> ensureRegistered;

    /**
     * Optional completion callback, fired exactly once per job on
     * every terminal path: on the worker thread for jobs that ran
     * (or were discarded after a cancel), on the submitter's own
     * thread for a job shed by admission control.  JobHandle::wait()
     * / result() cover the common case.
     */
    std::function<void(const JobResult &)> done;

    /**
     * Virtual-time budget (device time + charged backoff) across all
     * attempts; 0 disables the deadline.  A job that exhausts it
     * fails with DeadlineExceeded instead of retrying further.
     */
    sim::TimeNs deadlineNs = 0;

    /** Assigned by submit(). */
    std::uint64_t id = 0;
};

namespace detail {

/** Shared completion state behind a JobHandle. */
struct JobState
{
    enum Phase { Queued = 0, Running = 1, Done = 2, Cancelled = 3 };

    std::uint64_t id = 0;
    std::atomic<int> phase{Queued};
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    JobResult result; ///< valid once phase is Done or Cancelled
};

} // namespace detail

/**
 * Caller-side handle of a submitted job: wait for it, read its
 * result, or cancel it while it is still queued.  Copyable; all
 * copies refer to the same job.  A default-constructed handle is
 * empty.
 */
class JobHandle
{
  public:
    JobHandle() = default;

    /** Whether the handle refers to a job. */
    bool valid() const { return static_cast<bool>(state_); }

    /** The job id assigned by submit(). */
    std::uint64_t id() const { return state_ ? state_->id : 0; }

    /** Whether the job has finished (done or cancelled). */
    bool done() const;

    /** Block until the job is done or cancelled. */
    void wait() const;

    /**
     * Block until completion, then the final JobResult.  A cancelled
     * job's result carries StatusCode::Cancelled; a job shed by
     * admission control carries StatusCode::ResourceExhausted.  The
     * reference is only valid while this handle (or a copy) is alive
     * -- don't bind it off a temporary handle.
     */
    const JobResult &result() const;

    /**
     * Withdraw the job if it has not started running.  Returns true
     * on success (the job will never run; its result is Cancelled);
     * false once the job is running or finished.  Cancelling a
     * queued duplicate never disturbs the profiling leader it would
     * have coalesced behind -- jobs attach to a leader only once
     * running.
     */
    bool cancel();

  private:
    friend class DispatchService;
    explicit JobHandle(std::shared_ptr<detail::JobState> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<detail::JobState> state_;
};

/**
 * The dispatch service.
 */
class DispatchService
{
  public:
    /**
     * @p st is the shared selection store; it must outlive the
     * service (the caller typically loads it from disk before and
     * saves it after).
     */
    explicit DispatchService(store::SelectionStore &st,
                             ServiceConfig cfg = ServiceConfig());
    ~DispatchService();

    DispatchService(const DispatchService &) = delete;
    DispatchService &operator=(const DispatchService &) = delete;

    /**
     * Register a device (before start()).  The service owns the
     * device and its runtime.  Returns the device index.
     */
    unsigned addDevice(std::unique_ptr<sim::Device> device);

    std::size_t deviceCount() const { return workers.size(); }
    sim::Device &device(unsigned idx);

    /**
     * Direct runtime access for kernel pre-registration before
     * start(); not thread-safe once workers run.
     */
    runtime::Runtime &runtimeAt(unsigned idx);

    /**
     * Attach a selection predictor (before start(); nullptr
     * detaches).  The service wires the store's profile feed into the
     * predictor as its online training stream and consults it on
     * every profilable store miss: a prediction at or above the
     * predictor's confidence threshold seeds the store and the job
     * runs warm with zero profiled units (predict.hit); below it the
     * job micro-profiles as usual (predict.miss).  A predicted
     * selection that drifts, fails, or gets blacklisted is demoted to
     * a forced profile and fed back as a corrective example
     * (predict.demoted).  The predictor must outlive the service.
     */
    void setPredictor(predict::SelectionPredictor *predictor);

    /** Spawn one worker thread per device. */
    void start();

    /**
     * Enqueue a job; returns its handle.  Requires start().  With a
     * bounded queue (maxQueueDepth > 0) this blocks while the target
     * device's queue is full (AdmissionPolicy::Block) or returns a
     * handle already completed with RESOURCE_EXHAUSTED
     * (AdmissionPolicy::Shed).
     */
    JobHandle submit(Job job);

    /** Block until every submitted job has completed. */
    void drain();

    /** Drain, then join all workers.  Idempotent. */
    void stop();

    support::MetricsRegistry &metrics() { return reg; }
    const store::SelectionStore &selectionStore() const { return store_; }

    /**
     * The service-wide trace sink (disabled by default; call
     * tracer().setEnabled(true) before start()).  Jobs emit queue
     * spans, retry/re-route instants, coalescing attach/served
     * instants, and store hit/quarantine instants here, and every
     * per-device runtime is wired to the same sink with the job id as
     * correlation id -- so one job's service-, runtime-, and
     * device-level events share a cid.
     */
    support::tracing::Tracer &tracer() { return tracer_; }

  private:
    /** A job in flight, with its retry state. */
    struct QueuedJob
    {
        Job job;
        std::shared_ptr<detail::JobState> state;
        unsigned attempt = 0; ///< failed attempts so far
        std::vector<unsigned> excluded; ///< devices that failed it
        sim::TimeNs backoffNs = 0; ///< charged virtual backoff
        sim::TimeNs spentNs = 0; ///< device time across attempts
        /** Destination device's clock when (re-)enqueued (queue span). */
        sim::TimeNs enqueuedNs = 0;
    };

    struct Worker
    {
        std::unique_ptr<sim::Device> dev;
        std::unique_ptr<runtime::Runtime> rt;
        std::string fingerprint;
        std::thread thread;

        /**
         * Queue shard: its own lock and wakeups, so submit() and
         * completion touch only the target device's shard.
         */
        std::mutex qmu;
        std::condition_variable qcv;     ///< worker: new job or stop
        std::condition_variable spaceCv; ///< submitters: queue has room
        std::deque<QueuedJob> queue;     ///< guarded by qmu
        /** Queued + running jobs (lock-free routing input). */
        std::atomic<std::uint64_t> load{0};

        /** Circuit breaker (guarded by DispatchService::routeMu). */
        unsigned consecFailures = 0;
        bool breakerOpen = false;
        /** Routing decisions left before a half-open probe. */
        unsigned breakerCooldownLeft = 0;

        /** This worker's trace track id. */
        std::uint64_t traceTrack = 0;
        /** Always-on ring of recent phases (worker thread only). */
        support::tracing::FlightRecorder flight;
        /**
         * Published device-clock snapshot: the worker stores its
         * device's virtual time whenever the device is idle, so
         * submit() can timestamp queue spans without touching the
         * (possibly running) event engine from another thread.
         */
        std::atomic<sim::TimeNs> clockNs{0};
    };

    void workerLoop(unsigned idx);
    JobResult runJob(unsigned idx, QueuedJob &qj);

    /** Deliver @p res to the handle and the done callback. */
    static void finishJob(QueuedJob &qj, JobResult res);

    /** Push @p qj onto @p idx's shard and wake its worker. */
    void enqueue(unsigned idx, QueuedJob qj);

    /** One job left the system: drop inFlight and wake drain(). */
    void jobDone();

    /**
     * Pick the worker for @p signature, skipping @p excluded devices
     * and open breakers (takes routeMu).  Decrements open-breaker
     * cooldowns as a side effect; an expired cooldown makes the
     * device eligible for one probe job.
     */
    unsigned route(const std::string &signature,
                   const std::vector<unsigned> &excluded);

    /** Breaker bookkeeping after an attempt on @p idx (routeMu). */
    void breakerObserve(unsigned idx, bool deviceFault);

    store::SelectionStore &store_;
    ServiceConfig config;
    predict::SelectionPredictor *predictor_ = nullptr;
    support::MetricsRegistry reg;
    support::tracing::Tracer tracer_;
    ProfileCoalescer coalescer;
    std::vector<std::unique_ptr<Worker>> workers;

    /**
     * Routing state: affinity map + circuit breakers.  Held for map
     * lookups only -- never across queue operations, wakeups, or
     * launches.
     */
    mutable std::mutex routeMu;
    std::map<std::string, unsigned> affinityMap;

    /** drain() support: jobs somewhere in the system. */
    std::atomic<std::uint64_t> inFlight{0};
    std::mutex idleMu;
    std::condition_variable idle;

    std::atomic<std::uint64_t> nextId{1};
    std::atomic<bool> started{false};
    std::atomic<bool> stopping{false};
};

} // namespace serve
} // namespace dysel
