/**
 * @file
 * Multi-device dispatch service (dyseld core).
 *
 * Owns one DySel Runtime per registered device, each driven by a
 * dedicated worker thread.  Launch jobs enter through a thread-safe
 * queue and are routed least-loaded, with a per-signature affinity
 * once a selection exists so repeated launches of a kernel keep
 * hitting the device whose selection is cached.  Every worker is
 * warm-started from a shared persistent SelectionStore: a job whose
 * (signature, device fingerprint, size bucket) has a valid record
 * runs plain with the stored winner (zero profiled units); a miss
 * runs with micro-profiling and feeds the store through the runtime's
 * launch observer.  Counters and latency histograms are exposed
 * through a support::MetricsRegistry.
 *
 * The simulated devices are single-threaded event loops, so each
 * runtime is touched only by its worker thread; the store and the
 * metrics registry are the only shared state and are thread-safe.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dysel/options.hh"
#include "dysel/report.hh"
#include "dysel/runtime.hh"
#include "dysel/store/selection_store.hh"
#include "kdp/args.hh"
#include "sim/device.hh"
#include "support/metrics.hh"

namespace dysel {
namespace serve {

/** Service-wide configuration. */
struct ServiceConfig
{
    /** Configuration applied to every per-device runtime. */
    runtime::RuntimeConfig runtime;

    /**
     * Route every job of a signature to the device that first cached
     * a selection for it (keeps cache warm and outputs ordered);
     * disable for pure least-loaded spreading.
     */
    bool affinity = true;
};

/** Completion record of one job. */
struct JobResult
{
    std::uint64_t id = 0;
    bool ok = false;
    std::string error; ///< set when ok is false

    unsigned deviceIndex = 0;
    std::string deviceName;
    /** Selection came from the persistent store (no profiling ran). */
    bool warmStart = false;
    runtime::LaunchReport report;
    /** Virtual device time the launch consumed. */
    sim::TimeNs deviceTimeNs = 0;
};

/** One launch job. */
struct Job
{
    std::string signature;
    std::uint64_t units = 0;
    kdp::KernelArgs args;
    runtime::LaunchOptions opt;

    /**
     * Ensures the job's kernel pool is registered on the runtime it
     * lands on (called from the worker thread before the launch).
     * Typically `w.registerWith(rt)` guarded by Runtime::hasKernel,
     * or a removeKernel + re-register when the pool's geometry
     * changed.  Optional: jobs may rely on pre-registered kernels.
     */
    std::function<void(runtime::Runtime &)> ensureRegistered;

    /** Completion callback (invoked on the worker thread). */
    std::function<void(const JobResult &)> done;

    /** Assigned by submit(). */
    std::uint64_t id = 0;
};

/**
 * The dispatch service.
 */
class DispatchService
{
  public:
    /**
     * @p st is the shared selection store; it must outlive the
     * service (the caller typically loads it from disk before and
     * saves it after).
     */
    explicit DispatchService(store::SelectionStore &st,
                             ServiceConfig cfg = ServiceConfig());
    ~DispatchService();

    DispatchService(const DispatchService &) = delete;
    DispatchService &operator=(const DispatchService &) = delete;

    /**
     * Register a device (before start()).  The service owns the
     * device and its runtime.  Returns the device index.
     */
    unsigned addDevice(std::unique_ptr<sim::Device> device);

    std::size_t deviceCount() const { return workers.size(); }
    sim::Device &device(unsigned idx);

    /**
     * Direct runtime access for kernel pre-registration before
     * start(); not thread-safe once workers run.
     */
    runtime::Runtime &runtimeAt(unsigned idx);

    /** Spawn one worker thread per device. */
    void start();

    /** Enqueue a job; returns its id.  Requires start(). */
    std::uint64_t submit(Job job);

    /** Block until every submitted job has completed. */
    void drain();

    /** Drain, then join all workers.  Idempotent. */
    void stop();

    support::MetricsRegistry &metrics() { return reg; }
    const store::SelectionStore &selectionStore() const { return store_; }

  private:
    struct Worker
    {
        std::unique_ptr<sim::Device> dev;
        std::unique_ptr<runtime::Runtime> rt;
        std::string fingerprint;
        std::deque<Job> queue;
        std::uint64_t load = 0; ///< queued + running jobs
        std::thread thread;
    };

    void workerLoop(unsigned idx);
    JobResult runJob(unsigned idx, Job &job);

    /** Pick the worker for @p job (mu held). */
    unsigned route(const Job &job);

    store::SelectionStore &store_;
    ServiceConfig config;
    support::MetricsRegistry reg;
    std::vector<std::unique_ptr<Worker>> workers;

    mutable std::mutex mu;
    std::condition_variable wake; ///< workers: new job or stop
    std::condition_variable idle; ///< drain(): inFlight hit zero
    std::map<std::string, unsigned> affinityMap;
    std::uint64_t nextId = 1;
    std::uint64_t inFlight = 0;
    bool started = false;
    bool stopping = false;
};

} // namespace serve
} // namespace dysel
