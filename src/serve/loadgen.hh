/**
 * @file
 * Closed-loop load generator for the dispatch service.
 *
 * Drives a fresh DispatchService with N submitter threads against M
 * simulated devices over a mixed signature/size set: each submitter
 * owns a job slot, submits, waits for the result, and submits the
 * next job (closed loop -- offered concurrency equals the submitter
 * count).  The run measures the service's hot path end to end:
 * wall-clock throughput, submit-to-result latency percentiles, the
 * profiled-unit ratio (how much micro-profiling the store and the
 * coalescer eliminated), and the coalesce hit rate.
 *
 * Both `dyseld --loadgen` and bench/ext_service_throughput build on
 * this; LoadGenReport::toJson() is the machine-readable schema the CI
 * perf-smoke job validates.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/dispatch_service.hh"
#include "support/json.hh"

namespace dysel {
namespace serve {

/** One load-generator run's shape. */
struct LoadGenConfig
{
    /** Closed-loop submitter threads. */
    unsigned submitters = 4;

    /** Simulated CPU devices behind the service. */
    unsigned devices = 2;

    /** Hot kernel signatures the submitters draw from. */
    unsigned signatures = 4;

    /**
     * Distinct size classes per signature; class c launches
     * baseUnits << c units, so each class lands in its own store
     * bucket and profiles separately.
     */
    unsigned sizeClasses = 3;

    /** Units of the smallest size class. */
    std::uint64_t baseUnits = 2048;

    /** Jobs each submitter pushes through its loop. */
    std::uint64_t jobsPerSubmitter = 100;

    /**
     * Jobs each submitter keeps in flight at once: every loop
     * iteration submits a burst of this many specs through one
     * submitMany() call and waits for all of them.  1 reproduces the
     * strict closed loop (submit, wait, repeat); larger bursts give
     * the batcher compatible work to fuse.
     */
    std::uint64_t burst = 1;

    /**
     * Batch fusion knobs forwarded to ServiceConfig::batch: most
     * member jobs per fused launch (<= 1 disables batching) and the
     * bounded-delay top-up window.
     */
    std::size_t maxBatchJobs = 1;
    sim::TimeNs batchWindowNs = 0;

    /** Flops per unit of the slow / fast variant in every pool. */
    std::uint64_t slowFlops = 4000;
    std::uint64_t fastFlops = 100;

    /**
     * Variants per kernel pool (>= 2): one fast winner plus
     * variants-1 slower decoys.  More variants make micro-profiling
     * proportionally more expensive -- each decoy costs a profiling
     * slice and, with the guard on, a validated sandbox.
     */
    unsigned variants = 2;

    /**
     * Profiling executions per variant (LaunchOptions::profileRepeats;
     * 0 = the runtime's automatic default).  Serving deployments
     * crank repeats up for noise-robust selections they then reuse
     * fleet-wide from the store -- which is exactly the cost
     * coalescing keeps off the duplicate jobs.
     */
    unsigned profileRepeats = 0;

    /**
     * Validate variants during profiling (reference cross-check,
     * canary redzones, NaN screen).  Models the production setting
     * where an unvalidated variant never reaches users; makes the
     * cold profiling pass the expensive step that coalescing
     * amortizes.
     */
    bool guard = false;

    /**
     * Draw keys in lockstep instead of randomly: job j of every
     * submitter targets phase j's (signature, size class), so each
     * phase's first touch is a contended cold miss -- the serving
     * pattern (a new kernel or shape goes hot fleet-wide at once)
     * that profiling coalescing exists for.  With sweep off, each
     * submitter draws (signature, size) uniformly from its own RNG.
     */
    bool sweep = false;

    /** Service knobs under test. */
    bool coalesce = true;
    bool affinity = true;
    std::size_t maxQueueDepth = 0;
    AdmissionPolicy admission = AdmissionPolicy::Block;

    /** Per-launch LaunchFail probability (0 = no fault injection). */
    double faultRate = 0.0;

    /** Seed for the submitters' signature/size draws (and faults). */
    std::uint64_t seed = 1;

    /**
     * Attach a SelectionPredictor to the service (learned selection):
     * profilable store misses with a confident prediction run warm
     * with zero profiled units instead of micro-profiling.
     */
    bool predict = false;

    /** Confidence gate of the attached predictor. */
    double predictThreshold = 0.65;

    /**
     * Warm-up laps before the measured run: each lap sweeps every
     * (signature, size class) once through a throwaway service so
     * the predictor enters the measured run pretrained (the store
     * does NOT carry over -- only the learned model does).  0 starts
     * the predictor cold.  Only meaningful with predict.
     */
    unsigned pretrainLaps = 0;

    /**
     * Selection-audit sampling rate, forwarded to
     * ServiceConfig::audit.sampleRate (DESIGN §11): that fraction of
     * warm cache hits shadow-re-profiles the runner-up and records
     * realized regret.  0 disables the auditor entirely.
     */
    double auditRate = 0.0;

    /**
     * Hooks around the measured service: onStart fires right after
     * the service starts (before any submitter runs), onStop after
     * the storm drains but before the service stops.  dyseld uses
     * them to attach the admin plane to a loadgen run; predictor
     * pretrain warm-up laps never fire them.
     */
    std::function<void(DispatchService &)> onStart;
    std::function<void(DispatchService &)> onStop;

    /**
     * Drive the storm against this store instead of a fresh internal
     * one (fleet federation: the store is shared with a Replicator
     * and typically saved/compared after the run).  Must outlive the
     * call.  nullptr keeps the classic self-contained behaviour.
     */
    store::SelectionStore *externalStore = nullptr;

    /**
     * Attach this federation replicator to the service (DESIGN §13):
     * profilable cold misses consult the fleet before profiling
     * locally.  Requires externalStore (the replicator wraps the same
     * store).  Must outlive the call.
     */
    fed::Replicator *federation = nullptr;
};

/** What one run measured. */
struct LoadGenReport
{
    LoadGenConfig config;

    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0; ///< terminal with OK status
    std::uint64_t jobsFailed = 0;    ///< terminal with error status
    std::uint64_t jobsShed = 0;      ///< RESOURCE_EXHAUSTED by admission

    double wallSeconds = 0.0;
    double jobsPerSec = 0.0;

    /** Submit-to-result wall latency percentiles (microseconds). */
    double p50LatencyUs = 0.0;
    double p99LatencyUs = 0.0;

    /** Micro-profiling work relative to total launched units. */
    std::uint64_t profiledUnits = 0;
    std::uint64_t totalUnits = 0;
    double profiledUnitRatio = 0.0;

    /** Coalescer activity (from the service's metrics registry). */
    std::uint64_t coalesceLeaders = 0;
    std::uint64_t coalesceFollowers = 0;
    std::uint64_t coalesceHits = 0;
    /** hits / (hits + leaders): share of profilable misses served
     *  by another job's profiling pass. */
    double coalesceHitRate = 0.0;

    /** Store warm starts observed. */
    std::uint64_t storeHits = 0;
    /** storeHits / jobsSubmitted: share of jobs served warm. */
    double storeHitRate = 0.0;

    /** Batch fusion activity (batch.* counters; 0 with batching off). */
    std::uint64_t batchLaunches = 0;
    std::uint64_t batchJobs = 0;
    std::uint64_t batchDemoted = 0;
    /** batchJobs / batchLaunches: mean fused-launch occupancy. */
    double avgBatchSize = 0.0;

    /** Predictor activity (predict.* counters; 0 with predict off). */
    std::uint64_t predictHits = 0;
    std::uint64_t predictMisses = 0;
    std::uint64_t predictDemotions = 0;
    std::uint64_t predictTrained = 0;

    /** Selection-audit activity (audit.* counters; 0 with audit off). */
    std::uint64_t auditSamples = 0;
    std::uint64_t auditDemotions = 0;
    std::uint64_t auditProbeFailures = 0;
    /** Mean realized regret across sampled warm hits (fraction). */
    double auditMeanRegret = 0.0;

    /** Federation activity (fed.* counters; 0 without federation). */
    std::uint64_t fedWarmHits = 0;
    std::uint64_t fedLeases = 0;
    std::uint64_t fedFallbacks = 0;

    /**
     * Keys ("signature|fingerprint|bucket") whose micro-profiling
     * pass ran in THIS service (store profile observer; remote
     * records merged in by gossip do not count).  The fleet test
     * unions these across replicas to assert each key was profiled
     * exactly once fleet-wide.  Collected only when no predictor is
     * attached (the predictor owns the observer slot).
     */
    std::vector<std::string> profiledKeys;

    /**
     * Order-independent digest of every completed job's output
     * buffer (per-job FNV-1a over out[0, units), XOR-combined), so
     * runs that only differ in selection policy -- predictor on/off,
     * coalescing on/off -- can assert byte-identical job outputs.
     */
    std::uint64_t outputChecksum = 0;

    /** Machine-readable form (the BENCH_service_throughput schema). */
    support::Json toJson() const;
};

/** Run one closed-loop load against a fresh service. */
LoadGenReport runLoadGen(const LoadGenConfig &cfg);

} // namespace serve
} // namespace dysel
