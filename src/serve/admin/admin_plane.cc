#include "admin_plane.hh"

#include <algorithm>
#include <cstdlib>

#include "dysel/fed/replicator.hh"
#include "dysel/predict/predictor.hh"
#include "support/json.hh"
#include "support/net/http.hh"
#include "support/tracing/tracer.hh"

namespace dysel {
namespace serve {
namespace admin {

using support::Json;

namespace {

/** Decode %XX and '+' in a query component (best-effort). */
std::string
urlDecode(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out.push_back(' ');
        } else if (s[i] == '%' && i + 2 < s.size()) {
            const std::string hex = s.substr(i + 1, 2);
            char *end = nullptr;
            const long v = std::strtol(hex.c_str(), &end, 16);
            if (end && *end == '\0') {
                out.push_back(static_cast<char>(v));
                i += 2;
            } else {
                out.push_back('%');
            }
        } else {
            out.push_back(s[i]);
        }
    }
    return out;
}

AdminResponse
jsonError(int status, const std::string &message)
{
    AdminResponse resp;
    resp.status = status;
    Json j = Json::object();
    j.set("error", message);
    resp.body = j.dump(2) + "\n";
    return resp;
}

Json
deviceJson(const DispatchService::DeviceHealth &d)
{
    Json j = Json::object();
    j.set("index", d.index);
    j.set("name", d.name);
    j.set("fingerprint", d.fingerprint);
    j.set("queue_depth", static_cast<std::uint64_t>(d.queueDepth));
    j.set("load", d.load);
    j.set("breaker_open", d.breakerOpen);
    j.set("breaker_cooldown_left", d.breakerCooldownLeft);
    j.set("consec_failures", d.consecFailures);
    j.set("clock_ns", d.clockNs);
    return j;
}

Json
healthJson(const DispatchService::ServiceHealth &h)
{
    Json j = Json::object();
    j.set("running", h.running);
    j.set("in_flight", h.inFlight);
    j.set("any_breaker_open", h.anyBreakerOpen());
    Json devices = Json::array();
    for (const auto &d : h.devices)
        devices.push(deviceJson(d));
    j.set("devices", std::move(devices));
    return j;
}

} // namespace

AdminPlane::AdminPlane(DispatchService &service,
                       const predict::SelectionPredictor *predictor,
                       fed::Replicator *fed)
    : service_(service), predictor_(predictor), fed_(fed)
{}

AdminRequest
AdminPlane::parseTarget(const std::string &target)
{
    AdminRequest req;
    const auto qpos = target.find('?');
    req.path = target.substr(0, qpos);
    if (qpos == std::string::npos)
        return req;
    std::string rest = target.substr(qpos + 1);
    std::size_t start = 0;
    while (start <= rest.size()) {
        auto amp = rest.find('&', start);
        if (amp == std::string::npos)
            amp = rest.size();
        const std::string pair = rest.substr(start, amp - start);
        if (!pair.empty()) {
            const auto eq = pair.find('=');
            if (eq == std::string::npos)
                req.query[urlDecode(pair)] = "";
            else
                req.query[urlDecode(pair.substr(0, eq))] =
                    urlDecode(pair.substr(eq + 1));
        }
        start = amp + 1;
    }
    return req;
}

AdminResponse
AdminPlane::handleTarget(const std::string &target) const
{
    return handle(parseTarget(target));
}

AdminResponse
AdminPlane::handle(const AdminRequest &req) const
{
    if (req.path == "/metrics")
        return metricsPage();
    if (req.path == "/healthz")
        return healthPage();
    if (req.path == "/readyz")
        return readyPage();
    if (req.path == "/debug/selections")
        return selectionsPage();
    if (req.path == "/debug/flight")
        return flightPage(req);
    if (req.path == "/debug/trace")
        return tracePage(req);
    if (req.path == "/debug/audit")
        return auditPage();
    if (req.path == "/debug/predictor")
        return predictorPage();
    if (req.path == "/debug/peers")
        return peersPage();
    if (req.path.rfind("/fed/", 0) == 0) {
        if (!fed_)
            return jsonError(404, "federation not attached");
        // The replicator parses its own query string; rebuild the
        // target from the decoded pairs.
        std::string target = req.path;
        char sep = '?';
        for (const auto &[k, v] : req.query) {
            target += sep + support::net::urlEncode(k) + "="
                      + support::net::urlEncode(v);
            sep = '&';
        }
        const auto reply = fed_->handleFed(target);
        AdminResponse resp;
        resp.status = reply.status;
        resp.body = reply.body;
        return resp;
    }
    if (req.path == "/" || req.path.empty())
        return indexPage();
    return jsonError(404, "no such endpoint: " + req.path);
}

AdminResponse
AdminPlane::metricsPage() const
{
    AdminResponse resp;
    resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = service_.metrics().renderPrometheus();
    return resp;
}

AdminResponse
AdminPlane::healthPage() const
{
    AdminResponse resp;
    const auto h = service_.health();
    Json j = healthJson(h);
    j.set("status", h.running ? "ok" : "stopped");
    resp.body = j.dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::readyPage() const
{
    const auto h = service_.health();
    // Ready means: accepting work, and at least one shard can serve
    // it.  A single open breaker only degrades capacity; every
    // breaker open means nothing can run.
    bool allOpen = !h.devices.empty();
    for (const auto &d : h.devices)
        if (!d.breakerOpen)
            allOpen = false;
    const bool ready = h.running && !allOpen;
    AdminResponse resp;
    resp.status = ready ? 200 : 503;
    Json j = Json::object();
    j.set("ready", ready);
    j.set("running", h.running);
    j.set("all_breakers_open", allOpen);
    j.set("in_flight", h.inFlight);
    resp.body = j.dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::selectionsPage() const
{
    const auto &st = service_.selectionStore();
    Json arr = Json::array();
    for (const auto &rec : st.records()) {
        Json j = Json::object();
        j.set("signature", rec.signature);
        j.set("device", rec.device);
        j.set("bucket", rec.bucket);
        j.set("selected", rec.selected);
        j.set("selected_name", rec.selectedName);
        j.set("launches", rec.launches);
        j.set("profiled_launches", rec.profiledLaunches);
        j.set("confidence", rec.confidence);
        j.set("unit_time_ns", rec.unitTimeNs);
        j.set("valid", rec.valid);
        j.set("quarantined_variant", rec.quarantinedVariant);
        j.set("cooldown_left", rec.cooldownLeft);
        j.set("quarantines", rec.quarantines);
        j.set("predicted", rec.predicted);
        j.set("predicted_confidence", rec.predictedConfidence);
        Json profiles = Json::array();
        for (const auto &p : rec.profiles) {
            Json pj = Json::object();
            pj.set("name", p.name);
            pj.set("metric_ns", p.metricNs);
            pj.set("units", p.units);
            profiles.push(std::move(pj));
        }
        j.set("profiles", std::move(profiles));
        arr.push(std::move(j));
    }
    Json bl = Json::array();
    for (const auto &e : st.blacklistEntries()) {
        Json j = Json::object();
        j.set("signature", e.signature);
        j.set("variant", e.variant);
        j.set("device", e.device);
        j.set("reason", e.reason);
        bl.push(std::move(j));
    }
    Json root = Json::object();
    root.set("records", std::move(arr));
    root.set("blacklist", std::move(bl));
    AdminResponse resp;
    resp.body = root.dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::flightPage(const AdminRequest &req) const
{
    const auto it = req.query.find("worker");
    if (it == req.query.end())
        return jsonError(400, "missing ?worker=N");
    char *end = nullptr;
    const unsigned long idx = std::strtoul(it->second.c_str(), &end, 10);
    if (!end || *end != '\0' || it->second.empty())
        return jsonError(400, "bad worker index: " + it->second);
    if (idx >= service_.deviceCount())
        return jsonError(404, "worker " + it->second
                                  + " out of range (devices: "
                                  + std::to_string(service_.deviceCount())
                                  + ")");
    AdminResponse resp;
    resp.contentType = "text/plain; charset=utf-8";
    resp.body = service_.flightDump(static_cast<unsigned>(idx));
    if (resp.body.empty())
        resp.body = "(flight recorder empty)\n";
    return resp;
}

AdminResponse
AdminPlane::tracePage(const AdminRequest &req) const
{
    std::size_t last = 64;
    const auto it = req.query.find("last");
    if (it != req.query.end()) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(it->second.c_str(), &end, 10);
        if (!end || *end != '\0' || it->second.empty())
            return jsonError(400, "bad last count: " + it->second);
        last = static_cast<std::size_t>(n);
    }
    const auto events = service_.tracer().snapshot();
    const std::size_t begin =
        events.size() > last ? events.size() - last : 0;
    Json arr = Json::array();
    for (std::size_t i = begin; i < events.size(); ++i) {
        const auto &e = events[i];
        Json j = Json::object();
        j.set("ph", support::tracing::phaseName(e.phase));
        j.set("name", e.name);
        j.set("cat", e.category);
        j.set("ts_ns", e.ts);
        j.set("dur_ns", e.dur);
        j.set("tid", e.tid);
        j.set("cid", e.correlation);
        Json args = Json::object();
        for (const auto &kv : e.args)
            args.set(kv.first, kv.second);
        j.set("args", std::move(args));
        arr.push(std::move(j));
    }
    Json root = Json::object();
    root.set("total_events", static_cast<std::uint64_t>(events.size()));
    root.set("returned", static_cast<std::uint64_t>(events.size() - begin));
    root.set("events", std::move(arr));
    AdminResponse resp;
    resp.body = root.dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::auditPage() const
{
    AdminResponse resp;
    const auto *aud = service_.auditor();
    if (!aud) {
        Json j = Json::object();
        j.set("enabled", false);
        resp.body = j.dump(2) + "\n";
        return resp;
    }
    resp.body = aud->toJson().dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::predictorPage() const
{
    AdminResponse resp;
    Json j = Json::object();
    if (!predictor_) {
        j.set("attached", false);
        resp.body = j.dump(2) + "\n";
        return resp;
    }
    j.set("attached", true);
    j.set("threshold", predictor_->config().threshold);
    j.set("calibration", predictor_->calibration());
    j.set("training_examples",
          static_cast<std::uint64_t>(predictor_->trainingExamples()));
    j.set("winners", static_cast<std::uint64_t>(predictor_->winnerCount()));
    j.set("demotions", static_cast<std::uint64_t>(predictor_->demotions()));
    resp.body = j.dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::peersPage() const
{
    AdminResponse resp;
    if (!fed_) {
        Json j = Json::object();
        j.set("attached", false);
        resp.body = j.dump(2) + "\n";
        return resp;
    }
    resp.body = fed_->peersJson().dump(2) + "\n";
    return resp;
}

AdminResponse
AdminPlane::indexPage() const
{
    Json eps = Json::array();
    for (const char *p :
         {"/metrics", "/healthz", "/readyz", "/debug/selections",
          "/debug/flight?worker=N", "/debug/trace?last=N",
          "/debug/audit", "/debug/predictor", "/debug/peers"})
        eps.push(p);
    Json j = Json::object();
    j.set("service", "dysel admin plane");
    j.set("endpoints", std::move(eps));
    AdminResponse resp;
    resp.body = j.dump(2) + "\n";
    return resp;
}

} // namespace admin
} // namespace serve
} // namespace dysel
