/**
 * @file
 * Live introspection plane over a running DispatchService
 * (DESIGN §11).
 *
 * AdminPlane is transport-agnostic: handle(request) -> response over
 * the service's live registries, with no sockets anywhere -- the
 * HTTP/1.0 front in support/net plugs it into `dyseld --admin PORT`,
 * and tests drive it directly.  Endpoints:
 *
 *   /metrics            live Prometheus exposition
 *   /healthz            liveness: running flag + full health JSON
 *   /readyz             readiness: 503 while not running or every
 *                       breaker is open
 *   /debug/selections   per-key winner/EMA/quarantine/predicted JSON
 *                       plus the blacklist
 *   /debug/flight?worker=N   on-demand FlightRecorder dump (until
 *                       now only reachable via a failing job's
 *                       Status payload)
 *   /debug/trace?last=N tail of the trace ring as JSON events
 *   /debug/audit        selection-audit state (regret EMAs, totals)
 *   /debug/predictor    predictor calibration / shadow hit rate
 *   /debug/peers        federation sync state: per-peer cursors,
 *                       incarnations, failures, lease table size
 *   /fed/...              federation wire protocol (delta/lease/info),
 *                       delegated to the attached fed::Replicator
 *   /                   endpoint index
 *
 * Every handler is a read-only snapshot: the plane never mutates the
 * service, so a wedged storm can be inspected without perturbing it.
 */
#pragma once

#include <map>
#include <string>

#include "serve/dispatch_service.hh"

namespace dysel {
namespace serve {
namespace admin {

/** One parsed admin request: a path plus decoded query parameters. */
struct AdminRequest
{
    std::string path; ///< e.g. "/debug/flight"
    std::map<std::string, std::string> query;
};

/** What handle() returns; transport-independent. */
struct AdminResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/** The introspection plane. */
class AdminPlane
{
  public:
    /**
     * @p service must outlive the plane.  The predictor is optional
     * (nullptr renders /debug/predictor as {"attached": false}), as
     * is the federation replicator (nullptr renders /debug/peers as
     * {"attached": false} and 404s /fed/...).
     */
    explicit AdminPlane(DispatchService &service,
                        const predict::SelectionPredictor *predictor
                        = nullptr,
                        fed::Replicator *fed = nullptr);

    /** Serve one request (thread-safe, read-only). */
    AdminResponse handle(const AdminRequest &req) const;

    /** Convenience: parse "/path?k=v&k2=v2" and handle it. */
    AdminResponse handleTarget(const std::string &target) const;

    /** Split an HTTP target into path + decoded query map. */
    static AdminRequest parseTarget(const std::string &target);

  private:
    AdminResponse metricsPage() const;
    AdminResponse healthPage() const;
    AdminResponse readyPage() const;
    AdminResponse selectionsPage() const;
    AdminResponse flightPage(const AdminRequest &req) const;
    AdminResponse tracePage(const AdminRequest &req) const;
    AdminResponse auditPage() const;
    AdminResponse predictorPage() const;
    AdminResponse peersPage() const;
    AdminResponse indexPage() const;

    DispatchService &service_;
    const predict::SelectionPredictor *predictor_;
    fed::Replicator *fed_;
};

} // namespace admin
} // namespace serve
} // namespace dysel
