#include "batcher.hh"

#include "dysel/store/selection_store.hh"

namespace dysel {
namespace serve {

bool
Batcher::eligible(const Job &job)
{
    return !job.ensureRegistered && !job.noBatch && job.units > 0;
}

bool
Batcher::compatible(const Job &head, const Job &candidate)
{
    // Fused members execute under the head's LaunchOptions, so the
    // fields that shape a fused launch must agree: initialVariant
    // picks the cold-path variant, orch is stamped on every member's
    // report.  The remaining opt fields (profiling, mode,
    // profileRepeats, eagerChunkUnits) only affect profiling passes
    // and eager solo orchestration, neither of which a fused launch
    // performs -- they are deliberately ignored.
    return eligible(head) && eligible(candidate)
           && head.signature == candidate.signature
           && store::bucketOf(head.units)
                  == store::bucketOf(candidate.units)
           && head.opt.initialVariant == candidate.opt.initialVariant
           && head.opt.orch == candidate.opt.orch;
}

std::size_t
Batcher::gather(JobRing &queue, const Job &head,
                std::vector<detail::QueuedJob> &members) const
{
    std::size_t taken = 0;
    std::uint64_t unitsSum = head.units;
    for (const detail::QueuedJob &m : members)
        unitsSum += m.job.units;
    std::size_t i = 0;
    while (i < queue.size()) {
        if (members.size() + 1 >= limits_.maxJobs)
            break;
        const Job &cand = queue.at(i).job;
        const bool fits =
            limits_.maxUnits == 0
            || unitsSum + cand.units <= limits_.maxUnits;
        if (fits && compatible(head, cand)) {
            unitsSum += cand.units;
            members.push_back(queue.extract(i));
            ++taken;
        } else {
            ++i;
        }
    }
    return taken;
}

} // namespace serve
} // namespace dysel
