/**
 * @file
 * Job types of the dispatch service: the completion record, the
 * submission spec, the caller-side handle, and the internal queued-job
 * shell the buffer pool recycles.
 *
 * The stable public submission surface is JobSpec + DispatchService::
 * submitMany() (DESIGN §10).  The raw Job struct remains as the
 * storage type behind JobSpec and as the input of the deprecated
 * submit(Job) shim.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dysel/options.hh"
#include "dysel/report.hh"
#include "dysel/runtime.hh"
#include "kdp/args.hh"
#include "sim/time.hh"
#include "support/status.hh"

namespace dysel {
namespace serve {

class DispatchService;

/** Completion record of one job. */
struct JobResult
{
    std::uint64_t id = 0;
    /** Ok, or why the job ultimately failed. */
    support::Status status;
    bool ok() const { return status.ok(); }

    unsigned deviceIndex = 0;
    std::string deviceName;
    /** Selection came from the persistent store (no profiling ran). */
    bool warmStart = false;
    /**
     * The selection was seeded by the predictor (learned selection):
     * the job ran warm without any profiling pass ever having covered
     * its (signature, device, bucket) key.
     */
    bool predicted = false;
    /**
     * Job id of the profiling leader this job coalesced behind
     * (0 = the job did not ride another job's profiling pass).
     */
    std::uint64_t coalescedWith = 0;
    /**
     * Job id of the batch leader this job fused with (0 = the job ran
     * solo).  The leader's own result carries its own id here.
     */
    std::uint64_t batchedWith = 0;
    runtime::LaunchReport report;
    /** Virtual device time the last attempt consumed (a fused
     * launch's elapsed time is split evenly across its members). */
    sim::TimeNs deviceTimeNs = 0;

    /** Attempts the job took (1 = no retries). */
    unsigned attempts = 1;
    /** Total virtual backoff charged across retries. */
    sim::TimeNs backoffNs = 0;
};

/**
 * One launch job (storage form).
 *
 * @deprecated As a public submission type: build a JobSpec and use
 * DispatchService::submitMany() instead.  submit(Job) remains as a
 * thin shim over the same path.
 */
struct Job
{
    std::string signature;
    std::uint64_t units = 0;
    kdp::KernelArgs args;
    runtime::LaunchOptions opt;

    /**
     * Ensures the job's kernel pool is registered on the runtime it
     * lands on (called from the worker thread before the launch).
     * Prefer DispatchService::registerKernelPool() -- jobs carrying
     * their own installer are excluded from batching.
     */
    std::function<void(runtime::Runtime &)> ensureRegistered;

    /**
     * Optional completion callback, fired exactly once per job on
     * every terminal path: on the worker thread for jobs that ran
     * (or were discarded after a cancel), on the submitter's own
     * thread for a job shed by admission control.  JobHandle::wait()
     * / result() cover the common case.  On the allocation-free hot
     * path keep captures within std::function's inline buffer (a
     * single pointer) -- larger captures heap-allocate per submit.
     */
    std::function<void(const JobResult &)> done;

    /**
     * Virtual-time budget (device time + charged backoff) across all
     * attempts; 0 disables the deadline.  A job that exhausts it
     * fails with DeadlineExceeded instead of retrying further.
     */
    sim::TimeNs deadlineNs = 0;

    /** Exclude this job from batch fusion (solo execution only). */
    bool noBatch = false;

    /** Assigned by submit()/submitMany(). */
    std::uint64_t id = 0;
};

/**
 * Builder-style submission spec, the stable public surface.  A spec
 * is reusable: submitMany() copies it into pooled storage, so a
 * submitter can hold a fixed array of specs and resubmit them every
 * iteration without reallocating (string/vector capacities in the
 * pool are reused across jobs).
 *
 *     JobSpec spec;
 *     spec.signature("saxpy").units(4096).args(args);
 *     auto handle = svc.submitMany({&spec, 1})[0];
 */
class JobSpec
{
  public:
    JobSpec() = default;

    JobSpec &
    signature(std::string sig)
    {
        job_.signature = std::move(sig);
        return *this;
    }

    JobSpec &
    units(std::uint64_t n)
    {
        job_.units = n;
        return *this;
    }

    /** The argument list; copied into the job. */
    JobSpec &
    args(kdp::KernelArgs a)
    {
        job_.args = std::move(a);
        return *this;
    }

    /** Mutable access for in-place arg rebuilding across reuses. */
    kdp::KernelArgs &mutableArgs() { return job_.args; }

    JobSpec &
    options(runtime::LaunchOptions opt)
    {
        job_.opt = opt;
        return *this;
    }

    /**
     * Per-job kernel installer (prefer registerKernelPool()); a spec
     * carrying one is excluded from batch fusion.
     */
    JobSpec &
    ensureRegistered(std::function<void(runtime::Runtime &)> fn)
    {
        job_.ensureRegistered = std::move(fn);
        return *this;
    }

    /** Completion callback (see Job::done for the exactly-once
     * contract and the allocation note). */
    JobSpec &
    onDone(std::function<void(const JobResult &)> fn)
    {
        job_.done = std::move(fn);
        return *this;
    }

    /** Virtual-time deadline across all attempts; 0 = none. */
    JobSpec &
    deadline(sim::TimeNs ns)
    {
        job_.deadlineNs = ns;
        return *this;
    }

    /** Exclude this job from batch fusion. */
    JobSpec &
    noBatch(bool exclude = true)
    {
        job_.noBatch = exclude;
        return *this;
    }

    /** The spec's storage form (observation). */
    const Job &job() const { return job_; }

  private:
    friend class DispatchService;
    Job job_;
};

namespace detail {

/** Shared completion state behind a JobHandle. */
struct JobState
{
    enum Phase { Queued = 0, Running = 1, Done = 2, Cancelled = 3 };

    std::uint64_t id = 0;
    std::atomic<int> phase{Queued};
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    JobResult result; ///< valid once phase is Done or Cancelled
};

/**
 * A job in flight, with its retry state.  The shell -- the strings,
 * vectors, and argument slots -- is recycled through the worker
 * shard's BufferPool, so steady-state submission reuses capacity
 * instead of allocating.
 */
struct QueuedJob
{
    Job job;
    std::shared_ptr<JobState> state;
    unsigned attempt = 0; ///< failed attempts so far
    std::vector<unsigned> excluded; ///< devices that failed it
    sim::TimeNs backoffNs = 0; ///< charged virtual backoff
    sim::TimeNs spentNs = 0; ///< device time across attempts
    /** Destination device's clock when (re-)enqueued (queue span). */
    sim::TimeNs enqueuedNs = 0;
};

} // namespace detail

/**
 * Caller-side handle of a submitted job: wait for it, read its
 * result, or cancel it while it is still queued.  Copyable; all
 * copies refer to the same job.  A default-constructed handle is
 * empty.
 */
class JobHandle
{
  public:
    JobHandle() = default;
    JobHandle(const JobHandle &) = default;
    JobHandle(JobHandle &&) noexcept = default;

    /**
     * Dropping a reference passes through the state's mutex first:
     * the pool recycles a completion block in place as soon as only
     * it holds a reference, and the lock hand-off is what orders this
     * holder's unlocked result() reads before that reset (the
     * refcount alone carries no such edge).
     */
    ~JobHandle() { release(); }

    JobHandle &
    operator=(const JobHandle &other)
    {
        if (this != &other) {
            release();
            state_ = other.state_;
        }
        return *this;
    }

    JobHandle &
    operator=(JobHandle &&other) noexcept
    {
        if (this != &other) {
            release();
            state_ = std::move(other.state_);
        }
        return *this;
    }

    /** Whether the handle refers to a job. */
    bool valid() const { return static_cast<bool>(state_); }

    /** The job id assigned by submit(). */
    std::uint64_t id() const { return state_ ? state_->id : 0; }

    /** Whether the job has finished (done or cancelled). */
    bool done() const;

    /** Block until the job is done or cancelled. */
    void wait() const;

    /**
     * Block until completion, then the final JobResult.  A cancelled
     * job's result carries StatusCode::Cancelled; a job shed by
     * admission control carries StatusCode::ResourceExhausted.  The
     * reference is only valid while this handle (or a copy) is alive
     * -- don't bind it off a temporary handle.
     */
    const JobResult &result() const;

    /**
     * Withdraw the job if it has not started running.  Returns true
     * on success (the job will never run; its result is Cancelled);
     * false once the job is running or finished.  Cancelling a
     * queued duplicate never disturbs the profiling leader it would
     * have coalesced behind -- jobs attach to a leader only once
     * running.
     */
    bool cancel();

  private:
    friend class DispatchService;
    explicit JobHandle(std::shared_ptr<detail::JobState> state)
        : state_(std::move(state))
    {}

    void
    release()
    {
        if (!state_)
            return;
        // See ~JobHandle(): the empty critical section publishes this
        // thread's reads of the result to whoever locks st.mu next --
        // in particular BufferPool::acquireState(), which resets the
        // block under the same mutex once the refcount says only the
        // pool is left.
        { std::lock_guard<std::mutex> lock(state_->mu); }
        state_.reset();
    }

    std::shared_ptr<detail::JobState> state_;
};

} // namespace serve
} // namespace dysel
