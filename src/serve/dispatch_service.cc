#include "dispatch_service.hh"

#include <algorithm>
#include <chrono>
#include <climits>
#include <stdexcept>

#include "dysel/fed/replicator.hh"
#include "support/logging.hh"

namespace dysel {
namespace serve {

namespace {

std::string
devKey(unsigned idx)
{
    return "dev" + std::to_string(idx);
}

/**
 * Canonical per-device metric name (DESIGN §7): a shared family name
 * plus a device label, e.g. `device.jobs{device="dev0"}`, replacing
 * the old ad-hoc "dev0.jobs" dotted prefixes.
 */
std::string
devMetric(const char *family, unsigned idx)
{
    return support::MetricsRegistry::labeled(family, "device",
                                             devKey(idx));
}

bool
contains(const std::vector<unsigned> &v, unsigned x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

/** Whether a failed attempt with @p code is worth another device. */
bool
retryableCode(support::StatusCode code)
{
    switch (code) {
      case support::StatusCode::Unavailable:
      case support::StatusCode::DeadlineExceeded:
      case support::StatusCode::Internal:
        return true;
      default:
        return false;
    }
}

std::uint64_t
wallNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Fixed-precision rendering of a confidence (trace attributes). */
std::string
confStr(double c)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.3f", c);
    return buf;
}

/** Copy a spec's fields into pooled job storage, reusing capacity. */
void
copySpecInto(const JobSpec &spec, Job &dst)
{
    const Job &src = spec.job();
    dst.signature = src.signature;
    dst.units = src.units;
    dst.args = src.args;
    dst.opt = src.opt;
    dst.ensureRegistered = src.ensureRegistered;
    dst.done = src.done;
    dst.deadlineNs = src.deadlineNs;
    dst.noBatch = src.noBatch;
}

const std::vector<unsigned> kNoExclusions;

/**
 * The worker currently driving this thread, for observers that fire
 * from inside store calls (e.g. the predicted-selection demotion
 * feed): runJob() stamps these so the observer can emit a tracer
 * instant on the right track, with the right device clock, correlated
 * to the job that triggered the demotion.
 */
thread_local std::uint64_t tlJobId = 0;
thread_local std::uint64_t tlTraceTrack = 0;
thread_local sim::Device *tlDevice = nullptr;

} // namespace

support::Status
ServiceConfig::validate() const
{
    if (maxAttempts == 0)
        return support::Status::invalidArgument(
            "ServiceConfig: maxAttempts must be >= 1");
    if (maxAttempts > 32)
        return support::Status::invalidArgument(
            "ServiceConfig: maxAttempts > 32 overflows the exponential "
            "backoff shift");
    if (breakerThreshold == 0)
        return support::Status::invalidArgument(
            "ServiceConfig: breakerThreshold must be >= 1");
    if (batch.maxJobs == 0)
        return support::Status::invalidArgument(
            "ServiceConfig: batch.maxJobs must be >= 1 "
            "(1 disables batching)");
    if (maxQueueDepth > 0 && batch.maxJobs > maxQueueDepth)
        return support::Status::invalidArgument(
            "ServiceConfig: batch.maxJobs ("
            + std::to_string(batch.maxJobs)
            + ") exceeds maxQueueDepth ("
            + std::to_string(maxQueueDepth)
            + "); a full batch could never accumulate");
    if (batch.windowNs > 0 && !batch.enabled())
        return support::Status::invalidArgument(
            "ServiceConfig: batch.windowNs set while batching is "
            "disabled (batch.maxJobs <= 1)");
    if (auto st = audit.validate(); !st.ok())
        return st;
    return support::Status();
}

bool
JobHandle::done() const
{
    if (!state_)
        return false;
    const int p = state_->phase.load(std::memory_order_acquire);
    return p == detail::JobState::Done
           || p == detail::JobState::Cancelled;
}

void
JobHandle::wait() const
{
    if (!state_)
        return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] {
        const int p = state_->phase.load(std::memory_order_acquire);
        return p == detail::JobState::Done
               || p == detail::JobState::Cancelled;
    });
}

const JobResult &
JobHandle::result() const
{
    if (!state_)
        throw std::logic_error("JobHandle: result() on empty handle");
    wait();
    return state_->result;
}

bool
JobHandle::cancel()
{
    if (!state_)
        return false;
    int expected = detail::JobState::Queued;
    if (!state_->phase.compare_exchange_strong(
            expected, detail::JobState::Cancelled)) {
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(state_->mu);
        state_->result.id = state_->id;
        state_->result.status = support::Status::cancelled(
            "job " + std::to_string(state_->id)
            + " cancelled before dispatch");
    }
    state_->cv.notify_all();
    return true;
}

DispatchService::DispatchService(store::SelectionStore &st,
                                 ServiceConfig cfg)
    : store_(st), config(cfg), batcher(cfg.batch)
{
    config.validate().throwIfError();
    // Hot-path metric handles are resolved once; the registry hands
    // out stable references, so per-job increments skip the name
    // formatting and map lookup entirely.
    submittedCounter = &reg.counter("jobs.submitted");
    completedCounter = &reg.counter("jobs.completed");
    failedCounter = &reg.counter("jobs.failed");
    cancelledCounter = &reg.counter("jobs.cancelled");
    storeHitCounter = &reg.counter("store.hit");
    storeMissCounter = &reg.counter("store.miss");
    batchLaunchCounter = &reg.counter("batch.launches");
    batchJobsCounter = &reg.counter("batch.jobs");
    batchDemotedCounter = &reg.counter("batch.demoted");
    batchSizeHist = &reg.histogram("batch.size");
    deviceNsHist = &reg.histogram("job.device_ns");
    attemptsHist = &reg.histogram("job.attempts");
    backoffHist = &reg.histogram("job.backoff_ns");
    if (config.audit.enabled())
        auditor_ = std::make_unique<obs::SelectionAuditor>(
            store_, reg, &tracer_, config.audit);
}

DispatchService::~DispatchService()
{
    stop();
    if (predictor_) {
        // The store outlives the service: drop the observers that
        // capture `this` before they can dangle.
        store_.setProfileObserver(nullptr);
        store_.setDemotionObserver(nullptr);
    }
}

void
DispatchService::setPredictor(predict::SelectionPredictor *predictor)
{
    if (started.load(std::memory_order_acquire))
        throw std::logic_error(
            "DispatchService: setPredictor after start()");
    predictor_ = predictor;
    if (!predictor_) {
        store_.setProfileObserver(nullptr);
        store_.setDemotionObserver(nullptr);
        return;
    }
    // The training feed: every completed profiling pass the store
    // records becomes one online training example.
    store_.setProfileObserver([this](const store::SelectionRecord &rec) {
        predictor_->observeProfile(rec);
        reg.counter("predict.train").inc();
    });
    // The corrective feed: a predicted selection that drifted,
    // failed, or got blacklisted is demoted back to a forced profile;
    // tell the predictor so it unlearns the winner and pays the
    // calibration penalty.
    store_.setDemotionObserver(
        [this](const store::SelectionRecord &rec) {
            predictor_->observeDemotion(rec.signature, rec.device,
                                        rec.bucket);
            reg.counter("predict.demoted").inc();
            if (tracer_.enabled() && tlDevice) {
                tracer_.instant(
                    tlTraceTrack, "predict.demoted", tlDevice->now(),
                    tlJobId,
                    {{"signature", rec.signature},
                     {"variant", rec.selectedName},
                     {"confidence",
                      confStr(rec.predictedConfidence)}});
            }
        });
}

void
DispatchService::setFederation(fed::Replicator *fedp)
{
    if (started.load(std::memory_order_acquire))
        throw std::logic_error(
            "DispatchService: setFederation after start()");
    fed_ = fedp;
    if (fed_)
        fed_->bindMetrics(&reg);
}

unsigned
DispatchService::addDevice(std::unique_ptr<sim::Device> device)
{
    if (started.load(std::memory_order_acquire))
        throw std::logic_error(
            "DispatchService: addDevice after start()");
    if (!device)
        throw std::invalid_argument("DispatchService: null device");
    auto w = std::make_unique<Worker>();
    w->dev = std::move(device);
    w->rt = std::make_unique<runtime::Runtime>(*w->dev, config.runtime);
    w->fingerprint = w->dev->fingerprint();
    const auto idx = static_cast<unsigned>(workers.size());

    w->flight.reset(config.flightRecorderCapacity);
    // One trace track per device worker; the runtime draws its spans
    // on the same track (profiling passes get subtracks of it).
    const std::string trackName = devKey(idx) + ":" + w->dev->name();
    w->traceTrack = tracer_.track(trackName);
    w->rt->setTracer(&tracer_, trackName);

    w->jobsCounter = &reg.counter(devMetric("device.jobs", idx));
    w->storeHitsCounter =
        &reg.counter(devMetric("device.store_hits", idx));
    w->profiledCounter = &reg.counter(devMetric("device.profiled", idx));
    w->latencyHist = &reg.histogram(devMetric("device.latency_ns", idx));

    // Feed the store from every launch on this runtime: profiled
    // launches refresh their record, plain cache-served launches
    // update the drift baseline (and may quarantine / invalidate).
    // Fused launches are excluded from the baseline -- they amortize
    // launch overhead across members, so their per-unit time is not
    // comparable to a solo run; runBatch() accounts them through
    // SelectionStore::noteServed() instead.  Shadow audit probes are
    // excluded too: a tiny forced-variant slice carries non-amortized
    // launch overhead, and the auditor does its own accounting.
    w->rt->setLaunchObserver(
        [this, fp = w->fingerprint](const runtime::LaunchReport &r) {
            if (r.profiled) {
                // tlJobId doubles as the launch's trace correlation
                // id; stamping it into the record lets a follower
                // replica's warm hit trace back to this profiling
                // pass (DESIGN §13).
                store_.recordProfile(fp, r, tlJobId);
                reg.counter("store.record").inc();
            } else if (r.fromCache && !r.fused && !r.shadow) {
                switch (store_.observePlain(fp, r)) {
                  case store::Observation::Quarantined:
                    reg.counter("store.quarantine").inc();
                    break;
                  case store::Observation::Invalidated:
                    reg.counter("store.drift_invalidation").inc();
                    break;
                  case store::Observation::Ok:
                    break;
                }
            }
            // Guard telemetry: one "guard.<check>" count per
            // detection, reconcilable 1:1 with the fault injector's
            // variant-fault log.
            for (const auto &ev : r.guardEvents)
                reg.counter("guard." + ev.check).inc();
            if (r.guardExcluded > 0)
                reg.counter("guard.excluded").inc(r.guardExcluded);
            if (r.guardRepairs > 0)
                reg.counter("guard.repair").inc(r.guardRepairs);
        });

    // Persist guard blacklistings: a variant that struck out on this
    // device is recorded in the store under the device fingerprint,
    // so it is never re-served -- across restarts included.
    w->rt->guard().setBlacklistObserver(
        [this, fp = w->fingerprint](const std::string &sig,
                                    const std::string &variant,
                                    const std::string &reason) {
            store_.blacklistVariant(sig, variant, fp, reason);
            reg.counter("guard.blacklist").inc();
        });

    // Kernel pools registered before this device existed still apply
    // to it (registerKernelPool retains every installer).
    {
        std::lock_guard<std::mutex> lock(poolMu);
        for (const auto &installer : installers)
            installer(*w->rt);
        w->installersApplied = installers.size();
    }

    workers.push_back(std::move(w));
    return idx;
}

sim::Device &
DispatchService::device(unsigned idx)
{
    return *workers.at(idx)->dev;
}

const runtime::Runtime &
DispatchService::runtimeAt(unsigned idx) const
{
    return *workers.at(idx)->rt;
}

support::Status
DispatchService::registerKernelPool(
    std::function<void(runtime::Runtime &)> installer)
{
    if (!installer)
        return support::Status::invalidArgument(
            "DispatchService: empty kernel-pool installer");
    std::lock_guard<std::mutex> lock(poolMu);
    if (!started.load(std::memory_order_acquire)) {
        // No workers running: install on every runtime right here.
        try {
            for (auto &w : workers)
                installer(*w->rt);
        } catch (const std::exception &e) {
            return support::Status::internal(
                std::string("registerKernelPool: installer threw: ")
                + e.what());
        }
        installers.push_back(std::move(installer));
        for (auto &w : workers)
            w->installersApplied = installers.size();
        installerCount.store(installers.size(),
                             std::memory_order_release);
        return support::Status();
    }
    // Workers are live: retain the installer; each worker applies it
    // on its own thread before its next job (applyPendingInstallers),
    // so the runtime is only ever touched by its worker.
    installers.push_back(std::move(installer));
    installerCount.store(installers.size(), std::memory_order_release);
    for (auto &w : workers)
        w->qcv.notify_all();
    return support::Status();
}

void
DispatchService::applyPendingInstallers(unsigned idx)
{
    Worker &w = *workers[idx];
    if (w.installersApplied
        == installerCount.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(poolMu);
    while (w.installersApplied < installers.size()) {
        try {
            installers[w.installersApplied](*w.rt);
        } catch (const std::exception &e) {
            reg.counter("pool.install_failed").inc();
            support::warn("kernel-pool installer failed on %s: %s",
                          w.dev->name().c_str(), e.what());
        }
        ++w.installersApplied;
    }
}

BufferPool::Stats
DispatchService::poolStats(unsigned idx) const
{
    return workers.at(idx)->pool.stats();
}

DispatchService::ServiceHealth
DispatchService::health() const
{
    ServiceHealth out;
    out.running = started.load(std::memory_order_acquire);
    out.inFlight = inFlight.load(std::memory_order_acquire);
    out.devices.resize(workers.size());
    for (unsigned i = 0; i < workers.size(); ++i) {
        const Worker &w = *workers[i];
        DeviceHealth &d = out.devices[i];
        d.index = i;
        d.name = w.dev->name();
        d.fingerprint = w.fingerprint;
        d.load = w.load.load(std::memory_order_relaxed);
        d.clockNs = w.clockNs.load(std::memory_order_relaxed);
    }
    {
        // Breaker fields live under routeMu; taken once for all
        // devices, never together with a shard lock.
        std::lock_guard<std::mutex> lock(routeMu);
        for (unsigned i = 0; i < workers.size(); ++i) {
            const Worker &w = *workers[i];
            out.devices[i].breakerOpen = w.breakerOpen;
            out.devices[i].breakerCooldownLeft = w.breakerCooldownLeft;
            out.devices[i].consecFailures = w.consecFailures;
        }
    }
    for (unsigned i = 0; i < workers.size(); ++i) {
        Worker &w = *workers[i];
        std::lock_guard<std::mutex> lock(w.qmu);
        out.devices[i].queueDepth = w.queue.size();
    }
    return out;
}

std::string
DispatchService::flightDump(unsigned idx) const
{
    return workers.at(idx)->flight.dump();
}

void
DispatchService::start()
{
    if (started.load(std::memory_order_acquire))
        return;
    if (workers.empty())
        throw std::logic_error("DispatchService: start() with no devices");
    stopping.store(false, std::memory_order_release);
    {
        // Serialize against registerKernelPool(): an installer either
        // completes its inline application before workers exist or
        // sees started == true and defers to the workers.
        std::lock_guard<std::mutex> lock(poolMu);
        started.store(true, std::memory_order_release);
    }
    for (unsigned i = 0; i < workers.size(); ++i)
        workers[i]->thread = std::thread([this, i] { workerLoop(i); });
}

unsigned
DispatchService::route(const std::string &signature,
                       const std::vector<unsigned> &excluded)
{
    std::lock_guard<std::mutex> lock(routeMu);
    const std::size_t n = workers.size();
    // An open breaker sheds load for breakerCooldown routing
    // decisions; once the cooldown is spent the device becomes
    // eligible for exactly one probe job (the cooldown is re-armed
    // when the probe is placed, and the breaker closes or reopens on
    // the probe's result).
    auto admissible = [this](unsigned i) {
        Worker &w = *workers[i];
        if (!w.breakerOpen)
            return true;
        if (w.breakerCooldownLeft > 0) {
            w.breakerCooldownLeft--;
            return false;
        }
        return true; // half-open: probe allowed
    };

    auto finish = [this](unsigned pick) {
        if (workers[pick]->breakerOpen)
            workers[pick]->breakerCooldownLeft = config.breakerCooldown;
        return pick;
    };

    if (n <= 64) {
        // Submission hot path: candidate tiers as bitmasks, no heap.
        std::uint64_t admissibleMask = 0;
        std::uint64_t nonExcludedMask = 0;
        for (unsigned i = 0; i < n; ++i) {
            if (contains(excluded, i))
                continue;
            nonExcludedMask |= std::uint64_t(1) << i;
            if (admissible(i))
                admissibleMask |= std::uint64_t(1) << i;
        }
        std::uint64_t pool =
            admissibleMask ? admissibleMask : nonExcludedMask;
        if (pool == 0) {
            // Everything is excluded or shedding: all devices.
            pool = n == 64 ? ~std::uint64_t(0)
                           : (std::uint64_t(1) << n) - 1;
        }
        if (config.affinity) {
            auto it = affinityMap.find(signature);
            if (it != affinityMap.end()
                && ((pool >> it->second) & 1) != 0)
                return finish(it->second);
        }
        unsigned best = UINT_MAX;
        for (unsigned i = 0; i < n; ++i) {
            if (((pool >> i) & 1) == 0)
                continue;
            if (best == UINT_MAX
                || workers[i]->load.load(std::memory_order_relaxed)
                       < workers[best]->load.load(
                           std::memory_order_relaxed))
                best = i;
        }
        return finish(best);
    }

    // Large-fleet fallback (allocates; n > 64 is not the hot path).
    std::vector<unsigned> pool;
    for (unsigned i = 0; i < n; ++i)
        if (!contains(excluded, i) && admissible(i))
            pool.push_back(i);
    if (pool.empty()) {
        for (unsigned i = 0; i < n; ++i)
            if (!contains(excluded, i))
                pool.push_back(i);
    }
    if (pool.empty()) {
        pool.resize(n);
        for (unsigned i = 0; i < n; ++i)
            pool[i] = i;
    }
    if (config.affinity) {
        auto it = affinityMap.find(signature);
        if (it != affinityMap.end() && contains(pool, it->second))
            return finish(it->second);
    }
    unsigned best = pool[0];
    for (unsigned i : pool)
        if (workers[i]->load.load(std::memory_order_relaxed)
            < workers[best]->load.load(std::memory_order_relaxed))
            best = i;
    return finish(best);
}

void
DispatchService::breakerObserve(unsigned idx, bool deviceFault)
{
    std::lock_guard<std::mutex> lock(routeMu);
    Worker &w = *workers[idx];
    if (deviceFault) {
        w.consecFailures++;
        if (w.breakerOpen) {
            // The half-open probe failed: re-arm the cooldown.
            w.breakerCooldownLeft = config.breakerCooldown;
            reg.counter("breaker.reopens").inc();
        } else if (w.consecFailures >= config.breakerThreshold) {
            w.breakerOpen = true;
            w.breakerCooldownLeft = config.breakerCooldown;
            reg.counter("breaker.trips").inc();
            reg.counter(devMetric("device.breaker_trips", idx)).inc();
        }
    } else {
        w.consecFailures = 0;
        if (w.breakerOpen) {
            w.breakerOpen = false;
            w.breakerCooldownLeft = 0;
            reg.counter("breaker.closes").inc();
        }
    }
}

void
DispatchService::enqueue(unsigned idx, detail::QueuedJob qj)
{
    Worker &w = *workers[idx];
    {
        std::lock_guard<std::mutex> lock(w.qmu);
        qj.enqueuedNs = w.clockNs.load(std::memory_order_relaxed);
        w.queue.push(std::move(qj));
    }
    w.load.fetch_add(1, std::memory_order_relaxed);
    w.qcv.notify_one();
}

void
DispatchService::jobDone()
{
    if (inFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idleMu);
        idle.notify_all();
    }
}

JobHandle
DispatchService::submit(Job job)
{
    // Deprecated shim: wrap the raw job in a spec and go through the
    // batched submission core.
    JobSpec spec;
    spec.job_ = std::move(job);
    JobHandle handle;
    submitMany(std::span<const JobSpec>(&spec, 1),
               std::span<JobHandle>(&handle, 1));
    return handle;
}

std::vector<JobHandle>
DispatchService::submitMany(std::span<const JobSpec> specs)
{
    std::vector<JobHandle> handles(specs.size());
    submitMany(specs, handles);
    return handles;
}

void
DispatchService::submitMany(std::span<const JobSpec> specs,
                            std::span<JobHandle> out)
{
    if (!started.load(std::memory_order_acquire))
        throw std::logic_error("DispatchService: submit before start()");
    if (out.size() < specs.size())
        throw std::invalid_argument(
            "DispatchService: submitMany output span too small");
    if (specs.empty())
        return;

    // Route first, then visit each destination shard once.  The
    // scratch vector is thread-local so concurrent submitters don't
    // contend, and its capacity persists across calls -- steady
    // state allocates nothing on this thread.
    static thread_local std::vector<unsigned> routes;
    routes.clear();
    for (const JobSpec &spec : specs)
        routes.push_back(route(spec.job_.signature, kNoExclusions));
    submittedCounter->inc(specs.size());

    // Rejected jobs (shed on a full queue, or refused because the
    // service is stopping) are recorded here and completed only after
    // the routing loop is done with `routes`: a done callback runs
    // user code that may re-enter submitMany() on this thread and
    // clobber the thread-local scratch.  A plain local is fine --
    // it stays empty (no allocation) unless jobs are rejected, and
    // the rejection path already allocates for its status message.
    struct Rejected
    {
        std::size_t spec;
        unsigned shard;
        bool stopping;
    };
    std::vector<Rejected> rejected;

    for (unsigned widx = 0; widx < workers.size(); ++widx) {
        bool any = false;
        for (unsigned r : routes)
            if (r == widx) {
                any = true;
                break;
            }
        if (!any)
            continue;
        Worker &w = *workers[widx];
        std::size_t pushed = 0;
        {
            std::unique_lock<std::mutex> lock(w.qmu);
            for (std::size_t i = 0; i < specs.size(); ++i) {
                if (routes[i] != widx)
                    continue;
                const std::uint64_t id =
                    nextId.fetch_add(1, std::memory_order_relaxed);
                if (config.maxQueueDepth > 0
                    && w.queue.size() >= config.maxQueueDepth) {
                    if (config.admission == AdmissionPolicy::Shed) {
                        // Hand out a completed handle; the result and
                        // callback are delivered after the routing
                        // loop.
                        out[i] = JobHandle(w.pool.acquireState(id));
                        rejected.push_back({i, widx, false});
                        continue;
                    }
                    // Backpressure: block the submitter until the
                    // shard has room (the worker notifies spaceCv on
                    // every pop and batch gather).
                    reg.counter("admission.blocked").inc();
                    const std::uint64_t t0 = wallNowNs();
                    w.spaceCv.wait(lock, [&] {
                        return w.queue.size() < config.maxQueueDepth
                               || stopping.load(
                                   std::memory_order_acquire);
                    });
                    reg.histogram("admission.block_ns")
                        .observe(
                            static_cast<double>(wallNowNs() - t0));
                    if (stopping.load(std::memory_order_acquire)) {
                        // Woken by stop(): the worker may already
                        // have seen an empty queue and exited, so a
                        // push now would strand the job -- and its
                        // inFlight count -- forever.  Refuse it.
                        out[i] = JobHandle(w.pool.acquireState(id));
                        rejected.push_back({i, widx, true});
                        continue;
                    }
                }
                auto state = w.pool.acquireState(id);
                detail::QueuedJob qj = w.pool.acquireShell();
                copySpecInto(specs[i], qj.job);
                qj.job.id = id;
                qj.state = state;
                qj.enqueuedNs =
                    w.clockNs.load(std::memory_order_relaxed);
                inFlight.fetch_add(1, std::memory_order_acq_rel);
                w.queue.push(std::move(qj));
                ++pushed;
                out[i] = JobHandle(std::move(state));
            }
        }
        if (pushed > 0) {
            w.load.fetch_add(pushed, std::memory_order_relaxed);
            w.qcv.notify_one();
        }
    }

    for (const Rejected &r : rejected) {
        Worker &w = *workers[r.shard];
        std::shared_ptr<detail::JobState> state = out[r.spec].state_;
        JobResult res;
        res.id = state->id;
        res.deviceIndex = r.shard;
        res.deviceName = w.dev->name();
        res.attempts = 0;
        if (r.stopping) {
            reg.counter("admission.stopped").inc();
            res.status = support::Status::unavailable(
                "job " + std::to_string(state->id)
                + " rejected: service stopping");
        } else {
            reg.counter("admission.shed").inc();
            reg.counter(devMetric("device.shed", r.shard)).inc();
            res.status = support::Status::resourceExhausted(
                "dispatch queue of " + devKey(r.shard) + " is full ("
                + std::to_string(config.maxQueueDepth) + " jobs); job "
                + std::to_string(state->id) + " shed");
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "admission.shed",
                    w.clockNs.load(std::memory_order_relaxed),
                    state->id,
                    {{"depth",
                      std::to_string(config.maxQueueDepth)}});
            }
        }
        if (specs[r.spec].job_.done)
            specs[r.spec].job_.done(res);
        {
            std::lock_guard<std::mutex> slock(state->mu);
            state->result = std::move(res);
            state->phase.store(detail::JobState::Done,
                               std::memory_order_release);
        }
        state->cv.notify_all();
    }
}

void
DispatchService::drain()
{
    std::unique_lock<std::mutex> lock(idleMu);
    idle.wait(lock, [this] {
        return inFlight.load(std::memory_order_acquire) == 0;
    });
}

void
DispatchService::stop()
{
    if (!started.load(std::memory_order_acquire))
        return;
    drain();
    stopping.store(true, std::memory_order_release);
    for (auto &w : workers) {
        {
            std::lock_guard<std::mutex> lock(w->qmu);
        }
        w->qcv.notify_all();
        w->spaceCv.notify_all();
    }
    for (auto &w : workers)
        if (w->thread.joinable())
            w->thread.join();
    started.store(false, std::memory_order_release);
}

void
DispatchService::finishJob(detail::QueuedJob &qj, JobResult res)
{
    // The callback runs before the handle reports Done: once a
    // waiter wakes from result() the job -- callback included -- is
    // truly finished, and the caller may tear its captures down.
    if (qj.job.done)
        qj.job.done(res);
    detail::JobState &st = *qj.state;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        st.result = std::move(res);
        st.phase.store(detail::JobState::Done,
                       std::memory_order_release);
    }
    st.cv.notify_all();
}

void
DispatchService::finishCancelled(unsigned idx, detail::QueuedJob &&qj)
{
    Worker &w = *workers[idx];
    cancelledCounter->inc();
    if (qj.job.done) {
        JobResult res;
        {
            std::lock_guard<std::mutex> lock(qj.state->mu);
            res = qj.state->result;
        }
        qj.job.done(res);
    }
    w.load.fetch_sub(1, std::memory_order_relaxed);
    jobDone();
    w.pool.releaseShell(std::move(qj));
}

void
DispatchService::workerLoop(unsigned idx)
{
    Worker &w = *workers[idx];
    for (;;) {
        detail::QueuedJob qj;
        {
            std::unique_lock<std::mutex> lock(w.qmu);
            w.qcv.wait(lock, [&] {
                return stopping.load(std::memory_order_acquire)
                       || !w.queue.empty()
                       || w.installersApplied
                              != installerCount.load(
                                  std::memory_order_acquire);
            });
            if (w.queue.empty()) {
                if (stopping.load(std::memory_order_acquire))
                    return;
                // Woken to pick up a post-start kernel pool.
                lock.unlock();
                applyPendingInstallers(idx);
                continue;
            }
            qj = w.queue.pop();
        }
        // A slot freed: admit one blocked submitter.
        w.spaceCv.notify_one();

        applyPendingInstallers(idx);

        // Claim the job; a lost race means it was cancelled while
        // queued and the handle already carries the Cancelled result.
        // The done callback still fires exactly once, here.
        int expected = detail::JobState::Queued;
        if (!qj.state->phase.compare_exchange_strong(
                expected, detail::JobState::Running)) {
            finishCancelled(idx, std::move(qj));
            continue;
        }

        // The device is idle between jobs, so its clock is safe to
        // read here: close the queue span and record the claim.
        const sim::TimeNs claimNs = w.dev->now();
        if (tracer_.enabled()) {
            tracer_.complete(
                w.traceTrack, "queue", qj.enqueuedNs, claimNs,
                qj.job.id,
                {{"signature", qj.job.signature},
                 {"attempt", std::to_string(qj.attempt + 1)}});
        }
        w.flight.record(claimNs, qj.job.id, "claim",
                        "dev=" + w.dev->name() + " attempt="
                            + std::to_string(qj.attempt + 1));

        if (config.batch.enabled() && tryRunBatch(idx, qj))
            continue;

        JobResult res = runJob(idx, qj);
        completeSolo(idx, qj, std::move(res));
    }
}

bool
DispatchService::tryRunBatch(unsigned idx, detail::QueuedJob &head)
{
    Worker &w = *workers[idx];
    if (!Batcher::eligible(head.job))
        return false;

    // One store consult for the whole batch.  peek() keeps the
    // hit/miss statistics untouched; runBatch() accounts the batch's
    // members in one go.
    auto rec = store_.peek(head.job.signature, w.fingerprint,
                           head.job.units);
    if (rec && w.rt->guard().enabled()
        && store_.isBlacklisted(head.job.signature, rec->selectedName,
                                w.fingerprint))
        rec.reset();
    const bool profilable =
        head.job.units >= config.runtime.minUnitsForProfiling
        && head.job.opt.profiling;
    if (!rec && profilable) {
        // Cold but worth profiling: run the head solo so its record
        // lands in the store; the compatible jobs still queued fuse
        // behind that record on the very next claim.
        return false;
    }

    // Gather compatible members, topping up within the bounded-delay
    // window when the batch is under-full.  Every gather extracts
    // queued jobs without a pop, so it must wake submitters blocked
    // on admission control itself (notify_all: one gather can free
    // many slots) -- both to keep them from sleeping on an already
    // drained queue and to let them top the batch up mid-window.
    w.batchMembers.clear();
    {
        std::unique_lock<std::mutex> lock(w.qmu);
        if (batcher.gather(w.queue, head.job, w.batchMembers) > 0)
            w.spaceCv.notify_all();
        if (config.batch.windowNs > 0
            && w.batchMembers.size() + 1 < config.batch.maxJobs) {
            // The window is an absolute deadline: any qcv wakeup (a
            // new job on the shard, an installer broadcast) re-gathers
            // and keeps waiting, so a single early notify cannot cut
            // the accumulation window short.
            const auto deadline =
                std::chrono::steady_clock::now()
                + std::chrono::nanoseconds(config.batch.windowNs);
            while (w.batchMembers.size() + 1 < config.batch.maxJobs) {
                const auto ws = w.qcv.wait_until(lock, deadline);
                if (batcher.gather(w.queue, head.job, w.batchMembers)
                    > 0)
                    w.spaceCv.notify_all();
                if (ws == std::cv_status::timeout)
                    break;
            }
        }
    }

    // Claim every member; one that lost to cancel() finishes here
    // with its exactly-once callback, without disturbing the batch.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < w.batchMembers.size(); ++i) {
        detail::QueuedJob &m = w.batchMembers[i];
        int expected = detail::JobState::Queued;
        if (!m.state->phase.compare_exchange_strong(
                expected, detail::JobState::Running)) {
            finishCancelled(idx, std::move(m));
            continue;
        }
        if (tracer_.enabled()) {
            tracer_.complete(
                w.traceTrack, "queue", m.enqueuedNs, w.dev->now(),
                m.job.id,
                {{"signature", m.job.signature},
                 {"attempt", std::to_string(m.attempt + 1)}});
        }
        if (i != kept)
            w.batchMembers[kept] = std::move(m);
        ++kept;
    }
    w.batchMembers.resize(kept);
    if (w.batchMembers.empty())
        return false; // nothing fused: head runs solo

    // Head leads the batch at index 0.
    w.batchMembers.push_back(std::move(head));
    std::swap(w.batchMembers.front(), w.batchMembers.back());

    runBatch(idx, rec);
    return true;
}

void
DispatchService::runBatch(unsigned idx,
                          const std::optional<store::SelectionRecord> &rec)
{
    Worker &w = *workers[idx];
    std::vector<detail::QueuedJob> &members = w.batchMembers;
    detail::QueuedJob &head = members.front();
    // The completion loop below releases each member's shell as it
    // goes -- the head's first -- so snapshot the leader id up front.
    const std::uint64_t headId = head.job.id;
    const std::string &sig = head.job.signature;
    const std::size_t n = members.size();
    const bool warm = rec.has_value();

    // Resolve the stored winner by name (records survive
    // re-registration); keep the runtime's own cache warm so future
    // solo launches of the signature skip the store round-trip.
    int variant = -1;
    if (warm) {
        variant = rec->selected;
        if (const auto *variants = w.rt->findVariants(sig)) {
            for (std::size_t i = 0; i < variants->size(); ++i)
                if ((*variants)[i].name == rec->selectedName)
                    variant = static_cast<int>(i);
        }
        (void)w.rt->tryImportSelection(sig, variant);
    }

    w.batchSlices.clear();
    std::uint64_t totalUnits = 0;
    for (detail::QueuedJob &m : members) {
        w.batchSlices.push_back(
            {&m.job.args, m.job.units, m.job.id});
        totalUnits += m.job.units;
    }

    runtime::LaunchOptions opt = head.job.opt;
    opt.correlationId = head.job.id;
    opt.profiling = false;

    w.flight.record(w.dev->now(), head.job.id, "batch",
                    "jobs=" + std::to_string(n) + " sig=" + sig
                        + (warm ? " warm" : " cold"));
    if (tracer_.enabled()) {
        tracer_.instant(
            w.traceTrack, "batch.gather", w.dev->now(), head.job.id,
            {{"signature", sig},
             {"jobs", std::to_string(n)},
             {"units", std::to_string(totalUnits)},
             {"warm", warm ? "yes" : "no"}});
    }

    const sim::TimeNs before = w.dev->now();
    runtime::LaunchReport report;
    const support::Status st = w.rt->launchFused(
        sig, warm ? variant : -1, w.batchSlices, opt, report);
    const sim::TimeNs elapsed = w.dev->now() - before;
    w.clockNs.store(w.dev->now(), std::memory_order_relaxed);

    if (!st.ok()) {
        // The fused launch failed as a whole: demote every member to
        // solo re-execution instead of failing the batch.  The
        // failure was the batch's, so no attempt is consumed; a
        // persistently faulty job then flows through the normal
        // per-job retry machinery on its solo runs.
        const support::StatusCode code = st.code();
        const bool deviceFault =
            code == support::StatusCode::Unavailable
            || code == support::StatusCode::DeadlineExceeded;
        breakerObserve(idx, deviceFault);
        batchDemotedCounter->inc(n);
        if (tracer_.enabled()) {
            tracer_.instant(
                w.traceTrack, "batch.demoted", w.dev->now(),
                head.job.id,
                {{"signature", sig},
                 {"jobs", std::to_string(n)},
                 {"code", support::statusCodeName(code)}});
        }
        w.flight.record(w.dev->now(), head.job.id, "batch.demote",
                        "jobs=" + std::to_string(n) + " "
                            + st.toString());
        const sim::TimeNs share = elapsed / n;
        std::size_t requeued = 0;
        {
            std::lock_guard<std::mutex> lock(w.qmu);
            for (detail::QueuedJob &m : members) {
                m.job.noBatch = true;
                m.spentNs += share;
                m.enqueuedNs =
                    w.clockNs.load(std::memory_order_relaxed);
                // Back to Queued: cancel() can still win the next
                // claim race.
                m.state->phase.store(detail::JobState::Queued,
                                     std::memory_order_release);
                w.queue.push(std::move(m));
                ++requeued;
            }
        }
        // Members stayed on this shard, so w.load is already right;
        // the worker loops straight back into the queue.
        (void)requeued;
        members.clear();
        return;
    }

    // Success: one fused launch served n jobs.
    batchLaunchCounter->inc();
    batchJobsCounter->inc(n);
    batchSizeHist->observe(static_cast<double>(n));
    if (warm) {
        store_.noteServed(sig, w.fingerprint, head.job.units, n);
        storeHitCounter->inc(n);
        w.storeHitsCounter->inc(n);
    } else {
        // Sub-threshold jobs never produce a record; they still count
        // as misses so hit-rate accounting matches the solo path.
        storeMissCounter->inc(n);
    }
    breakerObserve(idx, false);
    if (config.affinity && warm) {
        std::lock_guard<std::mutex> lock(routeMu);
        affinityMap[sig] = idx;
    }

    const sim::TimeNs share = elapsed / n;
    for (detail::QueuedJob &m : members) {
        JobResult res;
        res.id = m.job.id;
        res.deviceIndex = idx;
        res.deviceName = w.dev->name();
        res.warmStart = warm;
        res.batchedWith = headId;
        res.report = report;
        res.report.totalUnits = m.job.units; // the member's own view
        res.deviceTimeNs = share;
        res.attempts = m.attempt + 1;
        res.backoffNs = m.backoffNs;
        m.spentNs += share;
        if (m.job.deadlineNs != 0
            && m.spentNs + m.backoffNs > m.job.deadlineNs) {
            res.status = support::Status::deadlineExceeded(
                "job " + std::to_string(m.job.id)
                + " exceeded its deadline");
            reg.counter("recover.timeouts").inc();
        }
        const bool succeeded = res.ok();
        if (succeeded) {
            w.jobsCounter->inc();
            deviceNsHist->observe(static_cast<double>(share));
            w.latencyHist->observe(static_cast<double>(share));
        }
        (succeeded ? completedCounter : failedCounter)->inc();
        attemptsHist->observe(static_cast<double>(res.attempts));
        if (res.backoffNs > 0)
            backoffHist->observe(static_cast<double>(res.backoffNs));
        finishJob(m, std::move(res));
        w.load.fetch_sub(1, std::memory_order_relaxed);
        jobDone();
        w.pool.releaseShell(std::move(m));
    }
    members.clear();
}

void
DispatchService::completeSolo(unsigned idx, detail::QueuedJob &qj,
                              JobResult res)
{
    Worker &w = *workers[idx];
    res.attempts = qj.attempt + 1;
    res.backoffNs = qj.backoffNs;
    qj.spentNs += res.deviceTimeNs;
    w.clockNs.store(w.dev->now(), std::memory_order_relaxed);

    // The breaker watches device faults, not job-level failures
    // (an unknown signature says nothing about device health).
    const support::StatusCode launchCode = res.status.code();
    const bool deviceFault =
        launchCode == support::StatusCode::Unavailable
        || launchCode == support::StatusCode::DeadlineExceeded;
    if (launchCode == support::StatusCode::DeadlineExceeded) {
        // A hung device timed the attempt out.
        reg.counter("recover.timeouts").inc();
    }

    // Job-level deadline: device time plus charged backoff.
    if (res.ok() && qj.job.deadlineNs != 0
        && qj.spentNs + qj.backoffNs > qj.job.deadlineNs) {
        res.status = support::Status::deadlineExceeded(
            "job " + std::to_string(qj.job.id)
            + " exceeded its deadline");
        reg.counter("recover.timeouts").inc();
    }

    bool retry = false;
    sim::TimeNs backoff = 0;
    if (!res.ok() && retryableCode(launchCode)
        && res.attempts < config.maxAttempts) {
        backoff = config.backoffBaseNs << (res.attempts - 1);
        if (qj.job.deadlineNs == 0
            || qj.spentNs + qj.backoffNs + backoff
                   < qj.job.deadlineNs) {
            retry = true;
        } else {
            res.status = support::Status::deadlineExceeded(
                "job " + std::to_string(qj.job.id)
                + " out of retry budget: " + res.status.message());
            reg.counter("recover.timeouts").inc();
        }
    }

    if (retry) {
        // Back to Queued so the next worker can claim it (and a
        // cancel() between attempts still wins the race).
        qj.state->phase.store(detail::JobState::Queued,
                              std::memory_order_release);
        breakerObserve(idx, deviceFault);
        qj.attempt = res.attempts;
        qj.excluded.push_back(idx);
        qj.backoffNs += backoff;
        std::vector<unsigned> excluded = qj.excluded;
        if (excluded.size() >= workers.size())
            excluded.clear(); // every device failed it: restart
        const unsigned target = route(qj.job.signature, excluded);
        reg.counter("recover.retries").inc();
        reg.counter(devMetric("device.retries_out", idx)).inc();
        if (tracer_.enabled()) {
            tracer_.instant(
                w.traceTrack, "retry", w.dev->now(), qj.job.id,
                {{"from", devKey(idx)},
                 {"to", devKey(target)},
                 {"attempt", std::to_string(qj.attempt + 1)},
                 {"code",
                  support::statusCodeName(res.status.code())}});
        }
        w.flight.record(w.dev->now(), qj.job.id, "retry",
                        "to=" + devKey(target) + " "
                            + res.status.toString());
        // Retries bypass admission: the job is already admitted,
        // and a worker thread must never block on a full shard.
        enqueue(target, std::move(qj));
        w.load.fetch_sub(1, std::memory_order_relaxed);
        return;
    }

    const bool succeeded = res.ok();
    breakerObserve(idx, deviceFault);
    if (config.affinity && succeeded
        && (res.report.profiled || res.report.fromCache)) {
        // Insert-or-re-pin: after a re-routed retry the
        // signature sticks to the device that worked.
        std::lock_guard<std::mutex> lock(routeMu);
        affinityMap[qj.job.signature] = idx;
    }

    (succeeded ? completedCounter : failedCounter)->inc();
    attemptsHist->observe(static_cast<double>(res.attempts));
    if (res.backoffNs > 0)
        backoffHist->observe(static_cast<double>(res.backoffNs));
    if (!succeeded) {
        // Attach the worker's flight-recorder dump to the failure
        // so the caller sees the device's last phases post-mortem.
        w.flight.record(w.dev->now(), qj.job.id, "failed",
                        "dev=" + w.dev->name() + " "
                            + res.status.toString());
        res.status.withPayload(w.flight.dump());
    }
    finishJob(qj, std::move(res));

    w.load.fetch_sub(1, std::memory_order_relaxed);
    jobDone();
    w.pool.releaseShell(std::move(qj));
}

JobResult
DispatchService::runJob(unsigned idx, detail::QueuedJob &qj)
{
    Worker &w = *workers[idx];
    Job &job = qj.job;
    JobResult res;
    res.id = job.id;
    res.deviceIndex = idx;
    res.deviceName = w.dev->name();

    // Stamp the thread-locals the store observers read: a demotion
    // fired from a store call below must be traceable to this job.
    tlJobId = job.id;
    tlTraceTrack = w.traceTrack;
    tlDevice = w.dev.get();

    w.flight.record(w.dev->now(), job.id, "register",
                    "sig=" + job.signature);
    try {
        if (job.ensureRegistered)
            job.ensureRegistered(*w.rt);
    } catch (const std::exception &e) {
        res.status = support::Status::internal(
            std::string("ensureRegistered: ") + e.what());
        return res;
    }

    if (w.rt->guard().enabled()) {
        // Seed the runtime's guard with the store's blacklist for
        // this (signature, device): entries loaded from disk must
        // keep excluding their variants after a restart.
        for (const auto &[variant, reason] :
             store_.blacklistedVariants(job.signature, w.fingerprint))
            w.rt->guard().blacklist(job.signature, variant, reason);
    }

    // Store lookup with the guard's blacklist applied: a stored
    // winner that was since blacklisted (e.g. on a peer worker) is
    // treated as a miss so the key re-profiles.
    auto lookupUsable = [&]() {
        auto rec =
            store_.lookup(job.signature, w.fingerprint, job.units);
        if (rec && w.rt->guard().enabled()
            && store_.isBlacklisted(job.signature, rec->selectedName,
                                    w.fingerprint)) {
            if (tracer_.enabled()) {
                tracer_.instant(w.traceTrack,
                                "store.blocked_warmstart",
                                w.dev->now(), job.id,
                                {{"variant", rec->selectedName}});
            }
            rec.reset();
            reg.counter("guard.blocked_warmstart").inc();
        }
        return rec;
    };

    auto rec = lookupUsable();
    const bool profilable =
        job.units >= config.runtime.minUnitsForProfiling
        && job.opt.profiling;

    // Fleet federation (DESIGN §13): on a profilable cold miss, ask
    // the replication layer who pays the fleet's single profiling
    // pass for this key.  Warm means the owner's record is in our
    // store now (gossiped or fetched with the lease); LeaseGranted /
    // LocalProfile / Fallback all fall through to the predictor and
    // the in-process coalescer, which dedup local concurrency as
    // usual.
    if (!rec && fed_ && profilable) {
        const auto rs = fed_->resolveCold(job.signature,
                                          w.fingerprint, job.units);
        if (rs.kind == fed::Replicator::Resolve::Warm) {
            rec = lookupUsable();
            if (rec) {
                reg.counter("fed.warm_hit").inc();
                if (tracer_.enabled()) {
                    // owner_cid is the profiling pass's correlation
                    // id ON THE OWNER REPLICA: merging both replicas'
                    // trace files lines this instant up with the
                    // remote profile spans that produced the record.
                    tracer_.instant(
                        w.traceTrack, "fed.warm_hit", w.dev->now(),
                        job.id,
                        {{"owner_cid", std::to_string(rs.ownerCid)},
                         {"owner_replica",
                          std::to_string(rs.profileOrigin)},
                         {"waited_ms",
                          std::to_string(rs.waitedMs)}});
                }
                w.flight.record(w.dev->now(), job.id, "fed",
                                "warm from replica "
                                    + std::to_string(rs.profileOrigin));
            }
        }
    }

    // Learned selection: on a profilable store miss, ask the
    // predictor before paying for a profiling pass (or queueing up
    // behind one).  A confident prediction seeds the store and the
    // job runs warm with zero profiled units; the drift/guard
    // machinery remains the safety net and demotes a bad prediction
    // back to a forced profile.
    if (!rec && predictor_ && profilable) {
        if (const auto *info = w.rt->findKernelInfo(job.signature))
            predictor_->noteKernel(job.signature, *info);
        const auto pred = predictor_->predict(
            job.signature, w.fingerprint,
            store::bucketOf(job.units));
        const bool confident =
            pred
            && pred->confidence >= predictor_->config().threshold;
        if (confident) {
            // Resolve the predicted variant by name; an unknown or
            // blacklisted variant voids the prediction.
            int variant = -1;
            if (const auto *variants =
                    w.rt->findVariants(job.signature)) {
                for (std::size_t i = 0; i < variants->size(); ++i)
                    if ((*variants)[i].name == pred->variant)
                        variant = static_cast<int>(i);
            }
            const bool blocked =
                variant < 0
                || (w.rt->guard().enabled()
                    && store_.isBlacklisted(job.signature,
                                            pred->variant,
                                            w.fingerprint));
            if (!blocked) {
                store_.seedPrediction(job.signature, w.fingerprint,
                                      job.units, variant,
                                      pred->variant,
                                      pred->confidence);
                rec = lookupUsable();
            }
        }
        if (rec) {
            res.predicted = true;
            reg.counter("predict.hit").inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "predict.hit", w.dev->now(), job.id,
                    {{"variant", pred->variant},
                     {"confidence", confStr(pred->confidence)},
                     {"source", predict::sourceName(pred->source)},
                     {"distance", std::to_string(pred->distance)}});
            }
            w.flight.record(w.dev->now(), job.id, "predict",
                            "hit variant=" + pred->variant);
        } else {
            reg.counter("predict.miss").inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "predict.miss", w.dev->now(),
                    job.id,
                    {{"confidence",
                      pred ? confStr(pred->confidence) : "none"}});
            }
        }
    }

    // Profiling coalescing: a miss on a profilable job bids for
    // leadership of its (signature, fingerprint, bucket).  Losers
    // wait for the leader's record and ride it warm; a leader that
    // failed to record hands leadership to one of its followers.
    CoalesceLease lease;
    if (config.coalesce && profilable) {
        const std::string ckey = ProfileCoalescer::key(
            job.signature, w.fingerprint,
            store::bucketOf(job.units));
        while (!rec) {
            const auto ticket = coalescer.acquire(ckey, job.id);
            if (ticket.leader) {
                lease = CoalesceLease(coalescer, ckey);
                reg.counter("coalesce.leader").inc();
                break;
            }
            reg.counter("coalesce.follower").inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "coalesce.attach", w.dev->now(),
                    job.id,
                    {{"leader", std::to_string(ticket.leaderId)},
                     {"signature", job.signature}});
            }
            w.flight.record(w.dev->now(), job.id, "coalesce",
                            "follow leader="
                                + std::to_string(ticket.leaderId));
            coalescer.awaitRelease(ckey);
            rec = lookupUsable();
            if (rec) {
                res.coalescedWith = ticket.leaderId;
                reg.counter("coalesce.hit").inc();
                if (tracer_.enabled()) {
                    tracer_.instant(
                        w.traceTrack, "coalesce.served",
                        w.dev->now(), job.id,
                        {{"leader",
                          std::to_string(ticket.leaderId)},
                         {"variant", rec->selectedName}});
                }
            } else {
                // The leader released without recording (fault,
                // guard storm): bid again -- one follower becomes
                // the new leader, the rest keep waiting.
                reg.counter("coalesce.leader_failed").inc();
            }
        }
    }

    runtime::LaunchOptions opt = job.opt;
    // The job id doubles as the trace correlation id: every span the
    // runtime emits for this launch carries it.
    opt.correlationId = job.id;
    if (rec) {
        // Warm start: resolve the stored winner (by name, so records
        // survive re-registration) and skip profiling.
        int variant = rec->selected;
        if (const auto *variants = w.rt->findVariants(job.signature)) {
            for (std::size_t i = 0; i < variants->size(); ++i)
                if ((*variants)[i].name == rec->selectedName)
                    variant = static_cast<int>(i);
        }
        if (auto st = w.rt->tryImportSelection(job.signature, variant);
            !st.ok()) {
            res.status = std::move(st);
            return res;
        }
        opt.profiling = false;
        res.warmStart = true;
        storeHitCounter->inc();
        w.storeHitsCounter->inc();
        if (tracer_.enabled()) {
            tracer_.instant(w.traceTrack, "store.hit", w.dev->now(),
                            job.id,
                            {{"variant", rec->selectedName}});
        }
        w.flight.record(w.dev->now(), job.id, "lookup",
                        "warm variant=" + rec->selectedName);
    } else {
        opt.profiling = true;
        storeMissCounter->inc();
        w.flight.record(w.dev->now(), job.id, "lookup", "miss");
    }

    w.flight.record(w.dev->now(), job.id, "launch",
                    "sig=" + job.signature + " units="
                        + std::to_string(job.units));
    const sim::TimeNs before = w.dev->now();
    res.status =
        w.rt->launch(job.signature, job.units, job.args, opt,
                     res.report);
    res.deviceTimeNs = w.dev->now() - before;

    if (res.ok()) {
        w.jobsCounter->inc();
        deviceNsHist->observe(static_cast<double>(res.deviceTimeNs));
        w.latencyHist->observe(static_cast<double>(res.deviceTimeNs));
        if (res.report.profiled)
            w.profiledCounter->inc();
        // Selection-quality audit: a sampled warm hit is followed by
        // a shadow probe of winner vs runner-up, here -- while the
        // job's buffers are still alive -- and before completion, so
        // the probe time is never charged to the job's latency.
        // Predicted records carry no profiles, so they are excluded
        // naturally (no runner-up to probe).
        if (auditor_ && res.warmStart && !res.report.profiled && rec
            && rec->profiles.size() >= 2 && auditor_->shouldSample())
            auditWarmHit(idx, qj, *rec);
    } else if (res.warmStart
               && retryableCode(res.status.code())) {
        // The stored selection failed to even launch: demote it so
        // the next lookup serves the runner-up (or re-profiles).
        switch (store_.reportFailure(job.signature, w.fingerprint,
                                     job.units)) {
          case store::Observation::Quarantined:
            reg.counter("store.quarantine").inc();
            if (tracer_.enabled()) {
                tracer_.instant(w.traceTrack, "store.quarantine",
                                w.dev->now(), job.id,
                                {{"signature", job.signature}});
            }
            break;
          case store::Observation::Invalidated:
            reg.counter("store.drift_invalidation").inc();
            break;
          case store::Observation::Ok:
            break;
        }
    }
    // The coalesce lease (when held) releases here: the profiled
    // record is in the store -- or the attempt failed and a follower
    // takes over.
    return res;
}

void
DispatchService::auditWarmHit(unsigned idx, const detail::QueuedJob &qj,
                              const store::SelectionRecord &rec)
{
    Worker &w = *workers[idx];
    const Job &job = qj.job;

    // The stored runner-up: the best per-unit profiled variant that
    // is not the served winner -- the same fallback quarantine would
    // serve -- skipping blacklisted variants.
    const std::string &winner = rec.selectedName;
    std::string runnerUp;
    double bestUnitNs = 0;
    for (const auto &p : rec.profiles) {
        if (p.name == winner || p.units == 0)
            continue;
        if (w.rt->guard().enabled()
            && store_.isBlacklisted(job.signature, p.name,
                                    w.fingerprint))
            continue;
        const double unitNs =
            p.metricNs / static_cast<double>(p.units);
        if (runnerUp.empty() || unitNs < bestUnitNs) {
            runnerUp = p.name;
            bestUnitNs = unitNs;
        }
    }
    auto indexOf = [&](const std::string &name) -> int {
        if (const auto *variants = w.rt->findVariants(job.signature)) {
            for (std::size_t i = 0; i < variants->size(); ++i)
                if ((*variants)[i].name == name)
                    return static_cast<int>(i);
        }
        return -1;
    };
    const int winIdx = indexOf(winner);
    const int runIdx = runnerUp.empty() ? -1 : indexOf(runnerUp);
    if (winIdx < 0 || runIdx < 0) {
        // A sampled hit whose probe pair cannot even be resolved
        // (stale record, re-registration): account it as a failed
        // probe so the sampling stride stays observable.
        auditor_->noteProbeFailure(w.traceTrack, job.id, w.dev->now(),
                                   job.signature);
        return;
    }

    const std::uint64_t probeUnits =
        config.audit.probeUnits(job.units);
    w.flight.record(w.dev->now(), job.id, "audit",
                    "probe winner=" + winner + " runner_up=" + runnerUp
                        + " units=" + std::to_string(probeUnits));

    // Both variants run the same forced-variant shadow slice over the
    // job's own (still live) buffers: equal slices make the per-unit
    // comparison fair, and LaunchReport::shadow keeps the probes out
    // of the store's drift baseline.
    auto probe = [&](int variant, double &unitNs) {
        runtime::LaunchOptions popt;
        popt.profiling = false;
        popt.shadow = true;
        popt.initialVariant = variant;
        popt.correlationId = job.id;
        runtime::LaunchReport rep;
        const support::Status st = w.rt->launch(
            job.signature, probeUnits, job.args, popt, rep);
        if (!st.ok())
            return false;
        unitNs = static_cast<double>(rep.endTime - rep.startTime)
                 / static_cast<double>(probeUnits);
        return unitNs > 0;
    };
    double winUnitNs = 0;
    double runUnitNs = 0;
    if (!probe(winIdx, winUnitNs) || !probe(runIdx, runUnitNs)) {
        auditor_->noteProbeFailure(w.traceTrack, job.id, w.dev->now(),
                                   job.signature);
        return;
    }

    obs::AuditSample sample;
    sample.signature = job.signature;
    sample.device = w.fingerprint;
    sample.units = job.units;
    sample.winner = winner;
    sample.runnerUp = runnerUp;
    sample.winnerUnitNs = winUnitNs;
    sample.runnerUpUnitNs = runUnitNs;
    sample.traceTrack = w.traceTrack;
    sample.jobId = job.id;
    sample.nowNs = w.dev->now();
    auditor_->ingest(sample);
}

} // namespace serve
} // namespace dysel
