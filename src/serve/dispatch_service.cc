#include "dispatch_service.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "support/logging.hh"

namespace dysel {
namespace serve {

namespace {

std::string
devKey(unsigned idx)
{
    return "dev" + std::to_string(idx);
}

/**
 * Canonical per-device metric name (DESIGN §7): a shared family name
 * plus a device label, e.g. `device.jobs{device="dev0"}`, replacing
 * the old ad-hoc "dev0.jobs" dotted prefixes.
 */
std::string
devMetric(const char *family, unsigned idx)
{
    return support::MetricsRegistry::labeled(family, "device",
                                             devKey(idx));
}

bool
contains(const std::vector<unsigned> &v, unsigned x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

/** Whether a failed attempt with @p code is worth another device. */
bool
retryableCode(support::StatusCode code)
{
    switch (code) {
      case support::StatusCode::Unavailable:
      case support::StatusCode::DeadlineExceeded:
      case support::StatusCode::Internal:
        return true;
      default:
        return false;
    }
}

std::uint64_t
wallNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Fixed-precision rendering of a confidence (trace attributes). */
std::string
confStr(double c)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.3f", c);
    return buf;
}

/**
 * The worker currently driving this thread, for observers that fire
 * from inside store calls (e.g. the predicted-selection demotion
 * feed): runJob() stamps these so the observer can emit a tracer
 * instant on the right track, with the right device clock, correlated
 * to the job that triggered the demotion.
 */
thread_local std::uint64_t tlJobId = 0;
thread_local std::uint64_t tlTraceTrack = 0;
thread_local sim::Device *tlDevice = nullptr;

} // namespace

bool
JobHandle::done() const
{
    if (!state_)
        return false;
    const int p = state_->phase.load(std::memory_order_acquire);
    return p == detail::JobState::Done
           || p == detail::JobState::Cancelled;
}

void
JobHandle::wait() const
{
    if (!state_)
        return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] {
        const int p = state_->phase.load(std::memory_order_acquire);
        return p == detail::JobState::Done
               || p == detail::JobState::Cancelled;
    });
}

const JobResult &
JobHandle::result() const
{
    if (!state_)
        throw std::logic_error("JobHandle: result() on empty handle");
    wait();
    return state_->result;
}

bool
JobHandle::cancel()
{
    if (!state_)
        return false;
    int expected = detail::JobState::Queued;
    if (!state_->phase.compare_exchange_strong(
            expected, detail::JobState::Cancelled)) {
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(state_->mu);
        state_->result.id = state_->id;
        state_->result.status = support::Status::cancelled(
            "job " + std::to_string(state_->id)
            + " cancelled before dispatch");
    }
    state_->cv.notify_all();
    return true;
}

DispatchService::DispatchService(store::SelectionStore &st,
                                 ServiceConfig cfg)
    : store_(st), config(cfg)
{
}

DispatchService::~DispatchService()
{
    stop();
    if (predictor_) {
        // The store outlives the service: drop the observers that
        // capture `this` before they can dangle.
        store_.setProfileObserver(nullptr);
        store_.setDemotionObserver(nullptr);
    }
}

void
DispatchService::setPredictor(predict::SelectionPredictor *predictor)
{
    if (started.load(std::memory_order_acquire))
        throw std::logic_error(
            "DispatchService: setPredictor after start()");
    predictor_ = predictor;
    if (!predictor_) {
        store_.setProfileObserver(nullptr);
        store_.setDemotionObserver(nullptr);
        return;
    }
    // The training feed: every completed profiling pass the store
    // records becomes one online training example.
    store_.setProfileObserver([this](const store::SelectionRecord &rec) {
        predictor_->observeProfile(rec);
        reg.counter("predict.train").inc();
    });
    // The corrective feed: a predicted selection that drifted,
    // failed, or got blacklisted is demoted back to a forced profile;
    // tell the predictor so it unlearns the winner and pays the
    // calibration penalty.
    store_.setDemotionObserver(
        [this](const store::SelectionRecord &rec) {
            predictor_->observeDemotion(rec.signature, rec.device,
                                        rec.bucket);
            reg.counter("predict.demoted").inc();
            if (tracer_.enabled() && tlDevice) {
                tracer_.instant(
                    tlTraceTrack, "predict.demoted", tlDevice->now(),
                    tlJobId,
                    {{"signature", rec.signature},
                     {"variant", rec.selectedName},
                     {"confidence",
                      confStr(rec.predictedConfidence)}});
            }
        });
}

unsigned
DispatchService::addDevice(std::unique_ptr<sim::Device> device)
{
    if (started.load(std::memory_order_acquire))
        throw std::logic_error(
            "DispatchService: addDevice after start()");
    if (!device)
        throw std::invalid_argument("DispatchService: null device");
    auto w = std::make_unique<Worker>();
    w->dev = std::move(device);
    w->rt = std::make_unique<runtime::Runtime>(*w->dev, config.runtime);
    w->fingerprint = w->dev->fingerprint();
    const auto idx = static_cast<unsigned>(workers.size());

    w->flight = support::tracing::FlightRecorder(
        config.flightRecorderCapacity);
    // One trace track per device worker; the runtime draws its spans
    // on the same track (profiling passes get subtracks of it).
    const std::string trackName = devKey(idx) + ":" + w->dev->name();
    w->traceTrack = tracer_.track(trackName);
    w->rt->setTracer(&tracer_, trackName);

    // Feed the store from every launch on this runtime: profiled
    // launches refresh their record, plain cache-served launches
    // update the drift baseline (and may quarantine / invalidate).
    w->rt->setLaunchObserver(
        [this, fp = w->fingerprint](const runtime::LaunchReport &r) {
            if (r.profiled) {
                store_.recordProfile(fp, r);
                reg.counter("store.record").inc();
            } else if (r.fromCache) {
                switch (store_.observePlain(fp, r)) {
                  case store::Observation::Quarantined:
                    reg.counter("store.quarantine").inc();
                    break;
                  case store::Observation::Invalidated:
                    reg.counter("store.drift_invalidation").inc();
                    break;
                  case store::Observation::Ok:
                    break;
                }
            }
            // Guard telemetry: one "guard.<check>" count per
            // detection, reconcilable 1:1 with the fault injector's
            // variant-fault log.
            for (const auto &ev : r.guardEvents)
                reg.counter("guard." + ev.check).inc();
            if (r.guardExcluded > 0)
                reg.counter("guard.excluded").inc(r.guardExcluded);
            if (r.guardRepairs > 0)
                reg.counter("guard.repair").inc(r.guardRepairs);
        });

    // Persist guard blacklistings: a variant that struck out on this
    // device is recorded in the store under the device fingerprint,
    // so it is never re-served -- across restarts included.
    w->rt->guard().setBlacklistObserver(
        [this, fp = w->fingerprint](const std::string &sig,
                                    const std::string &variant,
                                    const std::string &reason) {
            store_.blacklistVariant(sig, variant, fp, reason);
            reg.counter("guard.blacklist").inc();
        });

    workers.push_back(std::move(w));
    return idx;
}

sim::Device &
DispatchService::device(unsigned idx)
{
    return *workers.at(idx)->dev;
}

runtime::Runtime &
DispatchService::runtimeAt(unsigned idx)
{
    return *workers.at(idx)->rt;
}

void
DispatchService::start()
{
    if (started.load(std::memory_order_acquire))
        return;
    if (workers.empty())
        throw std::logic_error("DispatchService: start() with no devices");
    stopping.store(false, std::memory_order_release);
    started.store(true, std::memory_order_release);
    for (unsigned i = 0; i < workers.size(); ++i)
        workers[i]->thread = std::thread([this, i] { workerLoop(i); });
}

unsigned
DispatchService::route(const std::string &signature,
                       const std::vector<unsigned> &excluded)
{
    std::lock_guard<std::mutex> lock(routeMu);
    // An open breaker sheds load for breakerCooldown routing
    // decisions; once the cooldown is spent the device becomes
    // eligible for exactly one probe job (the cooldown is re-armed
    // when the probe is placed, and the breaker closes or reopens on
    // the probe's result).
    auto admissible = [this](unsigned i) {
        Worker &w = *workers[i];
        if (!w.breakerOpen)
            return true;
        if (w.breakerCooldownLeft > 0) {
            w.breakerCooldownLeft--;
            return false;
        }
        return true; // half-open: probe allowed
    };

    std::vector<unsigned> pool;
    for (unsigned i = 0; i < workers.size(); ++i)
        if (!contains(excluded, i) && admissible(i))
            pool.push_back(i);
    if (pool.empty()) {
        // Everything is excluded or shedding: fall back to the
        // non-excluded devices, then to all of them.
        for (unsigned i = 0; i < workers.size(); ++i)
            if (!contains(excluded, i))
                pool.push_back(i);
    }
    if (pool.empty()) {
        pool.resize(workers.size());
        for (unsigned i = 0; i < workers.size(); ++i)
            pool[i] = i;
    }

    if (config.affinity) {
        auto it = affinityMap.find(signature);
        if (it != affinityMap.end() && contains(pool, it->second)) {
            Worker &w = *workers[it->second];
            if (w.breakerOpen)
                w.breakerCooldownLeft = config.breakerCooldown;
            return it->second;
        }
    }
    unsigned best = pool[0];
    for (unsigned i : pool)
        if (workers[i]->load.load(std::memory_order_relaxed)
            < workers[best]->load.load(std::memory_order_relaxed))
            best = i;
    if (workers[best]->breakerOpen)
        workers[best]->breakerCooldownLeft = config.breakerCooldown;
    return best;
}

void
DispatchService::breakerObserve(unsigned idx, bool deviceFault)
{
    std::lock_guard<std::mutex> lock(routeMu);
    Worker &w = *workers[idx];
    if (deviceFault) {
        w.consecFailures++;
        if (w.breakerOpen) {
            // The half-open probe failed: re-arm the cooldown.
            w.breakerCooldownLeft = config.breakerCooldown;
            reg.counter("breaker.reopens").inc();
        } else if (w.consecFailures >= config.breakerThreshold) {
            w.breakerOpen = true;
            w.breakerCooldownLeft = config.breakerCooldown;
            reg.counter("breaker.trips").inc();
            reg.counter(devMetric("device.breaker_trips", idx)).inc();
        }
    } else {
        w.consecFailures = 0;
        if (w.breakerOpen) {
            w.breakerOpen = false;
            w.breakerCooldownLeft = 0;
            reg.counter("breaker.closes").inc();
        }
    }
}

void
DispatchService::enqueue(unsigned idx, QueuedJob qj)
{
    Worker &w = *workers[idx];
    {
        std::lock_guard<std::mutex> lock(w.qmu);
        qj.enqueuedNs = w.clockNs.load(std::memory_order_relaxed);
        w.queue.push_back(std::move(qj));
    }
    w.load.fetch_add(1, std::memory_order_relaxed);
    w.qcv.notify_one();
}

void
DispatchService::jobDone()
{
    if (inFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idleMu);
        idle.notify_all();
    }
}

JobHandle
DispatchService::submit(Job job)
{
    if (!started.load(std::memory_order_acquire))
        throw std::logic_error("DispatchService: submit before start()");
    job.id = nextId.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<detail::JobState>();
    state->id = job.id;
    reg.counter("jobs.submitted").inc();

    QueuedJob qj;
    qj.job = std::move(job);
    qj.state = state;
    const unsigned idx = route(qj.job.signature, qj.excluded);
    Worker &w = *workers[idx];

    // Admission control: only the target shard's lock is taken; the
    // global routing lock is already released.
    {
        std::unique_lock<std::mutex> lock(w.qmu);
        if (config.maxQueueDepth > 0
            && w.queue.size() >= config.maxQueueDepth) {
            if (config.admission == AdmissionPolicy::Shed) {
                lock.unlock();
                reg.counter("admission.shed").inc();
                reg.counter(devMetric("device.shed", idx)).inc();
                JobResult res;
                res.id = state->id;
                res.deviceIndex = idx;
                res.deviceName = w.dev->name();
                res.attempts = 0;
                res.status = support::Status::resourceExhausted(
                    "dispatch queue of " + devKey(idx) + " is full ("
                    + std::to_string(config.maxQueueDepth)
                    + " jobs); job "
                    + std::to_string(state->id) + " shed");
                if (tracer_.enabled()) {
                    tracer_.instant(
                        w.traceTrack, "admission.shed",
                        w.clockNs.load(std::memory_order_relaxed),
                        state->id, {{"depth",
                                     std::to_string(
                                         config.maxQueueDepth)}});
                }
                if (qj.job.done)
                    qj.job.done(res);
                {
                    std::lock_guard<std::mutex> slock(state->mu);
                    state->result = std::move(res);
                    state->phase.store(detail::JobState::Done,
                                       std::memory_order_release);
                }
                state->cv.notify_all();
                return JobHandle(std::move(state));
            }
            // Backpressure: block the submitter until the shard has
            // room (the worker notifies spaceCv on every pop).
            reg.counter("admission.blocked").inc();
            const std::uint64_t t0 = wallNowNs();
            w.spaceCv.wait(lock, [&] {
                return w.queue.size() < config.maxQueueDepth
                       || stopping.load(std::memory_order_acquire);
            });
            reg.histogram("admission.block_ns")
                .observe(static_cast<double>(wallNowNs() - t0));
        }
        qj.enqueuedNs = w.clockNs.load(std::memory_order_relaxed);
        inFlight.fetch_add(1, std::memory_order_acq_rel);
        w.queue.push_back(std::move(qj));
    }
    w.load.fetch_add(1, std::memory_order_relaxed);
    w.qcv.notify_one();
    return JobHandle(std::move(state));
}

void
DispatchService::drain()
{
    std::unique_lock<std::mutex> lock(idleMu);
    idle.wait(lock, [this] {
        return inFlight.load(std::memory_order_acquire) == 0;
    });
}

void
DispatchService::stop()
{
    if (!started.load(std::memory_order_acquire))
        return;
    drain();
    stopping.store(true, std::memory_order_release);
    for (auto &w : workers) {
        {
            std::lock_guard<std::mutex> lock(w->qmu);
        }
        w->qcv.notify_all();
        w->spaceCv.notify_all();
    }
    for (auto &w : workers)
        if (w->thread.joinable())
            w->thread.join();
    started.store(false, std::memory_order_release);
}

void
DispatchService::finishJob(QueuedJob &qj, JobResult res)
{
    // The callback runs before the handle reports Done: once a
    // waiter wakes from result() the job -- callback included -- is
    // truly finished, and the caller may tear its captures down.
    if (qj.job.done)
        qj.job.done(res);
    detail::JobState &st = *qj.state;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        st.result = std::move(res);
        st.phase.store(detail::JobState::Done,
                       std::memory_order_release);
    }
    st.cv.notify_all();
}

void
DispatchService::workerLoop(unsigned idx)
{
    Worker &w = *workers[idx];
    for (;;) {
        QueuedJob qj;
        {
            std::unique_lock<std::mutex> lock(w.qmu);
            w.qcv.wait(lock, [&] {
                return stopping.load(std::memory_order_acquire)
                       || !w.queue.empty();
            });
            if (w.queue.empty()) {
                if (stopping.load(std::memory_order_acquire))
                    return;
                continue;
            }
            qj = std::move(w.queue.front());
            w.queue.pop_front();
        }
        // A slot freed: admit one blocked submitter.
        w.spaceCv.notify_one();

        // Claim the job; a lost race means it was cancelled while
        // queued and the handle already carries the Cancelled result.
        // The done callback still fires exactly once, here.
        int expected = detail::JobState::Queued;
        if (!qj.state->phase.compare_exchange_strong(
                expected, detail::JobState::Running)) {
            reg.counter("jobs.cancelled").inc();
            if (qj.job.done) {
                JobResult res;
                {
                    std::lock_guard<std::mutex> lock(qj.state->mu);
                    res = qj.state->result;
                }
                qj.job.done(res);
            }
            w.load.fetch_sub(1, std::memory_order_relaxed);
            jobDone();
            continue;
        }

        // The device is idle between jobs, so its clock is safe to
        // read here: close the queue span and record the claim.
        const sim::TimeNs claimNs = w.dev->now();
        if (tracer_.enabled()) {
            tracer_.complete(
                w.traceTrack, "queue", qj.enqueuedNs, claimNs,
                qj.job.id,
                {{"signature", qj.job.signature},
                 {"attempt", std::to_string(qj.attempt + 1)}});
        }
        w.flight.record(claimNs, qj.job.id, "claim",
                        "dev=" + w.dev->name() + " attempt="
                            + std::to_string(qj.attempt + 1));

        JobResult res = runJob(idx, qj);
        res.attempts = qj.attempt + 1;
        res.backoffNs = qj.backoffNs;
        qj.spentNs += res.deviceTimeNs;
        w.clockNs.store(w.dev->now(), std::memory_order_relaxed);

        // The breaker watches device faults, not job-level failures
        // (an unknown signature says nothing about device health).
        const support::StatusCode launchCode = res.status.code();
        const bool deviceFault =
            launchCode == support::StatusCode::Unavailable
            || launchCode == support::StatusCode::DeadlineExceeded;
        if (launchCode == support::StatusCode::DeadlineExceeded) {
            // A hung device timed the attempt out.
            reg.counter("recover.timeouts").inc();
        }

        // Job-level deadline: device time plus charged backoff.
        if (res.ok() && qj.job.deadlineNs != 0
            && qj.spentNs + qj.backoffNs > qj.job.deadlineNs) {
            res.status = support::Status::deadlineExceeded(
                "job " + std::to_string(qj.job.id)
                + " exceeded its deadline");
            reg.counter("recover.timeouts").inc();
        }

        bool retry = false;
        sim::TimeNs backoff = 0;
        if (!res.ok() && retryableCode(launchCode)
            && res.attempts < config.maxAttempts) {
            backoff = config.backoffBaseNs
                      << (res.attempts - 1);
            if (qj.job.deadlineNs == 0
                || qj.spentNs + qj.backoffNs + backoff
                       < qj.job.deadlineNs) {
                retry = true;
            } else {
                res.status = support::Status::deadlineExceeded(
                    "job " + std::to_string(qj.job.id)
                    + " out of retry budget: "
                    + res.status.message());
                reg.counter("recover.timeouts").inc();
            }
        }

        if (retry) {
            // Back to Queued so the next worker can claim it (and a
            // cancel() between attempts still wins the race).
            qj.state->phase.store(detail::JobState::Queued,
                                  std::memory_order_release);
            breakerObserve(idx, deviceFault);
            qj.attempt = res.attempts;
            qj.excluded.push_back(idx);
            qj.backoffNs += backoff;
            std::vector<unsigned> excluded = qj.excluded;
            if (excluded.size() >= workers.size())
                excluded.clear(); // every device failed it: restart
            const unsigned target = route(qj.job.signature, excluded);
            reg.counter("recover.retries").inc();
            reg.counter(devMetric("device.retries_out", idx)).inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "retry", w.dev->now(), qj.job.id,
                    {{"from", devKey(idx)},
                     {"to", devKey(target)},
                     {"attempt", std::to_string(qj.attempt + 1)},
                     {"code",
                      support::statusCodeName(res.status.code())}});
            }
            w.flight.record(w.dev->now(), qj.job.id, "retry",
                            "to=" + devKey(target) + " "
                                + res.status.toString());
            // Retries bypass admission: the job is already admitted,
            // and a worker thread must never block on a full shard.
            enqueue(target, std::move(qj));
            w.load.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }

        const bool succeeded = res.ok();
        breakerObserve(idx, deviceFault);
        if (config.affinity && succeeded
            && (res.report.profiled || res.report.fromCache)) {
            // Insert-or-re-pin: after a re-routed retry the
            // signature sticks to the device that worked.
            std::lock_guard<std::mutex> lock(routeMu);
            affinityMap[qj.job.signature] = idx;
        }

        reg.counter(succeeded ? "jobs.completed" : "jobs.failed").inc();
        reg.histogram("job.attempts")
            .observe(static_cast<double>(res.attempts));
        if (res.backoffNs > 0)
            reg.histogram("job.backoff_ns")
                .observe(static_cast<double>(res.backoffNs));
        if (!succeeded) {
            // Attach the worker's flight-recorder dump to the failure
            // so the caller sees the device's last phases post-mortem.
            w.flight.record(w.dev->now(), qj.job.id, "failed",
                            "dev=" + w.dev->name() + " "
                                + res.status.toString());
            res.status.withPayload(w.flight.dump());
        }
        finishJob(qj, std::move(res));

        w.load.fetch_sub(1, std::memory_order_relaxed);
        jobDone();
    }
}

JobResult
DispatchService::runJob(unsigned idx, QueuedJob &qj)
{
    Worker &w = *workers[idx];
    Job &job = qj.job;
    JobResult res;
    res.id = job.id;
    res.deviceIndex = idx;
    res.deviceName = w.dev->name();

    // Stamp the thread-locals the store observers read: a demotion
    // fired from a store call below must be traceable to this job.
    tlJobId = job.id;
    tlTraceTrack = w.traceTrack;
    tlDevice = w.dev.get();

    w.flight.record(w.dev->now(), job.id, "register",
                    "sig=" + job.signature);
    try {
        if (job.ensureRegistered)
            job.ensureRegistered(*w.rt);
    } catch (const std::exception &e) {
        res.status = support::Status::internal(
            std::string("ensureRegistered: ") + e.what());
        return res;
    }

    if (w.rt->guard().enabled()) {
        // Seed the runtime's guard with the store's blacklist for
        // this (signature, device): entries loaded from disk must
        // keep excluding their variants after a restart.
        for (const auto &[variant, reason] :
             store_.blacklistedVariants(job.signature, w.fingerprint))
            w.rt->guard().blacklist(job.signature, variant, reason);
    }

    // Store lookup with the guard's blacklist applied: a stored
    // winner that was since blacklisted (e.g. on a peer worker) is
    // treated as a miss so the key re-profiles.
    auto lookupUsable = [&]() {
        auto rec =
            store_.lookup(job.signature, w.fingerprint, job.units);
        if (rec && w.rt->guard().enabled()
            && store_.isBlacklisted(job.signature, rec->selectedName,
                                    w.fingerprint)) {
            if (tracer_.enabled()) {
                tracer_.instant(w.traceTrack,
                                "store.blocked_warmstart",
                                w.dev->now(), job.id,
                                {{"variant", rec->selectedName}});
            }
            rec.reset();
            reg.counter("guard.blocked_warmstart").inc();
        }
        return rec;
    };

    auto rec = lookupUsable();
    const bool profilable =
        job.units >= config.runtime.minUnitsForProfiling
        && job.opt.profiling;

    // Learned selection: on a profilable store miss, ask the
    // predictor before paying for a profiling pass (or queueing up
    // behind one).  A confident prediction seeds the store and the
    // job runs warm with zero profiled units; the drift/guard
    // machinery remains the safety net and demotes a bad prediction
    // back to a forced profile.
    if (!rec && predictor_ && profilable) {
        if (const auto *info = w.rt->findKernelInfo(job.signature))
            predictor_->noteKernel(job.signature, *info);
        const auto pred = predictor_->predict(
            job.signature, w.fingerprint,
            store::bucketOf(job.units));
        const bool confident =
            pred
            && pred->confidence >= predictor_->config().threshold;
        if (confident) {
            // Resolve the predicted variant by name; an unknown or
            // blacklisted variant voids the prediction.
            int variant = -1;
            if (const auto *variants =
                    w.rt->findVariants(job.signature)) {
                for (std::size_t i = 0; i < variants->size(); ++i)
                    if ((*variants)[i].name == pred->variant)
                        variant = static_cast<int>(i);
            }
            const bool blocked =
                variant < 0
                || (w.rt->guard().enabled()
                    && store_.isBlacklisted(job.signature,
                                            pred->variant,
                                            w.fingerprint));
            if (!blocked) {
                store_.seedPrediction(job.signature, w.fingerprint,
                                      job.units, variant,
                                      pred->variant,
                                      pred->confidence);
                rec = lookupUsable();
            }
        }
        if (rec) {
            res.predicted = true;
            reg.counter("predict.hit").inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "predict.hit", w.dev->now(), job.id,
                    {{"variant", pred->variant},
                     {"confidence", confStr(pred->confidence)},
                     {"source", predict::sourceName(pred->source)},
                     {"distance", std::to_string(pred->distance)}});
            }
            w.flight.record(w.dev->now(), job.id, "predict",
                            "hit variant=" + pred->variant);
        } else {
            reg.counter("predict.miss").inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "predict.miss", w.dev->now(),
                    job.id,
                    {{"confidence",
                      pred ? confStr(pred->confidence) : "none"}});
            }
        }
    }

    // Profiling coalescing: a miss on a profilable job bids for
    // leadership of its (signature, fingerprint, bucket).  Losers
    // wait for the leader's record and ride it warm; a leader that
    // failed to record hands leadership to one of its followers.
    CoalesceLease lease;
    if (config.coalesce && profilable) {
        const std::string ckey = ProfileCoalescer::key(
            job.signature, w.fingerprint,
            store::bucketOf(job.units));
        while (!rec) {
            const auto ticket = coalescer.acquire(ckey, job.id);
            if (ticket.leader) {
                lease = CoalesceLease(coalescer, ckey);
                reg.counter("coalesce.leader").inc();
                break;
            }
            reg.counter("coalesce.follower").inc();
            if (tracer_.enabled()) {
                tracer_.instant(
                    w.traceTrack, "coalesce.attach", w.dev->now(),
                    job.id,
                    {{"leader", std::to_string(ticket.leaderId)},
                     {"signature", job.signature}});
            }
            w.flight.record(w.dev->now(), job.id, "coalesce",
                            "follow leader="
                                + std::to_string(ticket.leaderId));
            coalescer.awaitRelease(ckey);
            rec = lookupUsable();
            if (rec) {
                res.coalescedWith = ticket.leaderId;
                reg.counter("coalesce.hit").inc();
                if (tracer_.enabled()) {
                    tracer_.instant(
                        w.traceTrack, "coalesce.served",
                        w.dev->now(), job.id,
                        {{"leader",
                          std::to_string(ticket.leaderId)},
                         {"variant", rec->selectedName}});
                }
            } else {
                // The leader released without recording (fault,
                // guard storm): bid again -- one follower becomes
                // the new leader, the rest keep waiting.
                reg.counter("coalesce.leader_failed").inc();
            }
        }
    }

    runtime::LaunchOptions opt = job.opt;
    // The job id doubles as the trace correlation id: every span the
    // runtime emits for this launch carries it.
    opt.correlationId = job.id;
    if (rec) {
        // Warm start: resolve the stored winner (by name, so records
        // survive re-registration) and skip profiling.
        int variant = rec->selected;
        if (const auto *variants = w.rt->findVariants(job.signature)) {
            for (std::size_t i = 0; i < variants->size(); ++i)
                if ((*variants)[i].name == rec->selectedName)
                    variant = static_cast<int>(i);
        }
        if (auto st = w.rt->tryImportSelection(job.signature, variant);
            !st.ok()) {
            res.status = std::move(st);
            return res;
        }
        opt.profiling = false;
        res.warmStart = true;
        reg.counter("store.hit").inc();
        reg.counter(devMetric("device.store_hits", idx)).inc();
        if (tracer_.enabled()) {
            tracer_.instant(w.traceTrack, "store.hit", w.dev->now(),
                            job.id,
                            {{"variant", rec->selectedName}});
        }
        w.flight.record(w.dev->now(), job.id, "lookup",
                        "warm variant=" + rec->selectedName);
    } else {
        opt.profiling = true;
        reg.counter("store.miss").inc();
        w.flight.record(w.dev->now(), job.id, "lookup", "miss");
    }

    w.flight.record(w.dev->now(), job.id, "launch",
                    "sig=" + job.signature + " units="
                        + std::to_string(job.units));
    const sim::TimeNs before = w.dev->now();
    res.status =
        w.rt->launch(job.signature, job.units, job.args, opt,
                     res.report);
    res.deviceTimeNs = w.dev->now() - before;

    if (res.ok()) {
        reg.counter(devMetric("device.jobs", idx)).inc();
        reg.histogram("job.device_ns")
            .observe(static_cast<double>(res.deviceTimeNs));
        reg.histogram(devMetric("device.latency_ns", idx))
            .observe(static_cast<double>(res.deviceTimeNs));
        if (res.report.profiled)
            reg.counter(devMetric("device.profiled", idx)).inc();
    } else if (res.warmStart
               && retryableCode(res.status.code())) {
        // The stored selection failed to even launch: demote it so
        // the next lookup serves the runner-up (or re-profiles).
        switch (store_.reportFailure(job.signature, w.fingerprint,
                                     job.units)) {
          case store::Observation::Quarantined:
            reg.counter("store.quarantine").inc();
            if (tracer_.enabled()) {
                tracer_.instant(w.traceTrack, "store.quarantine",
                                w.dev->now(), job.id,
                                {{"signature", job.signature}});
            }
            break;
          case store::Observation::Invalidated:
            reg.counter("store.drift_invalidation").inc();
            break;
          case store::Observation::Ok:
            break;
        }
    }
    // The coalesce lease (when held) releases here: the profiled
    // record is in the store -- or the attempt failed and a follower
    // takes over.
    return res;
}

} // namespace serve
} // namespace dysel
