#include "dispatch_service.hh"

#include <algorithm>
#include <stdexcept>

#include "support/logging.hh"

namespace dysel {
namespace serve {

namespace {

std::string
devKey(unsigned idx)
{
    return "dev" + std::to_string(idx);
}

} // namespace

DispatchService::DispatchService(store::SelectionStore &st,
                                 ServiceConfig cfg)
    : store_(st), config(cfg)
{
}

DispatchService::~DispatchService()
{
    stop();
}

unsigned
DispatchService::addDevice(std::unique_ptr<sim::Device> device)
{
    if (started)
        throw std::logic_error(
            "DispatchService: addDevice after start()");
    if (!device)
        throw std::invalid_argument("DispatchService: null device");
    auto w = std::make_unique<Worker>();
    w->dev = std::move(device);
    w->rt = std::make_unique<runtime::Runtime>(*w->dev, config.runtime);
    w->fingerprint = w->dev->fingerprint();
    const auto idx = static_cast<unsigned>(workers.size());

    // Feed the store from every launch on this runtime: profiled
    // launches refresh their record, plain cache-served launches
    // update the drift baseline (and may invalidate).
    w->rt->setLaunchObserver(
        [this, fp = w->fingerprint](const runtime::LaunchReport &r) {
            if (r.profiled) {
                store_.recordProfile(fp, r);
                reg.counter("store.record").inc();
            } else if (r.fromCache) {
                if (!store_.observePlain(fp, r))
                    reg.counter("store.drift_invalidation").inc();
            }
        });

    workers.push_back(std::move(w));
    return idx;
}

sim::Device &
DispatchService::device(unsigned idx)
{
    return *workers.at(idx)->dev;
}

runtime::Runtime &
DispatchService::runtimeAt(unsigned idx)
{
    return *workers.at(idx)->rt;
}

void
DispatchService::start()
{
    if (started)
        return;
    if (workers.empty())
        throw std::logic_error("DispatchService: start() with no devices");
    stopping = false;
    started = true;
    for (unsigned i = 0; i < workers.size(); ++i)
        workers[i]->thread = std::thread([this, i] { workerLoop(i); });
}

unsigned
DispatchService::route(const Job &job)
{
    if (config.affinity) {
        auto it = affinityMap.find(job.signature);
        if (it != affinityMap.end())
            return it->second;
    }
    unsigned best = 0;
    for (unsigned i = 1; i < workers.size(); ++i)
        if (workers[i]->load < workers[best]->load)
            best = i;
    return best;
}

std::uint64_t
DispatchService::submit(Job job)
{
    std::unique_lock<std::mutex> lock(mu);
    if (!started)
        throw std::logic_error("DispatchService: submit before start()");
    job.id = nextId++;
    const std::uint64_t id = job.id;
    const unsigned idx = route(job);
    workers[idx]->queue.push_back(std::move(job));
    workers[idx]->load++;
    inFlight++;
    lock.unlock();
    wake.notify_all();
    return id;
}

void
DispatchService::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock, [this] { return inFlight == 0; });
}

void
DispatchService::stop()
{
    if (!started)
        return;
    drain();
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        if (w->thread.joinable())
            w->thread.join();
    started = false;
}

void
DispatchService::workerLoop(unsigned idx)
{
    Worker &w = *workers[idx];
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu);
            wake.wait(lock,
                      [&] { return stopping || !w.queue.empty(); });
            if (w.queue.empty()) {
                if (stopping)
                    return;
                continue;
            }
            job = std::move(w.queue.front());
            w.queue.pop_front();
        }

        JobResult res = runJob(idx, job);

        if (config.affinity && res.ok
            && (res.report.profiled || res.report.fromCache)) {
            std::lock_guard<std::mutex> lock(mu);
            affinityMap.emplace(job.signature, idx);
        }
        if (job.done)
            job.done(res);

        {
            std::lock_guard<std::mutex> lock(mu);
            w.load--;
            if (--inFlight == 0)
                idle.notify_all();
        }
    }
}

JobResult
DispatchService::runJob(unsigned idx, Job &job)
{
    Worker &w = *workers[idx];
    JobResult res;
    res.id = job.id;
    res.deviceIndex = idx;
    res.deviceName = w.dev->name();

    try {
        if (job.ensureRegistered)
            job.ensureRegistered(*w.rt);

        runtime::LaunchOptions opt = job.opt;
        auto rec =
            store_.lookup(job.signature, w.fingerprint, job.units);
        if (rec) {
            // Warm start: resolve the stored winner (by name, so
            // records survive re-registration) and skip profiling.
            int variant = rec->selected;
            const auto &variants = w.rt->variants(job.signature);
            for (std::size_t i = 0; i < variants.size(); ++i)
                if (variants[i].name == rec->selectedName)
                    variant = static_cast<int>(i);
            w.rt->importSelection(job.signature, variant);
            opt.profiling = false;
            res.warmStart = true;
            reg.counter("store.hit").inc();
            reg.counter(devKey(idx) + ".hits").inc();
        } else {
            opt.profiling = true;
            reg.counter("store.miss").inc();
        }

        const sim::TimeNs before = w.dev->now();
        res.report =
            w.rt->launchKernel(job.signature, job.units, job.args, opt);
        res.deviceTimeNs = w.dev->now() - before;
        res.ok = true;

        reg.counter(devKey(idx) + ".jobs").inc();
        reg.counter("jobs.completed").inc();
        reg.histogram("job.device_ns")
            .observe(static_cast<double>(res.deviceTimeNs));
        reg.histogram(devKey(idx) + ".device_ns")
            .observe(static_cast<double>(res.deviceTimeNs));
        if (res.report.profiled)
            reg.counter(devKey(idx) + ".profiled").inc();
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
        reg.counter("jobs.failed").inc();
    }
    return res;
}

} // namespace serve
} // namespace dysel
