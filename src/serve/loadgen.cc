#include "loadgen.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "kdp/args.hh"
#include "kdp/buffer.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"
#include "support/rng.hh"

namespace dysel {
namespace serve {

namespace {

constexpr std::uint32_t laneCount = 8;

/** Marker kernel: writes `marker` into out[unit], burns flops. */
kdp::KernelVariant
markerKernel(const char *name, std::int32_t marker,
             std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

support::Json
LoadGenReport::toJson() const
{
    using support::Json;
    Json cfg = Json::object();
    cfg.set("submitters", Json(static_cast<double>(config.submitters)));
    cfg.set("devices", Json(static_cast<double>(config.devices)));
    cfg.set("signatures", Json(static_cast<double>(config.signatures)));
    cfg.set("size_classes",
            Json(static_cast<double>(config.sizeClasses)));
    cfg.set("base_units", Json(static_cast<double>(config.baseUnits)));
    cfg.set("jobs_per_submitter",
            Json(static_cast<double>(config.jobsPerSubmitter)));
    cfg.set("variants", Json(static_cast<double>(config.variants)));
    cfg.set("profile_repeats",
            Json(static_cast<double>(config.profileRepeats)));
    cfg.set("guard", Json(config.guard));
    cfg.set("sweep", Json(config.sweep));
    cfg.set("coalesce", Json(config.coalesce));
    cfg.set("max_queue_depth",
            Json(static_cast<double>(config.maxQueueDepth)));
    cfg.set("admission", Json(config.admission == AdmissionPolicy::Shed
                                  ? "shed"
                                  : "block"));
    cfg.set("fault_rate", Json(config.faultRate));
    cfg.set("seed", Json(static_cast<double>(config.seed)));

    Json jobs = Json::object();
    jobs.set("submitted", Json(static_cast<double>(jobsSubmitted)));
    jobs.set("completed", Json(static_cast<double>(jobsCompleted)));
    jobs.set("failed", Json(static_cast<double>(jobsFailed)));
    jobs.set("shed", Json(static_cast<double>(jobsShed)));

    Json coalesce = Json::object();
    coalesce.set("leaders",
                 Json(static_cast<double>(coalesceLeaders)));
    coalesce.set("followers",
                 Json(static_cast<double>(coalesceFollowers)));
    coalesce.set("hits", Json(static_cast<double>(coalesceHits)));
    coalesce.set("hit_rate", Json(coalesceHitRate));

    Json out = Json::object();
    out.set("config", std::move(cfg));
    out.set("jobs", std::move(jobs));
    out.set("wall_seconds", Json(wallSeconds));
    out.set("jobs_per_sec", Json(jobsPerSec));
    out.set("p50_latency_us", Json(p50LatencyUs));
    out.set("p99_latency_us", Json(p99LatencyUs));
    out.set("profiled_units", Json(static_cast<double>(profiledUnits)));
    out.set("total_units", Json(static_cast<double>(totalUnits)));
    out.set("profiled_unit_ratio", Json(profiledUnitRatio));
    out.set("store_hits", Json(static_cast<double>(storeHits)));
    out.set("coalesce", std::move(coalesce));
    return out;
}

LoadGenReport
runLoadGen(const LoadGenConfig &cfg)
{
    using clock = std::chrono::steady_clock;

    store::SelectionStore store;
    ServiceConfig scfg;
    scfg.coalesce = cfg.coalesce;
    scfg.affinity = cfg.affinity;
    scfg.maxQueueDepth = cfg.maxQueueDepth;
    scfg.admission = cfg.admission;
    scfg.runtime.guard.enabled = cfg.guard;
    DispatchService svc(store, scfg);

    sim::FaultConfig fcfg;
    fcfg.launchFailProb = cfg.faultRate;
    fcfg.seed = cfg.seed ^ 0xfa01d;
    sim::FaultInjector faults(fcfg);

    for (unsigned d = 0; d < cfg.devices; ++d) {
        const unsigned idx =
            svc.addDevice(std::make_unique<sim::CpuDevice>());
        if (cfg.faultRate > 0.0)
            svc.device(idx).setFaultInjector(&faults);
    }

    // Pre-register every signature's pool on every runtime so the
    // measured loop exercises dispatch, not registration.
    std::vector<std::string> sigs;
    for (unsigned s = 0; s < cfg.signatures; ++s)
        sigs.push_back("hot" + std::to_string(s));
    // One fast winner plus variants-1 slower decoys per pool; every
    // decoy costs a profiling slice on a cold launch.
    const unsigned variants = std::max(2u, cfg.variants);
    for (unsigned d = 0; d < cfg.devices; ++d) {
        auto &rt = svc.runtimeAt(d);
        for (const auto &sig : sigs) {
            rt.addKernel(sig, markerKernel("fast", 1, cfg.fastFlops));
            for (unsigned v = 1; v < variants; ++v) {
                const std::string name = "slow" + std::to_string(v);
                rt.addKernel(
                    sig, markerKernel(name.c_str(),
                                      static_cast<std::int32_t>(v + 1),
                                      cfg.slowFlops * v));
            }
            rt.setKernelInfo(sig, regularInfo(sig));
        }
    }
    svc.start();

    const std::uint64_t maxUnits =
        cfg.baseUnits << (cfg.sizeClasses > 0 ? cfg.sizeClasses - 1
                                              : 0);

    struct SubmitterStats
    {
        std::vector<double> latenciesUs;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t shed = 0;
        std::uint64_t profiledUnits = 0;
        std::uint64_t totalUnits = 0;
    };
    std::vector<SubmitterStats> stats(cfg.submitters);

    const auto wallStart = clock::now();
    std::vector<std::thread> threads;
    threads.reserve(cfg.submitters);
    for (unsigned t = 0; t < cfg.submitters; ++t) {
        threads.emplace_back([&, t] {
            SubmitterStats &st = stats[t];
            st.latenciesUs.reserve(cfg.jobsPerSubmitter);
            support::Rng rng(cfg.seed + 0x9e3779b9ull * (t + 1));
            // One reusable output slot per submitter: the loop is
            // closed, so at most one of its jobs is in flight.
            kdp::Buffer<std::int32_t> out(maxUnits,
                                          kdp::MemSpace::Global,
                                          "loadgen.out");
            const unsigned classes = std::max(1u, cfg.sizeClasses);
            for (std::uint64_t j = 0; j < cfg.jobsPerSubmitter; ++j) {
                std::string sig;
                std::uint64_t units;
                if (cfg.sweep) {
                    // Lockstep phase schedule: every submitter's
                    // job j hits the same (signature, size class).
                    sig = sigs[j % sigs.size()];
                    units = cfg.baseUnits
                            << ((j / sigs.size()) % classes);
                } else {
                    sig = sigs[rng.nextBelow(sigs.size())];
                    units = cfg.baseUnits << rng.nextBelow(classes);
                }
                Job job;
                job.signature = sig;
                job.units = units;
                job.opt.profileRepeats = cfg.profileRepeats;
                job.args.add(out).add(
                    static_cast<std::int64_t>(units));
                const auto t0 = clock::now();
                JobHandle h = svc.submit(std::move(job));
                const JobResult &r = h.result();
                const auto t1 = clock::now();
                st.latenciesUs.push_back(
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count());
                st.totalUnits += units;
                st.profiledUnits += r.report.profiledUnits;
                if (r.ok())
                    st.completed++;
                else if (r.status.code()
                         == support::StatusCode::ResourceExhausted)
                    st.shed++;
                else
                    st.failed++;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    svc.drain();
    const double wallSeconds =
        std::chrono::duration<double>(clock::now() - wallStart)
            .count();
    svc.stop();

    LoadGenReport rep;
    rep.config = cfg;
    rep.wallSeconds = wallSeconds;
    std::vector<double> latencies;
    for (auto &st : stats) {
        rep.jobsCompleted += st.completed;
        rep.jobsFailed += st.failed;
        rep.jobsShed += st.shed;
        rep.profiledUnits += st.profiledUnits;
        rep.totalUnits += st.totalUnits;
        latencies.insert(latencies.end(), st.latenciesUs.begin(),
                         st.latenciesUs.end());
    }
    rep.jobsSubmitted =
        static_cast<std::uint64_t>(cfg.submitters)
        * cfg.jobsPerSubmitter;
    std::sort(latencies.begin(), latencies.end());
    rep.p50LatencyUs = percentile(latencies, 0.50);
    rep.p99LatencyUs = percentile(latencies, 0.99);
    rep.jobsPerSec =
        wallSeconds > 0.0
            ? static_cast<double>(rep.jobsCompleted) / wallSeconds
            : 0.0;
    rep.profiledUnitRatio =
        rep.totalUnits > 0
            ? static_cast<double>(rep.profiledUnits)
                  / static_cast<double>(rep.totalUnits)
            : 0.0;

    const auto &m = svc.metrics();
    rep.coalesceLeaders = m.counterValue("coalesce.leader");
    rep.coalesceFollowers = m.counterValue("coalesce.follower");
    rep.coalesceHits = m.counterValue("coalesce.hit");
    rep.storeHits = m.counterValue("store.hit");
    const std::uint64_t bids = rep.coalesceHits + rep.coalesceLeaders;
    rep.coalesceHitRate =
        bids > 0 ? static_cast<double>(rep.coalesceHits)
                       / static_cast<double>(bids)
                 : 0.0;
    return rep;
}

} // namespace serve
} // namespace dysel
