#include "loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "dysel/fed/replicator.hh"
#include "kdp/args.hh"
#include "kdp/buffer.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"
#include "support/rng.hh"

namespace dysel {
namespace serve {

namespace {

constexpr std::uint32_t laneCount = 8;

/**
 * Work kernel: writes a position digest into out[unit], burns flops.
 * Every variant computes the SAME output -- variants differ only in
 * cost -- so a run's output checksum is invariant under selection
 * policy (which variant won, who profiled which slice) and compares
 * across bench axes.
 */
kdp::KernelVariant
workKernel(const char *name, std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [flops_per_unit](kdp::GroupCtx &g,
                            const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u,
                    static_cast<std::int32_t>((u * 2654435761ull)
                                              & 0x7fffffff),
                    lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** FNV-1a 64-bit over one job's output values. */
std::uint64_t
outputHash(const kdp::Buffer<std::int32_t> &out, std::uint64_t units)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint64_t u = 0; u < units; ++u) {
        auto v = static_cast<std::uint32_t>(out.at(u));
        for (int byte = 0; byte < 4; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/** 16-hex-digit rendering (JSON-safe: doubles lose 64-bit ints). */
std::string
hex16(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

LoadGenReport runImpl(const LoadGenConfig &cfg,
                      predict::SelectionPredictor *predictor);

} // namespace

support::Json
LoadGenReport::toJson() const
{
    using support::Json;
    Json cfg = Json::object();
    cfg.set("submitters", Json(static_cast<double>(config.submitters)));
    cfg.set("devices", Json(static_cast<double>(config.devices)));
    cfg.set("signatures", Json(static_cast<double>(config.signatures)));
    cfg.set("size_classes",
            Json(static_cast<double>(config.sizeClasses)));
    cfg.set("base_units", Json(static_cast<double>(config.baseUnits)));
    cfg.set("jobs_per_submitter",
            Json(static_cast<double>(config.jobsPerSubmitter)));
    cfg.set("burst", Json(static_cast<double>(config.burst)));
    cfg.set("max_batch_jobs",
            Json(static_cast<double>(config.maxBatchJobs)));
    cfg.set("batch_window_ns",
            Json(static_cast<double>(config.batchWindowNs)));
    cfg.set("variants", Json(static_cast<double>(config.variants)));
    cfg.set("profile_repeats",
            Json(static_cast<double>(config.profileRepeats)));
    cfg.set("guard", Json(config.guard));
    cfg.set("sweep", Json(config.sweep));
    cfg.set("coalesce", Json(config.coalesce));
    cfg.set("max_queue_depth",
            Json(static_cast<double>(config.maxQueueDepth)));
    cfg.set("admission", Json(config.admission == AdmissionPolicy::Shed
                                  ? "shed"
                                  : "block"));
    cfg.set("fault_rate", Json(config.faultRate));
    cfg.set("seed", Json(static_cast<double>(config.seed)));
    cfg.set("predict", Json(config.predict));
    cfg.set("predict_threshold", Json(config.predictThreshold));
    cfg.set("pretrain_laps",
            Json(static_cast<double>(config.pretrainLaps)));
    cfg.set("audit_rate", Json(config.auditRate));

    Json jobs = Json::object();
    jobs.set("submitted", Json(static_cast<double>(jobsSubmitted)));
    jobs.set("completed", Json(static_cast<double>(jobsCompleted)));
    jobs.set("failed", Json(static_cast<double>(jobsFailed)));
    jobs.set("shed", Json(static_cast<double>(jobsShed)));

    Json coalesce = Json::object();
    coalesce.set("leaders",
                 Json(static_cast<double>(coalesceLeaders)));
    coalesce.set("followers",
                 Json(static_cast<double>(coalesceFollowers)));
    coalesce.set("hits", Json(static_cast<double>(coalesceHits)));
    coalesce.set("hit_rate", Json(coalesceHitRate));

    Json batch = Json::object();
    batch.set("launches", Json(static_cast<double>(batchLaunches)));
    batch.set("jobs", Json(static_cast<double>(batchJobs)));
    batch.set("demoted", Json(static_cast<double>(batchDemoted)));
    batch.set("avg_size", Json(avgBatchSize));

    Json predict = Json::object();
    predict.set("hits", Json(static_cast<double>(predictHits)));
    predict.set("misses", Json(static_cast<double>(predictMisses)));
    predict.set("demotions",
                Json(static_cast<double>(predictDemotions)));
    predict.set("trained", Json(static_cast<double>(predictTrained)));

    Json fed = Json::object();
    fed.set("warm_hits", Json(static_cast<double>(fedWarmHits)));
    fed.set("leases", Json(static_cast<double>(fedLeases)));
    fed.set("fallbacks", Json(static_cast<double>(fedFallbacks)));
    fed.set("profiled_keys",
            Json(static_cast<double>(profiledKeys.size())));
    Json keyList = Json::array();
    for (const auto &k : profiledKeys)
        keyList.push(Json(k));
    fed.set("profiled_key_list", std::move(keyList));

    Json audit = Json::object();
    audit.set("samples", Json(static_cast<double>(auditSamples)));
    audit.set("demotions", Json(static_cast<double>(auditDemotions)));
    audit.set("probe_failures",
              Json(static_cast<double>(auditProbeFailures)));
    audit.set("mean_regret", Json(auditMeanRegret));

    Json out = Json::object();
    out.set("config", std::move(cfg));
    out.set("jobs", std::move(jobs));
    out.set("wall_seconds", Json(wallSeconds));
    out.set("jobs_per_sec", Json(jobsPerSec));
    out.set("p50_latency_us", Json(p50LatencyUs));
    out.set("p99_latency_us", Json(p99LatencyUs));
    out.set("profiled_units", Json(static_cast<double>(profiledUnits)));
    out.set("total_units", Json(static_cast<double>(totalUnits)));
    out.set("profiled_unit_ratio", Json(profiledUnitRatio));
    out.set("store_hits", Json(static_cast<double>(storeHits)));
    out.set("store_hit_rate", Json(storeHitRate));
    out.set("coalesce", std::move(coalesce));
    out.set("batch", std::move(batch));
    out.set("predict", std::move(predict));
    out.set("fed", std::move(fed));
    out.set("audit", std::move(audit));
    out.set("output_checksum", Json(hex16(outputChecksum)));
    return out;
}

namespace {

LoadGenReport
runImpl(const LoadGenConfig &cfg,
        predict::SelectionPredictor *predictor)
{
    using clock = std::chrono::steady_clock;

    store::SelectionStore localStore;
    store::SelectionStore &store =
        cfg.externalStore ? *cfg.externalStore : localStore;
    ServiceConfig scfg;
    scfg.coalesce = cfg.coalesce;
    scfg.affinity = cfg.affinity;
    scfg.maxQueueDepth = cfg.maxQueueDepth;
    scfg.admission = cfg.admission;
    scfg.batch.maxJobs = cfg.maxBatchJobs;
    scfg.batch.windowNs = cfg.batchWindowNs;
    scfg.runtime.guard.enabled = cfg.guard;
    scfg.audit.sampleRate = cfg.auditRate;
    DispatchService svc(store, scfg);
    if (predictor)
        svc.setPredictor(predictor);
    if (cfg.federation)
        svc.setFederation(cfg.federation);

    // Exactly-once accounting for the fleet test: every local
    // profiling pass records its key.  The predictor owns the
    // observer slot when attached, so this rides only without it.
    std::mutex profiledMu;
    std::vector<std::string> profiledKeys;
    if (!predictor) {
        store.setProfileObserver(
            [&](const store::SelectionRecord &rec) {
                std::lock_guard<std::mutex> lock(profiledMu);
                profiledKeys.push_back(
                    rec.signature + "|" + rec.device + "|"
                    + std::to_string(rec.bucket));
            });
    }

    sim::FaultConfig fcfg;
    fcfg.launchFailProb = cfg.faultRate;
    fcfg.seed = cfg.seed ^ 0xfa01d;
    sim::FaultInjector faults(fcfg);

    for (unsigned d = 0; d < cfg.devices; ++d) {
        const unsigned idx =
            svc.addDevice(std::make_unique<sim::CpuDevice>());
        if (cfg.faultRate > 0.0)
            svc.device(idx).setFaultInjector(&faults);
    }

    // Pre-register every signature's pool on every runtime -- one
    // kernel-pool installer for the whole fleet -- so the measured
    // loop exercises dispatch, not registration.
    std::vector<std::string> sigs;
    for (unsigned s = 0; s < cfg.signatures; ++s)
        sigs.push_back("hot" + std::to_string(s));
    // One fast winner plus variants-1 slower decoys per pool; every
    // decoy costs a profiling slice on a cold launch.
    const unsigned variants = std::max(2u, cfg.variants);
    svc.registerKernelPool([sigs, variants, fast = cfg.fastFlops,
                            slow = cfg.slowFlops](runtime::Runtime &rt) {
           for (const auto &sig : sigs) {
               rt.addKernel(sig, workKernel("fast", fast));
               for (unsigned v = 1; v < variants; ++v) {
                   const std::string name = "slow" + std::to_string(v);
                   rt.addKernel(sig,
                                workKernel(name.c_str(), slow * v));
               }
               rt.setKernelInfo(sig, regularInfo(sig));
           }
       }).throwIfError();
    svc.start();
    if (cfg.onStart)
        cfg.onStart(svc);

    const std::uint64_t maxUnits =
        cfg.baseUnits << (cfg.sizeClasses > 0 ? cfg.sizeClasses - 1
                                              : 0);

    struct SubmitterStats
    {
        std::vector<double> latenciesUs;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t shed = 0;
        std::uint64_t profiledUnits = 0;
        std::uint64_t totalUnits = 0;
        std::uint64_t checksum = 0;
    };
    std::vector<SubmitterStats> stats(cfg.submitters);

    const auto wallStart = clock::now();
    std::vector<std::thread> threads;
    threads.reserve(cfg.submitters);
    for (unsigned t = 0; t < cfg.submitters; ++t) {
        threads.emplace_back([&, t] {
            SubmitterStats &st = stats[t];
            st.latenciesUs.reserve(cfg.jobsPerSubmitter);
            support::Rng rng(cfg.seed + 0x9e3779b9ull * (t + 1));
            const std::uint64_t burst =
                std::max<std::uint64_t>(1, cfg.burst);
            // One reusable output slot per in-flight job; the specs
            // and handles are reused every iteration, so the steady
            // state of this loop is the service's allocation-free
            // submit path.
            std::vector<kdp::Buffer<std::int32_t>> outs;
            outs.reserve(burst);
            for (std::uint64_t b = 0; b < burst; ++b)
                outs.emplace_back(maxUnits, kdp::MemSpace::Global,
                                  "loadgen.out");
            std::vector<JobSpec> specs(burst);
            std::vector<JobHandle> handles(burst);
            std::vector<std::uint64_t> burstUnits(burst, 0);
            runtime::LaunchOptions opt;
            opt.profileRepeats = cfg.profileRepeats;
            const unsigned classes = std::max(1u, cfg.sizeClasses);
            for (std::uint64_t j = 0; j < cfg.jobsPerSubmitter;
                 j += burst) {
                const std::uint64_t nb =
                    std::min(burst, cfg.jobsPerSubmitter - j);
                for (std::uint64_t b = 0; b < nb; ++b) {
                    const std::uint64_t idx = j + b;
                    std::string sig;
                    std::uint64_t units;
                    if (cfg.sweep) {
                        // Lockstep phase schedule: every submitter's
                        // job idx hits the same (signature, size).
                        sig = sigs[idx % sigs.size()];
                        units = cfg.baseUnits
                                << ((idx / sigs.size()) % classes);
                    } else {
                        sig = sigs[rng.nextBelow(sigs.size())];
                        units = cfg.baseUnits
                                << rng.nextBelow(classes);
                    }
                    JobSpec &spec = specs[b];
                    spec.signature(std::move(sig))
                        .units(units)
                        .options(opt);
                    spec.mutableArgs().clear();
                    spec.mutableArgs().add(outs[b]).add(
                        static_cast<std::int64_t>(units));
                    burstUnits[b] = units;
                }
                const auto t0 = clock::now();
                svc.submitMany(
                    std::span<const JobSpec>(specs.data(), nb),
                    std::span<JobHandle>(handles.data(), nb));
                for (std::uint64_t b = 0; b < nb; ++b) {
                    const JobResult &r = handles[b].result();
                    const auto t1 = clock::now();
                    st.latenciesUs.push_back(
                        std::chrono::duration<double, std::micro>(
                            t1 - t0)
                            .count());
                    const std::uint64_t units = burstUnits[b];
                    st.totalUnits += units;
                    st.profiledUnits += r.report.profiledUnits;
                    if (r.ok()) {
                        st.completed++;
                        // XOR-combine per-job digests: order-
                        // independent across submitter/device
                        // interleavings, so the run checksum only
                        // depends on what each job computed -- not
                        // on scheduling.
                        st.checksum ^= outputHash(outs[b], units);
                    }
                    else if (r.status.code()
                             == support::StatusCode::ResourceExhausted)
                        st.shed++;
                    else
                        st.failed++;
                    // Drop the handle so the pool can recycle the
                    // job state.
                    handles[b] = JobHandle();
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    svc.drain();
    const double wallSeconds =
        std::chrono::duration<double>(clock::now() - wallStart)
            .count();
    if (cfg.onStop)
        cfg.onStop(svc);
    svc.stop();
    if (!predictor) {
        // An external store outlives this call; the observer
        // captures locals and must not.
        store.setProfileObserver(nullptr);
    }

    LoadGenReport rep;
    rep.profiledKeys = std::move(profiledKeys);
    rep.config = cfg;
    rep.wallSeconds = wallSeconds;
    std::vector<double> latencies;
    for (auto &st : stats) {
        rep.jobsCompleted += st.completed;
        rep.jobsFailed += st.failed;
        rep.jobsShed += st.shed;
        rep.profiledUnits += st.profiledUnits;
        rep.totalUnits += st.totalUnits;
        rep.outputChecksum ^= st.checksum;
        latencies.insert(latencies.end(), st.latenciesUs.begin(),
                         st.latenciesUs.end());
    }
    rep.jobsSubmitted =
        static_cast<std::uint64_t>(cfg.submitters)
        * cfg.jobsPerSubmitter;
    std::sort(latencies.begin(), latencies.end());
    rep.p50LatencyUs = percentile(latencies, 0.50);
    rep.p99LatencyUs = percentile(latencies, 0.99);
    rep.jobsPerSec =
        wallSeconds > 0.0
            ? static_cast<double>(rep.jobsCompleted) / wallSeconds
            : 0.0;
    rep.profiledUnitRatio =
        rep.totalUnits > 0
            ? static_cast<double>(rep.profiledUnits)
                  / static_cast<double>(rep.totalUnits)
            : 0.0;

    const auto &m = svc.metrics();
    rep.coalesceLeaders = m.counterValue("coalesce.leader");
    rep.coalesceFollowers = m.counterValue("coalesce.follower");
    rep.coalesceHits = m.counterValue("coalesce.hit");
    rep.storeHits = m.counterValue("store.hit");
    rep.storeHitRate =
        rep.jobsSubmitted > 0
            ? static_cast<double>(rep.storeHits)
                  / static_cast<double>(rep.jobsSubmitted)
            : 0.0;
    rep.batchLaunches = m.counterValue("batch.launches");
    rep.batchJobs = m.counterValue("batch.jobs");
    rep.batchDemoted = m.counterValue("batch.demoted");
    rep.avgBatchSize =
        rep.batchLaunches > 0
            ? static_cast<double>(rep.batchJobs)
                  / static_cast<double>(rep.batchLaunches)
            : 0.0;
    rep.predictHits = m.counterValue("predict.hit");
    rep.predictMisses = m.counterValue("predict.miss");
    rep.predictDemotions = m.counterValue("predict.demoted");
    rep.predictTrained = m.counterValue("predict.train");
    rep.fedWarmHits = m.counterValue("fed.warm_hit");
    rep.fedLeases = m.counterValue("fed.lease_granted");
    rep.fedFallbacks = m.counterValue("fed.fallback");
    rep.auditSamples = m.counterValue("audit.samples");
    rep.auditDemotions = m.counterValue("audit.demotions");
    rep.auditProbeFailures = m.counterValue("audit.probe_failed");
    rep.auditMeanRegret =
        svc.auditor() ? svc.auditor()->meanRegret() : 0.0;
    const std::uint64_t bids = rep.coalesceHits + rep.coalesceLeaders;
    rep.coalesceHitRate =
        bids > 0 ? static_cast<double>(rep.coalesceHits)
                       / static_cast<double>(bids)
                 : 0.0;
    // The replicator outlives this run (it keeps serving deltas to
    // peers through drain and quiescence) but the service's metrics
    // registry dies with this scope: unbind before it dangles.
    if (cfg.federation)
        cfg.federation->bindMetrics(nullptr);
    return rep;
}

} // namespace

LoadGenReport
runLoadGen(const LoadGenConfig &cfg)
{
    if (!cfg.predict)
        return runImpl(cfg, nullptr);

    predict::PredictorConfig pcfg;
    pcfg.threshold = cfg.predictThreshold;
    predict::SelectionPredictor predictor(pcfg);
    if (cfg.pretrainLaps > 0) {
        // Warm-up laps against a throwaway service/store: one sweep
        // over every (signature, size class) per lap.  Only the
        // predictor's learned state carries into the measured run --
        // the measured store still starts cold, so every skipped
        // profiling pass there is the predictor's doing.
        LoadGenConfig warm = cfg;
        warm.sweep = true;
        warm.jobsPerSubmitter =
            static_cast<std::uint64_t>(std::max(1u, cfg.signatures))
            * std::max(1u, cfg.sizeClasses) * cfg.pretrainLaps;
        warm.pretrainLaps = 0;
        // Warm-up services are throwaway: no admin plane, no audit.
        warm.onStart = nullptr;
        warm.onStop = nullptr;
        warm.auditRate = 0.0;
        (void)runImpl(warm, &predictor);
    }
    return runImpl(cfg, &predictor);
}

} // namespace serve
} // namespace dysel
