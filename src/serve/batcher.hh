/**
 * @file
 * Batch aggregation policy for the dispatch service (DESIGN §10).
 *
 * Compatible submissions waiting on the same shard -- same signature,
 * same workload-size bucket, same launch policy -- are gathered into
 * one fused launch, so N small jobs pay one queue hop, one store
 * consult, and one device submit.  The Batcher owns only the
 * *policy*: what is eligible, what is mutually compatible, and how
 * much a batch may hold.  Claiming members, running the fused launch,
 * and per-job completion stay in the service.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hh"

#include "buffer_pool.hh"
#include "job.hh"

namespace dysel {
namespace serve {

/** Batch aggregation knobs (ServiceConfig carries one). */
struct BatchLimits
{
    /**
     * Most member jobs per fused launch; <= 1 disables batching
     * entirely (every job runs solo, the pre-batching behaviour).
     */
    std::size_t maxJobs = 1;

    /** Cap on summed workload units per fused launch; 0 = unlimited. */
    std::uint64_t maxUnits = 0;

    /**
     * Bounded delay: with an under-full batch, the worker waits up to
     * this long (wall clock) for more compatible submissions before
     * launching what it has.  0 launches immediately with whatever is
     * already queued.
     */
    sim::TimeNs windowNs = 0;

    bool enabled() const { return maxJobs > 1; }
};

/** Batch gathering policy over one shard's queue. */
class Batcher
{
  public:
    explicit Batcher(BatchLimits limits) : limits_(limits) {}

    const BatchLimits &limits() const { return limits_; }

    /**
     * Whether @p job may join any batch: no per-job installer (a
     * fused launch registers nothing), not opted out, and a non-empty
     * workload.
     */
    static bool eligible(const Job &job);

    /**
     * Whether @p candidate can fuse with @p head: both eligible, same
     * signature, same size bucket (one store record covers the whole
     * batch), and the same launch policy (default variant and
     * orchestration mode).  A fused launch runs under the head's
     * LaunchOptions; member option fields that only affect profiling
     * or eager solo execution (profiling, mode, profileRepeats,
     * eagerChunkUnits) are ignored, since a fused launch performs
     * neither.
     */
    static bool compatible(const Job &head, const Job &candidate);

    /**
     * Extract every job of @p queue compatible with @p head, in queue
     * order, into @p members -- up to maxJobs total (head included)
     * and maxUnits summed units.  The caller holds the shard lock.
     * Returns the number extracted this call.
     */
    std::size_t gather(JobRing &queue, const Job &head,
                       std::vector<detail::QueuedJob> &members) const;

  private:
    BatchLimits limits_;
};

} // namespace serve
} // namespace dysel
