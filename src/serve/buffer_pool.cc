#include "buffer_pool.hh"

#include <utility>

namespace dysel {
namespace serve {

void
clearJobResult(JobResult &r)
{
    r.id = 0;
    r.status = support::Status();
    r.deviceIndex = 0;
    r.deviceName.clear();
    r.warmStart = false;
    r.predicted = false;
    r.coalescedWith = 0;
    r.batchedWith = 0;
    r.deviceTimeNs = 0;
    r.attempts = 1;
    r.backoffNs = 0;

    runtime::LaunchReport &rep = r.report;
    rep.signature.clear();
    rep.selected = -1;
    rep.selectedName.clear();
    rep.profiled = false;
    rep.fromCache = false;
    rep.mode = runtime::ProfilingMode::Fully;
    rep.orch = runtime::Orchestration::Sync;
    rep.fused = false;
    rep.fusedJobs = 0;
    rep.startTime = 0;
    rep.endTime = 0;
    rep.totalUnits = 0;
    rep.profiledUnits = 0;
    rep.productiveUnits = 0;
    rep.extraBytes = 0;
    rep.eagerChunks = 0;
    rep.profiles.clear();
    rep.timeline.clear();
    rep.guardEvents.clear();
    rep.guardExcluded = 0;
    rep.guardRepairs = 0;
}

// ---- JobRing ---------------------------------------------------------

void
JobRing::grow()
{
    const std::size_t cap = slots.size();
    const std::size_t newCap = cap == 0 ? 16 : cap * 2;
    std::vector<detail::QueuedJob> next(newCap);
    for (std::size_t i = 0; i < count; ++i)
        next[i] = std::move(slots[(head + i) % cap]);
    slots = std::move(next);
    head = 0;
}

void
JobRing::push(detail::QueuedJob &&qj)
{
    if (count == slots.size())
        grow();
    slots[(head + count) % slots.size()] = std::move(qj);
    ++count;
}

detail::QueuedJob
JobRing::pop()
{
    detail::QueuedJob qj = std::move(slots[head]);
    head = (head + 1) % slots.size();
    --count;
    return qj;
}

detail::QueuedJob &
JobRing::at(std::size_t i)
{
    return slots[(head + i) % slots.size()];
}

const detail::QueuedJob &
JobRing::at(std::size_t i) const
{
    return slots[(head + i) % slots.size()];
}

detail::QueuedJob
JobRing::extract(std::size_t i)
{
    detail::QueuedJob qj = std::move(at(i));
    const std::size_t cap = slots.size();
    for (std::size_t j = i; j + 1 < count; ++j)
        slots[(head + j) % cap] = std::move(slots[(head + j + 1) % cap]);
    --count;
    return qj;
}

// ---- BufferPool ------------------------------------------------------

std::shared_ptr<detail::JobState>
BufferPool::acquireState(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu);
    const std::size_t n = states.size();
    for (std::size_t tries = 0; tries < n; ++tries) {
        if (scan >= n)
            scan = 0;
        std::shared_ptr<detail::JobState> &cand = states[scan++];
        if (cand.use_count() != 1)
            continue;
        // Only the pool references the block: no handle, no queued
        // shell.  Reset under the state's own mutex: every JobHandle
        // locks it once before dropping its reference, so this lock
        // orders the last holder's unlocked result() reads before the
        // reset (worker-side accesses already go through st.mu).
        {
            std::lock_guard<std::mutex> slock(cand->mu);
            cand->id = id;
            cand->phase.store(detail::JobState::Queued,
                              std::memory_order_relaxed);
            clearJobResult(cand->result);
        }
        ++stats_.reusedStates;
        return cand;
    }
    auto fresh = std::make_shared<detail::JobState>();
    fresh->id = id;
    ++stats_.freshStates;
    states.push_back(fresh);
    return fresh;
}

detail::QueuedJob
BufferPool::acquireShell()
{
    std::lock_guard<std::mutex> lock(mu);
    if (shells.empty()) {
        ++stats_.freshShells;
        return detail::QueuedJob();
    }
    ++stats_.reusedShells;
    detail::QueuedJob shell = std::move(shells.back());
    shells.pop_back();
    return shell;
}

void
BufferPool::releaseShell(detail::QueuedJob &&shell)
{
    // Capacity-preserving cleanup: strings/vectors keep their
    // storage, functions drop their captures, the state reference is
    // returned so the block can be recycled.
    shell.job.signature.clear();
    shell.job.units = 0;
    shell.job.args.clear();
    shell.job.opt = runtime::LaunchOptions();
    shell.job.ensureRegistered = nullptr;
    shell.job.done = nullptr;
    shell.job.deadlineNs = 0;
    shell.job.noBatch = false;
    shell.job.id = 0;
    shell.state.reset();
    shell.attempt = 0;
    shell.excluded.clear();
    shell.backoffNs = 0;
    shell.spentNs = 0;
    shell.enqueuedNs = 0;

    std::lock_guard<std::mutex> lock(mu);
    shells.push_back(std::move(shell));
}

BufferPool::Stats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats_;
}

} // namespace serve
} // namespace dysel
