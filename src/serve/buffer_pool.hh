/**
 * @file
 * Allocation-free hot-path storage for the dispatch service
 * (DESIGN §10).
 *
 * Two pieces, both owned per worker shard:
 *
 *  - BufferPool: freelists of job-state blocks and queued-job shells.
 *    A shell is a detail::QueuedJob whose strings, argument slots,
 *    and retry vectors keep their capacity as the shell cycles
 *    submitter -> ring -> worker -> freelist, so a steady-state
 *    submit copies into existing storage instead of allocating.
 *    Job states (the shared blocks behind JobHandle) are recycled
 *    once every external handle has dropped its reference
 *    (use_count() == 1 while the pool holds the only one).
 *
 *  - JobRing: a vector-backed FIFO replacing std::deque (whose
 *    per-block churn allocates on every few pushes).  Grows
 *    amortized; steady state pushes and pops never allocate.  Also
 *    supports order-preserving extraction from the middle, which the
 *    batcher uses to gather fusable members.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "job.hh"

namespace dysel {
namespace serve {

/** Reset @p r field by field, keeping string/vector capacity. */
void clearJobResult(JobResult &r);

/**
 * Vector-backed FIFO of queued jobs with wrap-around indexing.
 * Single-shard use only: the caller guards it with the shard lock.
 */
class JobRing
{
  public:
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    /** Append to the back (amortized growth; steady-state no alloc). */
    void push(detail::QueuedJob &&qj);

    /** Remove and return the front (ring must be non-empty). */
    detail::QueuedJob pop();

    /** The @p i-th job from the front (i < size()). */
    detail::QueuedJob &at(std::size_t i);
    const detail::QueuedJob &at(std::size_t i) const;

    /**
     * Remove and return the @p i-th job from the front, shifting
     * later jobs forward (order preserved).  O(size - i) moves.
     */
    detail::QueuedJob extract(std::size_t i);

  private:
    void grow();

    std::vector<detail::QueuedJob> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

/**
 * Per-shard freelist arena.  Thread-safe: submitters acquire under
 * the pool's own short lock; the shard's worker releases.
 */
class BufferPool
{
  public:
    struct Stats
    {
        /** States / shells served by allocating fresh storage. */
        std::uint64_t freshStates = 0;
        std::uint64_t freshShells = 0;
        /** States / shells served by recycling pooled storage.  In a
         * steady-state window fresh counts stay flat while reused
         * counts grow -- the allocation-free invariant the stress
         * test asserts. */
        std::uint64_t reusedStates = 0;
        std::uint64_t reusedShells = 0;
    };

    /**
     * A job state for a new job @p id: a recycled block whose every
     * external handle is gone, else a fresh allocation.  The pool
     * keeps one reference forever, so a block is reusable exactly
     * when its use_count() drops back to 1.
     */
    std::shared_ptr<detail::JobState> acquireState(std::uint64_t id);

    /** A recycled (or fresh) queued-job shell with retained capacity. */
    detail::QueuedJob acquireShell();

    /**
     * Return a consumed shell to the freelist.  Clears job fields in
     * a capacity-preserving way and drops the state reference.
     */
    void releaseShell(detail::QueuedJob &&shell);

    Stats stats() const;

  private:
    mutable std::mutex mu;
    std::vector<std::shared_ptr<detail::JobState>> states;
    std::size_t scan = 0; ///< round-robin reuse cursor over `states`
    std::vector<detail::QueuedJob> shells;
    Stats stats_;
};

} // namespace serve
} // namespace dysel
