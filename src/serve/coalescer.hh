/**
 * @file
 * Profiling coalescer: collapses concurrent micro-profiling of the
 * same selection key.
 *
 * When several in-flight jobs share a (kernel signature, device
 * fingerprint, size bucket) and none has a stored selection yet, each
 * would pay its own micro-profiling pass -- redundant work, since the
 * first pass's record serves all of them (DySel's premise is that
 * profiling amortizes across the workload, §2.2/§2.4).  The coalescer
 * makes exactly one of them the *leader*: the leader runs the
 * profiling launch, the *followers* block until the leader releases
 * the key, re-read the selection store, and ride the fresh record as
 * plain warm-started launches.
 *
 * A leader that fails (injected fault, guard storm) releases the key
 * without a record; one waiting follower then takes over leadership,
 * so a crashing leader never strands its followers.  Leaders never
 * wait on other keys, so follower waits cannot form a cycle.
 *
 * Thread-safe; one instance is shared by all dispatch-service
 * workers.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dysel {
namespace serve {

class ProfileCoalescer
{
  public:
    /** Outcome of an acquire() bid. */
    struct Ticket
    {
        /** This caller is the profiling leader for the key. */
        bool leader = false;
        /** Job id of the current leader (own id when leader). */
        std::uint64_t leaderId = 0;
    };

    /** Canonical coalescing key. */
    static std::string key(const std::string &signature,
                           const std::string &fingerprint,
                           unsigned bucket);

    /**
     * Bid for profiling leadership of @p key.  The first bidder wins
     * and must call release() when its profiling attempt is over
     * (success or failure); later bidders get the leader's job id
     * back and should awaitRelease() then re-check the store.
     */
    Ticket acquire(const std::string &key, std::uint64_t jobId);

    /**
     * Block until @p key has no leader.  Returns immediately when
     * nobody leads it.
     */
    void awaitRelease(const std::string &key);

    /** End the caller's leadership of @p key and wake its followers. */
    void release(const std::string &key);

    /** Keys currently led (for tests / introspection). */
    std::size_t inFlight() const;

  private:
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<std::string, std::uint64_t> leaders; ///< key -> job id
};

/**
 * RAII leadership: releases the key on destruction unless disarmed.
 * The dispatch service arms one around the leader's launch so every
 * exit path (fault, guard trip, exception) wakes the followers.
 */
class CoalesceLease
{
  public:
    CoalesceLease() = default;
    CoalesceLease(ProfileCoalescer &c, std::string key)
        : coalescer(&c), key_(std::move(key))
    {}
    CoalesceLease(const CoalesceLease &) = delete;
    CoalesceLease &operator=(const CoalesceLease &) = delete;
    CoalesceLease(CoalesceLease &&other) noexcept
        : coalescer(other.coalescer), key_(std::move(other.key_))
    {
        other.coalescer = nullptr;
    }
    CoalesceLease &operator=(CoalesceLease &&other) noexcept
    {
        if (this != &other) {
            if (coalescer)
                coalescer->release(key_);
            coalescer = other.coalescer;
            key_ = std::move(other.key_);
            other.coalescer = nullptr;
        }
        return *this;
    }
    ~CoalesceLease()
    {
        if (coalescer)
            coalescer->release(key_);
    }

  private:
    ProfileCoalescer *coalescer = nullptr;
    std::string key_;
};

} // namespace serve
} // namespace dysel
