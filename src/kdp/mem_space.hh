/**
 * @file
 * Memory spaces of the simulated devices.
 *
 * These mirror the spaces the paper's data-placement case studies
 * (PORPLE / Jang et al.) select among: global DRAM, read-only texture
 * path, per-work-group scratchpad, and small constant memory.
 */
#pragma once

#include <cstdint>

namespace dysel {
namespace kdp {

/** Where a buffer (or an access) lives on the device. */
enum class MemSpace : std::uint8_t {
    Global,     ///< off-chip DRAM, cached in L2 (and L1 on CPU)
    Texture,    ///< read-only path with its own cache (GPU)
    Scratchpad, ///< on-chip per-work-group memory (GPU shared / CPU L1)
    Constant,   ///< small broadcast-friendly read-only memory
};

/** Human-readable name for diagnostics. */
const char *memSpaceName(MemSpace space);

/** Number of distinct memory spaces. */
constexpr unsigned numMemSpaces = 4;

} // namespace kdp
} // namespace dysel
