/**
 * @file
 * Kernel argument lists.
 *
 * DySel needs to substitute sandbox / private-output buffers for
 * specific argument positions (the `sandbox_index` vector of the
 * registration API, Fig. 6a), so kernels receive their buffers through
 * an indexed, type-erased argument list rather than by closure capture.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "support/logging.hh"

#include "buffer.hh"

namespace dysel {
namespace kdp {

/** One kernel argument: a buffer reference or a scalar. */
class ArgValue
{
  public:
    ArgValue(BufferBase *buf) : value(buf) {}
    ArgValue(std::int64_t v) : value(v) {}
    ArgValue(double v) : value(v) {}

    bool isBuffer() const
    {
        return std::holds_alternative<BufferBase *>(value);
    }

    BufferBase *
    buffer() const
    {
        if (!isBuffer())
            support::panic("kernel argument is not a buffer");
        return std::get<BufferBase *>(value);
    }

    std::int64_t
    asInt() const
    {
        if (!std::holds_alternative<std::int64_t>(value))
            support::panic("kernel argument is not an integer");
        return std::get<std::int64_t>(value);
    }

    double
    asDouble() const
    {
        if (!std::holds_alternative<double>(value))
            support::panic("kernel argument is not a double");
        return std::get<double>(value);
    }

  private:
    std::variant<BufferBase *, std::int64_t, double> value;
};

/**
 * Positional kernel arguments.  A shallow value type: buffer slots
 * point at caller-owned buffers, so the runtime can rebind a slot to a
 * sandbox clone cheaply.
 */
class KernelArgs
{
  public:
    KernelArgs() = default;

    /** Append a buffer argument. */
    KernelArgs &
    add(BufferBase &buf)
    {
        slots.emplace_back(&buf);
        return *this;
    }

    /** Append an integer scalar argument. */
    KernelArgs &
    add(std::int64_t v)
    {
        slots.emplace_back(v);
        return *this;
    }

    /** Append an int (convenience overload). */
    KernelArgs &
    add(int v)
    {
        return add(static_cast<std::int64_t>(v));
    }

    /** Append a floating-point scalar argument. */
    KernelArgs &
    add(double v)
    {
        slots.emplace_back(v);
        return *this;
    }

    /** Number of arguments. */
    std::size_t size() const { return slots.size(); }

    /** Drop all arguments, keeping slot capacity for reuse. */
    void clear() { slots.clear(); }

    /** Typed buffer access with checked downcast. */
    template <typename T>
    Buffer<T> &
    buf(std::size_t i) const
    {
        BufferBase *b = at(i).buffer();
        if (b->elemType() != typeid(T))
            support::panic("kernel argument %zu has wrong element type", i);
        return *static_cast<Buffer<T> *>(b);
    }

    /** Untyped buffer access. */
    BufferBase &
    bufBase(std::size_t i) const
    {
        return *at(i).buffer();
    }

    /** Integer scalar access. */
    std::int64_t scalarInt(std::size_t i) const { return at(i).asInt(); }

    /** Floating-point scalar access. */
    double scalarDouble(std::size_t i) const { return at(i).asDouble(); }

    /** Rebind buffer slot @p i to @p buf (sandbox substitution). */
    void
    rebind(std::size_t i, BufferBase &buf)
    {
        if (!at(i).isBuffer())
            support::panic("cannot rebind non-buffer argument %zu", i);
        slots[i] = ArgValue(&buf);
    }

  private:
    const ArgValue &
    at(std::size_t i) const
    {
        if (i >= slots.size())
            support::panic("kernel argument index %zu out of range (%zu)",
                           i, slots.size());
        return slots[i];
    }

    std::vector<ArgValue> slots;
};

} // namespace kdp
} // namespace dysel
