/**
 * @file
 * Dynamic execution traces.
 *
 * A kernel executes for real; the context records every memory access,
 * branch outcome, and bulk ALU-op count into a WorkGroupTrace.  Device
 * timing models replay the trace to charge simulated cycles (cache
 * simulation on CPU, coalescing and divergence analysis on GPU).  The
 * trace is per-work-group and reused across work-groups to bound
 * memory.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "mem_space.hh"

namespace dysel {
namespace kdp {

/** One dynamic memory access, in execution order. */
struct MemAccess
{
    std::uint64_t addr;     ///< virtual device address
    std::uint32_t lane;     ///< linear work-item id within the group
    std::uint32_t seq;      ///< per-lane access sequence number
    std::uint16_t bytes;    ///< access width
    MemSpace space;         ///< which memory the access targets
    bool write;             ///< store (or atomic RMW)
    bool atomic;            ///< atomic operation
};

/** One dynamic branch outcome (used for divergence analysis). */
struct BranchEvent
{
    std::uint32_t lane;     ///< work-item that evaluated the branch
    std::uint32_t seq;      ///< per-lane branch sequence number
    bool taken;             ///< outcome
};

/**
 * Everything recorded while one work-group of one kernel variant
 * executed.
 */
struct WorkGroupTrace
{
    /** Memory accesses in actual execution order. */
    std::vector<MemAccess> accesses;

    /** Branch outcomes in execution order. */
    std::vector<BranchEvent> branches;

    /** ALU-op count per lane (indexed by linear local id). */
    std::vector<std::uint64_t> laneFlops;

    /** Number of work-group barriers executed. */
    std::uint32_t barriers = 0;

    /** Bytes of scratchpad allocated by the group. */
    std::uint64_t scratchBytes = 0;

    /** Clear all recordings and size lane arrays for @p group_size. */
    void reset(std::uint32_t group_size);

    /** Sum of per-lane ALU ops. */
    std::uint64_t totalFlops() const;

    /** Number of recorded accesses to @p space. */
    std::uint64_t countSpace(MemSpace space) const;
};

} // namespace kdp
} // namespace dysel
