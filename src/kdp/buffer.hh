/**
 * @file
 * Device buffers.
 *
 * A Buffer<T> owns real host-side storage (kernels really compute) and
 * carries a virtual device address range so the cache and coalescing
 * models see realistic addresses.  Buffers know their memory space;
 * data-placement variants differ only in the space of their buffers.
 *
 * The DySel runtime clones buffers to build sandboxes (hybrid
 * profiling) and private output spaces (swap profiling); a clone gets a
 * fresh address range, like a separate allocation would.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "support/logging.hh"

#include "mem_space.hh"

namespace dysel {
namespace kdp {

/**
 * Type-erased base so the runtime can pass buffers through kernel
 * argument lists and clone/swap them without knowing T.
 */
class BufferBase
{
  public:
    virtual ~BufferBase() = default;

    /** Virtual device base address of this allocation. */
    std::uint64_t baseAddr() const { return base; }

    /** Element size in bytes. */
    std::uint32_t elemSize() const { return elemBytes; }

    /** Number of elements. */
    std::uint64_t size() const { return count; }

    /** Total bytes of the allocation. */
    std::uint64_t sizeBytes() const { return count * elemBytes; }

    /** Memory space the buffer lives in. */
    MemSpace space() const { return memSpace; }

    /** Move the buffer to a different memory space (re-placement). */
    void setSpace(MemSpace s) { memSpace = s; }

    /** Debug name. */
    const std::string &name() const { return label; }

    /**
     * Trailing elements of the allocation reserved as a guard
     * redzone (clonePadded() sets this); kernels own only the first
     * size() - redzone() elements.  0 for ordinary buffers.
     */
    std::uint64_t redzone() const { return redzoneCount; }

    /** Elements that carry data (size() minus the redzone). */
    std::uint64_t dataElems() const { return size() - redzoneCount; }

    /** Deep copy with a fresh address range. */
    virtual std::unique_ptr<BufferBase> clone() const = 0;

    /**
     * Deep copy extended by @p extra trailing redzone elements (a
     * fresh address range, like clone()).  The redzone contents are
     * whatever the guard paints them with; kernels indexing past
     * dataElems() land in it instead of out of the allocation.
     */
    virtual std::unique_ptr<BufferBase>
    clonePadded(std::uint64_t extra) const = 0;

    /** Copy contents from @p other (sizes and types must match). */
    virtual void copyFrom(const BufferBase &other) = 0;

    /** Raw byte view of the storage (guard checks, fault injection). */
    virtual void *rawData() = 0;
    const void *rawData() const
    {
        return const_cast<BufferBase *>(this)->rawData();
    }

    /** typeid of the element type, for checked downcasts. */
    virtual const std::type_info &elemType() const = 0;

  protected:
    BufferBase(std::uint64_t n, std::uint32_t elem_bytes, MemSpace s,
               std::string name);

    /** Allocate a fresh virtual address range of @p bytes. */
    static std::uint64_t allocAddr(std::uint64_t bytes);

    /** Mark the last @p n elements as redzone (clonePadded). */
    void setRedzone(std::uint64_t n) { redzoneCount = n; }

  private:
    std::uint64_t base;
    std::uint64_t count;
    std::uint32_t elemBytes;
    MemSpace memSpace;
    std::string label;
    std::uint64_t redzoneCount = 0;
};

/**
 * Typed device buffer with real storage.
 *
 * @tparam T element type (trivially copyable)
 */
template <typename T>
class Buffer : public BufferBase
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "device buffers hold trivially copyable elements");

  public:
    /** Allocate @p n elements, zero-initialized, in @p s. */
    Buffer(std::uint64_t n, MemSpace s = MemSpace::Global,
           std::string name = "buf")
        : BufferBase(n, sizeof(T), s, std::move(name)), data(n)
    {}

    /** Direct host access (generators, reference checkers). */
    T *host() { return data.data(); }
    const T *host() const { return data.data(); }

    /** Checked element access from host code. */
    T &
    at(std::uint64_t i)
    {
        if (i >= size())
            support::panic("host access out of bounds: %llu >= %llu in %s",
                           (unsigned long long)i,
                           (unsigned long long)size(), name().c_str());
        return data[i];
    }

    const T &
    at(std::uint64_t i) const
    {
        return const_cast<Buffer *>(this)->at(i);
    }

    /** Device address of element @p i. */
    std::uint64_t addrOf(std::uint64_t i) const
    {
        return baseAddr() + i * sizeof(T);
    }

    std::unique_ptr<BufferBase>
    clone() const override
    {
        auto copy = std::make_unique<Buffer<T>>(size(), space(),
                                                name() + ".clone");
        copy->data = data;
        return copy;
    }

    std::unique_ptr<BufferBase>
    clonePadded(std::uint64_t extra) const override
    {
        auto copy = std::make_unique<Buffer<T>>(size() + extra, space(),
                                                name() + ".clone");
        std::copy(data.begin(), data.end(), copy->data.begin());
        copy->setRedzone(extra);
        return copy;
    }

    void
    copyFrom(const BufferBase &other) override
    {
        if (other.elemType() != typeid(T) || other.size() != size())
            support::panic("Buffer::copyFrom type/size mismatch (%s <- %s)",
                           name().c_str(), other.name().c_str());
        data = static_cast<const Buffer<T> &>(other).data;
    }

    const std::type_info &elemType() const override { return typeid(T); }

    void *rawData() override { return data.data(); }

    /** Fill with a constant. */
    void
    fill(const T &v)
    {
        std::fill(data.begin(), data.end(), v);
    }

  private:
    std::vector<T> data;
};

} // namespace kdp
} // namespace dysel
