/**
 * @file
 * Kernel execution contexts.
 *
 * A kernel variant is a C++ function executed once per work-group.  It
 * receives a GroupCtx through which all device memory traffic, ALU
 * work, branches, barriers, and scratchpad allocation flow; the
 * context performs the real data movement *and* records a trace the
 * device timing models replay.
 *
 * Work-items are identified by their linear local id ("lane").  GPU
 * style kernels iterate lanes with forEachItem(); CPU schedule
 * variants write their own loops over lanes and kernel loops in the
 * order the schedule dictates, which is exactly what the trace then
 * reflects.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "support/logging.hh"

#include "args.hh"
#include "buffer.hh"
#include "trace.hh"

namespace dysel {
namespace kdp {

class GroupCtx;

/**
 * Handle to a per-work-group scratchpad array of T.
 *
 * Alloc'd from the group's scratch arena; accesses are traced with
 * MemSpace::Scratchpad.
 */
template <typename T>
class Local
{
  public:
    Local() = default;

    /** Number of elements. */
    std::uint64_t size() const { return count; }

    // Access helpers are defined after GroupCtx below.
    inline T get(GroupCtx &ctx, std::uint64_t i, std::uint32_t lane) const;
    inline void set(GroupCtx &ctx, std::uint64_t i, T v,
                    std::uint32_t lane) const;

  private:
    friend class GroupCtx;
    std::uint64_t offset = 0;   ///< byte offset into the scratch arena
    std::uint64_t count = 0;
};

/**
 * Per-work-group execution context; the kernel's window onto the
 * device.
 */
class GroupCtx
{
  public:
    /**
     * @param group_id    this group's id in the variant's own grid
     * @param group_size  work-items per group (linear)
     * @param wa_factor   workload units this group covers
     * @param trace       recording target (reset by the caller)
     */
    GroupCtx(std::uint64_t group_id, std::uint32_t group_size,
             std::uint64_t wa_factor, WorkGroupTrace *trace)
        : groupId(group_id), groupSz(group_size), waf(wa_factor),
          rec(trace), laneSeq(group_size, 0), laneBranchSeq(group_size, 0)
    {
    }

    /** This group's id within the variant's grid. */
    std::uint64_t group() const { return groupId; }

    /**
     * A fresh context for the same physical group re-addressed as
     * @p group_id, sharing the trace recorder.  Fused launches use
     * this to hand each member kernel a context whose group id (and
     * hence unitBase/globalId) is local to the member's own grid.
     */
    GroupCtx
    rebased(std::uint64_t group_id) const
    {
        return GroupCtx(group_id, groupSz, waf, rec);
    }

    /** Work-items per group. */
    std::uint32_t groupSize() const { return groupSz; }

    /** Workload units per group (the variant's work assignment factor). */
    std::uint64_t waFactor() const { return waf; }

    /** First workload unit this group covers. */
    std::uint64_t unitBase() const { return groupId * waf; }

    /** Global linear id of @p lane. */
    std::uint64_t
    globalId(std::uint32_t lane) const
    {
        return groupId * groupSz + lane;
    }

    /** Traced load of element @p idx of @p buf by @p lane. */
    template <typename T>
    T
    load(const Buffer<T> &buf, std::uint64_t idx, std::uint32_t lane)
    {
        record(buf.addrOf(idx), sizeof(T), buf.space(), lane, false, false);
        return buf.at(idx);
    }

    /** Traced store. */
    template <typename T>
    void
    store(Buffer<T> &buf, std::uint64_t idx, T v, std::uint32_t lane)
    {
        record(buf.addrOf(idx), sizeof(T), buf.space(), lane, true, false);
        buf.at(idx) = v;
    }

    /**
     * Traced wide load of @p count consecutive elements starting at
     * @p idx (a float4-style vector load: one memory transaction).
     */
    template <typename T>
    void
    loadSpan(const Buffer<T> &buf, std::uint64_t idx, std::uint32_t count,
             std::uint32_t lane, T *out)
    {
        record(buf.addrOf(idx),
               static_cast<std::uint16_t>(count * sizeof(T)), buf.space(),
               lane, false, false);
        for (std::uint32_t i = 0; i < count; ++i)
            out[i] = buf.at(idx + i);
    }

    /** Traced atomic add; returns the old value. */
    template <typename T>
    T
    atomicAdd(Buffer<T> &buf, std::uint64_t idx, T v, std::uint32_t lane)
    {
        record(buf.addrOf(idx), sizeof(T), buf.space(), lane, true, true);
        T old = buf.at(idx);
        buf.at(idx) = old + v;
        return old;
    }

    /** Charge @p n ALU operations to @p lane. */
    void
    flops(std::uint32_t lane, std::uint64_t n)
    {
        checkLane(lane);
        rec->laneFlops[lane] += n;
    }

    /** Record a branch outcome for divergence analysis. */
    void
    branch(std::uint32_t lane, bool taken)
    {
        checkLane(lane);
        rec->branches.push_back({lane, laneBranchSeq[lane]++, taken});
    }

    /** Work-group barrier. */
    void barrier() { ++rec->barriers; }

    /**
     * Allocate a scratchpad array of @p n elements of T for this
     * group.
     */
    template <typename T>
    Local<T>
    allocLocal(std::uint64_t n)
    {
        Local<T> l;
        l.offset = arena.size();
        l.count = n;
        arena.resize(arena.size() + n * sizeof(T));
        rec->scratchBytes = arena.size();
        return l;
    }

    /** Scratchpad bytes allocated so far. */
    std::uint64_t scratchBytes() const { return arena.size(); }

    /** @name Scratchpad access plumbing used by Local<T>. */
    /// @{
    template <typename T>
    T
    localLoad(const Local<T> &l, std::uint64_t i, std::uint32_t lane)
    {
        checkLocal(l, i);
        record(scratchBase + l.offset + i * sizeof(T), sizeof(T),
               MemSpace::Scratchpad, lane, false, false);
        T v;
        std::memcpy(&v, arena.data() + l.offset + i * sizeof(T), sizeof(T));
        return v;
    }

    template <typename T>
    void
    localStore(const Local<T> &l, std::uint64_t i, T v, std::uint32_t lane)
    {
        checkLocal(l, i);
        record(scratchBase + l.offset + i * sizeof(T), sizeof(T),
               MemSpace::Scratchpad, lane, true, false);
        std::memcpy(arena.data() + l.offset + i * sizeof(T), &v, sizeof(T));
    }
    /// @}

  private:
    /// Virtual base address of scratchpad arenas; disjoint from the
    /// global buffer allocator's range by construction.
    static constexpr std::uint64_t scratchBase = 0x0008'0000'0000'0000ull;

    void
    checkLane(std::uint32_t lane) const
    {
        if (lane >= groupSz)
            support::panic("lane %u out of range (group size %u)",
                           lane, groupSz);
    }

    template <typename T>
    void
    checkLocal(const Local<T> &l, std::uint64_t i) const
    {
        if (i >= l.count)
            support::panic("scratchpad access out of bounds: %llu >= %llu",
                           (unsigned long long)i,
                           (unsigned long long)l.count);
    }

    void
    record(std::uint64_t addr, std::uint16_t bytes, MemSpace space,
           std::uint32_t lane, bool write, bool atomic)
    {
        checkLane(lane);
        rec->accesses.push_back(
            {addr, lane, laneSeq[lane]++, bytes, space, write, atomic});
    }

    std::uint64_t groupId;
    std::uint32_t groupSz;
    std::uint64_t waf;
    WorkGroupTrace *rec;
    std::vector<std::uint32_t> laneSeq;
    std::vector<std::uint32_t> laneBranchSeq;
    std::vector<char> arena;
};

template <typename T>
T
Local<T>::get(GroupCtx &ctx, std::uint64_t i, std::uint32_t lane) const
{
    return ctx.localLoad(*this, i, lane);
}

template <typename T>
void
Local<T>::set(GroupCtx &ctx, std::uint64_t i, T v, std::uint32_t lane) const
{
    ctx.localStore(*this, i, v, lane);
}

/**
 * Convenience wrapper binding a GroupCtx to one lane, for kernels
 * written in the one-body-per-work-item style.
 */
class ItemCtx
{
  public:
    ItemCtx(GroupCtx &g, std::uint32_t lane) : ctx(g), laneId(lane) {}

    std::uint32_t localId() const { return laneId; }
    std::uint64_t globalId() const { return ctx.globalId(laneId); }
    GroupCtx &group() const { return ctx; }

    template <typename T>
    T load(const Buffer<T> &b, std::uint64_t i) const
    {
        return ctx.load(b, i, laneId);
    }

    template <typename T>
    void store(Buffer<T> &b, std::uint64_t i, T v) const
    {
        ctx.store(b, i, v, laneId);
    }

    template <typename T>
    T atomicAdd(Buffer<T> &b, std::uint64_t i, T v) const
    {
        return ctx.atomicAdd(b, i, v, laneId);
    }

    void flops(std::uint64_t n) const { ctx.flops(laneId, n); }
    void branch(bool taken) const { ctx.branch(laneId, taken); }

    template <typename T>
    T localGet(const Local<T> &l, std::uint64_t i) const
    {
        return l.get(ctx, i, laneId);
    }

    template <typename T>
    void localSet(const Local<T> &l, std::uint64_t i, T v) const
    {
        l.set(ctx, i, v, laneId);
    }

  private:
    GroupCtx &ctx;
    std::uint32_t laneId;
};

/**
 * Run @p body once per work-item of the group, in lane order (the
 * lock-step GPU convention).
 */
template <typename Body>
void
forEachItem(GroupCtx &g, Body &&body)
{
    for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
        ItemCtx item(g, lane);
        body(item);
    }
}

} // namespace kdp
} // namespace dysel
