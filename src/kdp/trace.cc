#include "trace.hh"

#include <numeric>

namespace dysel {
namespace kdp {

void
WorkGroupTrace::reset(std::uint32_t group_size)
{
    accesses.clear();
    branches.clear();
    laneFlops.assign(group_size, 0);
    barriers = 0;
    scratchBytes = 0;
}

std::uint64_t
WorkGroupTrace::totalFlops() const
{
    return std::accumulate(laneFlops.begin(), laneFlops.end(),
                           std::uint64_t{0});
}

std::uint64_t
WorkGroupTrace::countSpace(MemSpace space) const
{
    std::uint64_t n = 0;
    for (const auto &a : accesses)
        if (a.space == space)
            ++n;
    return n;
}

} // namespace kdp
} // namespace dysel
