#include "mem_space.hh"

namespace dysel {
namespace kdp {

const char *
memSpaceName(MemSpace space)
{
    switch (space) {
      case MemSpace::Global: return "global";
      case MemSpace::Texture: return "texture";
      case MemSpace::Scratchpad: return "scratchpad";
      case MemSpace::Constant: return "constant";
    }
    return "?";
}

} // namespace kdp
} // namespace dysel
