#include "buffer.hh"

namespace dysel {
namespace kdp {

namespace {

/// Process-wide bump allocator for virtual device addresses.  4 KiB
/// alignment keeps allocations on distinct pages like a real driver.
std::atomic<std::uint64_t> g_nextAddr{0x1000};

} // namespace

BufferBase::BufferBase(std::uint64_t n, std::uint32_t elem_bytes, MemSpace s,
                       std::string name)
    : base(allocAddr(n * elem_bytes)), count(n), elemBytes(elem_bytes),
      memSpace(s), label(std::move(name))
{
}

std::uint64_t
BufferBase::allocAddr(std::uint64_t bytes)
{
    const std::uint64_t aligned = (bytes + 4095) & ~std::uint64_t{4095};
    return g_nextAddr.fetch_add(aligned + 4096,
                                std::memory_order_relaxed);
}

} // namespace kdp
} // namespace dysel
