/**
 * @file
 * Kernel variants.
 *
 * A "kernel" in DySel is a signature with multiple registered variants
 * (different schedules, tilings, vector widths, placements...).  Each
 * variant is a real function plus the execution-facing metadata the
 * device models and the DySel runtime need: the work assignment
 * factor (how many workload units one work-group covers), the group
 * size, and microarchitectural traits.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "args.hh"
#include "context.hh"

namespace dysel {
namespace kdp {

/** Per-work-group kernel entry point. */
using KernelFn = std::function<void(GroupCtx &, const KernelArgs &)>;

/**
 * Microarchitectural traits of a variant, as a compiler would emit
 * them.  The device timing models consume these.
 */
struct VariantTraits
{
    /** SIMD width the CPU code was vectorized to (1 = scalar). */
    unsigned vectorWidth = 1;

    /** Registers per thread (GPU occupancy input). */
    unsigned regsPerThread = 32;

    /**
     * Statically declared scratchpad bytes per work-group (GPU
     * occupancy input; the dynamic allocation is also measured).
     */
    std::uint64_t scratchBytes = 0;

    /** Variant contains global atomic operations. */
    bool usesAtomics = false;

    /**
     * Variant issues software-prefetch instructions.  A latency win
     * on the GPU (scoreboarded loads overlap), pure instruction
     * overhead on the CPU where the hardware prefetchers already
     * cover streaming patterns (paper §4.3).
     */
    bool softwarePrefetch = false;

    /** Variant routes some loads through the texture path. */
    bool usesTexture = false;
};

/**
 * One registered implementation of a kernel signature.
 */
struct KernelVariant
{
    /** Unique (per-signature) variant name, e.g. "tiled16_coarse4". */
    std::string name;

    /** The implementation. */
    KernelFn fn;

    /**
     * Work assignment factor: workload units covered by one
     * work-group of this variant (paper Fig. 6a, `wa_factor`).
     * The base version of a kernel has factor 1.
     */
    std::uint64_t waFactor = 1;

    /** Work-items per work-group. */
    std::uint32_t groupSize = 64;

    /** Compiler-reported traits. */
    VariantTraits traits;

    /**
     * Positions of output buffer arguments that need sandboxing /
     * private copies in partial-productive profiling (paper Fig. 6a,
     * `sandbox_index`).
     */
    std::vector<std::size_t> sandboxIndex;

    /** Number of work-groups this variant needs for @p units work. */
    std::uint64_t
    groupsFor(std::uint64_t units) const
    {
        return (units + waFactor - 1) / waFactor;
    }
};

} // namespace kdp
} // namespace dysel
