/**
 * @file
 * A minimal deterministic discrete-event engine.
 *
 * Devices and the DySel orchestrator schedule callbacks at virtual
 * times; the engine fires them in (time, insertion order).  Single
 * threaded on purpose: determinism matters more than wall-clock speed
 * for a timing model, and kernel execution cost dominates anyway.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "time.hh"

namespace dysel {
namespace sim {

/** Deterministic discrete-event loop. */
class EventEngine
{
  public:
    using Callback = std::function<void()>;

    /** Current virtual time. */
    TimeNs now() const { return currentTime; }

    /**
     * Schedule @p fn at absolute time @p when (>= now; earlier times
     * are clamped to now).
     */
    void schedule(TimeNs when, Callback fn);

    /** Schedule @p fn @p delay nanoseconds from now. */
    void scheduleAfter(TimeNs delay, Callback fn);

    /** Run until no events remain. */
    void run();

    /** True when no events are pending. */
    bool idle() const { return queue.empty(); }

    /** Number of events dispatched since construction. */
    std::uint64_t eventsFired() const { return fired; }

  private:
    struct Event
    {
        TimeNs when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue;
    TimeNs currentTime = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
    bool running = false;
};

} // namespace sim
} // namespace dysel
