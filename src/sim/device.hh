/**
 * @file
 * Abstract device interface shared by the CPU and GPU simulators.
 *
 * A device executes kernel work-groups for real (producing real
 * outputs) while charging virtual time from its timing model.  It is
 * driven by a single deterministic event engine; the DySel
 * orchestrator schedules its own "host" actions on the same engine so
 * host/device interleavings (stream polling, eager dispatch) are
 * simulated faithfully.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "event_engine.hh"
#include "fault.hh"
#include "launch.hh"
#include "time.hh"

namespace dysel {
namespace sim {

/** Broad device class; selects the profiling timer implementation. */
enum class DeviceKind {
    Cpu, ///< host-timer path (§3.2)
    Gpu, ///< in-kernel clock path (§3.3, Fig. 7)
};

/** Common interface of the simulated devices. */
class Device
{
  public:
    virtual ~Device() = default;

    /** Human-readable device name. */
    virtual const std::string &name() const = 0;

    /**
     * Stable identity string derived from the device configuration
     * (kind, name, compute units, clock, cache geometry).  Equal
     * fingerprints mean "selections made on one are valid on the
     * other"; the persistent selection store keys its records by this.
     */
    virtual std::string fingerprint() const = 0;

    /** Broad device class. */
    virtual DeviceKind kind() const = 0;

    /**
     * Number of independent compute units (CPU cores / GPU SMs); the
     * safe-point scaling in §3.4 rounds profiling work-group counts
     * to a multiple of this.
     */
    virtual unsigned computeUnits() const = 0;

    /** Enqueue a launch.  Completion arrives via launch.onComplete. */
    virtual void submit(Launch launch) = 0;

    /** Fixed virtual cost of one kernel launch from the host. */
    virtual TimeNs launchOverheadNs() const = 0;

    /**
     * Virtual latency of one host-side status query of a stream
     * (cudaStreamQuery for the GPU; effectively zero on the CPU where
     * the runtime shares the host).
     */
    virtual TimeNs hostQueryLatencyNs() const = 0;

    /** The engine driving this device. */
    EventEngine &engine() { return events; }

    /** Current virtual time. */
    TimeNs now() const { return events.now(); }

    /** Run the event loop until everything submitted has completed. */
    void run() { events.run(); }

    /**
     * Attach a fault injector consulted on every submit(); nullptr
     * (the default) disables injection.  The injector must outlive
     * the device.
     */
    void setFaultInjector(FaultInjector *injector) { faults = injector; }

    /** The attached fault injector, if any. */
    FaultInjector *faultInjector() const { return faults; }

    /**
     * A launch-aborting fault (LaunchFail or Hang) fired since the
     * last takeFault().  The runtime checks this after run(): an
     * aborted launch never completes, so the orchestrator would
     * otherwise mistake the drained event queue for a lost wakeup.
     */
    bool faulted() const { return pendingFault.has_value(); }

    /** Consume and return the pending launch-aborting fault. */
    std::optional<FaultEvent> takeFault()
    {
        auto fault = std::move(pendingFault);
        pendingFault.reset();
        return fault;
    }

  protected:
    /**
     * Consult the injector for @p launch (device subclasses call this
     * from submit()).  At most one launch-aborting fault is raised
     * per run: once a pending fault exists the attempt is doomed, so
     * further draws would only skew the event-log/metrics
     * reconciliation.  Returns the fault to apply.
     */
    FaultKind checkLaunchFault(const Launch &launch)
    {
        if (!faults || pendingFault)
            return FaultKind::None;
        const FaultKind kind = faults->decide(
            name(), launch.variant ? launch.variant->name : "?", now());
        if (kind == FaultKind::LaunchFail || kind == FaultKind::Hang) {
            pendingFault = FaultEvent{
                kind, name(), launch.variant ? launch.variant->name : "?",
                now()};
        }
        return kind;
    }

    EventEngine events;
    FaultInjector *faults = nullptr;
    std::optional<FaultEvent> pendingFault;
};

} // namespace sim
} // namespace dysel
