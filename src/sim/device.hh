/**
 * @file
 * Abstract device interface shared by the CPU and GPU simulators.
 *
 * A device executes kernel work-groups for real (producing real
 * outputs) while charging virtual time from its timing model.  It is
 * driven by a single deterministic event engine; the DySel
 * orchestrator schedules its own "host" actions on the same engine so
 * host/device interleavings (stream polling, eager dispatch) are
 * simulated faithfully.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "event_engine.hh"
#include "fault.hh"
#include "launch.hh"
#include "time.hh"

namespace dysel {
namespace sim {

/** Broad device class; selects the profiling timer implementation. */
enum class DeviceKind {
    Cpu, ///< host-timer path (§3.2)
    Gpu, ///< in-kernel clock path (§3.3, Fig. 7)
};

/** Common interface of the simulated devices. */
class Device
{
  public:
    virtual ~Device() = default;

    /** Human-readable device name. */
    virtual const std::string &name() const = 0;

    /**
     * Stable identity string derived from the device configuration
     * (kind, name, compute units, clock, cache geometry).  Equal
     * fingerprints mean "selections made on one are valid on the
     * other"; the persistent selection store keys its records by this.
     */
    virtual std::string fingerprint() const = 0;

    /** Broad device class. */
    virtual DeviceKind kind() const = 0;

    /**
     * Number of independent compute units (CPU cores / GPU SMs); the
     * safe-point scaling in §3.4 rounds profiling work-group counts
     * to a multiple of this.
     */
    virtual unsigned computeUnits() const = 0;

    /** Enqueue a launch.  Completion arrives via launch.onComplete. */
    virtual void submit(Launch launch) = 0;

    /** Fixed virtual cost of one kernel launch from the host. */
    virtual TimeNs launchOverheadNs() const = 0;

    /**
     * Virtual latency of one host-side status query of a stream
     * (cudaStreamQuery for the GPU; effectively zero on the CPU where
     * the runtime shares the host).
     */
    virtual TimeNs hostQueryLatencyNs() const = 0;

    /** The engine driving this device. */
    EventEngine &engine() { return events; }

    /** Current virtual time. */
    TimeNs now() const { return events.now(); }

    /** Run the event loop until everything submitted has completed. */
    void run() { events.run(); }

    /**
     * Attach a fault injector consulted on every submit(); nullptr
     * (the default) disables injection.  The injector must outlive
     * the device.
     */
    void setFaultInjector(FaultInjector *injector) { faults = injector; }

    /** The attached fault injector, if any. */
    FaultInjector *faultInjector() const { return faults; }

    /**
     * A launch-aborting fault (LaunchFail or Hang) fired since the
     * last takeFault().  The runtime checks this after run(): an
     * aborted launch never completes, so the orchestrator would
     * otherwise mistake the drained event queue for a lost wakeup.
     */
    bool faulted() const { return pendingFault.has_value(); }

    /** Consume and return the pending launch-aborting fault. */
    std::optional<FaultEvent> takeFault()
    {
        auto fault = std::move(pendingFault);
        pendingFault.reset();
        return fault;
    }

  protected:
    /**
     * Consult the injector for @p launch (device subclasses call this
     * from submit()).  At most one launch-aborting fault is raised
     * per run: once a pending fault exists the attempt is doomed, so
     * further draws would only skew the event-log/metrics
     * reconciliation.  Returns the fault to apply.
     */
    FaultKind checkLaunchFault(const Launch &launch)
    {
        if (!faults || pendingFault)
            return FaultKind::None;
        const FaultKind kind = faults->decide(
            name(), launch.variant ? launch.variant->name : "?", now());
        if (kind == FaultKind::LaunchFail || kind == FaultKind::Hang) {
            FaultEvent ev;
            ev.kind = kind;
            ev.device = name();
            ev.variant = launch.variant ? launch.variant->name : "?";
            ev.time = now();
            pendingFault = std::move(ev);
        }
        return kind;
    }

    /**
     * Consult the injector for a persistent variant-level fault of
     * @p launch's variant (device subclasses call this from submit()
     * after checkLaunchFault()).
     *
     * KernelHang is returned to the caller, which must drop the
     * launch and charge the watchdog stall itself; unlike a device
     * Hang it does NOT raise pendingFault -- the slice is contained,
     * the launch attempt as a whole is not doomed.  The output-
     * corrupting kinds are armed here: the launch's onComplete is
     * wrapped so the corruption lands after the kernel really ran,
     * overwriting computed results the way a buggy store would.
     * Every *applied* fault is logged (an OobWrite against a buffer
     * without a redzone has nowhere to land, so it neither applies
     * nor logs); that keeps the injector log reconcilable 1:1 with
     * the guard's detections.
     */
    VariantFaultKind checkVariantFault(Launch &launch)
    {
        if (!faults || !launch.variant)
            return VariantFaultKind::None;
        const VariantFaultKind kind =
            faults->variantFaultOf(launch.variant->name);
        if (kind == VariantFaultKind::None)
            return kind;
        if (kind == VariantFaultKind::KernelHang) {
            faults->logVariantFault(kind, name(), launch.variant->name,
                                    now());
            return kind;
        }
        // Output-corrupting kinds: find the output buffers this
        // fault can actually reach.
        std::vector<std::size_t> targets;
        for (std::size_t idx : launch.variant->sandboxIndex) {
            const kdp::BufferBase &buf = launch.args.bufBase(idx);
            if (buf.dataElems() == 0)
                continue;
            if (kind == VariantFaultKind::OobWrite && buf.redzone() == 0)
                continue;
            targets.push_back(idx);
        }
        if (targets.empty())
            return VariantFaultKind::None;
        faults->logVariantFault(kind, name(), launch.variant->name,
                                now());
        auto orig = std::move(launch.onComplete);
        kdp::KernelArgs args = launch.args; // shallow; buffers outlive
        launch.onComplete = [args, targets, kind,
                             orig](const LaunchStats &stats) {
            for (std::size_t idx : targets)
                applyOutputFault(kind, args.bufBase(idx));
            if (orig)
                orig(stats);
        };
        return kind;
    }

    /** Scribble @p kind's signature bytes into @p buf. */
    static void applyOutputFault(VariantFaultKind kind,
                                 kdp::BufferBase &buf)
    {
        auto *bytes = static_cast<unsigned char *>(buf.rawData());
        const std::uint64_t elem = buf.elemSize();
        if (kind == VariantFaultKind::OobWrite) {
            // Trash the redzone: an out-of-bounds store past the end
            // of the output allocation.
            std::memset(bytes + buf.dataElems() * elem, 0xdb,
                        buf.redzone() * elem);
            return;
        }
        // Garble a prefix of the data region.  0xff-filled floats are
        // NaN (the NaN screen's prey); 0xdb-filled ones are huge but
        // finite garbage (the cross-check's prey).
        const std::uint64_t n = std::min<std::uint64_t>(
            buf.dataElems(), 64);
        const unsigned char pattern =
            kind == VariantFaultKind::NanOutput ? 0xff : 0xdb;
        std::memset(bytes, pattern, n * elem);
    }

    EventEngine events;
    FaultInjector *faults = nullptr;
    std::optional<FaultEvent> pendingFault;
};

} // namespace sim
} // namespace dysel
