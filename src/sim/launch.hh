/**
 * @file
 * Device-facing launch requests and completion records.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "kdp/args.hh"
#include "kdp/kernel.hh"

#include "time.hh"

namespace dysel {
namespace sim {

/** Completion record of one launch. */
struct LaunchStats
{
    /** Virtual time the launch was submitted. */
    TimeNs submitTime = 0;

    /**
     * Earliest start stamp among the launch's work-groups (the
     * atomicMin'd `global_start_stamp` of the paper's Fig. 7).
     */
    TimeNs firstStamp = 0;

    /**
     * Latest end stamp among the launch's work-groups (recorded by
     * the last completing block in Fig. 7).
     */
    TimeNs lastStamp = 0;

    /** Work-groups executed. */
    std::uint64_t groups = 0;

    /** Sum of per-work-group busy durations (cycles actually used). */
    TimeNs busyTime = 0;

    /** Span from first start to last end; the profiling measurement. */
    TimeNs span() const { return lastStamp - firstStamp; }
};

/**
 * A request to run a contiguous range of one variant's work-groups.
 *
 * Work-group ids [firstGroup, firstGroup + numGroups) are executed;
 * the id the kernel observes is the real grid id, which is exactly
 * the paper's "block index offset" shifting (§3.3).
 */
struct Launch
{
    /** The variant to run (not owned; must outlive the launch). */
    const kdp::KernelVariant *variant = nullptr;

    /** Argument list (buffer slots may be sandbox rebinds). */
    kdp::KernelArgs args;

    /** First work-group id of this slice. */
    std::uint64_t firstGroup = 0;

    /** Number of work-groups in this slice. */
    std::uint64_t numGroups = 0;

    /**
     * Scheduling priority; higher runs first.  The DySel runtime
     * submits profiling slices with priority 1 and bulk execution
     * with priority 0 (§3.2's prioritized task groups).
     */
    int priority = 0;

    /**
     * Stream id.  Launches in the same stream execute in submission
     * order (CUDA semantics); different streams may overlap.
     */
    int stream = 0;

    /**
     * Run with the device to itself: no other launch's work-groups
     * may be resident while this one executes.  The DySel runtime
     * sets this for GPU profiling launches -- on real Kepler
     * hardware, concurrent kernels overlap only at their tails, so
     * each micro-profiling kernel effectively measures in isolation;
     * this is also why async DySel gets little eager overlap on GPUs
     * (paper §5.1).
     */
    bool exclusive = false;

    /** Invoked (at virtual completion time) when the slice finishes. */
    std::function<void(const LaunchStats &)> onComplete;

    /**
     * Invoked as each work-group completes with its (start, end)
     * stamps; this is the simulated equivalent of the paper's
     * in-kernel clock reads (Fig. 7) and feeds dysel::GpuTimer.
     */
    std::function<void(TimeNs, TimeNs)> onGroupStamp;
};

} // namespace sim
} // namespace dysel
