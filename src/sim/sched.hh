/**
 * @file
 * Launch bookkeeping shared by the CPU and GPU devices.
 *
 * Launches are split into per-work-group tasks.  Streams impose CUDA
 * ordering (a launch may not start until every earlier launch in its
 * stream has fully completed); across streams, execution units pick
 * the highest-priority dispatchable launch, FIFO within a priority.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "launch.hh"
#include "time.hh"

namespace dysel {
namespace sim {

/** A launch with its in-flight progress. */
struct ActiveLaunch
{
    Launch launch;
    LaunchStats stats;
    std::uint64_t submitSeq = 0;  ///< global FIFO order
    std::uint64_t nextGroup = 0;  ///< next group index to issue
    std::uint64_t done = 0;       ///< completed groups
    /** Work-group duration multiplier (injected latency spike). */
    double timeScale = 1.0;

    bool allIssued() const { return nextGroup >= launch.numGroups; }
    bool finished() const { return done >= launch.numGroups; }

    /** Absolute grid id of issue-index @p i. */
    std::uint64_t gridId(std::uint64_t i) const
    {
        return launch.firstGroup + i;
    }
};

using LaunchPtr = std::shared_ptr<ActiveLaunch>;

/**
 * Priority/stream-aware dispatch queue.
 */
class DispatchQueue
{
  public:
    /** Register a submitted launch. */
    void
    add(const LaunchPtr &lp)
    {
        lp->submitSeq = nextSeq++;
        streams[lp->launch.stream].push_back(lp);
    }

    /**
     * Pick the launch the next free execution unit should draw a
     * work-group from, or nullptr when nothing is dispatchable.
     * Equal-priority streams are served round-robin, which is how
     * concurrent CUDA streams interleave blocks; without it the
     * first-registered variant would be profiled at systematically
     * lower SM residency than the others.
     */
    LaunchPtr
    pick()
    {
        LaunchPtr best;
        int best_stream = 0;
        for (auto &[stream, queue] : streams) {
            // Retire completed launches from the stream head so the
            // next launch in the stream becomes dispatchable.
            while (!queue.empty() && queue.front()->finished())
                queue.pop_front();
            if (queue.empty())
                continue;
            const LaunchPtr &head = queue.front();
            if (head->allIssued())
                continue;
            if (!best
                || head->launch.priority > best->launch.priority
                || (head->launch.priority == best->launch.priority
                    && servedTick[stream] < servedTick[best_stream])) {
                best = head;
                best_stream = stream;
            }
        }
        if (best)
            servedTick[best_stream] = ++tick;
        return best;
    }

    /** True when no launch has unissued groups. */
    bool drained() { return pick() == nullptr; }

  private:
    std::map<int, std::deque<LaunchPtr>> streams;
    std::map<int, std::uint64_t> servedTick;
    std::uint64_t nextSeq = 0;
    std::uint64_t tick = 0;
};

} // namespace sim
} // namespace dysel
