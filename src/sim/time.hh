/**
 * @file
 * Virtual time for the device simulators.
 *
 * All simulated durations are expressed in nanoseconds of virtual
 * time.  Each device converts its model's cycles to nanoseconds using
 * its clock frequency, so CPU and GPU timelines are directly
 * comparable (they never share a timeline in this reproduction, but
 * uniform units keep the benchmark harness simple).
 */
#pragma once

#include <cstdint>

namespace dysel {
namespace sim {

/** Virtual nanoseconds. */
using TimeNs = std::uint64_t;

/** Convert @p cycles at @p ghz to nanoseconds (rounded up, >= 1). */
inline TimeNs
cyclesToNs(double cycles, double ghz)
{
    const double ns = cycles / ghz;
    const auto t = static_cast<TimeNs>(ns + 0.5);
    return t == 0 ? 1 : t;
}

} // namespace sim
} // namespace dysel
