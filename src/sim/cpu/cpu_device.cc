#include "cpu_device.hh"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "kdp/context.hh"
#include "support/logging.hh"

namespace dysel {
namespace sim {

CpuDevice::CpuDevice(const CpuConfig &cfg)
    : config(cfg), l3(cfg.l3), rng(cfg.seed)
{
    if (cfg.cores == 0)
        throw std::invalid_argument("CpuDevice needs at least one core");
    cores.reserve(cfg.cores);
    for (unsigned i = 0; i < cfg.cores; ++i)
        cores.emplace_back(cfg);
}

std::string
CpuDevice::fingerprint() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "cpu/%s/c%u@%.2fGHz/l1=%llu/l2=%llu/l3=%llu",
                  config.name.c_str(), config.cores, config.ghz,
                  (unsigned long long)config.l1.sizeBytes,
                  (unsigned long long)config.l2.sizeBytes,
                  (unsigned long long)config.l3.sizeBytes);
    return buf;
}

void
CpuDevice::submit(Launch launch)
{
    auto al = std::make_shared<ActiveLaunch>();
    al->launch = std::move(launch);
    al->stats.submitTime = now();
    if (al->launch.numGroups == 0)
        support::panic("CpuDevice::submit with zero work-groups");
    switch (checkLaunchFault(al->launch)) {
      case FaultKind::LaunchFail:
        // The launch is dropped after its submission overhead; the
        // runtime observes the aborting fault after run().
        events.scheduleAfter(config.launchOverheadNs, [] {});
        return;
      case FaultKind::Hang:
        events.scheduleAfter(
            config.launchOverheadNs + faults->config().hangStallNs,
            [] {});
        return;
      case FaultKind::LatencySpike:
        al->timeScale = faults->config().latencySpikeFactor;
        break;
      default:
        break;
    }
    if (checkVariantFault(al->launch) == VariantFaultKind::KernelHang) {
        // The variant never finishes; the slice is dropped after the
        // watchdog stall.  The device is not wedged and no aborting
        // fault is raised -- the guard notices the missing completion.
        events.scheduleAfter(
            config.launchOverheadNs + faults->config().variantHangStallNs,
            [] {});
        return;
    }
    events.scheduleAfter(config.launchOverheadNs, [this, al] {
        queue.add(al);
        kick();
    });
}

void
CpuDevice::kick()
{
    for (unsigned i = 0; i < cores.size(); ++i)
        if (!cores[i].busy)
            startNext(i);
}

void
CpuDevice::startNext(unsigned idx)
{
    Core &core = cores[idx];
    LaunchPtr al = queue.pick();
    if (!al) {
        core.busy = false;
        return;
    }

    const std::uint64_t issue = al->nextGroup++;
    const std::uint64_t grid = al->gridId(issue);
    core.busy = true;

    const TimeNs start = now();
    TimeNs dur = runGroup(core, *al, grid) + config.taskOverheadNs;
    if (al->timeScale != 1.0)
        dur = static_cast<TimeNs>(static_cast<double>(dur)
                                  * al->timeScale);
    dur = addNoise(dur);

    if (al->done == 0 && issue == 0) {
        al->stats.firstStamp = start;
    } else {
        al->stats.firstStamp = std::min(al->stats.firstStamp, start);
    }

    events.scheduleAfter(dur, [this, idx, al, dur, start] {
        // Mark the core idle before the callbacks run; a finishing
        // launch may unblock its stream for every idle core, so a
        // full kick() (not just this core) is required.
        cores[idx].busy = false;
        al->done++;
        al->stats.groups++;
        al->stats.busyTime += dur;
        al->stats.lastStamp = std::max(al->stats.lastStamp, now());
        if (al->launch.onGroupStamp)
            al->launch.onGroupStamp(start, now());
        if (al->finished() && al->launch.onComplete)
            al->launch.onComplete(al->stats);
        kick();
    });
}

TimeNs
CpuDevice::runGroup(Core &core, const ActiveLaunch &al, std::uint64_t grid)
{
    const kdp::KernelVariant &variant = *al.launch.variant;
    traceBuf.reset(variant.groupSize);
    kdp::GroupCtx ctx(grid, variant.groupSize, variant.waFactor, &traceBuf);
    variant.fn(ctx, al.launch.args);
    ++nGroups;

    const double cycles = cpuWorkGroupCycles(traceBuf, variant.traits,
                                             core.caches, l3, config.cost);
    return cyclesToNs(cycles, config.ghz);
}

TimeNs
CpuDevice::addNoise(TimeNs d)
{
    if (config.noiseSigma <= 0.0)
        return d;
    // Box-Muller; deterministic through the device RNG.
    const double u1 = std::max(rng.nextDouble(), 1e-12);
    const double u2 = rng.nextDouble();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double ref = static_cast<double>(config.noiseRefNs);
    const double scale =
        std::min(1.0, ref / std::max<double>(1.0, static_cast<double>(d)));
    const double factor =
        std::max(0.2, 1.0 + config.noiseSigma * scale * gauss);
    return static_cast<TimeNs>(static_cast<double>(d) * factor) + 1;
}

} // namespace sim
} // namespace dysel
