/**
 * @file
 * CPU timing model: trace-driven cache simulation plus a vectorization
 * model.
 *
 * Models the relevant behaviour of the paper's Intel i7-3820 + Intel
 * OpenCL stack:
 *  - work-item code is serialized into loops whose memory behaviour we
 *    replay through a per-core L1/L2 and shared L3 (data locality is
 *    what the LC scheduling experiments, Figs. 8/10a/11a, measure);
 *  - the implicit vectorizer packs @c vectorWidth adjacent work-items
 *    into SIMD lanes; contiguous same-op accesses become one vector
 *    load, non-contiguous become gathers, and divergent branches pay
 *    masking costs that grow with width (the Fig. 1 effect);
 *  - scratchpad ("local") memory lowers to plain cached memory, so
 *    tiling through it buys no latency and costs real instructions
 *    (the Fig. 10a effect).
 */
#pragma once

#include <cstdint>

#include "kdp/kernel.hh"
#include "kdp/trace.hh"

#include "sim/cache/cache.hh"

namespace dysel {
namespace sim {

/** Tunable cost parameters (cycles unless noted). */
struct CpuCostParams
{
    double l1Hit = 1.0;
    double l2Hit = 8.0;
    double l3Hit = 30.0;
    double memAccess = 120.0;
    double aluOp = 1.0;
    /** Extra factor on non-contiguous vector memory ops (gather). */
    double gatherFactor = 1.6;
    /**
     * Width-dependent part of the gather cost: packing/unpacking
     * overhead grows with the SIMD width (lane-crossing shuffles),
     * which is why very wide vectors lose on gather-heavy kernels
     * (the Fig. 1 spmv-jds effect).
     */
    double gatherWidthFactor = 0.3;
    /** Cycles per SIMD lane charged per divergent branch group. */
    double divergeMaskCost = 6.0;
    /** Issue cost of one (possibly vector) memory operation. */
    double memIssue = 0.5;
    /**
     * Extra cycles per memory access when the variant carries
     * software-prefetch instructions: useless work on a CPU whose
     * hardware prefetchers already cover streaming patterns.
     */
    double prefetchOverhead = 0.3;
    /**
     * Extra cycles per scratchpad ("local memory") access.  OpenCL
     * local memory lowers to plain cached memory on a CPU, so staging
     * data through it buys no latency and costs the extra address
     * arithmetic and copies (the paper's Fig. 10a observation that
     * scratchpad tiling slows CPUs down).
     */
    double scratchLowerExtra = 2.0;
};

/** Per-core private cache state, persistent across work-groups. */
struct CpuCoreState
{
    Cache l1;
    Cache l2;

    CpuCoreState(const CacheConfig &l1_cfg, const CacheConfig &l2_cfg)
        : l1(l1_cfg), l2(l2_cfg)
    {}
};

/**
 * Compute the cost in cycles of one work-group's trace on one core.
 *
 * @param trace  recorded execution of the work-group
 * @param traits variant traits (vector width)
 * @param core   the executing core's private caches (mutated)
 * @param l3     the shared last-level cache (mutated)
 * @param params cost constants
 * @return simulated cycles
 */
double cpuWorkGroupCycles(const kdp::WorkGroupTrace &trace,
                          const kdp::VariantTraits &traits,
                          CpuCoreState &core, Cache &l3,
                          const CpuCostParams &params);

} // namespace sim
} // namespace dysel
