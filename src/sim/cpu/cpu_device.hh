/**
 * @file
 * Simulated multicore CPU device.
 *
 * Models the paper's CPU runtime (§3.2): work-groups become tasks in
 * a TBB-like scheduler with load balancing across cores and priority
 * scheduling so profiling tasks run before bulk work.  Each core owns
 * private L1/L2 caches that persist across tasks; all cores share an
 * L3.  Per-task dispatch overhead is charged, which is what exposes
 * the paper's §5.2 "huge number of extremely tiny tasks" pathology.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kdp/trace.hh"
#include "support/rng.hh"

#include "sim/cache/cache.hh"
#include "sim/device.hh"
#include "sim/sched.hh"

#include "cpu_cost_model.hh"

namespace dysel {
namespace sim {

/** Construction parameters of the CPU device. */
struct CpuConfig
{
    std::string name = "sim-i7-3820";
    unsigned cores = 8;       ///< hardware threads
    double ghz = 3.6;
    CacheConfig l1{32 * 1024, 8, 64};
    CacheConfig l2{256 * 1024, 8, 64};
    CacheConfig l3{10 * 1024 * 1024, 20, 64};
    CpuCostParams cost;
    /** TBB-like per-task dispatch overhead. */
    TimeNs taskOverheadNs = 150;
    /** Host-side cost of materializing one launch. */
    TimeNs launchOverheadNs = 800;
    /** Host query latency (cheap: host and device share the chip). */
    TimeNs hostQueryLatencyNs = 100;
    /**
     * Relative measurement noise applied to task durations; scaled up
     * for tasks shorter than noiseRefNs (system noise hits tiny tasks
     * hardest, §5.2).  0 disables noise entirely.
     */
    double noiseSigma = 0.0;
    TimeNs noiseRefNs = 2000;
    std::uint64_t seed = 0x5eed;
};

/**
 * The CPU device simulator.
 */
class CpuDevice : public Device
{
  public:
    explicit CpuDevice(const CpuConfig &cfg = CpuConfig());

    const std::string &name() const override { return config.name; }
    std::string fingerprint() const override;
    DeviceKind kind() const override { return DeviceKind::Cpu; }
    unsigned computeUnits() const override { return config.cores; }
    TimeNs launchOverheadNs() const override
    {
        return config.launchOverheadNs;
    }
    TimeNs hostQueryLatencyNs() const override
    {
        return config.hostQueryLatencyNs;
    }

    void submit(Launch launch) override;

    /** Work-groups executed since construction. */
    std::uint64_t groupsExecuted() const { return nGroups; }

    /** The device configuration. */
    const CpuConfig &cfg() const { return config; }

  private:
    struct Core
    {
        CpuCoreState caches;
        bool busy = false;

        explicit Core(const CpuConfig &cfg)
            : caches(cfg.l1, cfg.l2)
        {}
    };

    /** Give every idle core a task if one is available. */
    void kick();

    /** Try to start the next task on core @p idx. */
    void startNext(unsigned idx);

    /** Execute one work-group and return its duration. */
    TimeNs runGroup(Core &core, const ActiveLaunch &al, std::uint64_t grid);

    /** Apply configured measurement noise to a duration. */
    TimeNs addNoise(TimeNs d);

    CpuConfig config;
    std::vector<Core> cores;
    Cache l3;
    DispatchQueue queue;
    kdp::WorkGroupTrace traceBuf;
    support::Rng rng;
    std::uint64_t nGroups = 0;
};

} // namespace sim
} // namespace dysel
