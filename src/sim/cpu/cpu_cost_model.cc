#include "cpu_cost_model.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace dysel {
namespace sim {

namespace {

/** Cost of one scalar access through the L1/L2/L3 hierarchy. */
double
hierarchyCost(std::uint64_t addr, CpuCoreState &core, Cache &l3,
              const CpuCostParams &p)
{
    if (core.l1.access(addr))
        return p.l1Hit;
    if (core.l2.access(addr))
        return p.l2Hit;
    if (l3.access(addr))
        return p.l3Hit;
    return p.memAccess;
}

/** Scalar replay: every access pays its own hierarchy cost. */
double
scalarCost(const kdp::WorkGroupTrace &trace, CpuCoreState &core, Cache &l3,
           const CpuCostParams &p)
{
    double cycles = 0.0;
    for (const auto &a : trace.accesses) {
        cycles += p.memIssue + hierarchyCost(a.addr, core, l3, p);
        if (a.space == kdp::MemSpace::Scratchpad)
            cycles += p.scratchLowerExtra;
    }
    cycles += static_cast<double>(trace.totalFlops()) * p.aluOp;
    return cycles;
}

/** Key identifying one vector machine op: (lane group, op seq). */
struct OpKey
{
    std::uint32_t laneGroup;
    std::uint32_t seq;

    bool operator==(const OpKey &o) const
    {
        return laneGroup == o.laneGroup && seq == o.seq;
    }
};

struct OpKeyHash
{
    std::size_t
    operator()(const OpKey &k) const
    {
        return (static_cast<std::size_t>(k.laneGroup) << 32) ^ k.seq;
    }
};

/**
 * Vectorized replay.  Accesses with the same per-lane sequence number
 * inside a group of @p w adjacent lanes form one SIMD memory op:
 * contiguous ops touch the hierarchy once per distinct line,
 * non-contiguous ops pay every element plus a gather penalty.
 */
double
vectorCost(const kdp::WorkGroupTrace &trace,
           const kdp::VariantTraits &traits, CpuCoreState &core, Cache &l3,
           const CpuCostParams &p)
{
    const unsigned w = traits.vectorWidth;

    // Bucket access indices by machine op.
    std::unordered_map<OpKey, std::vector<std::uint32_t>, OpKeyHash> ops;
    ops.reserve(trace.accesses.size() / w + 1);
    for (std::uint32_t i = 0; i < trace.accesses.size(); ++i) {
        const auto &a = trace.accesses[i];
        ops[{a.lane / w, a.seq}].push_back(i);
    }

    // Emit machine ops in first-touch order to approximate the real
    // interleaving for the cache model.
    std::vector<bool> emitted(trace.accesses.size(), false);
    double cycles = 0.0;
    std::vector<std::uint64_t> addrs;
    for (std::uint32_t i = 0; i < trace.accesses.size(); ++i) {
        if (emitted[i])
            continue;
        const auto &a = trace.accesses[i];
        const auto &members = ops[{a.lane / w, a.seq}];
        addrs.clear();
        for (std::uint32_t m : members) {
            emitted[m] = true;
            addrs.push_back(trace.accesses[m].addr);
        }
        if (a.space == kdp::MemSpace::Scratchpad)
            cycles += p.scratchLowerExtra
                      * static_cast<double>(members.size());
        std::sort(addrs.begin(), addrs.end());

        bool broadcast = true;
        for (std::size_t k = 1; broadcast && k < addrs.size(); ++k)
            broadcast = addrs[k] == addrs[0];

        bool contiguous = addrs.size() == w;
        for (std::size_t k = 1; contiguous && k < addrs.size(); ++k)
            contiguous = addrs[k] - addrs[k - 1] == a.bytes;

        if (broadcast) {
            // All lanes read the same element: one scalar load plus a
            // register splat.
            cycles += p.memIssue + hierarchyCost(addrs[0], core, l3, p);
        } else if (contiguous) {
            // One wide access: touch each distinct line once.
            const std::uint64_t line = core.l1.lineSize();
            double worst = 0.0;
            std::uint64_t prev_line = ~std::uint64_t{0};
            for (std::uint64_t addr : addrs) {
                const std::uint64_t ln = addr / line;
                if (ln == prev_line)
                    continue;
                prev_line = ln;
                worst = std::max(worst,
                                 hierarchyCost(addr, core, l3, p));
            }
            cycles += p.memIssue + worst;
        } else {
            // Gather/scatter: every element pays, plus packing
            // overhead that grows with the SIMD width.
            double sum = 0.0;
            for (std::uint64_t addr : addrs)
                sum += hierarchyCost(addr, core, l3, p);
            cycles += p.memIssue * addrs.size()
                      + sum * (p.gatherFactor
                               + p.gatherWidthFactor
                                     * static_cast<double>(w));
        }
    }

    // Divergence: branch groups with mixed outcomes cost masking work
    // proportional to the SIMD width.
    std::unordered_map<OpKey, std::pair<bool, bool>, OpKeyHash> branch;
    branch.reserve(trace.branches.size() / w + 1);
    for (const auto &b : trace.branches) {
        auto &[saw_taken, saw_not] = branch[{b.lane / w, b.seq}];
        (b.taken ? saw_taken : saw_not) = true;
    }
    std::uint64_t divergent = 0;
    for (const auto &[key, outcome] : branch)
        if (outcome.first && outcome.second)
            ++divergent;
    // Masking waste grows superlinearly with the SIMD width: the
    // number of divergent groups roughly halves when the width
    // doubles, so a linear-in-w cost would be width-invariant; the
    // quadratic term models the growing fraction of wasted lanes per
    // divergent region.
    cycles += static_cast<double>(divergent) * p.divergeMaskCost
              * static_cast<double>(w) * static_cast<double>(w) / 4.0;

    // ALU work shrinks by the vector width.
    cycles += static_cast<double>(trace.totalFlops()) * p.aluOp
              / static_cast<double>(w);
    return cycles;
}

} // namespace

double
cpuWorkGroupCycles(const kdp::WorkGroupTrace &trace,
                   const kdp::VariantTraits &traits, CpuCoreState &core,
                   Cache &l3, const CpuCostParams &params)
{
    double cycles = traits.vectorWidth <= 1
                        ? scalarCost(trace, core, l3, params)
                        : vectorCost(trace, traits, core, l3, params);
    if (traits.softwarePrefetch)
        cycles += params.prefetchOverhead
                  * static_cast<double>(trace.accesses.size());
    return cycles;
}

} // namespace sim
} // namespace dysel
