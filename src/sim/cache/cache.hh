/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used by the CPU device (L1/L2 per core, shared L3) and the GPU
 * device (shared L2, per-SM texture cache).  Purely a hit/miss
 * predictor over addresses; latencies are charged by the cost models.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace dysel {
namespace sim {

/** Geometry of a cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes;  ///< total capacity
    unsigned ways;            ///< associativity
    unsigned lineBytes;       ///< line size (power of two)
};

/**
 * A simple LRU set-associative cache.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the line containing @p addr.
     * @return true on hit, false on miss (the line is filled).
     */
    bool access(std::uint64_t addr);

    /** True if the line containing @p addr is currently resident. */
    bool contains(std::uint64_t addr) const;

    /** Drop all contents. */
    void flush();

    /** Line size in bytes. */
    unsigned lineSize() const { return line; }

    /** Number of sets. */
    std::uint64_t numSets() const { return sets; }

    /** Accesses so far. */
    std::uint64_t accesses() const { return nAccess; }

    /** Misses so far. */
    std::uint64_t misses() const { return nMiss; }

    /** Miss ratio; 0 when no accesses. */
    double missRatio() const
    {
        return nAccess == 0 ? 0.0
                            : static_cast<double>(nMiss)
                                  / static_cast<double>(nAccess);
    }

    /** Reset statistics (contents are kept). */
    void resetStats();

  private:
    struct Way
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    unsigned line;
    unsigned lineShift;
    std::uint64_t sets;
    unsigned numWays;
    std::vector<Way> waysStore; ///< sets * numWays entries
    std::uint64_t tick = 0;
    std::uint64_t nAccess = 0;
    std::uint64_t nMiss = 0;
};

} // namespace sim
} // namespace dysel
