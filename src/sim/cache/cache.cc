#include "cache.hh"

#include "support/logging.hh"
#include "support/math_util.hh"

namespace dysel {
namespace sim {

Cache::Cache(const CacheConfig &cfg)
    : line(cfg.lineBytes), numWays(cfg.ways)
{
    using support::isPowerOfTwo;
    if (!isPowerOfTwo(cfg.lineBytes))
        support::panic("cache line size must be a power of two");
    if (cfg.ways == 0 || cfg.sizeBytes == 0)
        support::panic("cache needs nonzero size and ways");
    lineShift = support::floorLog2(cfg.lineBytes);
    sets = cfg.sizeBytes / (static_cast<std::uint64_t>(cfg.ways) * line);
    if (sets == 0)
        sets = 1;
    if (!isPowerOfTwo(sets))
        support::panic("cache set count must be a power of two "
                       "(size/ways/line = %llu)",
                       (unsigned long long)sets);
    waysStore.resize(sets * numWays);
}

std::uint64_t
Cache::setIndex(std::uint64_t addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr >> lineShift;
}

bool
Cache::access(std::uint64_t addr)
{
    ++nAccess;
    ++tick;
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Way *base = &waysStore[set * numWays];

    Way *victim = base;
    for (unsigned w = 0; w < numWays; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    ++nMiss;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick;
    return false;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Way *base = &waysStore[set * numWays];
    for (unsigned w = 0; w < numWays; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &w : waysStore)
        w = Way{};
}

void
Cache::resetStats()
{
    nAccess = 0;
    nMiss = 0;
}

} // namespace sim
} // namespace dysel
