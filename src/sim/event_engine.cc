#include "event_engine.hh"

#include <utility>

#include "support/logging.hh"

namespace dysel {
namespace sim {

void
EventEngine::schedule(TimeNs when, Callback fn)
{
    if (when < currentTime)
        when = currentTime;
    queue.push(Event{when, nextSeq++, std::move(fn)});
}

void
EventEngine::scheduleAfter(TimeNs delay, Callback fn)
{
    schedule(currentTime + delay, std::move(fn));
}

void
EventEngine::run()
{
    if (running)
        support::panic("EventEngine::run is not reentrant");
    running = true;
    while (!queue.empty()) {
        // Moving out of the priority_queue top requires a const_cast;
        // the element is popped immediately after.
        Event ev = std::move(const_cast<Event &>(queue.top()));
        queue.pop();
        currentTime = ev.when;
        ++fired;
        ev.fn();
    }
    running = false;
}

} // namespace sim
} // namespace dysel
