#include "gpu_device.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <stdexcept>

#include "kdp/context.hh"
#include "support/logging.hh"

namespace dysel {
namespace sim {

GpuDevice::GpuDevice(const GpuConfig &cfg)
    : config(cfg), l2(cfg.l2), rng(cfg.seed)
{
    if (cfg.sms == 0)
        throw std::invalid_argument("GpuDevice needs at least one SM");
    sms.reserve(cfg.sms);
    for (unsigned i = 0; i < cfg.sms; ++i)
        sms.emplace_back(cfg.tex);
}

std::string
GpuDevice::fingerprint() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "gpu/%s/sm%u@%.3fGHz/t%llu/b%u/l2=%llu/tex=%llu",
                  config.name.c_str(), config.sms, config.ghz,
                  (unsigned long long)config.threadsPerSm,
                  config.blocksPerSm,
                  (unsigned long long)config.l2.sizeBytes,
                  (unsigned long long)config.tex.sizeBytes);
    return buf;
}

GpuDevice::Footprint
GpuDevice::footprintOf(const kdp::KernelVariant &variant) const
{
    return Footprint{
        variant.groupSize,
        std::max<std::uint64_t>(variant.traits.scratchBytes, 1),
        static_cast<std::uint64_t>(variant.traits.regsPerThread)
            * variant.groupSize,
    };
}

bool
GpuDevice::fits(const Sm &sm, const Footprint &fp) const
{
    return sm.blocks < config.blocksPerSm
           && sm.threadsUsed + fp.threads <= config.threadsPerSm
           && sm.scratchUsed + fp.scratch <= config.scratchPerSm
           && sm.regsUsed + fp.regs <= config.regsPerSm;
}

unsigned
GpuDevice::occupancy(const kdp::KernelVariant &variant) const
{
    const Footprint fp = footprintOf(variant);
    Sm probe(config.tex);
    unsigned blocks = 0;
    while (fits(probe, fp)) {
        probe.blocks++;
        probe.threadsUsed += fp.threads;
        probe.scratchUsed += fp.scratch;
        probe.regsUsed += fp.regs;
        ++blocks;
    }
    return blocks;
}

void
GpuDevice::submit(Launch launch)
{
    auto al = std::make_shared<ActiveLaunch>();
    al->launch = std::move(launch);
    al->stats.submitTime = now();
    if (al->launch.numGroups == 0)
        support::panic("GpuDevice::submit with zero work-groups");
    switch (checkLaunchFault(al->launch)) {
      case FaultKind::LaunchFail:
        events.scheduleAfter(config.launchOverheadNs, [] {});
        return;
      case FaultKind::Hang:
        events.scheduleAfter(
            config.launchOverheadNs + faults->config().hangStallNs,
            [] {});
        return;
      case FaultKind::LatencySpike:
        al->timeScale = faults->config().latencySpikeFactor;
        break;
      default:
        break;
    }
    if (checkVariantFault(al->launch) == VariantFaultKind::KernelHang) {
        // The variant never finishes; the slice is dropped after the
        // watchdog stall.  The device is not wedged and no aborting
        // fault is raised -- the guard notices the missing completion.
        events.scheduleAfter(
            config.launchOverheadNs + faults->config().variantHangStallNs,
            [] {});
        return;
    }
    events.scheduleAfter(config.launchOverheadNs, [this, al] {
        queue.add(al);
        kick();
    });
}

void
GpuDevice::kick()
{
    // Strict priority: the highest-priority dispatchable launch gets
    // first pick of SM space; we stop as soon as it cannot be placed.
    // An exclusive launch waits for an empty device, then owns it
    // until it fully drains.
    while (true) {
        LaunchPtr al;
        if (exclusiveOwner && !exclusiveOwner->finished()) {
            if (exclusiveOwner->allIssued())
                return; // draining; nothing else may start
            al = exclusiveOwner;
        } else {
            exclusiveOwner = nullptr;
            al = queue.pick();
            if (!al)
                return;
            if (al->launch.exclusive) {
                if (residentBlocks > 0)
                    return; // wait for the device to empty
                exclusiveOwner = al;
            }
        }
        const Footprint fp = footprintOf(*al->launch.variant);
        // Least-loaded SM that fits.
        int best = -1;
        for (unsigned i = 0; i < sms.size(); ++i) {
            if (!fits(sms[i], fp))
                continue;
            if (best < 0 || sms[i].blocks < sms[best].blocks)
                best = static_cast<int>(i);
        }
        if (best < 0)
            return;
        place(static_cast<unsigned>(best), al);
    }
}

void
GpuDevice::place(unsigned idx, const LaunchPtr &al)
{
    Sm &sm = sms[idx];
    const kdp::KernelVariant &variant = *al->launch.variant;
    const Footprint fp = footprintOf(variant);

    sm.blocks++;
    sm.threadsUsed += fp.threads;
    sm.scratchUsed += fp.scratch;
    sm.regsUsed += fp.regs;
    ++residentBlocks;
    if (al->launch.exclusive)
        ++residentExclusive;

    const std::uint64_t issue = al->nextGroup++;
    const std::uint64_t grid = al->gridId(issue);

    traceBuf.reset(variant.groupSize);
    kdp::GroupCtx ctx(grid, variant.groupSize, variant.waFactor, &traceBuf);
    variant.fn(ctx, al->launch.args);
    ++nGroups;

    const GpuWgCost cost = gpuWorkGroupCost(traceBuf, variant.traits,
                                            variant.groupSize, sm.state, l2,
                                            config.cost);
    // A resident block shares the SM's issue bandwidth with its
    // co-resident peers (throughput part stretches by the resident
    // count) while occupancy hides memory latency (latency part
    // shrinks by it).  A lone block on an otherwise idle SM really
    // does run faster -- which is what keeps micro-profiling spans of
    // high-work-assignment variants representative.
    const double resident = static_cast<double>(sm.blocks);
    const double cycles = cost.throughputCycles * resident
                          + cost.latencyCycles / resident;
    if (std::getenv("DYSEL_GPU_DEBUG")) {
        std::fprintf(stderr,
                     "[gpu] t=%llu %s grid=%llu r=%.0f T=%.0fcy L=%.0fcy "
                     "dur=%.0fus\n",
                     (unsigned long long)now(), variant.name.c_str(),
                     (unsigned long long)grid, resident,
                     cost.throughputCycles, cost.latencyCycles,
                     cycles / config.ghz / 1000.0);
    }
    TimeNs dur = cyclesToNs(cycles, config.ghz);
    if (al->timeScale != 1.0)
        dur = static_cast<TimeNs>(static_cast<double>(dur)
                                  * al->timeScale);
    dur = addNoise(dur);

    const TimeNs start = now();
    if (issue == 0) {
        al->stats.firstStamp = start;
    } else {
        al->stats.firstStamp = std::min(al->stats.firstStamp, start);
    }

    events.scheduleAfter(dur, [this, idx, al, fp, dur, start] {
        Sm &host_sm = sms[idx];
        host_sm.blocks--;
        host_sm.threadsUsed -= fp.threads;
        host_sm.scratchUsed -= fp.scratch;
        host_sm.regsUsed -= fp.regs;
        --residentBlocks;
        if (al->launch.exclusive)
            --residentExclusive;

        al->done++;
        al->stats.groups++;
        al->stats.busyTime += dur;
        al->stats.lastStamp = std::max(al->stats.lastStamp, now());
        if (al->launch.onGroupStamp)
            al->launch.onGroupStamp(start, now());
        if (al->finished() && al->launch.onComplete)
            al->launch.onComplete(al->stats);
        kick();
    });
}

TimeNs
GpuDevice::addNoise(TimeNs d)
{
    if (config.noiseSigma <= 0.0)
        return d;
    const double u1 = std::max(rng.nextDouble(), 1e-12);
    const double u2 = rng.nextDouble();
    const double gauss =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double ref = static_cast<double>(config.noiseRefNs);
    const double scale =
        std::min(1.0, ref / std::max<double>(1.0, static_cast<double>(d)));
    const double factor =
        std::max(0.2, 1.0 + config.noiseSigma * scale * gauss);
    return static_cast<TimeNs>(static_cast<double>(d) * factor) + 1;
}

} // namespace sim
} // namespace dysel
