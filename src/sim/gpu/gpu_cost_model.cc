#include "gpu_cost_model.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dysel {
namespace sim {

namespace {

struct OpKey
{
    std::uint32_t warp;
    std::uint32_t seq;

    bool operator==(const OpKey &o) const
    {
        return warp == o.warp && seq == o.seq;
    }
};

struct OpKeyHash
{
    std::size_t
    operator()(const OpKey &k) const
    {
        return (static_cast<std::size_t>(k.warp) << 32) ^ k.seq;
    }
};

} // namespace

GpuWgCost
gpuWorkGroupCost(const kdp::WorkGroupTrace &trace,
                 const kdp::VariantTraits &traits, std::uint32_t groupSize,
                 GpuSmState &sm, Cache &l2, const GpuCostParams &p)
{
    const unsigned w = p.warpSize;
    const unsigned num_warps = (groupSize + w - 1) / w;

    // Bucket the accesses into warp instructions.
    std::unordered_map<OpKey, std::vector<std::uint32_t>, OpKeyHash> ops;
    ops.reserve(trace.accesses.size() / w + 1);
    for (std::uint32_t i = 0; i < trace.accesses.size(); ++i) {
        const auto &a = trace.accesses[i];
        ops[{a.lane / w, a.seq}].push_back(i);
    }

    std::vector<double> warp_thruput(num_warps, 0.0);
    std::vector<double> warp_latency(num_warps, 0.0);

    // Walk instructions in first-touch order for the caches.
    std::vector<bool> emitted(trace.accesses.size(), false);
    std::vector<std::uint64_t> segs;
    for (std::uint32_t i = 0; i < trace.accesses.size(); ++i) {
        if (emitted[i])
            continue;
        const auto &first = trace.accesses[i];
        const unsigned warp = first.lane / w;
        const auto &members = ops[{warp, first.seq}];

        double thruput = p.issueOp;
        double latency = 0.0;
        switch (first.space) {
          case kdp::MemSpace::Global: {
            segs.clear();
            bool any_atomic = false;
            for (std::uint32_t m : members) {
                emitted[m] = true;
                segs.push_back(trace.accesses[m].addr / p.segmentBytes);
                any_atomic |= trace.accesses[m].atomic;
            }
            std::sort(segs.begin(), segs.end());
            segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
            bool all_hit = true;
            for (std::uint64_t s : segs) {
                const bool hit = l2.access(s * p.segmentBytes);
                all_hit &= hit;
                thruput += hit ? p.txHitCost : p.txCost;
            }
            latency += all_hit ? p.l2HitLatency : p.memLatency;
            if (any_atomic)
                thruput += p.atomicPerLane
                           * static_cast<double>(members.size());
            break;
          }
          case kdp::MemSpace::Texture: {
            segs.clear();
            for (std::uint32_t m : members) {
                emitted[m] = true;
                segs.push_back(trace.accesses[m].addr / 32);
            }
            std::sort(segs.begin(), segs.end());
            segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
            bool all_hit = true;
            for (std::uint64_t s : segs) {
                const bool hit = sm.texCache.access(s * 32);
                all_hit &= hit;
                thruput += p.texHit;
                if (!hit)
                    thruput += p.texMissExtra;
            }
            if (!all_hit)
                latency += p.texMissLatency;
            break;
          }
          case kdp::MemSpace::Scratchpad: {
            // Bank conflicts: 32 four-byte banks; the op serializes
            // into as many rounds as the most contended bank.
            std::unordered_map<unsigned, unsigned> bank_count;
            std::unordered_set<std::uint64_t> distinct;
            for (std::uint32_t m : members) {
                emitted[m] = true;
                const std::uint64_t addr = trace.accesses[m].addr;
                if (distinct.insert(addr).second)
                    ++bank_count[(addr / 4) % 32];
            }
            unsigned worst = 1;
            for (const auto &[bank, cnt] : bank_count)
                worst = std::max(worst, cnt);
            thruput += p.scratchAccess
                       + static_cast<double>(worst - 1)
                             * p.bankConflictExtra;
            break;
          }
          case kdp::MemSpace::Constant: {
            std::unordered_set<std::uint64_t> distinct;
            for (std::uint32_t m : members) {
                emitted[m] = true;
                distinct.insert(trace.accesses[m].addr);
            }
            thruput += p.constCost * static_cast<double>(distinct.size());
            break;
          }
        }
        warp_thruput[warp] += thruput;
        warp_latency[warp] += latency;
    }

    // Divergent branches serialize both sides.
    std::unordered_map<OpKey, std::pair<bool, bool>, OpKeyHash> branch;
    branch.reserve(trace.branches.size() / w + 1);
    for (const auto &b : trace.branches) {
        auto &[saw_taken, saw_not] = branch[{b.lane / w, b.seq}];
        (b.taken ? saw_taken : saw_not) = true;
    }
    for (const auto &[key, outcome] : branch)
        if (outcome.first && outcome.second)
            warp_thruput[key.warp] += p.divergentBranch;

    // Lock-step ALU: a warp is as slow as its busiest lane.
    for (unsigned warp = 0; warp < num_warps; ++warp) {
        std::uint64_t worst = 0;
        const std::uint32_t lo = warp * w;
        const std::uint32_t hi =
            std::min<std::uint32_t>(groupSize, lo + w);
        for (std::uint32_t lane = lo; lane < hi; ++lane)
            worst = std::max(worst, trace.laneFlops[lane]);
        warp_thruput[warp] += static_cast<double>(worst) * p.aluOp;
    }

    GpuWgCost cost;
    for (unsigned warp = 0; warp < num_warps; ++warp) {
        cost.throughputCycles += warp_thruput[warp];
        cost.latencyCycles += warp_latency[warp];
    }
    // Outstanding loads overlap within a warp (memory-level
    // parallelism); software prefetch overlaps part of what remains.
    cost.latencyCycles /= p.mlpFactor;
    if (traits.softwarePrefetch)
        cost.latencyCycles *= p.prefetchLatencyFactor;
    // Warps of one block dual-issue across the schedulers.
    const double overlap =
        std::min<double>(num_warps, p.warpSchedulers);
    cost.throughputCycles /= overlap;
    cost.latencyCycles /= overlap;
    cost.throughputCycles +=
        static_cast<double>(trace.barriers) * p.barrierCost;
    return cost;
}

} // namespace sim
} // namespace dysel
