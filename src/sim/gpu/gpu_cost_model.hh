/**
 * @file
 * GPU timing model: warp-level replay of the work-group trace.
 *
 * Models the relevant behaviour of the paper's NVIDIA K20c (Kepler):
 *  - 32-lane warps execute in lock step; the k-th access of each lane
 *    forms one memory instruction whose cost is the number of 128-byte
 *    segments it touches (coalescing -- the Fig. 9/11b effect);
 *  - the texture path has its own small cache (the spmv-jds texture
 *    placement effect, Fig. 10b);
 *  - scratchpad is fast but serializes on bank conflicts;
 *  - divergent branches serialize both paths;
 *  - ALU time per warp is the *maximum* over its lanes, so a warp with
 *    one active lane still pays full time (the 22.7x diagonal-matrix
 *    effect of Fig. 11b);
 *  - cost is split into a throughput part (issue bandwidth, shared
 *    among resident blocks) and a latency part (hidden by occupancy).
 */
#pragma once

#include <cstdint>

#include "kdp/kernel.hh"
#include "kdp/trace.hh"

#include "sim/cache/cache.hh"

namespace dysel {
namespace sim {

/** Tunable GPU cost parameters (cycles unless noted). */
struct GpuCostParams
{
    unsigned warpSize = 32;
    unsigned warpSchedulers = 4;
    double issueOp = 4.0;        ///< issue cost of one warp instruction
    double txCost = 26.0;        ///< per 128B global transaction (miss)
    double txHitCost = 14.0;     ///< per 128B transaction hitting L2
    double l2HitLatency = 80.0;  ///< latency of an L2-hit memory op
    double memLatency = 320.0;   ///< latency of a DRAM memory op
    double scratchAccess = 4.0;  ///< conflict-free scratchpad op
    double bankConflictExtra = 4.0; ///< extra per serialized bank round
    double texHit = 5.0;         ///< per 32B texture segment (thruput)
    double texMissExtra = 10.0;  ///< extra per missing segment (fill)
    double texMissLatency = 300.0;
    double constCost = 12.0;     ///< per distinct address (serialized)
    double atomicPerLane = 24.0; ///< serialization per participating lane
    double divergentBranch = 16.0;
    double aluOp = 1.0;
    double barrierCost = 30.0;
    unsigned segmentBytes = 128; ///< coalescing granularity
    /** Latency multiplier when the variant software-prefetches. */
    double prefetchLatencyFactor = 0.7;
    /**
     * Memory-level parallelism within a warp: outstanding loads
     * overlap, so only 1/mlpFactor of the summed per-op latency is
     * actually exposed.
     */
    double mlpFactor = 16.0;
};

/** Per-SM mutable model state. */
struct GpuSmState
{
    Cache texCache;

    explicit GpuSmState(const CacheConfig &tex_cfg) : texCache(tex_cfg) {}
};

/** Two-component cost of one work-group. */
struct GpuWgCost
{
    double throughputCycles = 0.0; ///< issue-bandwidth bound work
    double latencyCycles = 0.0;    ///< hideable memory latency
};

/**
 * Replay @p trace at warp granularity and return its cost components.
 *
 * @param trace      recorded execution of the work-group
 * @param traits     variant traits
 * @param groupSize  work-items per group
 * @param sm         executing SM's state (texture cache; mutated)
 * @param l2         device-wide L2 (mutated)
 * @param p          cost constants
 */
GpuWgCost gpuWorkGroupCost(const kdp::WorkGroupTrace &trace,
                           const kdp::VariantTraits &traits,
                           std::uint32_t groupSize, GpuSmState &sm,
                           Cache &l2, const GpuCostParams &p);

} // namespace sim
} // namespace dysel
