/**
 * @file
 * Simulated GPU device (Kepler-class).
 *
 * Models the paper's K20c and its CUDA runtime (§3.3): multiple
 * streams whose launches may overlap, per-SM resource-based block
 * placement (threads / blocks / scratchpad / registers -> occupancy),
 * a kernel launch overhead large enough to matter for micro-kernels
 * (§5.2), and a host-side stream query latency that limits how many
 * eager dispatches asynchronous DySel can squeeze in (§5.1).
 *
 * A resident work-group's duration is its throughput cycles stretched
 * by the number of co-resident blocks on its SM plus its memory
 * latency divided by the same count (latency hiding): SM-level
 * throughput is conserved while occupancy hides latency.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kdp/trace.hh"
#include "support/rng.hh"

#include "sim/cache/cache.hh"
#include "sim/device.hh"
#include "sim/sched.hh"

#include "gpu_cost_model.hh"

namespace dysel {
namespace sim {

/** Construction parameters of the GPU device. */
struct GpuConfig
{
    std::string name = "sim-k20c";
    unsigned sms = 13;
    double ghz = 0.705;
    std::uint64_t threadsPerSm = 2048;
    unsigned blocksPerSm = 16;
    std::uint64_t scratchPerSm = 48 * 1024;
    std::uint64_t regsPerSm = 65536;
    CacheConfig l2{1536 * 1024, 12, 128};
    CacheConfig tex{12 * 1024, 24, 32};
    GpuCostParams cost;
    /** Host-side kernel launch overhead; fully exposed for
     *  micro-kernels (§5.2). */
    TimeNs launchOverheadNs = 8000;
    /** cudaStreamQuery latency; often longer than the whole
     *  micro-profiling phase, which is why asynchronous DySel gets
     *  few or zero eager dispatches on the GPU (§5.1). */
    TimeNs hostQueryLatencyNs = 25000;
    double noiseSigma = 0.0;
    TimeNs noiseRefNs = 2000;
    std::uint64_t seed = 0x6eed;
};

/**
 * The GPU device simulator.
 */
class GpuDevice : public Device
{
  public:
    explicit GpuDevice(const GpuConfig &cfg = GpuConfig());

    const std::string &name() const override { return config.name; }
    std::string fingerprint() const override;
    DeviceKind kind() const override { return DeviceKind::Gpu; }
    unsigned computeUnits() const override { return config.sms; }
    TimeNs launchOverheadNs() const override
    {
        return config.launchOverheadNs;
    }
    TimeNs hostQueryLatencyNs() const override
    {
        return config.hostQueryLatencyNs;
    }

    void submit(Launch launch) override;

    /** Work-groups executed since construction. */
    std::uint64_t groupsExecuted() const { return nGroups; }

    /** Occupancy (resident blocks per SM) of @p variant. */
    unsigned occupancy(const kdp::KernelVariant &variant) const;

    /** The device configuration. */
    const GpuConfig &cfg() const { return config; }

  private:
    struct Sm
    {
        GpuSmState state;
        std::uint64_t threadsUsed = 0;
        std::uint64_t scratchUsed = 0;
        std::uint64_t regsUsed = 0;
        unsigned blocks = 0;

        explicit Sm(const CacheConfig &tex_cfg) : state(tex_cfg) {}
    };

    /** Resource footprint of one block of @p variant. */
    struct Footprint
    {
        std::uint64_t threads;
        std::uint64_t scratch;
        std::uint64_t regs;
    };

    Footprint footprintOf(const kdp::KernelVariant &variant) const;
    bool fits(const Sm &sm, const Footprint &fp) const;

    /** Place pending work-groups onto SMs until nothing fits. */
    void kick();

    /** Run one work-group on SM @p idx. */
    void place(unsigned idx, const LaunchPtr &al);

    TimeNs addNoise(TimeNs d);

    GpuConfig config;
    std::vector<Sm> sms;
    Cache l2;
    DispatchQueue queue;
    std::uint64_t residentBlocks = 0;
    std::uint64_t residentExclusive = 0;
    LaunchPtr exclusiveOwner;
    kdp::WorkGroupTrace traceBuf;
    support::Rng rng;
    std::uint64_t nGroups = 0;
};

} // namespace sim
} // namespace dysel
