/**
 * @file
 * Seeded, deterministic fault injection for the simulated devices.
 *
 * A FaultInjector is attached to a device (Device::setFaultInjector)
 * and consulted once per submitted launch.  It can inject three
 * fault classes:
 *
 *   LaunchFail   -- the launch is dropped after its submission
 *                   overhead; the runtime surfaces it as an
 *                   UNAVAILABLE Status.
 *   Hang         -- the launch never executes but stalls the device
 *                   for a configurable virtual time; surfaced as
 *                   DEADLINE_EXCEEDED.
 *   LatencySpike -- every work-group of the launch is stretched by a
 *                   factor; the launch completes with correct output,
 *                   just slowly (what drift detection and per-job
 *                   deadlines exist to catch).
 *
 * Decisions are drawn from the injector's own support::Rng, so a
 * fixed seed and a fixed consultation order reproduce the same fault
 * schedule bit-for-bit.  Scripted faults (`failNext` etc.) take
 * precedence over the probabilistic draw, which is how tests force an
 * exact failure pattern.  Every injected fault is appended to an
 * event log the recovery tests reconcile against the service's
 * MetricsRegistry counters.
 *
 * All methods are thread-safe: one injector may be shared by several
 * devices (their worker threads interleave draws, but the totals in
 * the log remain exact).
 */
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/rng.hh"

#include "time.hh"

namespace dysel {
namespace sim {

/** Fault class of one injection decision. */
enum class FaultKind {
    None = 0,
    LaunchFail,
    LatencySpike,
    Hang,
};

/** Stable lower-case name of @p kind. */
const char *faultKindName(FaultKind kind);

/** Injection probabilities and magnitudes. */
struct FaultConfig
{
    /** Per-launch probability of a dropped launch. */
    double launchFailProb = 0.0;

    /** Per-launch probability of a latency spike. */
    double latencySpikeProb = 0.0;

    /** Duration multiplier applied to a spiked launch's work-groups. */
    double latencySpikeFactor = 8.0;

    /** Per-launch probability of a hang. */
    double hangProb = 0.0;

    /** Virtual time a hung launch stalls its device. */
    TimeNs hangStallNs = 50'000'000;

    /** RNG seed; equal seeds give equal decision streams. */
    std::uint64_t seed = 0xfa01d;
};

/** One injected fault, as recorded in the event log. */
struct FaultEvent
{
    FaultKind kind = FaultKind::None;
    std::string device;  ///< device name at the injection site
    std::string variant; ///< kernel variant of the affected launch
    TimeNs time = 0;     ///< device virtual time of the decision
};

/**
 * The fault decision source.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig cfg = FaultConfig());

    const FaultConfig &config() const { return cfg_; }

    /**
     * Decide the fault (if any) for one launch of @p variant on
     * @p device at virtual time @p now.  Injected faults are logged;
     * None is not.
     */
    FaultKind decide(const std::string &device,
                     const std::string &variant, TimeNs now);

    /** Script @p n LaunchFail decisions ahead of the random draw. */
    void failNext(unsigned n = 1);

    /** Script @p n Hang decisions ahead of the random draw. */
    void hangNext(unsigned n = 1);

    /** Script @p n LatencySpike decisions ahead of the random draw. */
    void spikeNext(unsigned n = 1);

    /** Copy of the full event log. */
    std::vector<FaultEvent> events() const;

    /** Injected faults of @p kind. */
    std::uint64_t count(FaultKind kind) const;

    /** Injected faults of every kind. */
    std::uint64_t total() const;

    /** Launches the device aborts (LaunchFail + Hang). */
    std::uint64_t aborts() const
    {
        return count(FaultKind::LaunchFail) + count(FaultKind::Hang);
    }

  private:
    mutable std::mutex mu;
    FaultConfig cfg_;
    support::Rng rng;
    std::vector<FaultKind> scripted; ///< consumed front-first
    std::vector<FaultEvent> log;
    std::array<std::uint64_t, 4> counts{};
};

} // namespace sim
} // namespace dysel
