/**
 * @file
 * Seeded, deterministic fault injection for the simulated devices.
 *
 * A FaultInjector is attached to a device (Device::setFaultInjector)
 * and consulted once per submitted launch.  It can inject three
 * fault classes:
 *
 *   LaunchFail   -- the launch is dropped after its submission
 *                   overhead; the runtime surfaces it as an
 *                   UNAVAILABLE Status.
 *   Hang         -- the launch never executes but stalls the device
 *                   for a configurable virtual time; surfaced as
 *                   DEADLINE_EXCEEDED.
 *   LatencySpike -- every work-group of the launch is stretched by a
 *                   factor; the launch completes with correct output,
 *                   just slowly (what drift detection and per-job
 *                   deadlines exist to catch).
 *
 * Decisions are drawn from the injector's own support::Rng, so a
 * fixed seed and a fixed consultation order reproduce the same fault
 * schedule bit-for-bit.  Scripted faults (`failNext` etc.) take
 * precedence over the probabilistic draw, which is how tests force an
 * exact failure pattern.  Every injected fault is appended to an
 * event log the recovery tests reconcile against the service's
 * MetricsRegistry counters.
 *
 * All methods are thread-safe: one injector may be shared by several
 * devices (their worker threads interleave draws, but the totals in
 * the log remain exact).
 */
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/rng.hh"

#include "time.hh"

namespace dysel {
namespace sim {

/** Fault class of one injection decision. */
enum class FaultKind {
    None = 0,
    LaunchFail,
    LatencySpike,
    Hang,
};

/** Stable lower-case name of @p kind. */
const char *faultKindName(FaultKind kind);

/**
 * Variant-level fault class: models a miscompiled or buggy kernel
 * variant rather than a flaky device.  Variant faults are persistent
 * -- once a variant is assigned one (scripted or drawn), every
 * execution of that variant misbehaves the same way -- which is the
 * hazard the guard layer's validation and blacklist exist to contain.
 *
 *   CorruptOutput -- the variant overwrites part of its output with
 *                    garbage (wrong values, caught by the guard's
 *                    reference cross-check).
 *   OobWrite      -- the variant writes past the end of its output
 *                    buffer (caught by the guard's canary redzone;
 *                    applies only to redzone-padded sandbox buffers).
 *   NanOutput     -- the variant poisons part of its output with
 *                    NaN bit patterns (caught by the NaN/Inf screen).
 *   KernelHang    -- the variant never completes; the launch is
 *                    dropped after a watchdog-sized stall (caught by
 *                    the guard's per-slice watchdog).
 */
enum class VariantFaultKind {
    None = 0,
    CorruptOutput,
    OobWrite,
    NanOutput,
    KernelHang,
};

/** Stable lower-case name of @p kind. */
const char *variantFaultKindName(VariantFaultKind kind);

/** Injection probabilities and magnitudes. */
struct FaultConfig
{
    /** Per-launch probability of a dropped launch. */
    double launchFailProb = 0.0;

    /** Per-launch probability of a latency spike. */
    double latencySpikeProb = 0.0;

    /** Duration multiplier applied to a spiked launch's work-groups. */
    double latencySpikeFactor = 8.0;

    /** Per-launch probability of a hang. */
    double hangProb = 0.0;

    /** Virtual time a hung launch stalls its device. */
    TimeNs hangStallNs = 50'000'000;

    /**
     * Probability that a kernel variant is "miscompiled": drawn once
     * per distinct variant name on first execution, and persistent
     * from then on.  An afflicted variant gets a VariantFaultKind
     * drawn uniformly from the four modes.
     */
    double variantFaultProb = 0.0;

    /**
     * Virtual time a KernelHang launch stalls before the simulated
     * watchdog gives up on it (much shorter than hangStallNs: the
     * slice is contained, the device is not wedged).
     */
    TimeNs variantHangStallNs = 2'000'000;

    /** RNG seed; equal seeds give equal decision streams. */
    std::uint64_t seed = 0xfa01d;
};

/** One injected fault, as recorded in the event log. */
struct FaultEvent
{
    FaultKind kind = FaultKind::None;
    /** Set instead of kind for a variant-level fault application. */
    VariantFaultKind vkind = VariantFaultKind::None;
    std::string device;  ///< device name at the injection site
    std::string variant; ///< kernel variant of the affected launch
    TimeNs time = 0;     ///< device virtual time of the decision
};

/**
 * The fault decision source.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig cfg = FaultConfig());

    const FaultConfig &config() const { return cfg_; }

    /**
     * Decide the fault (if any) for one launch of @p variant on
     * @p device at virtual time @p now.  Injected faults are logged;
     * None is not.
     */
    FaultKind decide(const std::string &device,
                     const std::string &variant, TimeNs now);

    /** Script @p n LaunchFail decisions ahead of the random draw. */
    void failNext(unsigned n = 1);

    /** Script @p n Hang decisions ahead of the random draw. */
    void hangNext(unsigned n = 1);

    /** Script @p n LatencySpike decisions ahead of the random draw. */
    void spikeNext(unsigned n = 1);

    /**
     * Pin @p variant to a persistent variant-level fault (None clears
     * it).  Scripted assignments take precedence over the
     * variantFaultProb draw, which is how tests build an exact pool
     * of misbehaving variants.
     */
    void setVariantFault(const std::string &variant,
                         VariantFaultKind kind);

    /**
     * The persistent fault afflicting @p variant: the scripted
     * assignment if one exists, otherwise a once-per-name draw with
     * probability variantFaultProb (memoized -- the same name always
     * gets the same answer).  Devices consult this on every submit.
     * Nothing is logged here; applications are logged by
     * logVariantFault() so the event log reconciles 1:1 with what the
     * guard can actually observe.
     */
    VariantFaultKind variantFaultOf(const std::string &variant);

    /** Record one applied variant fault in the event log. */
    void logVariantFault(VariantFaultKind kind, const std::string &device,
                         const std::string &variant, TimeNs now);

    /** Copy of the full event log (device and variant faults). */
    std::vector<FaultEvent> events() const;

    /** Injected faults of @p kind. */
    std::uint64_t count(FaultKind kind) const;

    /** Applied variant faults of @p kind. */
    std::uint64_t variantCount(VariantFaultKind kind) const;

    /** Injected device-level faults of every kind. */
    std::uint64_t total() const;

    /** Applied variant-level faults of every kind. */
    std::uint64_t variantTotal() const;

    /** Launches the device aborts (LaunchFail + Hang). */
    std::uint64_t aborts() const
    {
        return count(FaultKind::LaunchFail) + count(FaultKind::Hang);
    }

  private:
    mutable std::mutex mu;
    FaultConfig cfg_;
    support::Rng rng;
    std::vector<FaultKind> scripted; ///< consumed front-first
    /** Persistent per-variant assignment (scripted or memoized draw). */
    std::map<std::string, VariantFaultKind> variantFaults;
    std::vector<FaultEvent> log;
    std::array<std::uint64_t, 4> counts{};
    std::array<std::uint64_t, 5> vcounts{};
};

} // namespace sim
} // namespace dysel
