#include "fault.hh"

#include <algorithm>

namespace dysel {
namespace sim {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::LaunchFail: return "launch_fail";
      case FaultKind::LatencySpike: return "latency_spike";
      case FaultKind::Hang: return "hang";
    }
    return "?";
}

FaultInjector::FaultInjector(FaultConfig cfg)
    : cfg_(cfg), rng(cfg.seed)
{
}

FaultKind
FaultInjector::decide(const std::string &device,
                      const std::string &variant, TimeNs now)
{
    std::lock_guard<std::mutex> lock(mu);
    FaultKind kind = FaultKind::None;
    if (!scripted.empty()) {
        kind = scripted.front();
        scripted.erase(scripted.begin());
    } else {
        // One draw per launch keeps the decision stream independent
        // of which probabilities are enabled.
        const double u = rng.nextDouble();
        double edge = cfg_.launchFailProb;
        if (u < edge) {
            kind = FaultKind::LaunchFail;
        } else if (u < (edge += cfg_.hangProb)) {
            kind = FaultKind::Hang;
        } else if (u < (edge += cfg_.latencySpikeProb)) {
            kind = FaultKind::LatencySpike;
        }
    }
    if (kind != FaultKind::None) {
        log.push_back(FaultEvent{kind, device, variant, now});
        counts[static_cast<std::size_t>(kind)]++;
    }
    return kind;
}

void
FaultInjector::failNext(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu);
    scripted.insert(scripted.end(), n, FaultKind::LaunchFail);
}

void
FaultInjector::hangNext(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu);
    scripted.insert(scripted.end(), n, FaultKind::Hang);
}

void
FaultInjector::spikeNext(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu);
    scripted.insert(scripted.end(), n, FaultKind::LatencySpike);
}

std::vector<FaultEvent>
FaultInjector::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return log;
}

std::uint64_t
FaultInjector::count(FaultKind kind) const
{
    std::lock_guard<std::mutex> lock(mu);
    return counts[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultInjector::total() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t sum = 0;
    for (const auto c : counts)
        sum += c;
    return sum;
}

} // namespace sim
} // namespace dysel
