#include "fault.hh"

#include <algorithm>

namespace dysel {
namespace sim {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::LaunchFail: return "launch_fail";
      case FaultKind::LatencySpike: return "latency_spike";
      case FaultKind::Hang: return "hang";
    }
    return "?";
}

const char *
variantFaultKindName(VariantFaultKind kind)
{
    switch (kind) {
      case VariantFaultKind::None: return "none";
      case VariantFaultKind::CorruptOutput: return "corrupt_output";
      case VariantFaultKind::OobWrite: return "oob_write";
      case VariantFaultKind::NanOutput: return "nan_output";
      case VariantFaultKind::KernelHang: return "kernel_hang";
    }
    return "?";
}

FaultInjector::FaultInjector(FaultConfig cfg)
    : cfg_(cfg), rng(cfg.seed)
{
}

FaultKind
FaultInjector::decide(const std::string &device,
                      const std::string &variant, TimeNs now)
{
    std::lock_guard<std::mutex> lock(mu);
    FaultKind kind = FaultKind::None;
    if (!scripted.empty()) {
        kind = scripted.front();
        scripted.erase(scripted.begin());
    } else {
        // One draw per launch keeps the decision stream independent
        // of which probabilities are enabled.
        const double u = rng.nextDouble();
        double edge = cfg_.launchFailProb;
        if (u < edge) {
            kind = FaultKind::LaunchFail;
        } else if (u < (edge += cfg_.hangProb)) {
            kind = FaultKind::Hang;
        } else if (u < (edge += cfg_.latencySpikeProb)) {
            kind = FaultKind::LatencySpike;
        }
    }
    if (kind != FaultKind::None) {
        FaultEvent ev;
        ev.kind = kind;
        ev.device = device;
        ev.variant = variant;
        ev.time = now;
        log.push_back(std::move(ev));
        counts[static_cast<std::size_t>(kind)]++;
    }
    return kind;
}

void
FaultInjector::setVariantFault(const std::string &variant,
                               VariantFaultKind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    if (kind == VariantFaultKind::None)
        variantFaults.erase(variant);
    else
        variantFaults[variant] = kind;
}

VariantFaultKind
FaultInjector::variantFaultOf(const std::string &variant)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = variantFaults.find(variant);
    if (it != variantFaults.end())
        return it->second;
    if (cfg_.variantFaultProb <= 0.0)
        return VariantFaultKind::None;
    // First sight of this name: draw once and memoize, so the variant
    // is consistently healthy or consistently broken (a miscompile,
    // not a coin flip per launch).
    VariantFaultKind kind = VariantFaultKind::None;
    if (rng.nextDouble() < cfg_.variantFaultProb) {
        static const VariantFaultKind modes[] = {
            VariantFaultKind::CorruptOutput,
            VariantFaultKind::OobWrite,
            VariantFaultKind::NanOutput,
            VariantFaultKind::KernelHang,
        };
        kind = modes[static_cast<std::size_t>(rng.nextDouble() * 4.0)
                     % 4];
    }
    variantFaults[variant] = kind;
    return kind;
}

void
FaultInjector::logVariantFault(VariantFaultKind kind,
                               const std::string &device,
                               const std::string &variant, TimeNs now)
{
    if (kind == VariantFaultKind::None)
        return;
    std::lock_guard<std::mutex> lock(mu);
    FaultEvent ev;
    ev.vkind = kind;
    ev.device = device;
    ev.variant = variant;
    ev.time = now;
    log.push_back(std::move(ev));
    vcounts[static_cast<std::size_t>(kind)]++;
}

void
FaultInjector::failNext(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu);
    scripted.insert(scripted.end(), n, FaultKind::LaunchFail);
}

void
FaultInjector::hangNext(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu);
    scripted.insert(scripted.end(), n, FaultKind::Hang);
}

void
FaultInjector::spikeNext(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu);
    scripted.insert(scripted.end(), n, FaultKind::LatencySpike);
}

std::vector<FaultEvent>
FaultInjector::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return log;
}

std::uint64_t
FaultInjector::count(FaultKind kind) const
{
    std::lock_guard<std::mutex> lock(mu);
    return counts[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultInjector::variantCount(VariantFaultKind kind) const
{
    std::lock_guard<std::mutex> lock(mu);
    return vcounts[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultInjector::total() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t sum = 0;
    for (const auto c : counts)
        sum += c;
    return sum;
}

std::uint64_t
FaultInjector::variantTotal() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t sum = 0;
    for (const auto c : vcounts)
        sum += c;
    return sum;
}

} // namespace sim
} // namespace dysel
