#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dysel {
namespace support {

namespace {

[[noreturn]] void
kindError(const char *wanted)
{
    throw std::runtime_error(std::string("json: value is not ") + wanted);
}

} // namespace

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        kindError("a bool");
    return boolV;
}

double
Json::asNumber() const
{
    if (kind_ != Kind::Number)
        kindError("a number");
    return numV;
}

std::int64_t
Json::asInt() const
{
    return static_cast<std::int64_t>(std::llround(asNumber()));
}

std::uint64_t
Json::asUint() const
{
    const double v = asNumber();
    if (v < 0)
        kindError("a non-negative number");
    return static_cast<std::uint64_t>(std::llround(v));
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::String)
        kindError("a string");
    return strV;
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::Array)
        kindError("an array");
    return arrV;
}

const std::map<std::string, Json> &
Json::fields() const
{
    if (kind_ != Kind::Object)
        kindError("an object");
    return objV;
}

Json &
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        kindError("an array");
    arrV.push_back(std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        kindError("an object");
    objV[key] = std::move(v);
    return *this;
}

bool
Json::has(const std::string &key) const
{
    return kind_ == Kind::Object && objV.count(key) > 0;
}

const Json &
Json::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        kindError("an object");
    auto it = objV.find(key);
    if (it == objV.end())
        throw std::runtime_error("json: missing field '" + key + "'");
    return it->second;
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    return has(key) ? at(key).asNumber() : fallback;
}

std::int64_t
Json::intOr(const std::string &key, std::int64_t fallback) const
{
    return has(key) ? at(key).asInt() : fallback;
}

bool
Json::boolOr(const std::string &key, bool fallback) const
{
    return has(key) ? at(key).asBool() : fallback;
}

std::string
Json::stringOr(const std::string &key, const std::string &fallback) const
{
    return has(key) ? at(key).asString() : fallback;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(indent > 0 ? indent * (depth + 1) : 0, ' ');
    const std::string closePad(indent > 0 ? indent * depth : 0, ' ');
    const char *nl = indent > 0 ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolV ? "true" : "false";
        break;
      case Kind::Number: {
        char buf[32];
        if (numV == std::floor(numV) && std::fabs(numV) < 1e15)
            std::snprintf(buf, sizeof(buf), "%.0f", numV);
        else
            std::snprintf(buf, sizeof(buf), "%.17g", numV);
        out += buf;
        break;
      }
      case Kind::String:
        out += '"';
        out += jsonEscape(strV);
        out += '"';
        break;
      case Kind::Array: {
        if (arrV.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arrV.size(); ++i) {
            out += pad;
            arrV[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arrV.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += ']';
        break;
      }
      case Kind::Object: {
        if (objV.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto &[key, value] : objV) {
            out += pad;
            out += '"';
            out += jsonEscape(key);
            out += "\":";
            if (indent > 0)
                out += ' ';
            value.dumpTo(out, indent, depth + 1);
            if (++i < objV.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Json
    run()
    {
        Json v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw std::runtime_error("json: " + std::string(what)
                                 + " at offset " + std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(
                   static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consume(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (consume("true"))
            return Json(true);
        if (consume("false"))
            return Json(false);
        if (consume("null"))
            return Json();
        return number();
    }

    Json
    object()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            obj.set(key, value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    array()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        for (;;) {
            arr.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                fail("unterminated string");
            const char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            const char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("short unicode escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad unicode escape");
                }
                // Basic-plane code points only; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E'
                   || s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            fail("expected a value");
        try {
            return Json(std::stod(s.substr(start, pos - start)));
        } catch (const std::exception &) {
            fail("malformed number");
        }
    }

    const std::string &s;
    std::size_t pos = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace support
} // namespace dysel
