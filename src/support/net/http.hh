/**
 * @file
 * Minimal HTTP/1.0 front for the admin plane (DESIGN §11).
 *
 * This is deliberately not a web framework: one loopback listener,
 * one accept loop on a background thread, GET requests only,
 * connection-per-request (Connection: close), no TLS, no keep-alive,
 * no chunking.  The admin plane itself is transport-agnostic (a pure
 * handle(request) -> response function); this file is the only place
 * that touches sockets, so tests can drive AdminPlane directly and
 * the server stays ~200 lines of POSIX.
 *
 * The companion httpGet() client exists for dyseld_top, the CI
 * smoke, and the observability tests -- same dependency footprint,
 * no curl needed in-process.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "support/status.hh"

namespace dysel {
namespace support {
namespace net {

/** One parsed request line (GET only). */
struct HttpRequest
{
    std::string method; ///< "GET"
    std::string target; ///< path + optional "?query"
};

/** What the handler returns; serialized as HTTP/1.0. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/** Stable reason phrase of @p status (e.g. 404 -> "Not Found"). */
const char *httpReason(int status);

/**
 * The admin listener.  start() binds 127.0.0.1:@p port (0 picks an
 * ephemeral port, read it back with port()), spawns the accept loop,
 * and serves each connection serially: read one request, call the
 * handler, write the response, close.  Handler exceptions become 500
 * responses.  stop() shuts the listener down and joins; the
 * destructor stops implicitly.
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer() = default;
    ~HttpServer() { stop(); }

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind + listen + spawn the accept loop.  Non-reentrant. */
    Status start(std::uint16_t port, Handler handler);

    /** The bound port (after start(); 0 before). */
    std::uint16_t port() const { return port_; }

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Stop accepting, close the listener, join.  Idempotent. */
    void stop();

  private:
    void acceptLoop();
    void serveConnection(int fd);

    Handler handler_;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> running_{false};
    int listenFd = -1;
    std::uint16_t port_ = 0;
};

/**
 * Blocking HTTP/1.0 GET against 127.0.0.1-style hosts.  On success
 * fills @p bodyOut with the response body and @p statusOut with the
 * HTTP status code; the Status reflects transport errors only (a 404
 * is Ok transport-wise).
 *
 * @p timeoutMs is an overall deadline covering connect AND the whole
 * response read: the connect uses a non-blocking handshake bounded by
 * the deadline, and a server that accepts but then stalls (or drips
 * bytes forever) trips the same bound.  Both paths return a typed
 * DEADLINE_EXCEEDED status, so a dead or wedged peer costs a caller
 * at most @p timeoutMs -- never an indefinite block.
 */
Status httpGet(const std::string &host, std::uint16_t port,
               const std::string &target, std::string &bodyOut,
               int &statusOut, int timeoutMs = 5000);

/** Percent-encode @p s for use inside a query value. */
std::string urlEncode(const std::string &s);

/** Inverse of urlEncode(); also folds '+' to space. */
std::string urlDecode(const std::string &s);

} // namespace net
} // namespace support
} // namespace dysel
