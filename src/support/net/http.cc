#include "http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dysel {
namespace support {
namespace net {

namespace {

/** Write the whole buffer, retrying on short writes / EINTR. */
bool
writeAll(int fd, const char *data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read until @p marker appears or @p cap bytes; "" on error. */
std::string
readUntil(int fd, const char *marker, std::size_t cap, int timeoutMs)
{
    std::string buf;
    char chunk[2048];
    while (buf.size() < cap && buf.find(marker) == std::string::npos) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, timeoutMs);
        if (pr <= 0)
            return std::string();
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::string();
        }
        if (n == 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    return buf;
}

} // namespace

const char *
httpReason(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

Status
HttpServer::start(std::uint16_t port, Handler handler)
{
    if (running())
        return Status::failedPrecondition(
            "HttpServer: already running");
    if (!handler)
        return Status::invalidArgument("HttpServer: empty handler");
    handler_ = std::move(handler);

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        return Status::unavailable(std::string("socket: ")
                                   + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        const std::string err = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return Status::unavailable("bind 127.0.0.1:"
                                   + std::to_string(port) + ": " + err);
    }
    if (::listen(listenFd, 16) != 0) {
        const std::string err = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return Status::unavailable(std::string("listen: ") + err);
    }
    socklen_t alen = sizeof(addr);
    if (::getsockname(listenFd,
                      reinterpret_cast<struct sockaddr *>(&addr), &alen)
        == 0)
        port_ = ntohs(addr.sin_port);

    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { acceptLoop(); });
    return Status();
}

void
HttpServer::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    port_ = 0;
}

void
HttpServer::acceptLoop()
{
    // Poll with a short timeout so stop() is observed promptly
    // without the close-a-blocked-accept race.
    while (!stopping_.load(std::memory_order_acquire)) {
        struct pollfd pfd = {listenFd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        serveConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::serveConnection(int fd)
{
    const std::string raw =
        readUntil(fd, "\r\n\r\n", 16 * 1024, 5000);
    HttpResponse resp;
    if (raw.empty()) {
        resp.status = 400;
        resp.body = "bad request\n";
    } else {
        std::istringstream line(raw.substr(0, raw.find("\r\n")));
        HttpRequest req;
        std::string version;
        line >> req.method >> req.target >> version;
        if (req.method != "GET") {
            resp.status = 405;
            resp.body = "only GET is served here\n";
        } else if (req.target.empty() || req.target[0] != '/') {
            resp.status = 400;
            resp.body = "bad target\n";
        } else {
            try {
                resp = handler_(req);
            } catch (const std::exception &e) {
                resp = HttpResponse();
                resp.status = 500;
                resp.body =
                    std::string("handler error: ") + e.what() + "\n";
            }
        }
    }
    std::ostringstream os;
    os << "HTTP/1.0 " << resp.status << ' ' << httpReason(resp.status)
       << "\r\nContent-Type: " << resp.contentType
       << "\r\nContent-Length: " << resp.body.size()
       << "\r\nConnection: close\r\n\r\n";
    const std::string head = os.str();
    if (writeAll(fd, head.data(), head.size()))
        writeAll(fd, resp.body.data(), resp.body.size());
}

Status
httpGet(const std::string &host, std::uint16_t port,
        const std::string &target, std::string &bodyOut, int &statusOut,
        int timeoutMs)
{
    using clock = std::chrono::steady_clock;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(timeoutMs);
    const auto remainingMs = [&deadline]() {
        return static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - clock::now())
                .count());
    };

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::unavailable(std::string("socket: ")
                                   + std::strerror(errno));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return Status::invalidArgument("httpGet: bad host " + host);
    }
    // Non-blocking connect bounded by the deadline: a dead peer (or a
    // black-holed address) must cost at most timeoutMs, not a kernel
    // default connect timeout measured in minutes.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        if (errno != EINPROGRESS) {
            const std::string err = std::strerror(errno);
            ::close(fd);
            return Status::unavailable("connect " + host + ":"
                                       + std::to_string(port) + ": "
                                       + err);
        }
        struct pollfd pfd = {fd, POLLOUT, 0};
        const int pr = ::poll(&pfd, 1, std::max(0, remainingMs()));
        if (pr <= 0) {
            ::close(fd);
            return Status::deadlineExceeded(
                "httpGet: connect timeout after "
                + std::to_string(timeoutMs) + "ms to " + host + ":"
                + std::to_string(port));
        }
        int soErr = 0;
        socklen_t len = sizeof(soErr);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len) != 0
            || soErr != 0) {
            ::close(fd);
            return Status::unavailable(
                "connect " + host + ":" + std::to_string(port) + ": "
                + std::strerror(soErr ? soErr : errno));
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    const std::string req = "GET " + target
                            + " HTTP/1.0\r\nHost: " + host
                            + "\r\nConnection: close\r\n\r\n";
    if (!writeAll(fd, req.data(), req.size())) {
        ::close(fd);
        return Status::unavailable("httpGet: send failed");
    }
    // Connection: close -- read to EOF (bounded).  Each poll gets the
    // time LEFT, not a fresh full timeout: a server that accepts and
    // then stalls -- or drips one byte per poll -- still trips the
    // overall deadline.
    std::string raw;
    char chunk[4096];
    for (;;) {
        const int waitMs = remainingMs();
        struct pollfd pfd = {fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, std::max(0, waitMs));
        if (pr <= 0 || waitMs <= 0) {
            ::close(fd);
            return Status::deadlineExceeded(
                "httpGet: read timeout after "
                + std::to_string(timeoutMs) + "ms from " + host + ":"
                + std::to_string(port));
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return Status::unavailable("httpGet: recv failed");
        }
        if (n == 0)
            break;
        raw.append(chunk, static_cast<std::size_t>(n));
        if (raw.size() > 64 * 1024 * 1024) {
            ::close(fd);
            return Status::resourceExhausted(
                "httpGet: response too large");
        }
    }
    ::close(fd);

    const auto eol = raw.find("\r\n");
    const auto sep = raw.find("\r\n\r\n");
    if (eol == std::string::npos || sep == std::string::npos)
        return Status::dataLoss("httpGet: malformed response");
    std::istringstream line(raw.substr(0, eol));
    std::string version;
    int status = 0;
    line >> version >> status;
    if (version.rfind("HTTP/", 0) != 0 || status == 0)
        return Status::dataLoss("httpGet: malformed status line");
    statusOut = status;
    bodyOut = raw.substr(sep + 4);
    return Status();
}

std::string
urlEncode(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        const bool plain = (c >= 'a' && c <= 'z')
                           || (c >= 'A' && c <= 'Z')
                           || (c >= '0' && c <= '9') || c == '-'
                           || c == '_' || c == '.' || c == '~';
        if (plain) {
            out.push_back(static_cast<char>(c));
        } else {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X", c);
            out.append(buf);
        }
    }
    return out;
}

std::string
urlDecode(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '+') {
            out.push_back(' ');
        } else if (s[i] == '%' && i + 2 < s.size()
                   && std::isxdigit(
                       static_cast<unsigned char>(s[i + 1]))
                   && std::isxdigit(
                       static_cast<unsigned char>(s[i + 2]))) {
            out.push_back(static_cast<char>(
                std::stoi(s.substr(i + 1, 2), nullptr, 16)));
            i += 2;
        } else {
            out.push_back(s[i]);
        }
    }
    return out;
}

} // namespace net
} // namespace support
} // namespace dysel
