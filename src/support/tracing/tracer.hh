/**
 * @file
 * End-to-end tracing: nested spans with attributes, correlation ids,
 * and Chrome trace-event export.
 *
 * Named `tracing` (not `trace`) to avoid clashing with the execution
 * traces of src/kdp/trace.hh: those record *what a kernel computed*,
 * these record *where a launch's time went* -- queueing, profiling
 * passes, guard verdicts, retries, winner execution.
 *
 * Timestamps are virtual nanoseconds supplied by the caller (device
 * clocks from sim::time), so traces of a deterministic simulation are
 * themselves deterministic.  Every event can carry a correlation id
 * -- the dispatch service uses the job id, propagated through
 * Runtime::launch via LaunchOptions::correlationId -- so one job's
 * spans can be followed across service, runtime, and device layers.
 *
 * The tracer is a cheap central sink: recording appends to a
 * mutex-protected vector, and a disabled tracer (the default) costs
 * one relaxed atomic load per call site.  The latency-critical
 * per-worker record-everything-always channel is the FlightRecorder
 * (flight_recorder.hh), which is bounded and guarded by its own
 * uncontended per-worker mutex (so the admin plane can snapshot it
 * from another thread).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hh"

namespace dysel {
namespace support {
namespace tracing {

/** Key/value attributes attached to an event. */
using Attrs = std::vector<std::pair<std::string, std::string>>;

/** One trace event (maps 1:1 onto a Chrome trace-event record). */
struct TraceEvent
{
    /** Chrome trace-event phase. */
    enum class Phase {
        Begin,    ///< "B": span open (nests on its track)
        End,      ///< "E": span close
        Complete, ///< "X": span with explicit duration
        Instant,  ///< "i": point event
    };

    Phase phase = Phase::Instant;
    std::string name;
    std::string category;
    /** Virtual time (ns) of the event; span start for Complete. */
    std::uint64_t ts = 0;
    /** Span duration (ns); Complete events only. */
    std::uint64_t dur = 0;
    /** Track the event renders on (see Tracer::track). */
    std::uint64_t tid = 0;
    /** Job/launch correlation id; 0 means "not job-scoped". */
    std::uint64_t correlation = 0;
    Attrs args;
};

/** Stable Chrome "ph" string of @p phase. */
const char *phaseName(TraceEvent::Phase phase);

/**
 * The central trace sink.  Thread-safe; disabled (and free) until
 * setEnabled(true).
 */
class Tracer
{
  public:
    /** Turn recording on or off; events are kept across toggles. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Get-or-create the track named @p name and return its id.
     * Tracks become named Chrome timeline rows (one per device
     * worker, one per profiling pass) via thread_name metadata in the
     * export; ids are assigned in creation order, which doubles as
     * the track sort order.
     */
    std::uint64_t track(const std::string &name);

    /** Record @p ev if enabled. */
    void record(TraceEvent ev);

    /** Open a nested span on @p tid. */
    void begin(std::uint64_t tid, std::string name, std::uint64_t ts,
               std::uint64_t correlation = 0, Attrs args = {});

    /** Close the innermost open span on @p tid. */
    void end(std::uint64_t tid, std::string name, std::uint64_t ts,
             std::uint64_t correlation = 0);

    /** Record a span with both endpoints known. */
    void complete(std::uint64_t tid, std::string name, std::uint64_t start,
                  std::uint64_t end, std::uint64_t correlation = 0,
                  Attrs args = {});

    /** Record a point event. */
    void instant(std::uint64_t tid, std::string name, std::uint64_t ts,
                 std::uint64_t correlation = 0, Attrs args = {});

    /** Number of recorded events. */
    std::size_t eventCount() const;

    /** Recorded events named @p name (for counter reconciliation). */
    std::uint64_t countNamed(const std::string &name) const;

    /** Copy of all recorded events, in recording order. */
    std::vector<TraceEvent> snapshot() const;

    /** Drop all recorded events (track ids stay assigned). */
    void clear();

    /**
     * Export as a Chrome trace-event JSON object: {"traceEvents":
     * [...], "displayTimeUnit": "ns"}.  Loads in chrome://tracing and
     * Perfetto.  `ts`/`dur` are microseconds (the trace-event unit),
     * emitted with fractional-ns precision; each track gets a
     * thread_name + thread_sort_index metadata record.
     */
    Json exportChromeTrace() const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    std::map<std::string, std::uint64_t> tracks; ///< name -> tid
};

} // namespace tracing
} // namespace support
} // namespace dysel
