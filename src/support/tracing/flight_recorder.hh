/**
 * @file
 * Per-worker flight recorder: a fixed-capacity ring of the most
 * recent phase records, dumped when a job fails -- or on demand by
 * the admin plane's /debug/flight endpoint.
 *
 * Each dispatch-service worker owns one recorder and is its only
 * writer; failure dumps happen on the same worker thread, but the
 * admin plane snapshots the ring from its serving thread while the
 * worker keeps recording.  A plain mutex guards the ring for that:
 * the lock is uncontended in steady state (admin reads are rare), so
 * recording stays a ring-slot assignment plus an uncontended lock --
 * still cheap enough for the hot dispatch path.  Unlike the Tracer
 * it is always on, and the bound means a long-lived service never
 * grows it.  When a job dies, the dump shows the last `capacity`
 * things its worker did -- device, phase, and detail -- which is
 * exactly the "where did it die" evidence the Status payload carries
 * back to the caller.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace dysel {
namespace support {
namespace tracing {

/** Bounded ring of phase records (one writer, any-thread readers). */
class FlightRecorder
{
  public:
    /** One recorded phase transition. */
    struct Entry
    {
        std::uint64_t ts = 0; ///< virtual ns (owner device clock)
        std::uint64_t job = 0; ///< job id; 0 when not job-scoped
        std::string phase;    ///< e.g. "claim", "profile", "launch"
        std::string detail;   ///< free-form context (device, status)
    };

    explicit FlightRecorder(std::size_t capacity = 64)
        : ring(capacity == 0 ? 1 : capacity)
    {
    }

    /** Drop all records and resize the ring (single-threaded setup). */
    void reset(std::size_t capacity)
    {
        std::lock_guard<std::mutex> lock(mu);
        ring.assign(capacity == 0 ? 1 : capacity, Entry{});
        written = 0;
    }

    std::size_t capacity() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return ring.size();
    }

    /** Total records ever written (>= capacity once wrapped). */
    std::uint64_t recorded() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return written;
    }

    /** Append one record, overwriting the oldest once full. */
    void record(std::uint64_t ts, std::uint64_t job, std::string phase,
                std::string detail = std::string())
    {
        std::lock_guard<std::mutex> lock(mu);
        Entry &slot = ring[written % ring.size()];
        slot.ts = ts;
        slot.job = job;
        slot.phase = std::move(phase);
        slot.detail = std::move(detail);
        written++;
    }

    /** The retained records, oldest first. */
    std::vector<Entry> snapshot() const
    {
        std::lock_guard<std::mutex> lock(mu);
        std::vector<Entry> out;
        const std::uint64_t n =
            written < ring.size() ? written : ring.size();
        out.reserve(n);
        const std::uint64_t first = written - n;
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(ring[(first + i) % ring.size()]);
        return out;
    }

    /**
     * Human-readable dump, oldest first, one record per line:
     *   t=<ns> job=<id> phase=<phase> <detail>
     */
    std::string dump() const
    {
        const std::uint64_t total = recorded();
        const std::vector<Entry> entries = snapshot();
        std::ostringstream os;
        os << "flight recorder (" << total << " recorded, last "
           << entries.size() << "):\n";
        for (const Entry &e : entries) {
            os << "  t=" << e.ts;
            if (e.job != 0)
                os << " job=" << e.job;
            os << " phase=" << e.phase;
            if (!e.detail.empty())
                os << ' ' << e.detail;
            os << '\n';
        }
        return os.str();
    }

  private:
    mutable std::mutex mu;
    std::vector<Entry> ring;
    std::uint64_t written = 0;
};

} // namespace tracing
} // namespace support
} // namespace dysel
