#include "tracer.hh"

namespace dysel {
namespace support {
namespace tracing {

const char *
phaseName(TraceEvent::Phase phase)
{
    switch (phase) {
      case TraceEvent::Phase::Begin: return "B";
      case TraceEvent::Phase::End: return "E";
      case TraceEvent::Phase::Complete: return "X";
      case TraceEvent::Phase::Instant: return "i";
    }
    return "?";
}

std::uint64_t
Tracer::track(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = tracks.find(name);
    if (it != tracks.end())
        return it->second;
    const std::uint64_t tid = tracks.size() + 1; // 0 stays "untracked"
    tracks.emplace(name, tid);
    return tid;
}

void
Tracer::record(TraceEvent ev)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(std::move(ev));
}

void
Tracer::begin(std::uint64_t tid, std::string name, std::uint64_t ts,
              std::uint64_t correlation, Attrs args)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Begin;
    ev.tid = tid;
    ev.name = std::move(name);
    ev.ts = ts;
    ev.correlation = correlation;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::end(std::uint64_t tid, std::string name, std::uint64_t ts,
            std::uint64_t correlation)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::End;
    ev.tid = tid;
    ev.name = std::move(name);
    ev.ts = ts;
    ev.correlation = correlation;
    record(std::move(ev));
}

void
Tracer::complete(std::uint64_t tid, std::string name, std::uint64_t start,
                 std::uint64_t end, std::uint64_t correlation, Attrs args)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Complete;
    ev.tid = tid;
    ev.name = std::move(name);
    ev.ts = start;
    ev.dur = end >= start ? end - start : 0;
    ev.correlation = correlation;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::instant(std::uint64_t tid, std::string name, std::uint64_t ts,
                std::uint64_t correlation, Attrs args)
{
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Instant;
    ev.tid = tid;
    ev.name = std::move(name);
    ev.ts = ts;
    ev.correlation = correlation;
    ev.args = std::move(args);
    record(std::move(ev));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

std::uint64_t
Tracer::countNamed(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t n = 0;
    for (const auto &ev : events)
        if (ev.name == name)
            n++;
    return n;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
}

Json
Tracer::exportChromeTrace() const
{
    std::lock_guard<std::mutex> lock(mu);
    Json arr = Json::array();

    // Track metadata first: a named, stably-sorted row per track.
    for (const auto &[name, tid] : tracks) {
        Json meta = Json::object();
        meta.set("ph", Json("M"));
        meta.set("name", Json("thread_name"));
        meta.set("pid", Json(1));
        meta.set("tid", Json(tid));
        Json margs = Json::object();
        margs.set("name", Json(name));
        meta.set("args", std::move(margs));
        arr.push(std::move(meta));

        Json sort = Json::object();
        sort.set("ph", Json("M"));
        sort.set("name", Json("thread_sort_index"));
        sort.set("pid", Json(1));
        sort.set("tid", Json(tid));
        Json sargs = Json::object();
        sargs.set("sort_index", Json(tid));
        sort.set("args", std::move(sargs));
        arr.push(std::move(sort));
    }

    for (const auto &ev : events) {
        Json e = Json::object();
        e.set("ph", Json(phaseName(ev.phase)));
        e.set("name", Json(ev.name));
        if (!ev.category.empty())
            e.set("cat", Json(ev.category));
        e.set("pid", Json(1));
        e.set("tid", Json(ev.tid));
        // Trace-event timestamps are microseconds; virtual ns map to
        // fractional us without precision loss at simulation scales.
        e.set("ts", Json(static_cast<double>(ev.ts) / 1000.0));
        if (ev.phase == TraceEvent::Phase::Complete)
            e.set("dur", Json(static_cast<double>(ev.dur) / 1000.0));
        if (ev.phase == TraceEvent::Phase::Instant)
            e.set("s", Json("t")); // thread-scoped instant
        Json args = Json::object();
        if (ev.correlation != 0)
            args.set("cid", Json(ev.correlation));
        for (const auto &[k, v] : ev.args)
            args.set(k, Json(v));
        e.set("args", std::move(args));
        arr.push(std::move(e));
    }

    Json root = Json::object();
    root.set("traceEvents", std::move(arr));
    root.set("displayTimeUnit", Json("ns"));
    return root;
}

} // namespace tracing
} // namespace support
} // namespace dysel
