#include "status.hh"

#include <stdexcept>

namespace dysel {
namespace support {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "OK";
      case StatusCode::InvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::NotFound: return "NOT_FOUND";
      case StatusCode::DeadlineExceeded: return "DEADLINE_EXCEEDED";
      case StatusCode::Unavailable: return "UNAVAILABLE";
      case StatusCode::FailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::Cancelled: return "CANCELLED";
      case StatusCode::ResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::Aborted: return "ABORTED";
      case StatusCode::Internal: return "INTERNAL";
      case StatusCode::DataLoss: return "DATA_LOSS";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

void
Status::throwIfError() const
{
    switch (code_) {
      case StatusCode::Ok:
        return;
      case StatusCode::NotFound:
        throw std::out_of_range(message_);
      case StatusCode::InvalidArgument:
        throw std::invalid_argument(message_);
      default:
        throw std::runtime_error(toString());
    }
}

} // namespace support
} // namespace dysel
