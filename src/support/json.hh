/**
 * @file
 * Minimal JSON value type with serialization and parsing.
 *
 * Used by the selection store for its on-disk format and by the
 * metrics registry for its JSON export.  Deliberately tiny: objects,
 * arrays, strings, numbers (doubles), booleans, and null; no
 * streaming, no comments, UTF-8 passed through untouched.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dysel {
namespace support {

/**
 * One JSON value.  A small tagged union; objects keep their keys
 * sorted (std::map), which makes serialization deterministic -- the
 * store round-trip tests rely on that.
 */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), boolV(b) {}
    Json(double d) : kind_(Kind::Number), numV(d) {}
    Json(std::int64_t i)
        : kind_(Kind::Number), numV(static_cast<double>(i))
    {}
    Json(std::uint64_t u)
        : kind_(Kind::Number), numV(static_cast<double>(u))
    {}
    Json(int i) : kind_(Kind::Number), numV(i) {}
    Json(unsigned u) : kind_(Kind::Number), numV(u) {}
    Json(const char *s) : kind_(Kind::String), strV(s) {}
    Json(std::string s) : kind_(Kind::String), strV(std::move(s)) {}

    /** An empty array / object (Json() alone is null). */
    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Typed accessors; throw std::runtime_error on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<Json> &items() const;
    const std::map<std::string, Json> &fields() const;

    /** Append to an array (converts a null value to an array). */
    Json &push(Json v);

    /** Object field access; set() converts a null value to an object. */
    Json &set(const std::string &key, Json v);
    bool has(const std::string &key) const;

    /** Field lookup; throws std::runtime_error when absent. */
    const Json &at(const std::string &key) const;

    /** Field lookup with a fallback for absent keys. */
    double numberOr(const std::string &key, double fallback) const;
    std::int64_t intOr(const std::string &key,
                       std::int64_t fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse JSON text.  Throws std::runtime_error with a character
     * offset on malformed input.
     */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool boolV = false;
    double numV = 0.0;
    std::string strV;
    std::vector<Json> arrV;
    std::map<std::string, Json> objV;
};

/** JSON-escape a string (without the surrounding quotes). */
std::string jsonEscape(const std::string &s);

} // namespace support
} // namespace dysel
