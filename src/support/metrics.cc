#include "metrics.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dysel {
namespace support {

namespace {

std::size_t
bucketIndex(double v)
{
    if (v < 1.0)
        return 0;
    const auto idx = static_cast<std::size_t>(std::floor(std::log2(v)));
    return idx >= Histogram::numBuckets ? Histogram::numBuckets - 1 : idx;
}

double
bitsToDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** Atomically apply min/max on a double stored as bits. */
template <typename Cmp>
void
atomicExtreme(std::atomic<std::uint64_t> &slot, double v, Cmp better)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (better(v, bitsToDouble(cur))
           && !slot.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                          std::memory_order_relaxed)) {
    }
}

void
atomicAdd(std::atomic<std::uint64_t> &slot, double v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(bitsToDouble(cur) + v),
        std::memory_order_relaxed)) {
    }
}

} // namespace

void
Histogram::observe(double v)
{
    if (v < 0)
        v = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sumBits, v);
    atomicExtreme(minBits, v, [](double a, double b) { return a < b; });
    atomicExtreme(maxBits, v, [](double a, double b) { return a > b; });
    bucket_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return bitsToDouble(sumBits.load(std::memory_order_relaxed));
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::min() const
{
    return count() == 0
               ? 0.0
               : bitsToDouble(minBits.load(std::memory_order_relaxed));
}

double
Histogram::max() const
{
    return count() == 0
               ? 0.0
               : bitsToDouble(maxBits.load(std::memory_order_relaxed));
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    const auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        seen += bucket_[i].load(std::memory_order_relaxed);
        if (seen >= target && seen > 0)
            return std::ldexp(1.0, static_cast<int>(i) + 1); // 2^(i+1)
    }
    return max();
}

std::vector<std::uint64_t>
Histogram::buckets() const
{
    std::vector<std::uint64_t> out(numBuckets);
    for (std::size_t i = 0; i < numBuckets; ++i)
        out[i] = bucket_[i].load(std::memory_order_relaxed);
    return out;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second->value();
}

std::string
MetricsRegistry::renderText() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    for (const auto &[name, c] : counters)
        os << name << ' ' << c->value() << '\n';
    for (const auto &[name, h] : histograms) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s{count=%llu mean=%.1f p50=%.0f p99=%.0f "
                      "max=%.0f}\n",
                      name.c_str(), (unsigned long long)h->count(),
                      h->mean(), h->quantile(0.5), h->quantile(0.99),
                      h->max());
        os << buf;
    }
    return os.str();
}

Json
MetricsRegistry::renderJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    Json counterObj = Json::object();
    for (const auto &[name, c] : counters)
        counterObj.set(name, Json(c->value()));
    Json histObj = Json::object();
    for (const auto &[name, h] : histograms) {
        Json entry = Json::object();
        entry.set("count", Json(h->count()));
        entry.set("sum", Json(h->sum()));
        entry.set("mean", Json(h->mean()));
        entry.set("min", Json(h->min()));
        entry.set("max", Json(h->max()));
        entry.set("p50", Json(h->quantile(0.5)));
        entry.set("p99", Json(h->quantile(0.99)));
        histObj.set(name, std::move(entry));
    }
    Json root = Json::object();
    root.set("counters", std::move(counterObj));
    root.set("histograms", std::move(histObj));
    return root;
}

} // namespace support
} // namespace dysel
