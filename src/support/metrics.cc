#include "metrics.hh"

#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dysel {
namespace support {

namespace {

std::size_t
bucketIndex(double v)
{
    if (v < 1.0)
        return 0;
    const auto idx = static_cast<std::size_t>(std::floor(std::log2(v)));
    return idx >= Histogram::numBuckets ? Histogram::numBuckets - 1 : idx;
}

double
bitsToDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** Atomically apply min/max on a double stored as bits. */
template <typename Cmp>
void
atomicExtreme(std::atomic<std::uint64_t> &slot, double v, Cmp better)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (better(v, bitsToDouble(cur))
           && !slot.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                          std::memory_order_relaxed)) {
    }
}

void
atomicAdd(std::atomic<std::uint64_t> &slot, double v)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(bitsToDouble(cur) + v),
        std::memory_order_relaxed)) {
    }
}

} // namespace

void
Histogram::observe(double v)
{
    if (v < 0)
        v = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sumBits, v);
    atomicExtreme(minBits, v, [](double a, double b) { return a < b; });
    atomicExtreme(maxBits, v, [](double a, double b) { return a > b; });
    bucket_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return bitsToDouble(sumBits.load(std::memory_order_relaxed));
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::min() const
{
    return count() == 0
               ? 0.0
               : bitsToDouble(minBits.load(std::memory_order_relaxed));
}

double
Histogram::max() const
{
    return count() == 0
               ? 0.0
               : bitsToDouble(maxBits.load(std::memory_order_relaxed));
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    const auto target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        seen += bucket_[i].load(std::memory_order_relaxed);
        if (seen >= target && seen > 0) {
            // The bucket's upper bound 2^(i+1) can overshoot the
            // largest sample (one sample of 3 would report p50 = 4);
            // clamp to the observed max.
            return std::min(std::ldexp(1.0, static_cast<int>(i) + 1),
                            max());
        }
    }
    return max();
}

std::vector<std::uint64_t>
Histogram::buckets() const
{
    std::vector<std::uint64_t> out(numBuckets);
    for (std::size_t i = 0; i < numBuckets; ++i)
        out[i] = bucket_[i].load(std::memory_order_relaxed);
    return out;
}

std::string
MetricsRegistry::escapeLabelValue(const std::string &value)
{
    // Prometheus text format 0.0.4: inside a label value, backslash,
    // double quote, and newline must be escaped.  Escaping at
    // construction time keeps every stored metric name a valid label
    // set, so exporters never have to re-parse ambiguous raw values.
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
MetricsRegistry::labeled(const std::string &name, const std::string &key,
                         const std::string &value)
{
    return name + "{" + key + "=\"" + escapeLabelValue(value) + "\"}";
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second->value();
}

std::string
MetricsRegistry::renderText() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    // One name-sorted pass over both maps: the output order is a pure
    // function of the metric names, independent of which kind a name
    // happens to be or the order metrics were created in.
    auto ci = counters.begin();
    auto hi = histograms.begin();
    auto emitHistogram = [&os](const std::string &name,
                               const Histogram &h) {
        char buf[200];
        std::snprintf(buf, sizeof(buf),
                      "%s{count=%llu mean=%.1f p50=%.0f p90=%.0f "
                      "p95=%.0f p99=%.0f max=%.0f}\n",
                      name.c_str(), (unsigned long long)h.count(),
                      h.mean(), h.quantile(0.5), h.quantile(0.9),
                      h.quantile(0.95), h.quantile(0.99), h.max());
        os << buf;
    };
    while (ci != counters.end() || hi != histograms.end()) {
        if (hi == histograms.end()
            || (ci != counters.end() && ci->first <= hi->first)) {
            os << ci->first << ' ' << ci->second->value() << '\n';
            ++ci;
        } else {
            emitHistogram(hi->first, *hi->second);
            ++hi;
        }
    }
    return os.str();
}

Json
MetricsRegistry::renderJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    Json counterObj = Json::object();
    for (const auto &[name, c] : counters)
        counterObj.set(name, Json(c->value()));
    Json histObj = Json::object();
    for (const auto &[name, h] : histograms) {
        Json entry = Json::object();
        entry.set("count", Json(h->count()));
        entry.set("sum", Json(h->sum()));
        entry.set("mean", Json(h->mean()));
        entry.set("min", Json(h->min()));
        entry.set("max", Json(h->max()));
        entry.set("p50", Json(h->quantile(0.5)));
        entry.set("p90", Json(h->quantile(0.9)));
        entry.set("p95", Json(h->quantile(0.95)));
        entry.set("p99", Json(h->quantile(0.99)));
        histObj.set(name, std::move(entry));
    }
    Json root = Json::object();
    root.set("counters", std::move(counterObj));
    root.set("histograms", std::move(histObj));
    return root;
}

namespace {

/** Split `family{labels}` into its parts; labels may be empty. */
void
splitLabeled(const std::string &name, std::string &family,
             std::string &labels)
{
    const auto brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}') {
        family = name;
        labels.clear();
        return;
    }
    family = name.substr(0, brace);
    labels = name.substr(brace + 1, name.size() - brace - 2);
}

/** Prometheus metric-name sanitization: [a-zA-Z0-9_:], '_' elsewhere. */
std::string
promName(const std::string &family)
{
    std::string out = family;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

/** Render a double the way Prometheus expects ("+Inf"-free here). */
std::string
promNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/**
 * HELP text of a metric family, keyed by the sanitized family name.
 * Families not in the table get a generic line -- every exported
 * family always carries a HELP, as scrapers expect.
 */
const char *
promHelp(const std::string &family)
{
    static const std::map<std::string, const char *> help = {
        {"jobs_submitted", "Jobs accepted by submit()/submitMany()."},
        {"jobs_completed", "Jobs that finished with an OK status."},
        {"jobs_failed", "Jobs that finished with a non-OK status."},
        {"jobs_cancelled", "Jobs withdrawn while still queued."},
        {"store_hit", "Selection-store lookups served warm."},
        {"store_miss", "Selection-store lookups that missed."},
        {"store_record", "Profiled launches recorded into the store."},
        {"store_quarantine",
         "Records demoted to their runner-up variant."},
        {"store_drift_invalidation",
         "Records invalidated by throughput drift."},
        {"batch_launches", "Fused launches executed."},
        {"batch_jobs", "Jobs served by fused launches."},
        {"batch_demoted",
         "Batch members demoted to solo re-execution."},
        {"batch_size", "Jobs per fused launch."},
        {"job_device_ns", "Per-job device time (virtual ns)."},
        {"job_attempts", "Attempts per completed job."},
        {"job_backoff_ns",
         "Charged virtual retry backoff per job (ns)."},
        {"admission_blocked",
         "Submissions that blocked on a full queue."},
        {"admission_block_ns",
         "Wall time submitters spent blocked (ns)."},
        {"admission_shed", "Jobs shed by admission control."},
        {"admission_stopped",
         "Jobs refused because the service was stopping."},
        {"breaker_trips", "Circuit breakers opened."},
        {"breaker_reopens", "Failed half-open probes."},
        {"breaker_closes", "Circuit breakers closed by a probe."},
        {"recover_retries", "Job attempts retried on another device."},
        {"recover_timeouts", "Deadline expirations (device or job)."},
        {"coalesce_leader", "Profiling passes led for a cold key."},
        {"coalesce_follower",
         "Jobs that waited behind a profiling leader."},
        {"coalesce_hit",
         "Followers served warm from their leader's record."},
        {"coalesce_leader_failed",
         "Leaders that released without recording."},
        {"guard_excluded",
         "Variants excluded up front by the blacklist."},
        {"guard_repair",
         "Productive slices re-executed after a guard strike."},
        {"guard_blacklist", "Variants blacklisted by the guard."},
        {"guard_blocked_warmstart",
         "Warm starts blocked by a blacklisted winner."},
        {"predict_train", "Online training examples fed in."},
        {"predict_demoted", "Predicted selections demoted."},
        {"predict_hit", "Store misses served by a prediction."},
        {"predict_miss",
         "Store misses the predictor declined to serve."},
        {"pool_install_failed", "Kernel-pool installers that threw."},
        {"device_jobs", "Jobs completed, per device."},
        {"device_store_hits", "Warm starts served, per device."},
        {"device_profiled", "Profiling launches run, per device."},
        {"device_latency_ns", "Per-job device time, per device (ns)."},
        {"device_breaker_trips", "Breaker trips, per device."},
        {"device_retries_out", "Jobs retried away, per device."},
        {"device_shed", "Jobs shed, per device."},
        {"audit_samples",
         "Warm hits shadow-audited against the runner-up."},
        {"audit_probe_failed", "Audit probes whose launch failed."},
        {"audit_regret_pct",
         "Realized selection regret per audit sample (percent)."},
        {"audit_demotions",
         "Selections quarantined by sustained audit regret."},
    };
    auto it = help.find(family);
    return it == help.end() ? "DySel serving metric." : it->second;
}

} // namespace

std::string
MetricsRegistry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    std::string lastFamily;
    auto typeLine = [&](const std::string &family, const char *type) {
        // One HELP + TYPE pair per family: labeled series of one
        // family (device="dev0", device="dev1") are adjacent in the
        // sorted map, so emitting on family change is enough.
        if (family == lastFamily)
            return;
        lastFamily = family;
        os << "# HELP " << family << ' ' << promHelp(family) << '\n';
        os << "# TYPE " << family << ' ' << type << '\n';
    };

    for (const auto &[name, c] : counters) {
        std::string family, labels;
        splitLabeled(name, family, labels);
        family = promName(family);
        typeLine(family, "counter");
        os << family;
        if (!labels.empty())
            os << '{' << labels << '}';
        os << ' ' << c->value() << '\n';
    }

    lastFamily.clear();
    for (const auto &[name, h] : histograms) {
        std::string family, labels;
        splitLabeled(name, family, labels);
        family = promName(family);
        typeLine(family, "histogram");
        const auto buckets = h->buckets();
        // Cumulative counts at the power-of-two upper bounds, up to
        // the highest non-empty bucket, then the +Inf catch-all.
        std::size_t top = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i)
            if (buckets[i] > 0)
                top = i + 1;
        std::uint64_t cum = 0;
        auto bucketLine = [&](const std::string &le, std::uint64_t n) {
            os << family << "_bucket{";
            if (!labels.empty())
                os << labels << ',';
            os << "le=\"" << le << "\"} " << n << '\n';
        };
        for (std::size_t i = 0; i < top; ++i) {
            cum += buckets[i];
            bucketLine(promNumber(std::ldexp(1.0, static_cast<int>(i) + 1)),
                       cum);
        }
        bucketLine("+Inf", h->count());
        const std::string suffix =
            labels.empty() ? "" : "{" + labels + "}";
        os << family << "_sum" << suffix << ' ' << promNumber(h->sum())
           << '\n';
        os << family << "_count" << suffix << ' ' << h->count() << '\n';
    }
    return os.str();
}

} // namespace support
} // namespace dysel
