/**
 * @file
 * Status / error reporting helpers in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated; this is a bug in the
 *             library itself.  Aborts so a debugger or core dump can
 *             capture the state.
 * fatal()  -- the simulation cannot continue because of a user-level
 *             problem (bad configuration, inconsistent kernel
 *             registration, ...).  Exits with code 1.
 * warn()   -- something is questionable but execution can continue.
 * inform() -- purely informational progress output.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace dysel {
namespace support {

/** Severity levels used by the logging backend. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Minimum level that is actually printed.  Tests raise this to silence
 * expected warnings.
 */
LogLevel logThreshold();

/** Set the minimum printed level and return the previous one. */
LogLevel setLogThreshold(LogLevel level);

/**
 * Core formatted logger.  Not usually called directly; use the wrappers
 * below.
 *
 * @param level severity of the message
 * @param fmt   printf-style format string
 */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Report an internal bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-level error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal progress information. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * RAII guard that suppresses log output below the given level for the
 * lifetime of the guard.  Used by tests that intentionally trigger
 * warnings.
 */
class LogSilencer
{
  public:
    explicit LogSilencer(LogLevel level = LogLevel::Fatal)
        : saved(setLogThreshold(level))
    {}

    ~LogSilencer() { setLogThreshold(saved); }

    LogSilencer(const LogSilencer &) = delete;
    LogSilencer &operator=(const LogSilencer &) = delete;

  private:
    LogLevel saved;
};

} // namespace support
} // namespace dysel
