#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "logging.hh"

namespace dysel {
namespace support {

Table::Table(std::vector<std::string> headers)
    : header(std::move(headers))
{
    if (header.empty())
        panic("Table requires at least one column");
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows.empty())
        panic("Table::cell called before Table::row");
    if (rows.back().size() >= header.size())
        panic("Table row has more cells than headers (%zu)", header.size());
    rows.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < header.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "| " : " | ")
               << std::left << std::setw(static_cast<int>(widths[c])) << v;
        }
        os << " |\n";
    };

    emit_row(header);
    for (std::size_t c = 0; c < header.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-")
           << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto &r : rows)
        emit_row(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << cells[c];
        os << "\n";
    };
    emit(header);
    for (const auto &r : rows)
        emit(r);
}

} // namespace support
} // namespace dysel
