/**
 * @file
 * Deterministic pseudo random number generation.
 *
 * All stochastic behaviour in the project (workload generators, the
 * simulator's tie-breaking) goes through this splitmix64/xoshiro-style
 * generator so results reproduce bit-for-bit across runs and platforms.
 */
#pragma once

#include <cstdint>

namespace dysel {
namespace support {

/**
 * Small, fast, deterministic RNG (xoshiro256** seeded via splitmix64).
 *
 * Not cryptographic; statistical quality is more than enough for
 * workload generation.
 */
class Rng
{
  public:
    /** Construct with the given seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

  private:
    std::uint64_t s[4];
};

} // namespace support
} // namespace dysel
