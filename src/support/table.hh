/**
 * @file
 * ASCII / CSV table emission for the benchmark harness.
 *
 * Every bench binary prints the rows or series of its paper table or
 * figure through this class so output is uniform and easy to diff
 * against EXPERIMENTS.md.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dysel {
namespace support {

/**
 * A simple column-aligned table.  Cells are strings; numeric helpers
 * format with a fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row.  Subsequent cell() calls fill it left-to-right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a numeric cell formatted with @p precision decimals. */
    Table &cell(double value, int precision = 2);

    /** Append an integer cell. */
    Table &cell(std::uint64_t value);

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header row first). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace support
} // namespace dysel
