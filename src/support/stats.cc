#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace dysel {
namespace support {

void
Summary::add(double v)
{
    ++n;
    total += v;
    sumSq += v * v;
    minV = std::min(minV, v);
    maxV = std::max(maxV, v);
}

double
Summary::mean() const
{
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double
Summary::variance() const
{
    if (n < 2)
        return 0.0;
    const double m = mean();
    return sumSq / static_cast<double>(n) - m * m;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geoMean requires strictly positive values, got %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

} // namespace support
} // namespace dysel
