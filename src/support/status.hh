/**
 * @file
 * Typed error reporting for recoverable failures.
 *
 * The original layers each grew their own error channel: the runtime
 * threw `std::out_of_range`, the dispatch service carried a
 * `bool ok + std::string error` pair, and the simulators called
 * `fatal()`.  `Status` unifies them: fallible entry points return a
 * Status (code + human-readable message), results carry one, and the
 * legacy throwing entry points are thin wrappers over
 * `Status::throwIfError()`.
 *
 * `panic()` remains the channel for internal invariant violations --
 * a Status is for conditions a caller can meaningfully handle
 * (retry, re-route, reject the request), not for bugs.
 */
#pragma once

#include <string>
#include <utility>

namespace dysel {
namespace support {

/** Machine-readable failure class of a Status. */
enum class StatusCode {
    Ok = 0,
    /** Malformed request (bad variant index, zero-unit workload). */
    InvalidArgument,
    /** The named entity (kernel signature, record) does not exist. */
    NotFound,
    /** The operation ran out of time (deadline, hung device). */
    DeadlineExceeded,
    /** Transient resource failure (launch failure); retry elsewhere. */
    Unavailable,
    /** The system is not in a state that permits the operation. */
    FailedPrecondition,
    /** The caller withdrew the request before it ran. */
    Cancelled,
    /**
     * A capacity limit rejected the request (a bounded dispatch queue
     * in shed mode).  Retryable from the caller's side -- the request
     * itself is fine, the system is momentarily full.
     */
    ResourceExhausted,
    /** Gave up after exhausting retries / recovery options. */
    Aborted,
    /** Unclassified internal error. */
    Internal,
    /**
     * Unrecoverable data corruption: a persistence file failed its
     * checksum, or every kernel variant failed output validation.
     * Unlike Unavailable this is not retryable -- the data itself is
     * wrong, not the path to it.
     */
    DataLoss,
};

/** Stable upper-case name of @p code (e.g. "NOT_FOUND"). */
const char *statusCodeName(StatusCode code);

/**
 * An error code plus a human-readable message; the default-constructed
 * Status is success.  Cheap to move, comparable by code.
 */
class Status
{
  public:
    /** Success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    /** Named constructors, one per failure class. */
    static Status invalidArgument(std::string msg)
    {
        return Status(StatusCode::InvalidArgument, std::move(msg));
    }
    static Status notFound(std::string msg)
    {
        return Status(StatusCode::NotFound, std::move(msg));
    }
    static Status deadlineExceeded(std::string msg)
    {
        return Status(StatusCode::DeadlineExceeded, std::move(msg));
    }
    static Status unavailable(std::string msg)
    {
        return Status(StatusCode::Unavailable, std::move(msg));
    }
    static Status failedPrecondition(std::string msg)
    {
        return Status(StatusCode::FailedPrecondition, std::move(msg));
    }
    static Status cancelled(std::string msg)
    {
        return Status(StatusCode::Cancelled, std::move(msg));
    }
    static Status resourceExhausted(std::string msg)
    {
        return Status(StatusCode::ResourceExhausted, std::move(msg));
    }
    static Status aborted(std::string msg)
    {
        return Status(StatusCode::Aborted, std::move(msg));
    }
    static Status internal(std::string msg)
    {
        return Status(StatusCode::Internal, std::move(msg));
    }
    static Status dataLoss(std::string msg)
    {
        return Status(StatusCode::DataLoss, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /**
     * Attach an out-of-band diagnostic payload (the dispatch service
     * attaches the worker's flight-recorder dump to a failed job's
     * Status).  The payload rides along with the Status but stays
     * out of message()/toString(), so error strings remain short.
     */
    Status &withPayload(std::string payload)
    {
        payload_ = std::move(payload);
        return *this;
    }

    const std::string &payload() const { return payload_; }
    bool hasPayload() const { return !payload_.empty(); }

    /** "OK", or "NOT_FOUND: no such kernel". */
    std::string toString() const;

    /**
     * Throw the std:: exception matching the code (NotFound ->
     * std::out_of_range, InvalidArgument -> std::invalid_argument,
     * anything else -> std::runtime_error); no-op when ok.  The
     * legacy throwing APIs are implemented with this, which is what
     * keeps their exception types unchanged.
     */
    void throwIfError() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
    std::string payload_;
};

} // namespace support
} // namespace dysel
