/**
 * @file
 * Small integer math helpers shared across the project.
 */
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "logging.hh"

namespace dysel {
namespace support {

/** Ceiling division for non-negative integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b (b > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t b)
{
    return ceilDiv(a, b) * b;
}

/**
 * Least common multiple over a list of positive factors.
 *
 * Used by safe point analysis (paper section 3.4) to normalize relative
 * work assignment between kernel variants.
 */
inline std::uint64_t
lcmAll(const std::vector<std::uint64_t> &values)
{
    if (values.empty())
        panic("lcmAll called with no values");
    std::uint64_t acc = 1;
    for (std::uint64_t v : values) {
        if (v == 0)
            panic("lcmAll called with a zero factor");
        acc = std::lcm(acc, v);
    }
    return acc;
}

/** True when @p v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v > 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned result = 0;
    while (v >>= 1)
        ++result;
    return result;
}

} // namespace support
} // namespace dysel
