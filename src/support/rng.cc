#include "rng.hh"

#include "logging.hh"

namespace dysel {
namespace support {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Rejection sampling keeps the distribution exactly uniform.
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextInRange called with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace support
} // namespace dysel
