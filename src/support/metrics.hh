/**
 * @file
 * Serving-layer metrics: named counters and log-scale latency
 * histograms with text and JSON export.
 *
 * Counters and histogram cells are atomics, so recording from the
 * dispatch-service worker threads is lock-free; the registry map
 * itself is mutex-protected (get-or-create only).  Handles returned
 * by counter()/histogram() stay valid for the registry's lifetime.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json.hh"

namespace dysel {
namespace support {

/** A monotonically increasing counter. */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A histogram over non-negative samples with power-of-two buckets:
 * bucket i counts samples in [2^i, 2^(i+1)) (bucket 0 additionally
 * holds samples < 1).  Good enough resolution for latencies while
 * keeping observation O(1) and allocation-free.
 */
class Histogram
{
  public:
    static constexpr std::size_t numBuckets = 64;

    /** Record one sample (negative samples clamp to 0). */
    void observe(double v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const;
    double mean() const;
    double min() const;
    double max() const;

    /**
     * Approximate quantile (bucket upper bound, clamped to the
     * observed max so a sparse histogram never reports a quantile
     * beyond its largest sample); q in [0,1].  0 for an empty
     * histogram.
     */
    double quantile(double q) const;

    /** Per-bucket counts (index i covers [2^i, 2^(i+1))). */
    std::vector<std::uint64_t> buckets() const;

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumBits{0};  ///< double stored as bits
    std::atomic<std::uint64_t> minBits{0x7ff0000000000000ull}; ///< +inf
    std::atomic<std::uint64_t> maxBits{0xfff0000000000000ull}; ///< -inf
    std::atomic<std::uint64_t> bucket_[numBuckets] = {};
};

/**
 * Named metrics, created on first use.  Names are free-form dotted
 * paths like "store.hit"; a per-instance breakdown appends a label
 * suffix built with labeled(), e.g. `device.jobs{device="dev0"}`
 * (see DESIGN §7 for the naming scheme).
 */
class MetricsRegistry
{
  public:
    /**
     * Canonical labeled metric name: `name{key="value"}`.  All
     * per-instance metrics (per device, per pass) use this one
     * suffix form so exporters can split name and labels
     * mechanically.  The value is escaped per the Prometheus text
     * format (backslash, double quote, newline), so hostile device
     * names can never corrupt an exposition line.
     */
    static std::string labeled(const std::string &name,
                               const std::string &key,
                               const std::string &value);

    /** Prometheus 0.0.4 label-value escaping (`\\`, `\"`, `\n`). */
    static std::string escapeLabelValue(const std::string &value);

    /** Get or create the counter named @p name. */
    Counter &counter(const std::string &name);

    /** Get or create the histogram named @p name. */
    Histogram &histogram(const std::string &name);

    /** Value of a counter; 0 when it does not exist. */
    std::uint64_t counterValue(const std::string &name) const;

    /**
     * Plain-text export, one metric per line in deterministic
     * name-sorted order (counters and histograms interleaved by
     * name, not segregated by kind):
     *   name value
     *   name{count,mean,p50,p90,p95,p99,max}  for histograms
     */
    std::string renderText() const;

    /** JSON export: {"counters": {...}, "histograms": {...}}. */
    Json renderJson() const;

    /**
     * Prometheus text exposition (version 0.0.4): every family gets
     * a `# HELP` and `# TYPE` pair.  Metric names are
     * sanitized ('.' and other illegal characters become '_'); a
     * `{key="value"}` suffix built by labeled() becomes a real
     * Prometheus label set.  Counters render as a single sample,
     * histograms as cumulative `_bucket{le="..."}` samples over the
     * power-of-two bucket bounds plus `_sum` and `_count`.  Output
     * order is deterministic (name-sorted).
     */
    std::string renderPrometheus() const;

  private:
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

} // namespace support
} // namespace dysel
