/**
 * @file
 * Lightweight descriptive statistics used by the benchmark harness.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace dysel {
namespace support {

/**
 * Incrementally accumulated summary statistics over a stream of
 * doubles.
 */
class Summary
{
  public:
    /** Add one sample. */
    void add(double v);

    /** Number of samples accumulated so far. */
    std::size_t count() const { return n; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return minV; }

    /** Largest sample; -inf when empty. */
    double max() const { return maxV; }

  private:
    std::size_t n = 0;
    double total = 0.0;
    double sumSq = 0.0;
    double minV = 1e300;
    double maxV = -1e300;
};

/**
 * Geometric mean of strictly positive values.  This is how the paper
 * aggregates relative execution times (Figs. 8 and 10).
 */
double geoMean(const std::vector<double> &values);

/** Median of a list (copies and sorts); 0 when empty. */
double median(std::vector<double> values);

} // namespace support
} // namespace dysel
