#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace dysel {
namespace support {

namespace {

LogLevel g_threshold = LogLevel::Inform;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list args)
{
    if (level < g_threshold)
        return;
    std::fprintf(stderr, "[%s] ", levelTag(level));
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

LogLevel
setLogThreshold(LogLevel level)
{
    LogLevel old = g_threshold;
    g_threshold = level;
    return old;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Panic, fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Fatal, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Inform, fmt, args);
    va_end(args);
}

} // namespace support
} // namespace dysel
