/**
 * @file
 * Standard device configurations of the paper's evaluation setup
 * (§4.1): an Intel i7-3820-like CPU and an NVIDIA K20c-like GPU.
 */
#pragma once

#include <functional>
#include <memory>

#include "sim/cpu/cpu_device.hh"
#include "sim/device.hh"
#include "sim/gpu/gpu_device.hh"

namespace dysel {
namespace workloads {

/** Creates a fresh device for one measurement. */
using DeviceFactory = std::function<std::unique_ptr<sim::Device>()>;

/** The evaluation CPU (fresh instance per call). */
inline DeviceFactory
cpuFactory(double noise_sigma = 0.0, std::uint64_t seed = 0x5eed)
{
    return [noise_sigma, seed] {
        sim::CpuConfig cfg;
        cfg.noiseSigma = noise_sigma;
        cfg.seed = seed;
        return std::make_unique<sim::CpuDevice>(cfg);
    };
}

/** The evaluation GPU (fresh instance per call). */
inline DeviceFactory
gpuFactory(double noise_sigma = 0.0, std::uint64_t seed = 0x6eed)
{
    return [noise_sigma, seed] {
        sim::GpuConfig cfg;
        cfg.noiseSigma = noise_sigma;
        cfg.seed = seed;
        return std::make_unique<sim::GpuDevice>(cfg);
    };
}

} // namespace workloads
} // namespace dysel
