/**
 * @file
 * stencil (Parboil): one Jacobi step of a 7-point 3D stencil.
 *
 * Experiment configurations:
 *  - Fig. 8:  the base kernel under all 6 permutations of its 3D
 *    work-item loops (16 x 2 x 2 tile);
 *  - Fig. 10: the three Parboil versions -- base (waf 1), z-coarsened
 *    (waf 64), and scratchpad-tiled + x-coarsened (waf 128).
 *
 * Boundary cells are copied through unchanged.
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

/** Fig. 8 configuration: 6 loop-nest schedules (CPU). */
Workload makeStencilLcCpu();

/** Fig. 10 configuration: 3 versions with waf 1 / 64 / 128. */
Workload makeStencilMixed();

} // namespace workloads
} // namespace dysel
