/**
 * @file
 * cutcp (Parboil): cutoff Coulombic potential on a 3D lattice.
 *
 * Atoms are binned into cutoff-sized cells (capacity padded with
 * zero-charge entries, so the workload is regular and the paper uses
 * fully-productive profiling for it).  Each work-group covers a
 * 4x4x4 lattice tile; every lattice point accumulates contributions
 * from the atoms of its 27 neighbouring bins.
 *
 * Experiment configurations:
 *  - Fig. 8:  the serialized loop nest is [wi-x, wi-y, wi-z, bin,
 *    atom]; LC considers the 60 permutations that keep the atom loop
 *    inside the bin loop (the paper's "60 schedules for cutcp");
 *  - Fig. 10: base vs. a 4x-coarsened version staging bins through
 *    scratchpad.
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

/** Fig. 8 configuration (CPU).  @p max_schedules trims the variant
 *  list for tests; 0 means all 60. */
Workload makeCutcpLcCpu(unsigned max_schedules = 0);

/** Fig. 10 configuration: base vs. coarsened+scratch (CPU or GPU). */
Workload makeCutcpMixed();

} // namespace workloads
} // namespace dysel
