#include "histogram.hh"

#include <memory>

#include "support/rng.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned numBins = 256;
constexpr unsigned groupSize = 64;
constexpr unsigned elemsPerUnit = 2048;
constexpr std::uint64_t numElems = 1u << 20;

enum Arg : std::size_t {
    argData = 0,
    argBins = 1,
    argUnits = 2,
};

/** Every work-item atomically bumps the global bin of its elements. */
void
atomicKernel(kdp::GroupCtx &g, const kdp::KernelArgs &args)
{
    const auto units = static_cast<std::uint64_t>(args.scalarInt(argUnits));
    if (g.unitBase() >= units)
        return;
    const auto &data = args.buf<std::uint32_t>(argData);
    auto &bins = args.buf<std::uint32_t>(argBins);

    const std::uint64_t base = g.unitBase() * elemsPerUnit;
    const std::uint64_t per_lane = elemsPerUnit / groupSize;
    for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
        for (std::uint64_t e = 0; e < per_lane; ++e) {
            const std::uint64_t i =
                base + e * groupSize + lane; // coalesced stride
            const std::uint32_t v = g.load(data, i, lane);
            g.atomicAdd(bins, v % numBins, 1u, lane);
            g.flops(lane, 2);
        }
    }
}

/** Privatized: accumulate into a scratchpad histogram, then merge. */
void
privatizedKernel(kdp::GroupCtx &g, const kdp::KernelArgs &args)
{
    const auto units = static_cast<std::uint64_t>(args.scalarInt(argUnits));
    if (g.unitBase() >= units)
        return;
    const auto &data = args.buf<std::uint32_t>(argData);
    auto &bins = args.buf<std::uint32_t>(argBins);

    auto local_bins = g.allocLocal<std::uint32_t>(numBins);
    for (unsigned b = 0; b < numBins; b += groupSize)
        for (std::uint32_t lane = 0; lane < groupSize; ++lane)
            local_bins.set(g, b + lane, 0u, lane);
    g.barrier();

    const std::uint64_t base = g.unitBase() * elemsPerUnit;
    const std::uint64_t per_lane = elemsPerUnit / groupSize;
    for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
        for (std::uint64_t e = 0; e < per_lane; ++e) {
            const std::uint64_t i = base + e * groupSize + lane;
            const std::uint32_t v = g.load(data, i, lane);
            const std::uint32_t bin = v % numBins;
            // Scratchpad read-modify-write (serialized by hardware).
            const std::uint32_t old = local_bins.get(g, bin, lane);
            local_bins.set(g, bin, old + 1, lane);
            g.flops(lane, 2);
        }
    }
    g.barrier();
    for (unsigned b = 0; b < numBins; b += groupSize) {
        for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
            const std::uint32_t count = local_bins.get(g, b + lane, lane);
            if (count)
                g.atomicAdd(bins, b + lane, count, lane);
        }
    }
}

} // namespace

Workload
makeHistogram()
{
    Workload w;
    w.name = "histogram";
    w.signature = "histogram/swap";
    w.units = numElems / elemsPerUnit;

    auto &data = w.addBuffer<std::uint32_t>(numElems,
                                            kdp::MemSpace::Global, "data");
    auto &bins = w.addBuffer<std::uint32_t>(numBins,
                                            kdp::MemSpace::Global, "bins");
    support::Rng rng(55);
    for (std::uint64_t i = 0; i < numElems; ++i)
        data.host()[i] = static_cast<std::uint32_t>(rng.next());

    auto ref = std::make_shared<std::vector<std::uint32_t>>(numBins, 0u);
    for (std::uint64_t i = 0; i < numElems; ++i)
        ++(*ref)[data.host()[i] % numBins];

    w.args.add(data).add(bins).add(static_cast<std::int64_t>(w.units));
    w.resetOutput = [&bins] { bins.fill(0u); };
    w.check = [&bins, ref] {
        for (unsigned b = 0; b < numBins; ++b)
            if (bins.host()[b] != (*ref)[b])
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi", compiler::BoundKind::Constant, true, false, groupSize},
        {"elem", compiler::BoundKind::Param, false, false,
         elemsPerUnit / groupSize},
    };
    w.info.accesses = {
        {argData, false, true, {1, groupSize}, 4, elemsPerUnit},
        {argBins, true, false, {}, 4, elemsPerUnit},
    };
    w.info.usesGlobalAtomics = true;
    w.info.outputArgs = {argBins};

    kdp::KernelVariant atomic;
    atomic.name = "atomic-global";
    atomic.fn = atomicKernel;
    atomic.waFactor = 1;
    atomic.groupSize = groupSize;
    atomic.traits.usesAtomics = true;
    atomic.sandboxIndex = {argBins};
    w.variants.push_back(std::move(atomic));

    kdp::KernelVariant priv;
    priv.name = "privatized-scratch";
    priv.fn = privatizedKernel;
    priv.waFactor = 1;
    priv.groupSize = groupSize;
    priv.traits.usesAtomics = true;
    priv.traits.scratchBytes = numBins * 4;
    priv.sandboxIndex = {argBins};
    w.variants.push_back(std::move(priv));
    return w;
}

} // namespace workloads
} // namespace dysel
