#include "spmv_csr.hh"

#include <algorithm>
#include <array>
#include <memory>

#include "support/logging.hh"

#include "support/rng.hh"

#include "sparse.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned groupSize = 64;
constexpr unsigned rowsPerUnit = 2;

/** Standard argument layout of every spmv-csr kernel. */
enum Arg : std::size_t {
    argRowPtr = 0,
    argCol = 1,
    argVal = 2,
    argX = 3,
    argY = 4,
    argUnits = 5,
    // Placement study extras (duplicated inputs in other spaces):
    argXTex = 6,
    argValTex = 7,
    argColTex = 8,
    argXConst = 9,
};

/** Which argument slot each array is read from (placement policy). */
struct CsrPlacement
{
    std::size_t x = argX;
    std::size_t val = argVal;
    std::size_t col = argCol;
};

/**
 * Scalar kernel, DFO: one work-item per row, the nonzero loop runs to
 * completion per row (in-kernel loop innermost).  waFactor = 32.
 */
kdp::KernelFn
scalarDfo(CsrPlacement place)
{
    return [place](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        const std::uint64_t total_rows = units * rowsPerUnit;
        const auto &row_ptr = args.buf<std::uint32_t>(argRowPtr);
        const auto &col = args.buf<std::uint32_t>(place.col);
        const auto &val = args.buf<float>(place.val);
        const auto &x = args.buf<float>(place.x);
        auto &y = args.buf<float>(argY);

        for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
            const std::uint64_t row = g.group() * groupSize + lane;
            if (row >= total_rows)
                continue;
            const std::uint32_t start = g.load(row_ptr, row, lane);
            const std::uint32_t end = g.load(row_ptr, row + 1, lane);
            g.flops(lane, 2); // per-row loop setup
            float acc = 0.0f;
            for (std::uint32_t j = start; j < end; ++j) {
                const std::uint32_t c = g.load(col, j, lane);
                const float v = g.load(val, j, lane);
                const float xv = g.load(x, c, lane);
                acc += v * xv;
                g.flops(lane, 3); // fma + per-iteration control
                g.branch(lane, j + 1 < end);
            }
            g.store(y, row, acc, lane);
        }
    };
}

/**
 * Scalar kernel, BFO: all work-items advance through the k-th nonzero
 * together (work-item loop innermost), which is what the implicit
 * vectorizer packs into SIMD lanes.  waFactor = 32.
 */
kdp::KernelFn
scalarBfo(CsrPlacement place)
{
    return [place](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        const std::uint64_t total_rows = units * rowsPerUnit;
        const auto &row_ptr = args.buf<std::uint32_t>(argRowPtr);
        const auto &col = args.buf<std::uint32_t>(place.col);
        const auto &val = args.buf<float>(place.val);
        const auto &x = args.buf<float>(place.x);
        auto &y = args.buf<float>(argY);

        std::array<std::uint32_t, groupSize> start{};
        std::array<std::uint32_t, groupSize> len{};
        std::array<float, groupSize> acc{};
        std::uint32_t max_len = 0;
        for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
            const std::uint64_t row = g.group() * groupSize + lane;
            if (row >= total_rows) {
                len[lane] = 0;
                continue;
            }
            start[lane] = g.load(row_ptr, row, lane);
            const std::uint32_t end = g.load(row_ptr, row + 1, lane);
            len[lane] = end - start[lane];
            g.flops(lane, 1);
            max_len = std::max(max_len, len[lane]);
        }
        for (std::uint32_t k = 0; k < max_len; ++k) {
            for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
                const std::uint64_t row = g.group() * groupSize + lane;
                if (row >= total_rows)
                    continue;
                const bool active = k < len[lane];
                g.branch(lane, active);
                if (!active)
                    continue;
                const std::uint32_t j = start[lane] + k;
                const std::uint32_t c = g.load(col, j, lane);
                const float v = g.load(val, j, lane);
                const float xv = g.load(x, c, lane);
                acc[lane] += v * xv;
                g.flops(lane, 2);
            }
        }
        for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
            const std::uint64_t row = g.group() * groupSize + lane;
            if (row < total_rows)
                g.store(y, row, acc[lane], lane);
        }
    };
}

/**
 * Vector kernel (SHOC): one 32-lane warp per row; lanes stride across
 * the row's nonzeros and tree-reduce through scratchpad.  Two rows
 * per work-group, so waFactor = 1.  @p dfo controls whether each lane
 * drains its own strided sub-loop first (DFO) or lanes advance
 * chunk-by-chunk together (BFO); the access sets are identical, the
 * interleave differs.
 */
kdp::KernelFn
vectorKernel(bool dfo)
{
    return [dfo](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        const std::uint64_t total_rows = units * rowsPerUnit;
        const auto &row_ptr = args.buf<std::uint32_t>(argRowPtr);
        const auto &col = args.buf<std::uint32_t>(argCol);
        const auto &val = args.buf<float>(argVal);
        const auto &x = args.buf<float>(argX);
        auto &y = args.buf<float>(argY);

        auto partial = g.allocLocal<float>(groupSize);
        for (std::uint32_t warp = 0; warp < 2; ++warp) {
            const std::uint64_t row = g.group() * rowsPerUnit + warp;
            if (row >= total_rows)
                continue;
            std::array<float, 32> acc{};
            std::uint32_t start = 0, end = 0;
            for (std::uint32_t l = 0; l < 32; ++l) {
                const std::uint32_t lane = warp * 32 + l;
                start = g.load(row_ptr, row, lane);
                end = g.load(row_ptr, row + 1, lane);
            }
            if (dfo) {
                for (std::uint32_t l = 0; l < 32; ++l) {
                    const std::uint32_t lane = warp * 32 + l;
                    for (std::uint32_t j = start + l; j < end; j += 32) {
                        const std::uint32_t c = g.load(col, j, lane);
                        const float v = g.load(val, j, lane);
                        const float xv = g.load(x, c, lane);
                        acc[l] += v * xv;
                        g.flops(lane, 3);
                        g.branch(lane, j + 32 < end);
                    }
                }
            } else {
                for (std::uint32_t base = start; base < end; base += 32) {
                    for (std::uint32_t l = 0; l < 32; ++l) {
                        const std::uint32_t lane = warp * 32 + l;
                        const std::uint32_t j = base + l;
                        const bool active = j < end;
                        g.branch(lane, active);
                        if (!active)
                            continue;
                        const std::uint32_t c = g.load(col, j, lane);
                        const float v = g.load(val, j, lane);
                        const float xv = g.load(x, c, lane);
                        acc[l] += v * xv;
                        g.flops(lane, 3);
                    }
                }
            }
            // Tree reduction through scratchpad.
            for (std::uint32_t l = 0; l < 32; ++l)
                partial.set(g, warp * 32 + l, acc[l], warp * 32 + l);
            g.barrier();
            for (std::uint32_t stride = 16; stride >= 1; stride /= 2) {
                for (std::uint32_t l = 0; l < stride; ++l) {
                    const std::uint32_t lane = warp * 32 + l;
                    const float a = partial.get(g, warp * 32 + l, lane);
                    const float b =
                        partial.get(g, warp * 32 + l + stride, lane);
                    partial.set(g, warp * 32 + l, a + b, lane);
                    g.flops(lane, 1);
                }
            }
            const float sum = partial.get(g, warp * 32, warp * 32);
            g.store(y, row, sum, warp * 32);
        }
    };
}

/** Shared buffers / metadata / checker for one matrix instance. */
struct CsrSetup
{
    CsrMatrix matrix;
    std::vector<float> xHost;
    std::vector<float> reference;
};

std::shared_ptr<CsrSetup>
makeSetup(SpmvInput input)
{
    auto setup = std::make_shared<CsrSetup>();
    switch (input) {
      case SpmvInput::Random:
        setup->matrix = makeRandomCsr(8192, 8192, 0.005);
        break;
      case SpmvInput::Diagonal:
        setup->matrix = makeDiagonalCsr(65536);
        break;
    }
    setup->xHost = makeDenseVector(setup->matrix.cols);
    setup->reference = spmvReference(setup->matrix, setup->xHost);
    return setup;
}

/** Build the workload skeleton: buffers, args, checker, metadata. */
Workload
makeCommon(const char *config, SpmvInput input,
           std::shared_ptr<CsrSetup> setup, bool placement_extras)
{
    const CsrMatrix &m = setup->matrix;
    Workload w;
    w.name = std::string("spmv-csr-") + config + "-"
             + spmvInputName(input);
    w.signature = std::string("spmv_csr/") + config + "/"
                  + spmvInputName(input);
    w.units = m.rows / rowsPerUnit;
    w.iterations = 10; // CG-style iterative use

    auto &row_ptr = w.addBuffer<std::uint32_t>(
        m.rowPtr.size(), kdp::MemSpace::Global, "rowPtr");
    auto &col = w.addBuffer<std::uint32_t>(std::max<std::size_t>(1,
        m.colIdx.size()), kdp::MemSpace::Global, "col");
    auto &val = w.addBuffer<float>(std::max<std::size_t>(1,
        m.vals.size()), kdp::MemSpace::Global, "val");
    auto &x = w.addBuffer<float>(m.cols, kdp::MemSpace::Global, "x");
    auto &y = w.addBuffer<float>(m.rows, kdp::MemSpace::Global, "y");

    std::copy(m.rowPtr.begin(), m.rowPtr.end(), row_ptr.host());
    std::copy(m.colIdx.begin(), m.colIdx.end(), col.host());
    std::copy(m.vals.begin(), m.vals.end(), val.host());
    std::copy(setup->xHost.begin(), setup->xHost.end(), x.host());

    w.args.add(row_ptr).add(col).add(val).add(x).add(y).add(
        static_cast<std::int64_t>(w.units));

    if (placement_extras) {
        auto &x_tex = w.addBuffer<float>(m.cols, kdp::MemSpace::Texture,
                                         "xTex");
        auto &val_tex = w.addBuffer<float>(std::max<std::size_t>(1,
            m.vals.size()), kdp::MemSpace::Texture, "valTex");
        auto &col_tex = w.addBuffer<std::uint32_t>(
            std::max<std::size_t>(1, m.colIdx.size()),
            kdp::MemSpace::Texture, "colTex");
        auto &x_const = w.addBuffer<float>(m.cols,
                                           kdp::MemSpace::Constant,
                                           "xConst");
        std::copy(setup->xHost.begin(), setup->xHost.end(), x_tex.host());
        std::copy(m.vals.begin(), m.vals.end(), val_tex.host());
        std::copy(m.colIdx.begin(), m.colIdx.end(), col_tex.host());
        std::copy(setup->xHost.begin(), setup->xHost.end(),
                  x_const.host());
        w.args.add(x_tex).add(val_tex).add(col_tex).add(x_const);
    }

    w.resetOutput = [&y] { y.fill(0.0f); };
    w.check = [&y, setup] {
        for (std::uint32_t r = 0; r < setup->matrix.rows; ++r)
            if (!nearlyEqual(y.host()[r], setup->reference[r], 1e-3f,
                             1e-4f))
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi", compiler::BoundKind::Constant, true, false, groupSize},
        {"nnz", compiler::BoundKind::DataDependent, false, false,
         m.nnz() / std::max<std::uint64_t>(1, m.rows)},
    };
    // val[rowPtr[wi] + k]: stride 1 in the nnz loop but data
    // dependent in the work-item loop; col likewise; x[col[j]] is a
    // fully indirect gather.
    constexpr auto unk = compiler::AccessPattern::unknownStride;
    w.info.accesses = {
        {argVal, false, true, {unk, 1}, 4, m.nnz()},
        {argCol, false, true, {unk, 1}, 4, m.nnz()},
        {argX, false, false, {}, 4, m.nnz()},
        {argY, true, true, {1, 0}, 4, m.rows},
    };
    w.info.outputArgs = {argY};
    return w;
}

kdp::KernelVariant
scalarVariant(const char *name, kdp::KernelFn fn, unsigned vector_width)
{
    kdp::KernelVariant v;
    v.name = name;
    v.fn = std::move(fn);
    v.waFactor = groupSize / rowsPerUnit;
    v.groupSize = groupSize;
    v.traits.vectorWidth = vector_width;
    v.sandboxIndex = {argY};
    return v;
}

kdp::KernelVariant
vectorVariant(const char *name, bool dfo)
{
    kdp::KernelVariant v;
    v.name = name;
    v.fn = vectorKernel(dfo);
    v.waFactor = 1;
    v.groupSize = groupSize;
    v.traits.scratchBytes = groupSize * sizeof(float);
    v.sandboxIndex = {argY};
    return v;
}

} // namespace

namespace {

/** Concatenate a random block of rows on top of a diagonal block. */
CsrMatrix
makeHeteroCsr(std::uint32_t rows, std::uint32_t cols)
{
    const std::uint32_t half = rows / 2;
    const CsrMatrix dense = makeRandomCsr(half, cols, 0.02, 17);
    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr = dense.rowPtr;
    m.colIdx = dense.colIdx;
    m.vals = dense.vals;
    support::Rng rng(19);
    for (std::uint32_t r = half; r < rows; ++r) {
        m.colIdx.push_back(r % cols);
        m.vals.push_back(rng.nextFloat(0.5f, 2.0f));
        m.rowPtr.push_back(static_cast<std::uint32_t>(m.colIdx.size()));
    }
    return m;
}

} // namespace

const char *
spmvInputName(SpmvInput input)
{
    switch (input) {
      case SpmvInput::Random: return "random";
      case SpmvInput::Diagonal: return "diagonal";
    }
    return "?";
}

Workload
makeSpmvCsrCpuLc(SpmvInput input)
{
    auto setup = makeSetup(input);
    Workload w = makeCommon("lc-cpu", input, setup, false);
    w.variants.push_back(
        scalarVariant("scalar-dfo", scalarDfo(CsrPlacement{}), 1));
    w.variants.push_back(
        scalarVariant("scalar-bfo", scalarBfo(CsrPlacement{}), 8));
    w.schedules = {compiler::Schedule{{0, 1}},
                   compiler::Schedule{{1, 0}}};
    return w;
}

Workload
makeSpmvCsrCpuInputDep(SpmvInput input)
{
    auto setup = makeSetup(input);
    Workload w = makeCommon("inputdep-cpu", input, setup, false);
    w.variants.push_back(
        scalarVariant("scalar-dfo", scalarDfo(CsrPlacement{}), 1));
    w.variants.push_back(
        scalarVariant("scalar-bfo", scalarBfo(CsrPlacement{}), 8));
    w.variants.push_back(vectorVariant("vector-dfo", true));
    w.variants.push_back(vectorVariant("vector-bfo", false));
    w.schedules = {compiler::Schedule{{0, 1}},
                   compiler::Schedule{{1, 0}},
                   compiler::Schedule{{0, 1}},
                   compiler::Schedule{{1, 0}}};
    return w;
}

Workload
makeSpmvCsrGpuInputDep(SpmvInput input)
{
    auto setup = makeSetup(input);
    Workload w = makeCommon("inputdep-gpu", input, setup, false);
    w.variants.push_back(
        scalarVariant("scalar", scalarDfo(CsrPlacement{}), 1));
    w.variants.push_back(vectorVariant("vector", true));
    return w;
}

Workload
makeSpmvCsrGpuHetero()
{
    auto setup = std::make_shared<CsrSetup>();
    setup->matrix = makeHeteroCsr(32768, 2048);
    setup->xHost = makeDenseVector(setup->matrix.cols);
    setup->reference = spmvReference(setup->matrix, setup->xHost);
    Workload w = makeCommon("hetero-gpu", SpmvInput::Random, setup,
                            false);
    w.name = "spmv-csr-hetero-gpu";
    w.signature = "spmv_csr/hetero-gpu";
    w.iterations = 10;
    w.variants.push_back(
        scalarVariant("scalar", scalarDfo(CsrPlacement{}), 1));
    w.variants.push_back(vectorVariant("vector", true));
    return w;
}

Workload
makeSpmvCsrGpuPlacement()
{
    // Tall matrix with a texture-cache-sized x vector: the shape
    // where data placement of the gathered vector matters most.
    auto setup = std::make_shared<CsrSetup>();
    setup->matrix = makeRandomCsr(32768, 2048, 0.02);
    setup->xHost = makeDenseVector(setup->matrix.cols);
    setup->reference = spmvReference(setup->matrix, setup->xHost);
    Workload w = makeCommon("placement-gpu", SpmvInput::Random, setup,
                            true);
    // The four candidate policies of the Fig. 9 study: PORPLE's
    // policies for three GPU generations plus the rule-based
    // heuristic's policy.  On (simulated) Kepler, PORPLE's
    // Fermi-targeted policy happens to be the best one (§4.2).
    // On (simulated) Kepler the Fermi-targeted policy wins -- the
    // paper's §4.2 quirk ("the optimal data placement for spmv-csr on
    // Kepler is actually generated by PORPLE but with the target on
    // Fermi architectures").
    CsrPlacement fermi;   // every read-only array through texture
    fermi.x = argXTex;
    fermi.col = argColTex;
    fermi.val = argValTex;
    CsrPlacement kepler;  // x and val through texture, col global
    kepler.x = argXTex;
    kepler.val = argValTex;
    CsrPlacement maxwell; // x through texture only
    maxwell.x = argXTex;
    CsrPlacement jang;    // x in constant memory
    jang.x = argXConst;

    auto add = [&w](const char *name, CsrPlacement p, bool texture) {
        kdp::KernelVariant v =
            scalarVariant(name, scalarDfo(p), 1);
        v.traits.usesTexture = texture;
        w.variants.push_back(std::move(v));
    };
    add("porple-fermi", fermi, true);
    add("porple-kepler", kepler, true);
    add("porple-maxwell", maxwell, true);
    add("jang-heuristic", jang, false);
    return w;
}

} // namespace workloads
} // namespace dysel
