/**
 * @file
 * Benchmark workload abstraction.
 *
 * A Workload bundles everything one experiment needs: the input and
 * output buffers (owned), the kernel variants DySel selects among, the
 * compiler metadata, a reference checker, and the workload size in
 * units.  A "unit" is the data covered by one work-group of the base
 * variant; a variant with work assignment factor f covers f units per
 * work-group.
 *
 * Kernels must tolerate being launched past the end of the workload
 * (the runtime rounds the last slice up to a whole work-group): every
 * kernel guards its per-unit work against the workload bound.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/kernel_info.hh"
#include "compiler/schedule.hh"
#include "kdp/args.hh"
#include "kdp/buffer.hh"
#include "kdp/kernel.hh"

namespace dysel {
namespace runtime {
class Runtime;
} // namespace runtime

namespace workloads {

/**
 * One benchmark instance: data + variants + checker.
 */
class Workload
{
  public:
    std::string name;       ///< e.g. "sgemm-lc-cpu"
    std::string signature;  ///< kernel signature for the runtime
    std::uint64_t units = 0;
    /** Launches of this kernel in the original benchmark (iterative
     *  solvers re-launch the same kernel every iteration). */
    unsigned iterations = 1;
    kdp::KernelArgs args;
    std::vector<kdp::KernelVariant> variants;
    compiler::KernelInfo info;

    /**
     * For schedule-variant workloads: the loop-nest schedule of each
     * variant (parallel to `variants`), so the LC baseline can score
     * them.  Empty for non-schedule workloads.
     */
    std::vector<compiler::Schedule> schedules;

    /** Zero the output buffers before a fresh run. */
    std::function<void()> resetOutput;

    /** Validate outputs against the reference; true when correct. */
    std::function<bool()> check;

    Workload() = default;
    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;
    Workload(Workload &&) = default;
    Workload &operator=(Workload &&) = default;

    /**
     * Allocate an owned buffer.  Returned reference stays valid for
     * the workload's lifetime (buffers are individually heap
     * allocated).
     */
    template <typename T>
    kdp::Buffer<T> &
    addBuffer(std::uint64_t n, kdp::MemSpace space, std::string label)
    {
        auto buf =
            std::make_unique<kdp::Buffer<T>>(n, space, std::move(label));
        kdp::Buffer<T> &ref = *buf;
        buffers.push_back(std::move(buf));
        return ref;
    }

    /** Register all variants (and metadata) with @p rt. */
    void registerWith(runtime::Runtime &rt) const;

    /** Look up a variant index by name; -1 if absent. */
    int variantIndex(const std::string &variant_name) const;

  private:
    std::vector<std::unique_ptr<kdp::BufferBase>> buffers;
};

/** Compare floats with a relative + absolute tolerance. */
bool nearlyEqual(float a, float b, float rel = 1e-4f, float abs = 1e-5f);

} // namespace workloads
} // namespace dysel
