#include "sparse.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"
#include "support/rng.hh"

namespace dysel {
namespace workloads {

CsrMatrix
makeRandomCsr(std::uint32_t rows, std::uint32_t cols, double density,
              std::uint64_t seed)
{
    if (density <= 0.0 || density > 1.0)
        support::fatal("makeRandomCsr: density %f out of (0, 1]", density);
    support::Rng rng(seed);
    CsrMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.rowPtr.reserve(rows + 1);
    m.rowPtr.push_back(0);

    const double expected = density * cols;
    std::vector<std::uint32_t> picks;
    for (std::uint32_t r = 0; r < rows; ++r) {
        // Row length ~ expected +- 50%, at least 1.
        const auto lo = static_cast<std::int64_t>(expected * 0.5);
        const auto hi = static_cast<std::int64_t>(expected * 1.5);
        auto len = static_cast<std::uint32_t>(
            std::max<std::int64_t>(1, rng.nextInRange(lo, hi)));
        len = std::min(len, cols);
        picks.clear();
        for (std::uint32_t i = 0; i < len; ++i)
            picks.push_back(
                static_cast<std::uint32_t>(rng.nextBelow(cols)));
        std::sort(picks.begin(), picks.end());
        picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
        for (std::uint32_t c : picks) {
            m.colIdx.push_back(c);
            m.vals.push_back(rng.nextFloat(-1.0f, 1.0f));
        }
        m.rowPtr.push_back(static_cast<std::uint32_t>(m.colIdx.size()));
    }
    return m;
}

CsrMatrix
makeDiagonalCsr(std::uint32_t n)
{
    support::Rng rng(n);
    CsrMatrix m;
    m.rows = n;
    m.cols = n;
    m.rowPtr.resize(n + 1);
    m.colIdx.resize(n);
    m.vals.resize(n);
    for (std::uint32_t r = 0; r < n; ++r) {
        m.rowPtr[r] = r;
        m.colIdx[r] = r;
        m.vals[r] = rng.nextFloat(0.5f, 2.0f);
    }
    m.rowPtr[n] = n;
    return m;
}

JdsMatrix
csrToJds(const CsrMatrix &csr)
{
    JdsMatrix j;
    j.rows = csr.rows;
    j.cols = csr.cols;

    // Sort rows by descending length.
    j.perm.resize(csr.rows);
    std::iota(j.perm.begin(), j.perm.end(), 0u);
    std::stable_sort(j.perm.begin(), j.perm.end(),
                     [&csr](std::uint32_t a, std::uint32_t b) {
                         return csr.rowLen(a) > csr.rowLen(b);
                     });
    j.rowLen.resize(csr.rows);
    for (std::uint32_t r = 0; r < csr.rows; ++r)
        j.rowLen[r] = csr.rowLen(j.perm[r]);
    j.maxLen = csr.rows ? j.rowLen[0] : 0;

    // Diagonal d holds the d-th nonzero of every row long enough.
    j.diagPtr.resize(j.maxLen + 1);
    j.diagRows.resize(j.maxLen);
    std::uint32_t offset = 0;
    for (std::uint32_t d = 0; d < j.maxLen; ++d) {
        j.diagPtr[d] = offset;
        std::uint32_t cnt = 0;
        while (cnt < csr.rows && j.rowLen[cnt] > d)
            ++cnt;
        j.diagRows[d] = cnt;
        offset += cnt;
    }
    j.diagPtr[j.maxLen] = offset;

    j.colIdx.resize(offset);
    j.vals.resize(offset);
    for (std::uint32_t jr = 0; jr < csr.rows; ++jr) {
        const std::uint32_t orig = j.perm[jr];
        const std::uint32_t base = csr.rowPtr[orig];
        for (std::uint32_t d = 0; d < j.rowLen[jr]; ++d) {
            const std::uint32_t pos = j.diagPtr[d] + jr;
            j.colIdx[pos] = csr.colIdx[base + d];
            j.vals[pos] = csr.vals[base + d];
        }
    }
    return j;
}

std::vector<float>
spmvReference(const CsrMatrix &a, const std::vector<float> &x)
{
    if (x.size() != a.cols)
        support::panic("spmvReference: x size %zu != cols %u", x.size(),
                       a.cols);
    std::vector<float> y(a.rows, 0.0f);
    for (std::uint32_t r = 0; r < a.rows; ++r) {
        float acc = 0.0f;
        for (std::uint32_t i = a.rowPtr[r]; i < a.rowPtr[r + 1]; ++i)
            acc += a.vals[i] * x[a.colIdx[i]];
        y[r] = acc;
    }
    return y;
}

std::vector<float>
makeDenseVector(std::uint32_t n, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::vector<float> v(n);
    for (auto &e : v)
        e = rng.nextFloat(-1.0f, 1.0f);
    return v;
}

} // namespace workloads
} // namespace dysel
