#include "stencil.hh"

#include <array>
#include <memory>

#include "compiler/schedule.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned nx = 128, ny = 128, nz = 128;
constexpr float c0 = 0.5f;
constexpr float c1 = 1.0f / 12.0f;

enum Arg : std::size_t {
    argIn = 0,
    argOut = 1,
    argUnits = 2,
};

std::uint64_t
cellIndex(unsigned x, unsigned y, unsigned z)
{
    return (std::uint64_t{z} * ny + y) * nx + x;
}

bool
interior(unsigned x, unsigned y, unsigned z)
{
    return x > 0 && x < nx - 1 && y > 0 && y < ny - 1 && z > 0
           && z < nz - 1;
}

float
hostCell(const std::vector<float> &in, unsigned x, unsigned y, unsigned z)
{
    if (!interior(x, y, z))
        return in[cellIndex(x, y, z)];
    return c0 * in[cellIndex(x, y, z)]
           + c1 * (in[cellIndex(x - 1, y, z)] + in[cellIndex(x + 1, y, z)]
                   + in[cellIndex(x, y - 1, z)]
                   + in[cellIndex(x, y + 1, z)]
                   + in[cellIndex(x, y, z - 1)]
                   + in[cellIndex(x, y, z + 1)]);
}

/** One traced cell update (7 loads, 1 store) on lane @p lane. */
void
computeCell(kdp::GroupCtx &g, const kdp::Buffer<float> &in,
            kdp::Buffer<float> &out, unsigned x, unsigned y, unsigned z,
            std::uint32_t lane)
{
    if (!interior(x, y, z)) {
        const float v = g.load(in, cellIndex(x, y, z), lane);
        g.store(out, cellIndex(x, y, z), v, lane);
        return;
    }
    const float center = g.load(in, cellIndex(x, y, z), lane);
    const float xm = g.load(in, cellIndex(x - 1, y, z), lane);
    const float xp = g.load(in, cellIndex(x + 1, y, z), lane);
    const float ym = g.load(in, cellIndex(x, y - 1, z), lane);
    const float yp = g.load(in, cellIndex(x, y + 1, z), lane);
    const float zm = g.load(in, cellIndex(x, y, z - 1), lane);
    const float zp = g.load(in, cellIndex(x, y, z + 1), lane);
    g.flops(lane, 8);
    g.store(out, cellIndex(x, y, z),
            c0 * center + c1 * (xm + xp + ym + yp + zm + zp), lane);
}

// ---- Fig. 8: schedule-generic base kernel over a 64x16x4 tile ------
//
// The tile is deliberately bigger than the L1 cache so the serialized
// iteration order matters: an x-innermost schedule streams cache
// lines while a z-innermost one strides across planes.

constexpr unsigned tX = 64, tY = 16, tZ = 4;
constexpr unsigned tilesX = nx / tX, tilesY = ny / tY;

/** Fig. 8 unit u -> tile origin. */
void
lcTileOf(std::uint64_t u, unsigned &x0, unsigned &y0, unsigned &z0)
{
    x0 = static_cast<unsigned>(u % tilesX) * tX;
    y0 = static_cast<unsigned>((u / tilesX) % tilesY) * tY;
    z0 = static_cast<unsigned>(u / (tilesX * tilesY)) * tZ;
}

kdp::KernelFn
lcKernel(compiler::Schedule sched)
{
    return [sched](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        if (g.unitBase() >= units)
            return;
        const auto &in = args.buf<float>(argIn);
        auto &out = args.buf<float>(argOut);
        unsigned x0, y0, z0;
        lcTileOf(g.unitBase(), x0, y0, z0);

        const std::array<unsigned, 3> bounds = {tX, tY, tZ};
        std::array<unsigned, 3> idx{};
        for (idx[sched.order[0]] = 0;
             idx[sched.order[0]] < bounds[sched.order[0]];
             ++idx[sched.order[0]]) {
            for (idx[sched.order[1]] = 0;
                 idx[sched.order[1]] < bounds[sched.order[1]];
                 ++idx[sched.order[1]]) {
                for (idx[sched.order[2]] = 0;
                     idx[sched.order[2]] < bounds[sched.order[2]];
                     ++idx[sched.order[2]]) {
                    const std::uint32_t lane =
                        (idx[2] * tY + idx[1]) * tX + idx[0];
                    computeCell(g, in, out, x0 + idx[0], y0 + idx[1],
                                z0 + idx[2], lane);
                }
            }
        }
    };
}

// ---- Fig. 10: base / coarsen-z / tile+coarsen-x ---------------------

constexpr unsigned lineLanes = 64;
constexpr unsigned linesX = nx / lineLanes; // 2

/** Fig. 10 unit u -> (x-line, y, z); z fastest so the coarsened
 *  variants cover contiguous unit ranges. */
void
mixedLineOf(std::uint64_t u, unsigned &xl, unsigned &y, unsigned &z)
{
    z = static_cast<unsigned>(u % nz);
    const std::uint64_t rest = u / nz;
    xl = static_cast<unsigned>(rest % linesX);
    y = static_cast<unsigned>(rest / linesX);
}

/** Base: one 64-cell x-line per work-group. */
void
baseKernel(kdp::GroupCtx &g, const kdp::KernelArgs &args)
{
    const auto units = static_cast<std::uint64_t>(args.scalarInt(argUnits));
    if (g.unitBase() >= units)
        return;
    const auto &in = args.buf<float>(argIn);
    auto &out = args.buf<float>(argOut);
    unsigned xl, y, z;
    mixedLineOf(g.unitBase(), xl, y, z);
    for (std::uint32_t lane = 0; lane < lineLanes; ++lane)
        computeCell(g, in, out, xl * lineLanes + lane, y, z, lane);
}

/** Coarsening depth of the "coarsen-z" variant (waf 64). */
constexpr unsigned coarseDepth = 64;

/** Coarsen-z: each work-group sweeps one x-line through 64 z planes,
 *  keeping the z-chain in registers (5 loads per interior cell). */
void
coarsenZKernel(kdp::GroupCtx &g, const kdp::KernelArgs &args)
{
    const auto units = static_cast<std::uint64_t>(args.scalarInt(argUnits));
    if (g.unitBase() >= units)
        return;
    const auto &in = args.buf<float>(argIn);
    auto &out = args.buf<float>(argOut);
    unsigned xl, y, z0;
    mixedLineOf(g.unitBase(), xl, y, z0);
    if (z0 % coarseDepth != 0)
        support::panic("coarsen-z group not aligned to a z-column");

    for (std::uint32_t lane = 0; lane < lineLanes; ++lane) {
        const unsigned x = xl * lineLanes + lane;
        // Register chain: prev = in(z-1), cur = in(z).
        float prev = z0 > 0
            ? g.load(in, cellIndex(x, y, z0 - 1), lane)
            : 0.0f;
        float cur = g.load(in, cellIndex(x, y, z0), lane);
        for (unsigned z = z0; z < z0 + coarseDepth; ++z) {
            const float next = z + 1 < nz
                ? g.load(in, cellIndex(x, y, z + 1), lane)
                : 0.0f;
            if (!interior(x, y, z)) {
                g.store(out, cellIndex(x, y, z), cur, lane);
            } else {
                const float xm = g.load(in, cellIndex(x - 1, y, z), lane);
                const float xp = g.load(in, cellIndex(x + 1, y, z), lane);
                const float ym = g.load(in, cellIndex(x, y - 1, z), lane);
                const float yp = g.load(in, cellIndex(x, y + 1, z), lane);
                g.flops(lane, 8);
                g.store(out, cellIndex(x, y, z),
                        c0 * cur + c1 * (xm + xp + ym + yp + prev + next),
                        lane);
            }
            prev = cur;
            cur = next;
        }
    }
}

/**
 * Tile + coarsen-x (waf 128): each work-group sweeps one x-line
 * through the whole z column; the three lateral y-lines (with x
 * halo) are staged through scratchpad each z step.
 */
void
tiledKernel(kdp::GroupCtx &g, const kdp::KernelArgs &args)
{
    const auto units = static_cast<std::uint64_t>(args.scalarInt(argUnits));
    if (g.unitBase() >= units)
        return;
    const auto &in = args.buf<float>(argIn);
    auto &out = args.buf<float>(argOut);
    unsigned xl, y, z0;
    mixedLineOf(g.unitBase(), xl, y, z0);
    if (z0 != 0)
        support::panic("tiled group not aligned to a z-column");

    constexpr unsigned width = lineLanes + 2; // line plus x halo
    auto tile = g.allocLocal<float>(3 * width);
    const unsigned x0 = xl * lineLanes;

    std::array<float, lineLanes> prev{};
    std::array<float, lineLanes> cur{};
    for (std::uint32_t lane = 0; lane < lineLanes; ++lane)
        cur[lane] = g.load(in, cellIndex(x0 + lane, y, 0), lane);

    auto stage_cell = [&](unsigned line, int x, unsigned yy, unsigned z,
                          std::uint32_t lane) {
        float v = 0.0f;
        if (x >= 0 && x < static_cast<int>(nx))
            v = g.load(in,
                       cellIndex(static_cast<unsigned>(x), yy, z), lane);
        tile.set(g, line * width + static_cast<unsigned>(x - (int)x0 + 1),
                 v, lane);
    };

    for (unsigned z = 0; z < nz; ++z) {
        // Stage lines y-1, y, y+1 at this z (with x halo).
        for (unsigned line = 0; line < 3; ++line) {
            const int yy = static_cast<int>(y) + static_cast<int>(line)
                           - 1;
            if (yy < 0 || yy >= static_cast<int>(ny))
                continue;
            for (std::uint32_t lane = 0; lane < lineLanes; ++lane)
                stage_cell(line, static_cast<int>(x0 + lane),
                           static_cast<unsigned>(yy), z, lane);
            stage_cell(line, static_cast<int>(x0) - 1,
                       static_cast<unsigned>(yy), z, 0);
            stage_cell(line, static_cast<int>(x0 + lineLanes),
                       static_cast<unsigned>(yy), z, lineLanes - 1);
        }
        g.barrier();
        for (std::uint32_t lane = 0; lane < lineLanes; ++lane) {
            const unsigned x = x0 + lane;
            const float next = z + 1 < nz
                ? g.load(in, cellIndex(x, y, z + 1), lane)
                : 0.0f;
            if (!interior(x, y, z)) {
                g.store(out, cellIndex(x, y, z), cur[lane], lane);
            } else {
                const float xm = tile.get(g, width + lane, lane);
                const float xp = tile.get(g, width + lane + 2, lane);
                const float ym = tile.get(g, lane + 1, lane);
                const float yp = tile.get(g, 2 * width + lane + 1, lane);
                g.flops(lane, 8);
                g.store(out, cellIndex(x, y, z),
                        c0 * cur[lane]
                            + c1 * (xm + xp + ym + yp + prev[lane]
                                    + next),
                        lane);
            }
            prev[lane] = cur[lane];
            cur[lane] = next;
        }
        g.barrier();
    }
}

Workload
makeCommon(const char *config, unsigned cells_per_unit)
{
    Workload w;
    w.name = std::string("stencil-") + config;
    w.signature = std::string("stencil/") + config;
    w.units = std::uint64_t{nx} * ny * nz / cells_per_unit;
    w.iterations = 3;

    auto &in = w.addBuffer<float>(std::uint64_t{nx} * ny * nz,
                                  kdp::MemSpace::Global, "in");
    auto &out = w.addBuffer<float>(std::uint64_t{nx} * ny * nz,
                                   kdp::MemSpace::Global, "out");
    support::Rng rng(23);
    for (std::uint64_t i = 0; i < in.size(); ++i)
        in.host()[i] = rng.nextFloat(0.0f, 1.0f);

    auto ref = std::make_shared<std::vector<float>>();
    ref->resize(in.size());
    {
        std::vector<float> host(in.host(), in.host() + in.size());
        for (unsigned z = 0; z < nz; ++z)
            for (unsigned y = 0; y < ny; ++y)
                for (unsigned x = 0; x < nx; ++x)
                    (*ref)[cellIndex(x, y, z)] = hostCell(host, x, y, z);
    }

    w.args.add(in).add(out).add(static_cast<std::int64_t>(w.units));
    w.resetOutput = [&out] { out.fill(0.0f); };
    w.check = [&out, ref] {
        for (std::uint64_t i = 0; i < out.size(); ++i)
            if (!nearlyEqual(out.host()[i], (*ref)[i], 1e-4f, 1e-5f))
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi-x", compiler::BoundKind::Constant, true, false, tX},
        {"wi-y", compiler::BoundKind::Constant, true, false, tY},
        {"wi-z", compiler::BoundKind::Constant, true, false, tZ},
    };
    const auto row = static_cast<std::int64_t>(nx);
    const auto plane = static_cast<std::int64_t>(nx) * ny;
    w.info.accesses = {
        {argIn, false, true, {1, row, plane}, 4,
         std::uint64_t{tX} * tY * tZ * 7},
        {argOut, true, true, {1, row, plane}, 4,
         std::uint64_t{tX} * tY * tZ},
    };
    w.info.outputArgs = {argOut};
    return w;
}

} // namespace

Workload
makeStencilLcCpu()
{
    Workload w = makeCommon("lc-cpu", tX * tY * tZ);
    for (const auto &sched : compiler::allSchedules(3)) {
        kdp::KernelVariant v;
        v.name = "sched-" + sched.name();
        v.fn = lcKernel(sched);
        v.waFactor = 1;
        v.groupSize = tX * tY * tZ;
        v.sandboxIndex = {argOut};
        w.variants.push_back(std::move(v));
        w.schedules.push_back(sched);
    }
    return w;
}

Workload
makeStencilMixed()
{
    Workload w = makeCommon("mixed", lineLanes);

    kdp::KernelVariant base;
    base.name = "base";
    base.fn = baseKernel;
    base.waFactor = 1;
    base.groupSize = lineLanes;
    base.sandboxIndex = {argOut};
    w.variants.push_back(std::move(base));

    kdp::KernelVariant coarse;
    coarse.name = "coarsen-z64";
    coarse.fn = coarsenZKernel;
    coarse.waFactor = coarseDepth; // 64x, as in Parboil
    coarse.groupSize = lineLanes;
    coarse.traits.regsPerThread = 40;
    coarse.sandboxIndex = {argOut};
    w.variants.push_back(std::move(coarse));

    kdp::KernelVariant tiled;
    tiled.name = "tile-coarsen-x128";
    tiled.fn = tiledKernel;
    tiled.waFactor = nz; // 128x, as in Parboil
    tiled.groupSize = lineLanes;
    tiled.traits.regsPerThread = 44;
    tiled.traits.scratchBytes = 3 * (lineLanes + 2) * sizeof(float);
    tiled.sandboxIndex = {argOut};
    w.variants.push_back(std::move(tiled));
    return w;
}

} // namespace workloads
} // namespace dysel
