#include "kmeans.hh"

#include <array>
#include <limits>
#include <memory>

#include "compiler/schedule.hh"
#include "support/rng.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned numPoints = 262144;
constexpr unsigned numFeatures = 8;
constexpr unsigned numClusters = 4;
constexpr unsigned groupSize = 64;

enum Arg : std::size_t {
    argPoints = 0,
    argCentroids = 1,
    argMembership = 2,
    argUnits = 3,
};

kdp::KernelFn
kmeansKernel(compiler::Schedule sched)
{
    return [sched](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        if (g.unitBase() >= units)
            return;
        const auto &points = args.buf<float>(argPoints);
        const auto &centroids = args.buf<float>(argCentroids);
        auto &membership = args.buf<std::int32_t>(argMembership);

        // dist[lane][cluster] accumulators live in registers, and so
        // do the last-loaded point/centroid values: loads are only
        // re-issued when the indexed element changes between
        // consecutive body executions (register reuse a compiler
        // would get from loop-invariant code motion).
        std::array<std::array<float, numClusters>, groupSize> dist{};
        std::uint64_t prev_p = ~std::uint64_t{0};
        std::uint64_t prev_c = ~std::uint64_t{0};
        float pv = 0.0f, cv = 0.0f;

        const std::array<unsigned, 3> bounds = {groupSize, numClusters,
                                                numFeatures};
        std::array<unsigned, 3> idx{};
        for (idx[sched.order[0]] = 0;
             idx[sched.order[0]] < bounds[sched.order[0]];
             ++idx[sched.order[0]]) {
            for (idx[sched.order[1]] = 0;
                 idx[sched.order[1]] < bounds[sched.order[1]];
                 ++idx[sched.order[1]]) {
                for (idx[sched.order[2]] = 0;
                     idx[sched.order[2]] < bounds[sched.order[2]];
                     ++idx[sched.order[2]]) {
                    const unsigned lane = idx[0];
                    const unsigned c = idx[1];
                    const unsigned f = idx[2];
                    const std::uint64_t p =
                        g.group() * groupSize + lane;
                    const std::uint64_t p_idx = p * numFeatures + f;
                    const std::uint64_t c_idx =
                        std::uint64_t{c} * numFeatures + f;
                    if (p_idx != prev_p) {
                        prev_p = p_idx;
                        pv = g.load(points, p_idx, lane);
                    }
                    if (c_idx != prev_c) {
                        prev_c = c_idx;
                        cv = g.load(centroids, c_idx, lane);
                    }
                    const float diff = pv - cv;
                    dist[lane][c] += diff * diff;
                    g.flops(lane, 3);
                }
            }
        }
        for (unsigned lane = 0; lane < groupSize; ++lane) {
            const std::uint64_t p = g.group() * groupSize + lane;
            int best = 0;
            for (unsigned c = 1; c < numClusters; ++c)
                if (dist[lane][c] < dist[lane][best])
                    best = static_cast<int>(c);
            g.flops(lane, numClusters);
            g.store(membership, p, static_cast<std::int32_t>(best), lane);
        }
    };
}

} // namespace

Workload
makeKmeansLcCpu()
{
    Workload w;
    w.name = "kmeans-lc-cpu";
    w.signature = "kmeans/lc-cpu";
    w.units = numPoints / groupSize;
    w.iterations = 3;

    auto &points = w.addBuffer<float>(
        std::uint64_t{numPoints} * numFeatures, kdp::MemSpace::Global,
        "points");
    auto &centroids = w.addBuffer<float>(
        std::uint64_t{numClusters} * numFeatures, kdp::MemSpace::Global,
        "centroids");
    auto &membership = w.addBuffer<std::int32_t>(
        numPoints, kdp::MemSpace::Global, "membership");

    support::Rng rng(31);
    for (std::uint64_t i = 0; i < points.size(); ++i)
        points.host()[i] = rng.nextFloat(-5.0f, 5.0f);
    for (std::uint64_t i = 0; i < centroids.size(); ++i)
        centroids.host()[i] = rng.nextFloat(-5.0f, 5.0f);

    auto ref = std::make_shared<std::vector<std::int32_t>>();
    ref->resize(numPoints);
    for (unsigned p = 0; p < numPoints; ++p) {
        float best_d = std::numeric_limits<float>::max();
        int best = 0;
        for (unsigned c = 0; c < numClusters; ++c) {
            float d = 0.0f;
            for (unsigned f = 0; f < numFeatures; ++f) {
                const float diff =
                    points.host()[std::uint64_t{p} * numFeatures + f]
                    - centroids.host()[std::uint64_t{c} * numFeatures
                                       + f];
                d += diff * diff;
            }
            if (d < best_d) {
                best_d = d;
                best = static_cast<int>(c);
            }
        }
        (*ref)[p] = best;
    }

    w.args.add(points).add(centroids).add(membership).add(
        static_cast<std::int64_t>(w.units));
    w.resetOutput = [&membership] { membership.fill(-1); };
    w.check = [&membership, ref] {
        for (unsigned p = 0; p < numPoints; ++p)
            if (membership.host()[p] != (*ref)[p])
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi", compiler::BoundKind::Constant, true, false, groupSize},
        {"cluster", compiler::BoundKind::Param, false, false,
         numClusters},
        {"feature", compiler::BoundKind::Param, false, false,
         numFeatures},
    };
    w.info.accesses = {
        {argPoints, false, true, {numFeatures, 0, 1}, 4,
         std::uint64_t{groupSize} * numClusters * numFeatures},
        {argCentroids, false, true, {0, numFeatures, 1}, 4,
         std::uint64_t{groupSize} * numClusters * numFeatures},
        {argMembership, true, true, {1, 0, 0}, 4, groupSize},
    };
    w.info.outputArgs = {argMembership};

    // The 3 permutations keeping 'feature' inside 'cluster'.
    for (const auto &sched : compiler::allSchedules(3)) {
        bool cluster_before_feature = false;
        for (unsigned pos : sched.order) {
            if (pos == 1) {
                cluster_before_feature = true;
                break;
            }
            if (pos == 2)
                break;
        }
        if (!cluster_before_feature)
            continue;
        kdp::KernelVariant v;
        v.name = "sched-" + sched.name();
        v.fn = kmeansKernel(sched);
        v.waFactor = 1;
        v.groupSize = groupSize;
        v.sandboxIndex = {argMembership};
        w.variants.push_back(std::move(v));
        w.schedules.push_back(sched);
    }
    return w;
}

} // namespace workloads
} // namespace dysel
