#include "evaluate.hh"

#include "dysel/runtime.hh"
#include "support/logging.hh"

namespace dysel {
namespace workloads {

VariantRun
runSingleVariant(const DeviceFactory &factory, Workload &w,
                 std::size_t index)
{
    if (index >= w.variants.size())
        support::panic("variant index %zu out of range for %s", index,
                       w.name.c_str());
    auto device = factory();
    runtime::Runtime rt(*device);
    w.registerWith(rt);
    w.resetOutput();

    runtime::LaunchOptions opt;
    opt.profiling = false;
    opt.initialVariant = static_cast<int>(index);

    VariantRun run;
    run.name = w.variants[index].name;
    const sim::TimeNs start = device->now();
    for (unsigned it = 0; it < w.iterations; ++it)
        rt.launchKernel(w.signature, w.units, w.args, opt);
    run.elapsed = device->now() - start;
    run.ok = w.check();
    return run;
}

OracleResult
runOracle(const DeviceFactory &factory, Workload &w)
{
    OracleResult result;
    result.runs.reserve(w.variants.size());
    for (std::size_t i = 0; i < w.variants.size(); ++i) {
        result.runs.push_back(runSingleVariant(factory, w, i));
        if (result.runs[i].elapsed < result.runs[result.bestIndex].elapsed)
            result.bestIndex = i;
        if (result.runs[i].elapsed
            > result.runs[result.worstIndex].elapsed)
            result.worstIndex = i;
    }
    return result;
}

DyselRun
runDysel(const DeviceFactory &factory, Workload &w,
         const runtime::LaunchOptions &opt, bool profile_every_iteration)
{
    return runDyselConfigured(factory, w, opt, runtime::RuntimeConfig(),
                              profile_every_iteration);
}

DyselRun
runDyselConfigured(const DeviceFactory &factory, Workload &w,
                   const runtime::LaunchOptions &opt,
                   const runtime::RuntimeConfig &config,
                   bool profile_every_iteration)
{
    auto device = factory();
    runtime::Runtime rt(*device, config);
    w.registerWith(rt);
    w.resetOutput();

    DyselRun run;
    const sim::TimeNs start = device->now();
    for (unsigned it = 0; it < w.iterations; ++it) {
        runtime::LaunchOptions iter_opt = opt;
        iter_opt.profiling =
            opt.profiling && (profile_every_iteration || it == 0);
        auto report = rt.launchKernel(w.signature, w.units, w.args,
                                      iter_opt);
        if (it == 0)
            run.firstIteration = std::move(report);
    }
    run.elapsed = device->now() - start;
    run.ok = w.check();
    return run;
}

double
relative(sim::TimeNs value, sim::TimeNs base)
{
    if (base == 0)
        support::panic("relative() with zero base");
    return static_cast<double>(value) / static_cast<double>(base);
}

} // namespace workloads
} // namespace dysel
