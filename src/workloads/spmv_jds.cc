#include "spmv_jds.hh"

#include <algorithm>
#include <array>
#include <memory>

#include "support/logging.hh"

#include "sparse.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned groupSize = 64;

enum Arg : std::size_t {
    argDiagPtr = 0,
    argRowLen = 1,
    argCol = 2,
    argVal = 3,
    argX = 4,
    argPerm = 5,
    argY = 6,
    argUnits = 7,
    argXTex = 8,
};

/**
 * JDS kernel: one work-item per JDS row, walking the jagged
 * diagonals.
 *
 * @param x_arg          argument slot the x vector is read from
 * @param iter_flops     per-nonzero ALU ops (2 when unrolled, 3 not)
 * @param bfo            serialize with the diagonal loop outermost
 */
kdp::KernelFn
jdsKernel(std::size_t x_arg, unsigned iter_flops, bool bfo)
{
    return [x_arg, iter_flops, bfo](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        const std::uint64_t total_rows = units * groupSize;
        const auto &diag_ptr = args.buf<std::uint32_t>(argDiagPtr);
        const auto &row_len = args.buf<std::uint32_t>(argRowLen);
        const auto &col = args.buf<std::uint32_t>(argCol);
        const auto &val = args.buf<float>(argVal);
        const auto &x = args.buf<float>(x_arg);
        const auto &perm = args.buf<std::uint32_t>(argPerm);
        auto &y = args.buf<float>(argY);

        std::array<float, groupSize> acc{};
        std::array<std::uint32_t, groupSize> len{};
        std::uint32_t max_len = 0;
        for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
            const std::uint64_t row = g.group() * groupSize + lane;
            if (row >= total_rows) {
                len[lane] = 0;
                continue;
            }
            len[lane] = g.load(row_len, row, lane);
            max_len = std::max(max_len, len[lane]);
        }

        auto body = [&](std::uint32_t lane, std::uint32_t d) {
            const std::uint64_t row = g.group() * groupSize + lane;
            const std::uint32_t base = g.load(diag_ptr, d, lane);
            const std::uint32_t j = base + static_cast<std::uint32_t>(row);
            const std::uint32_t c = g.load(col, j, lane);
            const float v = g.load(val, j, lane);
            const float xv = g.load(x, c, lane);
            acc[lane] += v * xv;
            g.flops(lane, iter_flops);
        };

        if (bfo) {
            for (std::uint32_t d = 0; d < max_len; ++d) {
                for (std::uint32_t lane = 0; lane < g.groupSize();
                     ++lane) {
                    const std::uint64_t row =
                        g.group() * groupSize + lane;
                    if (row >= total_rows)
                        continue;
                    const bool active = d < len[lane];
                    g.branch(lane, active);
                    if (active)
                        body(lane, d);
                }
            }
        } else {
            for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
                const std::uint64_t row = g.group() * groupSize + lane;
                if (row >= total_rows)
                    continue;
                for (std::uint32_t d = 0; d < len[lane]; ++d) {
                    body(lane, d);
                    g.branch(lane, d + 1 < len[lane]);
                }
            }
        }

        for (std::uint32_t lane = 0; lane < g.groupSize(); ++lane) {
            const std::uint64_t row = g.group() * groupSize + lane;
            if (row >= total_rows)
                continue;
            const std::uint32_t orig = g.load(perm, row, lane);
            g.store(y, orig, acc[lane], lane);
        }
    };
}

struct JdsSetup
{
    JdsMatrix jds;
    std::vector<float> xHost;
    std::vector<float> reference;
};

std::shared_ptr<JdsSetup>
makeSetup()
{
    auto setup = std::make_shared<JdsSetup>();
    const CsrMatrix csr = makeRandomCsr(32768, 2048, 0.016, 13);
    setup->jds = csrToJds(csr);
    setup->xHost = makeDenseVector(csr.cols);
    setup->reference = spmvReference(csr, setup->xHost);
    return setup;
}

Workload
makeCommon(const char *config, std::shared_ptr<JdsSetup> setup)
{
    const JdsMatrix &m = setup->jds;
    Workload w;
    w.name = std::string("spmv-jds-") + config;
    w.signature = std::string("spmv_jds/") + config;
    w.units = m.rows / groupSize;
    w.iterations = 10;

    auto &diag_ptr = w.addBuffer<std::uint32_t>(
        m.diagPtr.size(), kdp::MemSpace::Global, "diagPtr");
    auto &row_len = w.addBuffer<std::uint32_t>(
        m.rowLen.size(), kdp::MemSpace::Global, "rowLen");
    auto &col = w.addBuffer<std::uint32_t>(m.colIdx.size(),
                                           kdp::MemSpace::Global, "col");
    auto &val = w.addBuffer<float>(m.vals.size(), kdp::MemSpace::Global,
                                   "val");
    auto &x = w.addBuffer<float>(m.cols, kdp::MemSpace::Global, "x");
    auto &perm = w.addBuffer<std::uint32_t>(m.perm.size(),
                                            kdp::MemSpace::Global, "perm");
    auto &y = w.addBuffer<float>(m.rows, kdp::MemSpace::Global, "y");
    auto &x_tex = w.addBuffer<float>(m.cols, kdp::MemSpace::Texture,
                                     "xTex");

    std::copy(m.diagPtr.begin(), m.diagPtr.end(), diag_ptr.host());
    std::copy(m.rowLen.begin(), m.rowLen.end(), row_len.host());
    std::copy(m.colIdx.begin(), m.colIdx.end(), col.host());
    std::copy(m.vals.begin(), m.vals.end(), val.host());
    std::copy(setup->xHost.begin(), setup->xHost.end(), x.host());
    std::copy(m.perm.begin(), m.perm.end(), perm.host());
    std::copy(setup->xHost.begin(), setup->xHost.end(), x_tex.host());

    w.args.add(diag_ptr).add(row_len).add(col).add(val).add(x).add(perm)
        .add(y).add(static_cast<std::int64_t>(w.units)).add(x_tex);

    w.resetOutput = [&y] { y.fill(0.0f); };
    w.check = [&y, setup] {
        for (std::uint32_t r = 0; r < setup->jds.rows; ++r)
            if (!nearlyEqual(y.host()[r], setup->reference[r], 1e-3f,
                             1e-4f))
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi", compiler::BoundKind::Constant, true, false, groupSize},
        {"diag", compiler::BoundKind::DataDependent, false, false,
         m.maxLen / 2},
    };
    // val[diagPtr[d] + row]: stride 1 across work-items (that is the
    // point of JDS) but data dependent in the diagonal loop.
    constexpr auto unk = compiler::AccessPattern::unknownStride;
    w.info.accesses = {
        {argVal, false, true, {1, unk}, 4, m.vals.size()},
        {argCol, false, true, {1, unk}, 4, m.vals.size()},
        {argX, false, false, {}, 4, m.vals.size()},
        {argY, true, false, {}, 4, m.rows},
    };
    w.info.outputArgs = {argY};
    return w;
}

kdp::KernelVariant
variant(const char *name, std::size_t x_arg, unsigned iter_flops, bool bfo,
        unsigned vector_width, bool prefetch, unsigned regs,
        bool texture)
{
    kdp::KernelVariant v;
    v.name = name;
    v.fn = jdsKernel(x_arg, iter_flops, bfo);
    v.waFactor = 1;
    v.groupSize = groupSize;
    v.traits.vectorWidth = vector_width;
    v.traits.softwarePrefetch = prefetch;
    v.traits.regsPerThread = regs;
    v.traits.usesTexture = texture;
    v.sandboxIndex = {argY};
    return v;
}

} // namespace

Workload
makeSpmvJdsVectorCpu()
{
    Workload w = makeCommon("vector-cpu", makeSetup());
    w.variants.push_back(
        variant("scalar", argX, 3, true, 1, false, 32, false));
    w.variants.push_back(
        variant("4-way", argX, 3, true, 4, false, 32, false));
    w.variants.push_back(
        variant("8-way", argX, 3, true, 8, false, 32, false));
    return w;
}

Workload
makeSpmvJdsCpuLc()
{
    Workload w = makeCommon("lc-cpu", makeSetup());
    w.variants.push_back(
        variant("dfo", argX, 3, false, 1, false, 32, false));
    w.variants.push_back(
        variant("bfo", argX, 3, true, 4, false, 32, false));
    w.schedules = {compiler::Schedule{{0, 1}},
                   compiler::Schedule{{1, 0}}};
    return w;
}

Workload
makeSpmvJdsCpuMixed()
{
    Workload w = makeCommon("mixed-cpu", makeSetup());
    w.variants.push_back(
        variant("base", argX, 3, false, 1, false, 32, false));
    w.variants.push_back(variant("unroll-prefetch-texture", argXTex, 2,
                                 false, 1, true, 40, true));
    return w;
}

Workload
makeSpmvJdsGpuMixed()
{
    Workload w = makeCommon("mixed-gpu", makeSetup());
    w.variants.push_back(
        variant("base", argX, 3, true, 1, false, 32, false));
    w.variants.push_back(variant("unroll-prefetch", argX, 2, true, 1,
                                 true, 40, false));
    w.variants.push_back(
        variant("texture", argXTex, 3, true, 1, false, 32, true));
    w.variants.push_back(variant("unroll-prefetch-texture", argXTex, 2,
                                 true, 1, true, 72, true));
    return w;
}

} // namespace workloads
} // namespace dysel
