/**
 * @file
 * Sparse matrix formats and generators.
 *
 * The paper's spmv experiments use two inputs (§4.2): a uniformly
 * random sparse matrix (SHOC's default, 1% density) and a diagonal
 * matrix whose one-nonzero rows are the pathological case for
 * vector-style kernels.  CSR backs spmv-csr; JDS (jagged diagonal
 * storage, rows sorted by length, diagonals stored column-major)
 * backs Parboil's spmv-jds.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace dysel {
namespace workloads {

/** Compressed sparse row. */
struct CsrMatrix
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint32_t> rowPtr; ///< rows + 1 entries
    std::vector<std::uint32_t> colIdx;
    std::vector<float> vals;

    std::uint64_t nnz() const { return vals.size(); }
    std::uint32_t rowLen(std::uint32_t r) const
    {
        return rowPtr[r + 1] - rowPtr[r];
    }
};

/** Jagged diagonal storage. */
struct JdsMatrix
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint32_t maxLen = 0;          ///< longest row
    std::vector<std::uint32_t> perm;   ///< jds row -> original row
    std::vector<std::uint32_t> rowLen; ///< per jds row
    /** Start offset of each jagged diagonal (maxLen + 1 entries). */
    std::vector<std::uint32_t> diagPtr;
    /** Number of rows long enough for each diagonal. */
    std::vector<std::uint32_t> diagRows;
    std::vector<std::uint32_t> colIdx; ///< diagonal-major
    std::vector<float> vals;           ///< diagonal-major
};

/**
 * Uniformly random sparse matrix: each row gets a binomially
 * distributed number of nonzeros (expected density * cols), sorted
 * column indices, values in [-1, 1].
 */
CsrMatrix makeRandomCsr(std::uint32_t rows, std::uint32_t cols,
                        double density, std::uint64_t seed = 7);

/** Diagonal matrix: exactly one nonzero per row, at (r, r). */
CsrMatrix makeDiagonalCsr(std::uint32_t n);

/** Convert CSR to JDS. */
JdsMatrix csrToJds(const CsrMatrix &csr);

/** Reference y = A x on the host. */
std::vector<float> spmvReference(const CsrMatrix &a,
                                 const std::vector<float> &x);

/** A dense random vector in [-1, 1]. */
std::vector<float> makeDenseVector(std::uint32_t n,
                                   std::uint64_t seed = 11);

} // namespace workloads
} // namespace dysel
