/**
 * @file
 * spmv-jds (Parboil): y = A x on a JDS matrix (rows sorted by length,
 * jagged diagonals stored column-major so lanes of a warp stream
 * contiguous memory).
 *
 * Experiment configurations:
 *  - Fig. 1:  scalar / 4-way / 8-way vectorization (CPU);
 *  - Fig. 8:  DFO vs. BFO work-item schedules (CPU);
 *  - Fig. 10a: base vs. fully optimized (CPU);
 *  - Fig. 10b: base / +unroll+prefetch / +texture / +all (GPU).
 *
 * One workload unit is 64 JDS rows (one base work-group).
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

/** Fig. 1 configuration: vector widths (CPU). */
Workload makeSpmvJdsVectorCpu();

/** Fig. 8 configuration: DFO / BFO schedules (CPU). */
Workload makeSpmvJdsCpuLc();

/** Fig. 10a configuration: base vs. all-optimized (CPU). */
Workload makeSpmvJdsCpuMixed();

/** Fig. 10b configuration: the four Parboil versions (GPU). */
Workload makeSpmvJdsGpuMixed();

} // namespace workloads
} // namespace dysel
