#include "cutcp.hh"

#include <array>
#include <cmath>
#include <memory>

#include "compiler/schedule.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned lx = 128, ly = 64, lz = 32; ///< lattice points
constexpr float spacing = 0.5f;
constexpr float cutoff = 2.0f;
constexpr float cutoff2 = cutoff * cutoff;
constexpr unsigned tile = 4; ///< lattice points per tile edge
constexpr unsigned tilesX = lx / tile, tilesY = ly / tile,
                   tilesZ = lz / tile;
constexpr unsigned binsX = tilesX, binsY = tilesY, binsZ = tilesZ;
constexpr unsigned binCapacity = 4;
constexpr unsigned numAtoms = 8192;
constexpr unsigned groupSize = tile * tile * tile;

enum Arg : std::size_t {
    argBins = 0,    ///< float4 per slot: x, y, z, q (q=0 padding)
    argLattice = 1, ///< output potential per lattice point
    argUnits = 2,
};

std::uint64_t
binSlotBase(unsigned bx, unsigned by, unsigned bz, unsigned slot)
{
    const std::uint64_t bin =
        (std::uint64_t{bz} * binsY + by) * binsX + bx;
    return (bin * binCapacity + slot) * 4;
}

std::uint64_t
latticeIndex(unsigned x, unsigned y, unsigned z)
{
    return (std::uint64_t{z} * ly + y) * lx + x;
}

void
tileOf(std::uint64_t u, unsigned &tx, unsigned &ty, unsigned &tz)
{
    tx = static_cast<unsigned>(u % tilesX);
    ty = static_cast<unsigned>((u / tilesX) % tilesY);
    tz = static_cast<unsigned>(u / (tilesX * tilesY));
}

/** Accumulate one atom's (possibly zero) contribution. */
float
contribution(float px, float py, float pz, const float *atom)
{
    const float dx = px - atom[0];
    const float dy = py - atom[1];
    const float dz = pz - atom[2];
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= cutoff2)
        return 0.0f;
    return atom[3] / std::sqrt(r2 + 0.01f);
}

/**
 * Schedule-generic base kernel.  Canonical loops: L0 wi-x(4),
 * L1 wi-y(4), L2 wi-z(4), L3 bin(27), L4 atom(binCapacity).
 */
kdp::KernelFn
baseKernel(compiler::Schedule sched)
{
    return [sched](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        if (g.unitBase() >= units)
            return;
        const auto &bins = args.buf<float>(argBins);
        auto &lattice = args.buf<float>(argLattice);

        unsigned tx, ty, tz;
        tileOf(g.unitBase(), tx, ty, tz);

        std::array<float, groupSize> pot{};
        const std::array<unsigned, 5> bounds = {tile, tile, tile, 27,
                                                binCapacity};
        std::array<unsigned, 5> idx{};

        // Loop-invariant atom data stays in registers: the atom is
        // reloaded only when the (bin, slot) pair changes between
        // consecutive body executions.  Schedules that keep the
        // lattice loops inside the atom loop therefore load each atom
        // once; schedules with the atom loop innermost reload it for
        // every lattice point -- the memory-traffic spread LC
        // scheduling navigates.
        std::uint64_t prev_slot = ~std::uint64_t{0};
        unsigned prev_bin = ~0u;
        float atom[4] = {0.0f, 0.0f, 0.0f, 0.0f};

        auto body = [&] {
            const unsigned x = tx * tile + idx[0];
            const unsigned y = ty * tile + idx[1];
            const unsigned z = tz * tile + idx[2];
            const std::uint32_t lane =
                (idx[2] * tile + idx[1]) * tile + idx[0];
            const int bdx = static_cast<int>(idx[3] % 3) - 1;
            const int bdy = static_cast<int>((idx[3] / 3) % 3) - 1;
            const int bdz = static_cast<int>(idx[3] / 9) - 1;
            // Periodic neighbourhood: every tile sees exactly 27
            // bins, keeping per-unit work uniform (the property
            // fully-productive profiling relies on, §2.2).
            const unsigned bx = static_cast<unsigned>(
                (static_cast<int>(tx) + bdx + static_cast<int>(binsX))
                % static_cast<int>(binsX));
            const unsigned by = static_cast<unsigned>(
                (static_cast<int>(ty) + bdy + static_cast<int>(binsY))
                % static_cast<int>(binsY));
            const unsigned bz = static_cast<unsigned>(
                (static_cast<int>(tz) + bdz + static_cast<int>(binsZ))
                % static_cast<int>(binsZ));
            if (idx[3] != prev_bin) {
                prev_bin = idx[3];
                g.flops(lane, 6); // bin address computation
            }
            const std::uint64_t slot =
                binSlotBase(static_cast<unsigned>(bx),
                            static_cast<unsigned>(by),
                            static_cast<unsigned>(bz), idx[4]);
            if (slot != prev_slot) {
                prev_slot = slot;
                g.loadSpan(bins, slot, 4, lane, atom);
            }
            const float px = static_cast<float>(x) * spacing;
            const float py = static_cast<float>(y) * spacing;
            const float pz = static_cast<float>(z) * spacing;
            const float dx = px - atom[0];
            const float dy = py - atom[1];
            const float dz = pz - atom[2];
            const float r2 = dx * dx + dy * dy + dz * dz;
            g.flops(lane, 8);
            g.branch(lane, r2 < cutoff2);
            if (r2 < cutoff2) {
                pot[lane] += atom[3] / std::sqrt(r2 + 0.01f);
                g.flops(lane, 4);
            }
        };

        // Five-deep nest in schedule order.
        std::array<unsigned, 5> o = {sched.order[0], sched.order[1],
                                     sched.order[2], sched.order[3],
                                     sched.order[4]};
        for (idx[o[0]] = 0; idx[o[0]] < bounds[o[0]]; ++idx[o[0]])
        for (idx[o[1]] = 0; idx[o[1]] < bounds[o[1]]; ++idx[o[1]])
        for (idx[o[2]] = 0; idx[o[2]] < bounds[o[2]]; ++idx[o[2]])
        for (idx[o[3]] = 0; idx[o[3]] < bounds[o[3]]; ++idx[o[3]])
        for (idx[o[4]] = 0; idx[o[4]] < bounds[o[4]]; ++idx[o[4]])
            body();

        for (unsigned e = 0; e < groupSize; ++e) {
            const unsigned x = tx * tile + e % tile;
            const unsigned y = ty * tile + (e / tile) % tile;
            const unsigned z = tz * tile + e / (tile * tile);
            g.store(lattice, latticeIndex(x, y, z), pot[e], e);
        }
    };
}

/**
 * Coarsened (waf 4) variant: covers four adjacent tiles along x and
 * stages each sub-tile's bins through scratchpad cooperatively.
 */
void
coarsenedKernel(kdp::GroupCtx &g, const kdp::KernelArgs &args)
{
    const auto units = static_cast<std::uint64_t>(args.scalarInt(argUnits));
    if (g.unitBase() >= units)
        return;
    const auto &bins = args.buf<float>(argBins);
    auto &lattice = args.buf<float>(argLattice);

    auto staged = g.allocLocal<float>(27 * binCapacity * 4);

    for (unsigned sub = 0; sub < 4; ++sub) {
        unsigned tx, ty, tz;
        tileOf(g.unitBase() + sub, tx, ty, tz);

        // Cooperative staging: 27 * capacity float4 slots over 64
        // lanes.
        const unsigned slots = 27 * binCapacity;
        for (unsigned s = 0; s < slots; s += groupSize) {
            for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
                const unsigned slot = s + lane;
                if (slot >= slots)
                    break;
                const unsigned b = slot / binCapacity;
                const unsigned a = slot % binCapacity;
                const unsigned bx = static_cast<unsigned>(
                    (static_cast<int>(tx) + static_cast<int>(b % 3) - 1
                     + static_cast<int>(binsX))
                    % static_cast<int>(binsX));
                const unsigned by = static_cast<unsigned>(
                    (static_cast<int>(ty)
                     + static_cast<int>((b / 3) % 3) - 1
                     + static_cast<int>(binsY))
                    % static_cast<int>(binsY));
                const unsigned bz = static_cast<unsigned>(
                    (static_cast<int>(tz) + static_cast<int>(b / 9) - 1
                     + static_cast<int>(binsZ))
                    % static_cast<int>(binsZ));
                float atom[4] = {0.0f, 0.0f, 0.0f, 0.0f};
                g.loadSpan(bins, binSlotBase(bx, by, bz, a), 4, lane,
                           atom);
                for (unsigned c = 0; c < 4; ++c)
                    staged.set(g, slot * 4 + c, atom[c], lane);
            }
        }
        g.barrier();

        for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
            const unsigned x = tx * tile + lane % tile;
            const unsigned y = ty * tile + (lane / tile) % tile;
            const unsigned z = tz * tile + lane / (tile * tile);
            const float px = static_cast<float>(x) * spacing;
            const float py = static_cast<float>(y) * spacing;
            const float pz = static_cast<float>(z) * spacing;
            float pot = 0.0f;
            for (unsigned slot = 0; slot < slots; ++slot) {
                float atom[4];
                for (unsigned c = 0; c < 4; ++c)
                    atom[c] = staged.get(g, slot * 4 + c, lane);
                const float dx = px - atom[0];
                const float dy = py - atom[1];
                const float dz = pz - atom[2];
                const float r2 = dx * dx + dy * dy + dz * dz;
                g.flops(lane, 8);
                g.branch(lane, r2 < cutoff2);
                if (r2 < cutoff2 && atom[3] != 0.0f) {
                    pot += atom[3] / std::sqrt(r2 + 0.01f);
                    g.flops(lane, 4);
                }
            }
            g.store(lattice, latticeIndex(x, y, z), pot, lane);
        }
        g.barrier();
    }
}

struct CutcpSetup
{
    std::vector<float> binData;
    std::vector<float> reference;
};

std::shared_ptr<CutcpSetup>
makeSetup()
{
    auto setup = std::make_shared<CutcpSetup>();
    setup->binData.assign(
        std::uint64_t{binsX} * binsY * binsZ * binCapacity * 4, 0.0f);
    std::vector<unsigned> fill(std::uint64_t{binsX} * binsY * binsZ, 0);

    support::Rng rng(77);
    const float sx = static_cast<float>(lx) * spacing;
    const float sy = static_cast<float>(ly) * spacing;
    const float sz = static_cast<float>(lz) * spacing;
    for (unsigned a = 0; a < numAtoms; ++a) {
        const float x = rng.nextFloat(0.0f, sx);
        const float y = rng.nextFloat(0.0f, sy);
        const float z = rng.nextFloat(0.0f, sz);
        const float q = rng.nextFloat(-1.0f, 1.0f);
        const auto bx = std::min(binsX - 1,
                                 static_cast<unsigned>(x / cutoff));
        const auto by = std::min(binsY - 1,
                                 static_cast<unsigned>(y / cutoff));
        const auto bz = std::min(binsZ - 1,
                                 static_cast<unsigned>(z / cutoff));
        const std::uint64_t bin =
            (std::uint64_t{bz} * binsY + by) * binsX + bx;
        if (fill[bin] >= binCapacity)
            continue; // overflow atoms are dropped from the workload
        const std::uint64_t base = binSlotBase(bx, by, bz, fill[bin]);
        setup->binData[base + 0] = x;
        setup->binData[base + 1] = y;
        setup->binData[base + 2] = z;
        setup->binData[base + 3] = q;
        ++fill[bin];
    }

    // Host reference: same bin traversal.
    setup->reference.assign(std::uint64_t{lx} * ly * lz, 0.0f);
    for (unsigned z = 0; z < lz; ++z) {
        for (unsigned y = 0; y < ly; ++y) {
            for (unsigned x = 0; x < lx; ++x) {
                const float px = static_cast<float>(x) * spacing;
                const float py = static_cast<float>(y) * spacing;
                const float pz = static_cast<float>(z) * spacing;
                const int tx = static_cast<int>(x / tile);
                const int ty = static_cast<int>(y / tile);
                const int tz = static_cast<int>(z / tile);
                float pot = 0.0f;
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            const auto bx = static_cast<unsigned>(
                                (tx + dx + (int)binsX) % (int)binsX);
                            const auto by = static_cast<unsigned>(
                                (ty + dy + (int)binsY) % (int)binsY);
                            const auto bz = static_cast<unsigned>(
                                (tz + dz + (int)binsZ) % (int)binsZ);
                            for (unsigned a = 0; a < binCapacity; ++a) {
                                const std::uint64_t base =
                                    binSlotBase(bx, by, bz, a);
                                pot += contribution(
                                    px, py, pz,
                                    &setup->binData[base]);
                            }
                        }
                    }
                }
                setup->reference[latticeIndex(x, y, z)] = pot;
            }
        }
    }
    return setup;
}

Workload
makeCommon(const char *config, std::shared_ptr<CutcpSetup> setup)
{
    Workload w;
    w.name = std::string("cutcp-") + config;
    w.signature = std::string("cutcp/") + config;
    w.units = std::uint64_t{tilesX} * tilesY * tilesZ;

    auto &bins = w.addBuffer<float>(setup->binData.size(),
                                    kdp::MemSpace::Global, "bins");
    auto &lattice = w.addBuffer<float>(std::uint64_t{lx} * ly * lz,
                                       kdp::MemSpace::Global, "lattice");
    std::copy(setup->binData.begin(), setup->binData.end(), bins.host());

    w.args.add(bins).add(lattice).add(static_cast<std::int64_t>(w.units));
    w.resetOutput = [&lattice] { lattice.fill(0.0f); };
    w.check = [&lattice, setup] {
        for (std::uint64_t i = 0; i < lattice.size(); ++i)
            if (!nearlyEqual(lattice.host()[i], setup->reference[i],
                             2e-3f, 2e-3f))
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi-x", compiler::BoundKind::Constant, true, false, tile},
        {"wi-y", compiler::BoundKind::Constant, true, false, tile},
        {"wi-z", compiler::BoundKind::Constant, true, false, tile},
        {"bin", compiler::BoundKind::Constant, false, false, 27},
        {"atom", compiler::BoundKind::Constant, false, false,
         binCapacity},
    };
    // The bin access is invariant in all three lattice loops (so
    // schedules that keep a lattice loop innermost let the compiler
    // hoist the atom load into registers), strides one padded slot in
    // the atom loop, and is data dependent in the bin loop.
    constexpr auto unk = compiler::AccessPattern::unknownStride;
    w.info.accesses = {
        {argBins, false, true, {0, 0, 0, unk, 4}, 16,
         std::uint64_t{groupSize} * 27 * binCapacity},
        {argLattice, true, true,
         {1, static_cast<std::int64_t>(tile),
          static_cast<std::int64_t>(tile) * tile, 0, 0},
         4, groupSize},
    };
    w.info.outputArgs = {argLattice};
    return w;
}

} // namespace

Workload
makeCutcpLcCpu(unsigned max_schedules)
{
    auto setup = makeSetup();
    Workload w = makeCommon("lc-cpu", setup);
    unsigned added = 0;
    for (const auto &sched : compiler::allSchedules(5)) {
        // Keep the atom loop (L4) inside the bin loop (L3).
        unsigned pos3 = 0, pos4 = 0;
        for (unsigned i = 0; i < 5; ++i) {
            if (sched.order[i] == 3)
                pos3 = i;
            if (sched.order[i] == 4)
                pos4 = i;
        }
        if (pos4 < pos3)
            continue;
        if (max_schedules && added >= max_schedules)
            break;
        kdp::KernelVariant v;
        v.name = "sched-" + sched.name();
        v.fn = baseKernel(sched);
        v.waFactor = 1;
        v.groupSize = groupSize;
        v.sandboxIndex = {argLattice};
        w.variants.push_back(std::move(v));
        w.schedules.push_back(sched);
        ++added;
    }
    return w;
}

Workload
makeCutcpMixed()
{
    auto setup = makeSetup();
    Workload w = makeCommon("mixed", setup);

    kdp::KernelVariant base;
    base.name = "base";
    base.fn = baseKernel(compiler::dfoSchedule(5));
    base.waFactor = 1;
    base.groupSize = groupSize;
    base.sandboxIndex = {argLattice};
    w.variants.push_back(std::move(base));

    kdp::KernelVariant coarse;
    coarse.name = "coarsen4-scratch";
    coarse.fn = coarsenedKernel;
    coarse.waFactor = 4;
    coarse.groupSize = groupSize;
    coarse.traits.scratchBytes = 27 * binCapacity * 4 * sizeof(float);
    coarse.traits.regsPerThread = 40;
    coarse.sandboxIndex = {argLattice};
    w.variants.push_back(std::move(coarse));
    return w;
}

} // namespace workloads
} // namespace dysel
