#include "workload.hh"

#include <cmath>

#include "dysel/runtime.hh"

namespace dysel {
namespace workloads {

void
Workload::registerWith(runtime::Runtime &rt) const
{
    for (const auto &v : variants)
        rt.addKernel(signature, v);
    rt.setKernelInfo(signature, info);
}

int
Workload::variantIndex(const std::string &variant_name) const
{
    for (std::size_t i = 0; i < variants.size(); ++i)
        if (variants[i].name == variant_name)
            return static_cast<int>(i);
    return -1;
}

bool
nearlyEqual(float a, float b, float rel, float abs)
{
    const float diff = std::fabs(a - b);
    if (diff <= abs)
        return true;
    return diff <= rel * std::max(std::fabs(a), std::fabs(b));
}

} // namespace workloads
} // namespace dysel
