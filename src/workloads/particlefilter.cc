#include "particlefilter.hh"

#include <cmath>
#include <memory>

#include "support/rng.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned numParticles = 131072;
constexpr unsigned numTemplate = 16; ///< template points per particle
constexpr unsigned frameX = 64, frameY = 64, frameZ = 8;
constexpr unsigned groupSize = 64;

enum Arg : std::size_t {
    argArrayX = 0,
    argArrayY = 1,
    argObjxy = 2,      ///< global copy
    argFrame = 3,      ///< global copy
    argLikelihood = 4, ///< output
    argUnits = 5,
    argObjxyConst = 6,
    argObjxyTex = 7,
    argFrameTex = 8,
};

/** Placement policy: which slots objxy and the frame are read from,
 *  and whether objxy is staged through scratchpad first. */
struct Placement
{
    std::size_t objxy = argObjxy;
    std::size_t frame = argFrame;
    bool stageObjxy = false;
};

std::uint64_t
frameIndex(unsigned x, unsigned y, unsigned z)
{
    return (std::uint64_t{z} * frameY + y) * frameX + x;
}

kdp::KernelFn
likelihoodKernel(Placement place)
{
    return [place](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto units = static_cast<std::uint64_t>(
            args.scalarInt(argUnits));
        if (g.unitBase() >= units)
            return;
        const auto &ax = args.buf<float>(argArrayX);
        const auto &ay = args.buf<float>(argArrayY);
        const auto &objxy = args.buf<std::int32_t>(place.objxy);
        const auto &frame = args.buf<float>(place.frame);
        auto &likelihood = args.buf<float>(argLikelihood);

        kdp::Local<std::int32_t> staged;
        if (place.stageObjxy) {
            staged = g.allocLocal<std::int32_t>(2 * numTemplate);
            for (unsigned e = 0; e < 2 * numTemplate; e += groupSize) {
                for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
                    const unsigned elem = e + lane;
                    if (elem >= 2 * numTemplate)
                        break;
                    const std::int32_t v = g.load(objxy, elem, lane);
                    staged.set(g, elem, v, lane);
                }
            }
            g.barrier();
        }

        for (std::uint32_t lane = 0; lane < groupSize; ++lane) {
            const std::uint64_t p = g.group() * groupSize + lane;
            const float px = g.load(ax, p, lane);
            const float py = g.load(ay, p, lane);
            const auto z = static_cast<unsigned>(p % frameZ);
            float lik = 0.0f;
            for (unsigned t = 0; t < numTemplate; ++t) {
                std::int32_t ox, oy;
                if (place.stageObjxy) {
                    ox = staged.get(g, 2 * t, lane);
                    oy = staged.get(g, 2 * t + 1, lane);
                } else {
                    ox = g.load(objxy, 2 * t, lane);
                    oy = g.load(objxy, 2 * t + 1, lane);
                }
                const auto ix = static_cast<unsigned>(
                    (static_cast<std::int64_t>(px) + ox) % frameX);
                const auto iy = static_cast<unsigned>(
                    (static_cast<std::int64_t>(py) + oy) % frameY);
                const float v =
                    g.load(frame, frameIndex(ix, iy, z), lane);
                lik += (v * v - 100.0f) / 50.0f;
                g.flops(lane, 6);
            }
            g.store(likelihood, p, lik / numTemplate, lane);
            g.flops(lane, 1);
        }
    };
}

} // namespace

Workload
makeParticleFilterGpu()
{
    Workload w;
    w.name = "particlefilter-gpu";
    w.signature = "particlefilter/placement-gpu";
    w.units = numParticles / groupSize;
    w.iterations = 1;

    auto &ax = w.addBuffer<float>(numParticles, kdp::MemSpace::Global,
                                  "arrayX");
    auto &ay = w.addBuffer<float>(numParticles, kdp::MemSpace::Global,
                                  "arrayY");
    auto &objxy = w.addBuffer<std::int32_t>(2 * numTemplate,
                                            kdp::MemSpace::Global,
                                            "objxy");
    auto &frame = w.addBuffer<float>(
        std::uint64_t{frameX} * frameY * frameZ, kdp::MemSpace::Global,
        "frame");
    auto &likelihood = w.addBuffer<float>(numParticles,
                                          kdp::MemSpace::Global,
                                          "likelihood");
    auto &objxy_const = w.addBuffer<std::int32_t>(
        2 * numTemplate, kdp::MemSpace::Constant, "objxyConst");
    auto &objxy_tex = w.addBuffer<std::int32_t>(
        2 * numTemplate, kdp::MemSpace::Texture, "objxyTex");
    auto &frame_tex = w.addBuffer<float>(
        std::uint64_t{frameX} * frameY * frameZ, kdp::MemSpace::Texture,
        "frameTex");

    support::Rng rng(99);
    for (unsigned p = 0; p < numParticles; ++p) {
        // Particles cluster around a target, so nearby particles
        // gather nearby frame pixels.
        ax.host()[p] = 32.0f + rng.nextFloat(-6.0f, 6.0f);
        ay.host()[p] = 32.0f + rng.nextFloat(-6.0f, 6.0f);
    }
    for (unsigned t = 0; t < numTemplate; ++t) {
        objxy.host()[2 * t] = static_cast<std::int32_t>(
            rng.nextInRange(-4, 4));
        objxy.host()[2 * t + 1] = static_cast<std::int32_t>(
            rng.nextInRange(-4, 4));
    }
    for (std::uint64_t i = 0; i < frame.size(); ++i)
        frame.host()[i] = rng.nextFloat(0.0f, 255.0f);
    for (std::uint64_t i = 0; i < objxy.size(); ++i) {
        objxy_const.host()[i] = objxy.host()[i];
        objxy_tex.host()[i] = objxy.host()[i];
    }
    for (std::uint64_t i = 0; i < frame.size(); ++i)
        frame_tex.host()[i] = frame.host()[i];

    w.args.add(ax).add(ay).add(objxy).add(frame).add(likelihood)
        .add(static_cast<std::int64_t>(w.units))
        .add(objxy_const).add(objxy_tex).add(frame_tex);

    auto ref = std::make_shared<std::vector<float>>(numParticles, 0.0f);
    for (unsigned p = 0; p < numParticles; ++p) {
        const auto z = static_cast<unsigned>(p % frameZ);
        float lik = 0.0f;
        for (unsigned t = 0; t < numTemplate; ++t) {
            const auto ix = static_cast<unsigned>(
                (static_cast<std::int64_t>(ax.host()[p])
                 + objxy.host()[2 * t])
                % frameX);
            const auto iy = static_cast<unsigned>(
                (static_cast<std::int64_t>(ay.host()[p])
                 + objxy.host()[2 * t + 1])
                % frameY);
            const float v = frame.host()[frameIndex(ix, iy, z)];
            lik += (v * v - 100.0f) / 50.0f;
        }
        (*ref)[p] = lik / numTemplate;
    }

    w.resetOutput = [&likelihood] { likelihood.fill(0.0f); };
    w.check = [&likelihood, ref] {
        for (unsigned p = 0; p < numParticles; ++p)
            if (!nearlyEqual(likelihood.host()[p], (*ref)[p], 1e-3f,
                             1e-3f))
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi", compiler::BoundKind::Constant, true, false, groupSize},
        {"template", compiler::BoundKind::Param, false, true,
         numTemplate},
    };
    w.info.accesses = {
        {argObjxy, false, true, {0, 2}, 4,
         std::uint64_t{groupSize} * numTemplate * 2},
        {argFrame, false, false, {}, 4,
         std::uint64_t{groupSize} * numTemplate},
        {argLikelihood, true, true, {1, 0}, 4, groupSize},
    };
    w.info.outputArgs = {argLikelihood};

    auto add = [&w](const char *name, Placement p) {
        kdp::KernelVariant v;
        v.name = name;
        v.fn = likelihoodKernel(p);
        v.waFactor = 1;
        v.groupSize = groupSize;
        v.traits.usesTexture = p.frame == argFrameTex;
        if (p.stageObjxy)
            v.traits.scratchBytes = 2 * numTemplate * 4;
        v.sandboxIndex = {argLikelihood};
        w.variants.push_back(std::move(v));
    };

    // Original Rodinia placement: everything in global memory.
    add("rodinia-orig", Placement{argObjxy, argFrame, false});
    // PORPLE's Kepler policy: objxy in constant, frame via texture.
    add("porple-a", Placement{argObjxyConst, argFrameTex, false});
    // PORPLE's alternative policy: objxy staged in scratchpad.
    add("porple-b", Placement{argObjxy, argFrameTex, true});
    // Rule-based heuristic: small read-only array via texture.
    add("jang-heuristic", Placement{argObjxyTex, argFrameTex, false});
    return w;
}

} // namespace workloads
} // namespace dysel
