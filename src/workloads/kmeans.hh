/**
 * @file
 * kmeans (Rodinia): nearest-centroid membership assignment.
 *
 * Fig. 8 configuration: the serialized loop nest is [wi, cluster,
 * feature]; LC considers the 3 permutations that keep the feature
 * loop inside the cluster loop (the distance accumulation forces that
 * order), matching the paper's "3 schedules for kmeans".
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

Workload makeKmeansLcCpu();

} // namespace workloads
} // namespace dysel
