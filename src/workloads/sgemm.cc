#include "sgemm.hh"

#include <array>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"

namespace dysel {
namespace workloads {

namespace {

constexpr unsigned tileX = 16; ///< C columns per base work-group
constexpr unsigned tileY = 4;  ///< C rows per base work-group

/** Units are grouped into 4x4-tile blocks so a coarsened work-group
 *  (16 units) covers a contiguous unit range. */
struct Geometry
{
    unsigned m, n, k;
    unsigned tilesX, tilesY;
    unsigned blocksX;

    Geometry(unsigned m_, unsigned n_, unsigned k_)
        : m(m_), n(n_), k(k_), tilesX(n_ / tileX), tilesY(m_ / tileY),
          blocksX(tilesX / 4)
    {
        if (m % (tileY * 4) || n % (tileX * 4))
            support::fatal("sgemm dims must be multiples of %u x %u",
                           tileY * 4, tileX * 4);
    }

    std::uint64_t units() const
    {
        return std::uint64_t{tilesX} * tilesY;
    }

    /** Tile coordinates of workload unit @p u. */
    void
    tileOf(std::uint64_t u, unsigned &tx, unsigned &ty) const
    {
        const std::uint64_t block = u / 16;
        const unsigned within = static_cast<unsigned>(u % 16);
        tx = static_cast<unsigned>(block % blocksX) * 4 + within % 4;
        ty = static_cast<unsigned>(block / blocksX) * 4 + within / 4;
    }
};

/** Fill A and B and compute the reference product on the host. */
void
initData(kdp::Buffer<float> &a, kdp::Buffer<float> &b,
         std::vector<float> &ref, unsigned m, unsigned n, unsigned k)
{
    support::Rng rng(42);
    for (std::uint64_t i = 0; i < a.size(); ++i)
        a.host()[i] = rng.nextFloat(-1.0f, 1.0f);
    for (std::uint64_t i = 0; i < b.size(); ++i)
        b.host()[i] = rng.nextFloat(-1.0f, 1.0f);
    ref.assign(std::uint64_t{m} * n, 0.0f);
    for (unsigned row = 0; row < m; ++row) {
        for (unsigned kk = 0; kk < k; ++kk) {
            const float av = a.host()[std::uint64_t{row} * k + kk];
            for (unsigned col = 0; col < n; ++col)
                ref[std::uint64_t{row} * n + col] +=
                    av * b.host()[std::uint64_t{kk} * n + col];
        }
    }
}

/**
 * The base sgemm kernel under an arbitrary loop-nest schedule.
 * Canonical loops: L0 = wi-x (16), L1 = wi-y (4), L2 = k.
 */
kdp::KernelFn
baseKernel(Geometry geo, compiler::Schedule sched)
{
    return [geo, sched](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto total_units =
            static_cast<std::uint64_t>(args.scalarInt(3));
        const std::uint64_t unit = g.unitBase();
        if (unit >= total_units)
            return;
        const auto &a = args.buf<float>(0);
        const auto &b = args.buf<float>(1);
        auto &c = args.buf<float>(2);

        unsigned tx, ty;
        geo.tileOf(unit, tx, ty);
        const unsigned col0 = tx * tileX;
        const unsigned row0 = ty * tileY;

        std::array<float, tileX * tileY> acc{};
        const std::array<unsigned, 3> bounds = {tileX, tileY, geo.k};
        std::array<unsigned, 3> idx = {0, 0, 0};
        for (idx[sched.order[0]] = 0;
             idx[sched.order[0]] < bounds[sched.order[0]];
             ++idx[sched.order[0]]) {
            for (idx[sched.order[1]] = 0;
                 idx[sched.order[1]] < bounds[sched.order[1]];
                 ++idx[sched.order[1]]) {
                for (idx[sched.order[2]] = 0;
                     idx[sched.order[2]] < bounds[sched.order[2]];
                     ++idx[sched.order[2]]) {
                    const unsigned x = idx[0];
                    const unsigned y = idx[1];
                    const unsigned kk = idx[2];
                    const std::uint32_t lane = y * tileX + x;
                    const float av = g.load(
                        a, std::uint64_t{row0 + y} * geo.k + kk, lane);
                    const float bv = g.load(
                        b, std::uint64_t{kk} * geo.n + col0 + x, lane);
                    acc[lane] += av * bv;
                    g.flops(lane, 2);
                }
            }
        }
        for (unsigned y = 0; y < tileY; ++y) {
            for (unsigned x = 0; x < tileX; ++x) {
                const std::uint32_t lane = y * tileX + x;
                g.store(c, std::uint64_t{row0 + y} * geo.n + col0 + x,
                        acc[lane], lane);
            }
        }
    };
}

/**
 * Scratchpad-tiled + 4x4 thread-coarsened variant: one work-group
 * computes a 64x16 block of C (16 workload units) staging A and B
 * tiles through scratchpad.
 */
kdp::KernelFn
tiledKernel(Geometry geo)
{
    return [geo](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        const auto total_units =
            static_cast<std::uint64_t>(args.scalarInt(3));
        if (g.unitBase() >= total_units)
            return;
        const auto &a = args.buf<float>(0);
        const auto &b = args.buf<float>(1);
        auto &c = args.buf<float>(2);

        // This group covers units [group*16, group*16+16): one 4x4
        // block of base tiles = rows [row0, row0+16) x cols
        // [col0, col0+64).
        const std::uint64_t block = g.group();
        const unsigned bx = static_cast<unsigned>(block % geo.blocksX);
        const unsigned by = static_cast<unsigned>(block / geo.blocksX);
        const unsigned col0 = bx * tileX * 4;
        const unsigned row0 = by * tileY * 4;
        constexpr unsigned rows = tileY * 4;  // 16
        constexpr unsigned cols = tileX * 4;  // 64
        constexpr unsigned kt = 16;           // k tile

        auto a_tile = g.allocLocal<float>(rows * kt);
        auto b_tile = g.allocLocal<float>(kt * cols);

        // Per-lane accumulators: lane owns column (col0 + lane) over
        // all 16 rows.
        std::array<std::array<float, rows>, cols> acc{};

        for (unsigned k0 = 0; k0 < geo.k; k0 += kt) {
            // Cooperative load of the A tile (rows x kt): 256 words
            // over 64 lanes.
            for (unsigned e = 0; e < rows * kt; e += cols) {
                for (std::uint32_t lane = 0; lane < cols; ++lane) {
                    const unsigned elem = e + lane;
                    if (elem >= rows * kt)
                        break;
                    const unsigned r = elem / kt;
                    const unsigned kk = elem % kt;
                    const float v = g.load(
                        a, std::uint64_t{row0 + r} * geo.k + k0 + kk,
                        lane);
                    a_tile.set(g, elem, v, lane);
                }
            }
            // Cooperative load of the B tile (kt x cols): each lane
            // loads its column for all kt rows.
            for (unsigned kk = 0; kk < kt; ++kk) {
                for (std::uint32_t lane = 0; lane < cols; ++lane) {
                    const float v = g.load(
                        b, std::uint64_t{k0 + kk} * geo.n + col0 + lane,
                        lane);
                    b_tile.set(g, kk * cols + lane, v, lane);
                }
            }
            g.barrier();
            // Compute from scratchpad.
            for (unsigned kk = 0; kk < kt; ++kk) {
                for (std::uint32_t lane = 0; lane < cols; ++lane) {
                    const float bv = b_tile.get(g, kk * cols + lane, lane);
                    for (unsigned r = 0; r < rows; ++r) {
                        const float av = a_tile.get(g, r * kt + kk, lane);
                        acc[lane][r] += av * bv;
                        g.flops(lane, 2);
                    }
                }
            }
            g.barrier();
        }
        for (unsigned r = 0; r < rows; ++r)
            for (std::uint32_t lane = 0; lane < cols; ++lane)
                g.store(c, std::uint64_t{row0 + r} * geo.n + col0 + lane,
                        acc[lane][r], lane);
    };
}

/** Common skeleton shared by the three factories. */
Workload
makeCommon(const char *name, unsigned m, unsigned n, unsigned k)
{
    Geometry geo(m, n, k);
    Workload w;
    w.name = name;
    w.signature = std::string("sgemm/") + name;
    w.units = geo.units();

    auto &a = w.addBuffer<float>(std::uint64_t{m} * k,
                                 kdp::MemSpace::Global, "A");
    auto &b = w.addBuffer<float>(std::uint64_t{k} * n,
                                 kdp::MemSpace::Global, "B");
    auto &c = w.addBuffer<float>(std::uint64_t{m} * n,
                                 kdp::MemSpace::Global, "C");

    auto ref = std::make_shared<std::vector<float>>();
    initData(a, b, *ref, m, n, k);

    w.args.add(a).add(b).add(c).add(
        static_cast<std::int64_t>(w.units));

    w.resetOutput = [&c] { c.fill(0.0f); };
    w.check = [&c, ref] {
        for (std::uint64_t i = 0; i < c.size(); ++i)
            if (!nearlyEqual(c.host()[i], (*ref)[i], 1e-3f, 1e-3f))
                return false;
        return true;
    };

    w.info.signature = w.signature;
    w.info.loops = {
        {"wi-x", compiler::BoundKind::Constant, true, false, tileX},
        {"wi-y", compiler::BoundKind::Constant, true, false, tileY},
        {"k", compiler::BoundKind::Param, false, false, k},
    };
    // A[row*k + kk]: invariant in x, strides k in y, 1 in kk.
    w.info.accesses = {
        {0, false, true, {0, static_cast<std::int64_t>(k), 1}, 4,
         std::uint64_t{tileX} * tileY * k},
        // B[kk*n + col+x]: strides 1 in x, 0 in y, n in kk.
        {1, false, true, {1, 0, static_cast<std::int64_t>(n)}, 4,
         std::uint64_t{tileX} * tileY * k},
        // C[row*n + col+x]: written once per element.
        {2, true, true, {1, static_cast<std::int64_t>(n), 0}, 4,
         std::uint64_t{tileX} * tileY},
    };
    w.info.outputArgs = {2};
    return w;
}

} // namespace

Workload
makeSgemmLcCpu(unsigned m, unsigned n, unsigned k)
{
    // Matrices sized past L2 so schedule-dependent strides hit the
    // memory hierarchy for real (the paper's sgemm schedule spread is
    // the pathological 117x case, §5.1).
    Workload w = makeCommon("lc-cpu", m, n, k);
    Geometry geo(m, n, k);
    for (const auto &sched : compiler::allSchedules(3)) {
        kdp::KernelVariant v;
        v.name = "sched-" + sched.name();
        v.fn = baseKernel(geo, sched);
        v.waFactor = 1;
        v.groupSize = tileX * tileY;
        v.sandboxIndex = {2};
        w.variants.push_back(std::move(v));
        w.schedules.push_back(sched);
    }
    return w;
}

Workload
makeSgemmVectorCpu(unsigned m, unsigned n, unsigned k)
{
    Workload w = makeCommon("vector-cpu", m, n, k);
    Geometry geo(m, n, k);
    // The Intel implicit vectorizer packs adjacent wi-x work-items;
    // serialize with x innermost so lanes stay aligned.
    compiler::Schedule sched{{1, 2, 0}};
    for (unsigned width : {1u, 4u, 8u}) {
        kdp::KernelVariant v;
        v.name = width == 1 ? "scalar"
                            : std::to_string(width) + "-way";
        v.fn = baseKernel(geo, sched);
        v.waFactor = 1;
        v.groupSize = tileX * tileY;
        v.traits.vectorWidth = width;
        v.sandboxIndex = {2};
        w.variants.push_back(std::move(v));
    }
    return w;
}

Workload
makeSgemmMixed(unsigned m, unsigned n, unsigned k)
{
    Workload w = makeCommon("mixed", m, n, k);
    Geometry geo(m, n, k);

    kdp::KernelVariant base;
    base.name = "base";
    base.fn = baseKernel(geo, compiler::Schedule{{1, 2, 0}});
    base.waFactor = 1;
    base.groupSize = tileX * tileY;
    base.sandboxIndex = {2};
    w.variants.push_back(std::move(base));

    kdp::KernelVariant tiled;
    tiled.name = "tiled16-coarse4";
    tiled.fn = tiledKernel(geo);
    tiled.waFactor = 16;
    tiled.groupSize = tileX * tileY;
    tiled.traits.scratchBytes = (16u * 16 + 16 * 64) * sizeof(float);
    tiled.traits.regsPerThread = 48;
    tiled.sandboxIndex = {2};
    w.variants.push_back(std::move(tiled));
    return w;
}

} // namespace workloads
} // namespace dysel
