/**
 * @file
 * sgemm (Parboil): C = A * B, single precision.
 *
 * Three experiment configurations:
 *  - LC scheduling (Fig. 8): the base kernel under all 6 permutations
 *    of its serialized loop nest [wi-x, wi-y, k];
 *  - vectorization (Fig. 1): scalar / 4-way / 8-way SIMD variants;
 *  - mixed optimizations (Fig. 10): base vs. scratchpad-tiled +
 *    thread-coarsened (work assignment factor 16).
 *
 * Geometry: one workload unit is one 16x4 tile of C (the base
 * variant's work-group).  Units are numbered so that each tiled
 * variant work-group covers a contiguous unit range.
 */
#pragma once

#include "compiler/schedule.hh"

#include "workload.hh"

namespace dysel {
namespace workloads {

/** Base LC-scheduling workload (CPU, Fig. 8). */
Workload makeSgemmLcCpu(unsigned m = 256, unsigned n = 256,
                        unsigned k = 256);

/** Vector-width workload (CPU, Fig. 1). */
Workload makeSgemmVectorCpu(unsigned m = 128, unsigned n = 128,
                            unsigned k = 128);

/** Mixed-optimization workload (CPU or GPU, Fig. 10). */
Workload makeSgemmMixed(unsigned m = 256, unsigned n = 256,
                        unsigned k = 256);

} // namespace workloads
} // namespace dysel
