/**
 * @file
 * spmv-csr (SHOC): y = A x on a CSR matrix.
 *
 * One workload unit is two matrix rows (the coverage of one
 * vector-kernel work-group, whose 2 x 32-lane warps each process one
 * row).  A scalar-kernel work-group (64 work-items, one row each)
 * covers 32 units.
 *
 * Experiment configurations:
 *  - Fig. 8:  scalar kernel under DFO / BFO work-item schedules (CPU);
 *  - Fig. 11a: scalar/vector x DFO/BFO (CPU, input dependent);
 *  - Fig. 11b: scalar vs. vector (GPU, input dependent);
 *  - Fig. 9:  four data-placement policies of the scalar kernel (GPU).
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

/** Which input matrix (paper §4.2). */
enum class SpmvInput {
    Random,   ///< uniformly random, ~1% density
    Diagonal, ///< one nonzero per row
};

/** Human-readable input name. */
const char *spmvInputName(SpmvInput input);

/** Fig. 8 configuration: scalar kernel, DFO vs. BFO schedules (CPU). */
Workload makeSpmvCsrCpuLc(SpmvInput input);

/** Fig. 11a configuration: scalar/vector x DFO/BFO (CPU). */
Workload makeSpmvCsrCpuInputDep(SpmvInput input);

/** Fig. 11b configuration: scalar vs. vector (GPU). */
Workload makeSpmvCsrGpuInputDep(SpmvInput input);

/** Fig. 9 configuration: four data-placement policies (GPU). */
Workload makeSpmvCsrGpuPlacement();

/**
 * Heterogeneous matrix (extension): the top half of the rows is
 * random (~40 nnz each, vector-kernel territory) and the bottom half
 * is diagonal (1 nnz each, scalar-kernel territory).  No pure variant
 * is good everywhere -- the workload that motivates the paper's
 * mixed-version future work (§4.1), implemented in dysel/mixed.hh.
 */
Workload makeSpmvCsrGpuHetero();

} // namespace workloads
} // namespace dysel
