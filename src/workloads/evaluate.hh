/**
 * @file
 * Measurement harness used by the tests and every bench binary.
 *
 * Defines the quantities the paper's figures report: per-variant pure
 * execution time (for the Oracle and Worst bars), DySel execution
 * time under a given mode/orchestration (including all profiling
 * costs, §4.1), and iterative-workload totals where profiling runs
 * only on the first iteration.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dysel/options.hh"
#include "dysel/report.hh"
#include "dysel/runtime.hh"

#include "devices.hh"
#include "workload.hh"

namespace dysel {
namespace workloads {

/** Result of running one pure variant over the whole workload. */
struct VariantRun
{
    std::string name;
    sim::TimeNs elapsed = 0; ///< all iterations
    bool ok = false;         ///< output matched the reference
};

/** Oracle/Worst summary over all variants. */
struct OracleResult
{
    std::vector<VariantRun> runs;
    std::size_t bestIndex = 0;
    std::size_t worstIndex = 0;

    sim::TimeNs best() const { return runs[bestIndex].elapsed; }
    sim::TimeNs worst() const { return runs[worstIndex].elapsed; }
};

/** DySel run summary. */
struct DyselRun
{
    runtime::LaunchReport firstIteration;
    sim::TimeNs elapsed = 0; ///< all iterations (profiling in first)
    bool ok = false;
};

/**
 * Run variant @p index alone over the whole workload (all
 * iterations) on a fresh device and verify the output.
 */
VariantRun runSingleVariant(const DeviceFactory &factory, Workload &w,
                            std::size_t index);

/** Run every variant; compute oracle and worst. */
OracleResult runOracle(const DeviceFactory &factory, Workload &w);

/**
 * Run the workload under DySel on a fresh device.  Profiling runs in
 * the first iteration only unless @p profile_every_iteration.
 */
DyselRun runDysel(const DeviceFactory &factory, Workload &w,
                  const runtime::LaunchOptions &opt,
                  bool profile_every_iteration = false);

/** As runDysel, with a caller-supplied runtime configuration. */
DyselRun runDyselConfigured(const DeviceFactory &factory, Workload &w,
                            const runtime::LaunchOptions &opt,
                            const runtime::RuntimeConfig &config,
                            bool profile_every_iteration = false);

/** Relative time helper: value / base. */
double relative(sim::TimeNs value, sim::TimeNs base);

} // namespace workloads
} // namespace dysel
