/**
 * @file
 * histogram: 256-bin histogram over a large value stream.
 *
 * Not one of the paper's measured benchmarks, but the canonical
 * output-binning pattern the paper's §2.3 lists as requiring
 * swap-based partial-productive profiling: work-groups update
 * overlapping output ranges through global atomics, so neither
 * fully-productive nor hybrid profiling would be correct.  Used by
 * the swap-mode tests and the profiling-mode ablation bench.
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

/** Atomic-global vs. scratchpad-privatized histogram variants. */
Workload makeHistogram();

} // namespace workloads
} // namespace dysel
