/**
 * @file
 * particle filter (Rodinia): likelihood evaluation over 32k
 * particles.
 *
 * Fig. 9 configuration: four data-placement policies for the small
 * read-only template-offset array (objxy) and the large video frame
 * (I) -- the original Rodinia placement (all global), two PORPLE
 * policies, and the rule-based heuristic's policy.
 */
#pragma once

#include "workload.hh"

namespace dysel {
namespace workloads {

Workload makeParticleFilterGpu();

} // namespace workloads
} // namespace dysel
