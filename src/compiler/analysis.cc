#include "analysis.hh"

#include "support/logging.hh"
#include "support/math_util.hh"

namespace dysel {
namespace compiler {

const char *
profilingModeName(ProfilingMode mode)
{
    switch (mode) {
      case ProfilingMode::Fully: return "fully-productive";
      case ProfilingMode::Hybrid: return "hybrid-partial";
      case ProfilingMode::Swap: return "swap-partial";
    }
    return "?";
}

SafePointPlan
safePointAnalysis(const std::vector<std::uint64_t> &wa_factors,
                  unsigned compute_units, std::uint64_t total_units,
                  double max_fraction)
{
    if (wa_factors.empty())
        support::panic("safePointAnalysis with no variants");
    if (compute_units == 0)
        support::panic("safePointAnalysis with zero compute units");

    SafePointPlan plan;
    plan.lcm = support::lcmAll(wa_factors);

    // Scale so the *slowest-refining* variant (largest factor, hence
    // fewest groups per LCM) still launches at least one group per
    // compute unit, fully utilizing the hardware (§3.4).
    std::uint64_t max_factor = 1;
    for (std::uint64_t f : wa_factors)
        max_factor = std::max(max_factor, f);
    const std::uint64_t min_groups_per_lcm = plan.lcm / max_factor;
    plan.scale = support::ceilDiv(compute_units, min_groups_per_lcm);
    plan.unitsPerVariant = plan.lcm * plan.scale;

    // Cap total profiling volume at max_fraction of the workload.
    const auto budget = static_cast<std::uint64_t>(
        max_fraction * static_cast<double>(total_units));
    while (plan.scale > 1
           && plan.unitsPerVariant * wa_factors.size() > budget) {
        --plan.scale;
        plan.unitsPerVariant = plan.lcm * plan.scale;
    }
    if (plan.unitsPerVariant * wa_factors.size() > budget) {
        // Even one LCM slice per variant does not fit: profiling is
        // not worthwhile for this workload size.
        plan.unitsPerVariant = 0;
        plan.groups.assign(wa_factors.size(), 0);
        return plan;
    }

    plan.groups.reserve(wa_factors.size());
    for (std::uint64_t f : wa_factors)
        plan.groups.push_back(plan.unitsPerVariant / f);
    return plan;
}

bool
uniformWorkloadAnalysis(const KernelInfo &info)
{
    return !info.hasIrregularLoops();
}

bool
sideEffectAnalysis(const KernelInfo &info)
{
    return info.usesGlobalAtomics;
}

ProfilingMode
recommendProfilingMode(const KernelInfo &info)
{
    if (sideEffectAnalysis(info))
        return ProfilingMode::Swap;
    if (!uniformWorkloadAnalysis(info))
        return ProfilingMode::Hybrid;
    return ProfilingMode::Fully;
}

} // namespace compiler
} // namespace dysel
