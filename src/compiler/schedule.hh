/**
 * @file
 * Loop-nest schedules for the kernel version generator.
 *
 * The locality-centric (LC) scheduling experiments select among all
 * permutations of the work-item loops and kernel loops of a
 * serialized OpenCL kernel (paper §4.2: 60 schedules for cutcp, 6 for
 * sgemm, ...).  A Schedule is such a permutation; schedule-generic
 * kernels take one as a parameter and iterate their loop nest in the
 * given order.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel_info.hh"

namespace dysel {
namespace compiler {

/**
 * One loop-nest order: a permutation of loop indices, outermost
 * first.  Index values refer to positions in the kernel's canonical
 * loop list (KernelInfo::loops).
 */
struct Schedule
{
    std::vector<unsigned> order;

    /** "L2.L0.L1"-style name used in variant labels. */
    std::string name() const;
};

/** All permutations of @p n loops, in lexicographic order. */
std::vector<Schedule> allSchedules(unsigned n);

/**
 * Depth-first order (DFO): the canonical order itself -- in-kernel
 * loops iterate innermost (the paper's DFO in §4.4 keeps the kernel
 * loop innermost for one work-item at a time).
 */
Schedule dfoSchedule(unsigned n);

/**
 * Breadth-first order (BFO): work-item loops innermost -- all
 * work-items advance through each kernel-loop iteration together.
 */
Schedule bfoSchedule(const KernelInfo &info);

} // namespace compiler
} // namespace dysel
