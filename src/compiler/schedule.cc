#include "schedule.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"

namespace dysel {
namespace compiler {

std::string
Schedule::name() const
{
    std::string s;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (i)
            s += ".";
        s += "L" + std::to_string(order[i]);
    }
    return s;
}

std::vector<Schedule>
allSchedules(unsigned n)
{
    if (n == 0 || n > 6)
        support::panic("allSchedules: unreasonable loop count %u", n);
    std::vector<unsigned> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    std::vector<Schedule> result;
    do {
        result.push_back(Schedule{perm});
    } while (std::next_permutation(perm.begin(), perm.end()));
    return result;
}

Schedule
dfoSchedule(unsigned n)
{
    Schedule s;
    s.order.resize(n);
    std::iota(s.order.begin(), s.order.end(), 0u);
    return s;
}

Schedule
bfoSchedule(const KernelInfo &info)
{
    // Kernel loops outermost, work-item loops innermost, preserving
    // relative order within each class.
    Schedule s;
    for (unsigned i = 0; i < info.loops.size(); ++i)
        if (!info.loops[i].workItemLoop)
            s.order.push_back(i);
    for (unsigned i = 0; i < info.loops.size(); ++i)
        if (info.loops[i].workItemLoop)
            s.order.push_back(i);
    return s;
}

} // namespace compiler
} // namespace dysel
