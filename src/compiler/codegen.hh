/**
 * @file
 * The kernel version generator (the compiler box of the paper's
 * Fig. 4): an executable kernel IR plus a schedule-driven serializer.
 *
 * Workloads elsewhere in this repository hand-write their variants;
 * this component closes the loop for the compiler-generated case: a
 * kernel body is described once as a small dataflow program over an
 * affine loop nest, and `generateVariants` emits one runnable
 * kdp::KernelVariant per loop-nest schedule -- exactly the "several
 * likely candidate variants" the paper expects an optimizing compiler
 * to deposit into the kernel pool.
 *
 * The generated code performs the register-reuse a real compiler
 * would: a Load whose address did not change since its previous
 * execution is served from the virtual register and emits no memory
 * traffic, so schedule choice changes the generated code's memory
 * behaviour the same way loop-invariant code motion does.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kdp/kernel.hh"

#include "kernel_info.hh"
#include "schedule.hh"

namespace dysel {
namespace compiler {

/**
 * An affine access of the executable IR:
 * index = offset + unitCoeff * unitBase + sum(coeffs[l] * i_l).
 */
struct ExecAccess
{
    std::size_t argIndex = 0;
    std::int64_t offset = 0;
    std::int64_t unitCoeff = 0;
    std::vector<std::int64_t> coeffs; ///< one per loop, nest order
};

/**
 * One operation of the kernel body.  Operands are virtual registers,
 * private to each work-item (lane).
 */
struct ExecOp
{
    enum class Kind {
        Load,  ///< dst = mem[access]
        Store, ///< mem[access] = srcA
        Const, ///< dst = imm
        Add,   ///< dst = srcA + srcB
        Sub,   ///< dst = srcA - srcB
        Mul,   ///< dst = srcA * srcB
        Fma,   ///< dst = dst + srcA * srcB
    };

    Kind kind;
    unsigned dst = 0;
    unsigned srcA = 0;
    unsigned srcB = 0;
    double imm = 0.0;
    ExecAccess access; ///< Load/Store only
};

/**
 * An executable kernel: a loop nest (work-item loops + in-kernel
 * loops, constant bounds) around a straight-line body, plus a
 * per-lane epilogue that runs after the nest (accumulator
 * write-back).
 */
struct ExecKernel
{
    std::string name;

    /** The canonical loop nest; tripHint is the (constant) bound. */
    std::vector<LoopInfo> loops;

    /**
     * Which loops form the work-item (lane) id:
     * lane = sum(i_l * laneStride[k]) over laneLoops[k].
     */
    std::vector<unsigned> laneLoops;
    std::vector<std::uint32_t> laneStrides;

    /** Virtual registers per lane (accumulators live across points). */
    unsigned numRegs = 1;

    ExecOp body[16];       ///< body program (bodyLen used entries)
    unsigned bodyLen = 0;
    ExecOp epilogue[8];    ///< per-lane epilogue (epilogueLen used)
    unsigned epilogueLen = 0;

    /** Append an op to the body. */
    ExecKernel &add(const ExecOp &op);

    /** Append an op to the epilogue. */
    ExecKernel &addEpilogue(const ExecOp &op);

    /** Work-items per group (product of lane loop bounds). */
    std::uint32_t groupSize() const;

    /** Iteration points per group (product of all loop bounds). */
    std::uint64_t pointsPerGroup() const;
};

/**
 * Serialize @p kernel under @p sched into a runnable per-work-group
 * function.  Loads memoize their last address per op (register
 * reuse), so the schedule controls the emitted memory traffic.
 */
kdp::KernelFn generateKernel(const ExecKernel &kernel,
                             const Schedule &sched);

/**
 * The kernel version generator: one variant per schedule (all
 * loop-nest permutations by default).
 *
 * @param kernel     the executable kernel description
 * @param sandbox    output argument positions (for partial modes)
 * @param schedules  candidate schedules; empty = all permutations
 */
std::vector<kdp::KernelVariant>
generateVariants(const ExecKernel &kernel,
                 const std::vector<std::size_t> &sandbox,
                 std::vector<Schedule> schedules = {});

/** Derive analysis metadata (KernelInfo) from the executable IR. */
KernelInfo deriveKernelInfo(const ExecKernel &kernel);

} // namespace compiler
} // namespace dysel
