/**
 * @file
 * The three compiler analyses DySel relies on (paper §3.4).
 *
 *  - Safe point analysis: normalize the relative work assignment of
 *    the variants to their least common multiple so each variant
 *    profiles the same number of workload units, then scale so every
 *    variant launches at least one work-group per compute unit.
 *  - Uniform workload analysis: detect loops whose bounds vary across
 *    work-groups (or early exits); such kernels need hybrid-based
 *    partial-productive profiling for a fair comparison.
 *  - Side effect analysis: detect global atomics; such kernels may
 *    have overlapping output ranges and must use swap-based
 *    profiling.  Conservative by design; the runtime lets programmers
 *    override the decision.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "kernel_info.hh"

namespace dysel {
namespace compiler {

/** Profiling modes (paper §2.2). */
enum class ProfilingMode {
    Fully,  ///< fully-productive
    Hybrid, ///< hybrid-based partial-productive (sandboxes)
    Swap,   ///< swap-based partial-productive (private outputs)
};

/** Human-readable profiling mode name. */
const char *profilingModeName(ProfilingMode mode);

/** Result of safe point analysis. */
struct SafePointPlan
{
    /** LCM of the variants' work assignment factors. */
    std::uint64_t lcm = 1;

    /** Scale constant applied on top of the LCM (>= 1). */
    std::uint64_t scale = 1;

    /** Workload units each variant profiles (= lcm * scale). */
    std::uint64_t unitsPerVariant = 1;

    /** Work-groups each variant launches during profiling. */
    std::vector<std::uint64_t> groups;
};

/**
 * Run safe point analysis.
 *
 * @param wa_factors    work assignment factor of each variant
 * @param compute_units cores / SMs of the target device
 * @param total_units   workload size, caps the profiling volume
 * @param max_fraction  cap profiling at this fraction of the workload
 * @return the profiling plan (unitsPerVariant == 0 when even one
 *         LCM-sized slice per variant does not fit under the cap)
 */
SafePointPlan safePointAnalysis(const std::vector<std::uint64_t> &wa_factors,
                                unsigned compute_units,
                                std::uint64_t total_units,
                                double max_fraction = 0.5);

/**
 * Uniform workload analysis.
 * @return true when all loop bounds are uniform across work-groups
 *         (profiling different slices compares fairly).
 */
bool uniformWorkloadAnalysis(const KernelInfo &info);

/**
 * Side effect analysis.
 * @return true when work-groups may write overlapping / variable
 *         output ranges (currently: global atomics present).
 */
bool sideEffectAnalysis(const KernelInfo &info);

/**
 * Combine the analyses into a recommended profiling mode, as the
 * compiler would deposit into the binary.
 */
ProfilingMode recommendProfilingMode(const KernelInfo &info);

} // namespace compiler
} // namespace dysel
