#include "codegen.hh"

#include <array>

#include "support/logging.hh"

namespace dysel {
namespace compiler {

ExecKernel &
ExecKernel::add(const ExecOp &op)
{
    if (bodyLen >= 16)
        support::panic("ExecKernel body overflow");
    body[bodyLen++] = op;
    return *this;
}

ExecKernel &
ExecKernel::addEpilogue(const ExecOp &op)
{
    if (epilogueLen >= 8)
        support::panic("ExecKernel epilogue overflow");
    epilogue[epilogueLen++] = op;
    return *this;
}

std::uint32_t
ExecKernel::groupSize() const
{
    std::uint32_t size = 1;
    for (unsigned l : laneLoops)
        size *= static_cast<std::uint32_t>(loops[l].tripHint);
    return size;
}

std::uint64_t
ExecKernel::pointsPerGroup() const
{
    std::uint64_t points = 1;
    for (const auto &loop : loops)
        points *= loop.tripHint;
    return points;
}

namespace {

/** Interpreter state for one work-group execution. */
struct ExecState
{
    const ExecKernel &kernel;
    kdp::GroupCtx &g;
    const kdp::KernelArgs &args;
    std::vector<double> regs;          ///< numRegs per lane
    std::vector<std::uint64_t> lastAddr; ///< memo per body op
    std::vector<double> lastValue;       ///< memoized loaded value
    std::vector<std::uint64_t> idx;    ///< current loop indices

    ExecState(const ExecKernel &k, kdp::GroupCtx &g_,
              const kdp::KernelArgs &a)
        : kernel(k), g(g_), args(a),
          regs(std::uint64_t{k.numRegs} * k.groupSize(), 0.0),
          lastAddr(k.bodyLen, ~std::uint64_t{0}),
          lastValue(k.bodyLen, 0.0),
          idx(k.loops.size(), 0)
    {
    }

    std::uint32_t
    lane() const
    {
        std::uint32_t l = 0;
        for (std::size_t k = 0; k < kernel.laneLoops.size(); ++k)
            l += static_cast<std::uint32_t>(idx[kernel.laneLoops[k]])
                 * kernel.laneStrides[k];
        return l;
    }

    std::uint64_t
    indexOf(const ExecAccess &acc) const
    {
        std::int64_t index =
            acc.offset
            + acc.unitCoeff * static_cast<std::int64_t>(g.unitBase());
        for (std::size_t l = 0;
             l < acc.coeffs.size() && l < idx.size(); ++l)
            index += acc.coeffs[l] * static_cast<std::int64_t>(idx[l]);
        if (index < 0)
            support::panic("ExecKernel access index underflow");
        return static_cast<std::uint64_t>(index);
    }

    double &
    reg(std::uint32_t lane_id, unsigned r)
    {
        return regs[std::uint64_t{lane_id} * kernel.numRegs + r];
    }

    /** Execute one op; @p memo_slot >= 0 enables load memoization. */
    void
    exec(const ExecOp &op, std::uint32_t lane_id, int memo_slot)
    {
        switch (op.kind) {
          case ExecOp::Kind::Load: {
            auto &buf = args.buf<float>(op.access.argIndex);
            const std::uint64_t index = indexOf(op.access);
            const std::uint64_t addr = buf.addrOf(index);
            if (memo_slot < 0
                || lastAddr[static_cast<unsigned>(memo_slot)] != addr) {
                const double v = g.load(buf, index, lane_id);
                if (memo_slot >= 0) {
                    lastAddr[static_cast<unsigned>(memo_slot)] = addr;
                    lastValue[static_cast<unsigned>(memo_slot)] = v;
                }
                reg(lane_id, op.dst) = v;
            } else {
                // Register reuse: the hoisted value is handed to this
                // lane without touching memory.
                reg(lane_id, op.dst) =
                    lastValue[static_cast<unsigned>(memo_slot)];
            }
            break;
          }
          case ExecOp::Kind::Store: {
            auto &buf = args.buf<float>(op.access.argIndex);
            g.store(buf, indexOf(op.access),
                    static_cast<float>(reg(lane_id, op.srcA)), lane_id);
            break;
          }
          case ExecOp::Kind::Const:
            reg(lane_id, op.dst) = op.imm;
            break;
          case ExecOp::Kind::Add:
            reg(lane_id, op.dst) =
                reg(lane_id, op.srcA) + reg(lane_id, op.srcB);
            g.flops(lane_id, 1);
            break;
          case ExecOp::Kind::Sub:
            reg(lane_id, op.dst) =
                reg(lane_id, op.srcA) - reg(lane_id, op.srcB);
            g.flops(lane_id, 1);
            break;
          case ExecOp::Kind::Mul:
            reg(lane_id, op.dst) =
                reg(lane_id, op.srcA) * reg(lane_id, op.srcB);
            g.flops(lane_id, 1);
            break;
          case ExecOp::Kind::Fma:
            reg(lane_id, op.dst) +=
                reg(lane_id, op.srcA) * reg(lane_id, op.srcB);
            g.flops(lane_id, 2);
            break;
        }
    }
};

} // namespace

kdp::KernelFn
generateKernel(const ExecKernel &kernel, const Schedule &sched)
{
    if (sched.order.size() != kernel.loops.size())
        support::panic("schedule order does not match loop count");
    if (kernel.laneLoops.size() != kernel.laneStrides.size())
        support::panic("laneLoops/laneStrides size mismatch");

    return [kernel, sched](kdp::GroupCtx &g,
                           const kdp::KernelArgs &args) {
        ExecState st(kernel, g, args);

        // Iterate the nest in schedule order (odometer walk).
        const unsigned depth =
            static_cast<unsigned>(kernel.loops.size());
        std::vector<std::uint64_t> counters(depth, 0);
        bool done = depth == 0;
        while (!done) {
            for (unsigned d = 0; d < depth; ++d)
                st.idx[sched.order[d]] = counters[d];
            const std::uint32_t lane_id = st.lane();
            for (unsigned o = 0; o < kernel.bodyLen; ++o)
                st.exec(kernel.body[o], lane_id, static_cast<int>(o));

            // Advance the odometer (innermost spins fastest).
            unsigned d = depth;
            while (d-- > 0) {
                if (++counters[d]
                    < kernel.loops[sched.order[d]].tripHint)
                    break;
                counters[d] = 0;
                if (d == 0)
                    done = true;
            }
        }

        // Per-lane epilogue (accumulator write-back).
        const std::uint32_t group_size = kernel.groupSize();
        for (std::uint32_t lane_id = 0; lane_id < group_size;
             ++lane_id) {
            // Reconstruct per-lane loop indices for the epilogue's
            // affine accesses: lane loops from the lane id, others 0.
            std::fill(st.idx.begin(), st.idx.end(), 0);
            std::uint32_t rest = lane_id;
            // laneStrides are ordered outer-to-inner by construction.
            for (std::size_t k = 0; k < kernel.laneLoops.size(); ++k) {
                st.idx[kernel.laneLoops[k]] =
                    rest / kernel.laneStrides[k];
                rest %= kernel.laneStrides[k];
            }
            for (unsigned o = 0; o < kernel.epilogueLen; ++o)
                st.exec(kernel.epilogue[o], lane_id, -1);
        }
    };
}

std::vector<kdp::KernelVariant>
generateVariants(const ExecKernel &kernel,
                 const std::vector<std::size_t> &sandbox,
                 std::vector<Schedule> schedules)
{
    if (schedules.empty())
        schedules =
            allSchedules(static_cast<unsigned>(kernel.loops.size()));

    std::vector<kdp::KernelVariant> variants;
    variants.reserve(schedules.size());
    for (const auto &sched : schedules) {
        kdp::KernelVariant v;
        v.name = kernel.name + "-" + sched.name();
        v.fn = generateKernel(kernel, sched);
        v.waFactor = 1;
        v.groupSize = kernel.groupSize();
        v.sandboxIndex = sandbox;
        variants.push_back(std::move(v));
    }
    return variants;
}

KernelInfo
deriveKernelInfo(const ExecKernel &kernel)
{
    KernelInfo info;
    info.signature = kernel.name;
    info.loops = kernel.loops;
    for (unsigned o = 0; o < kernel.bodyLen; ++o) {
        const ExecOp &op = kernel.body[o];
        if (op.kind != ExecOp::Kind::Load
            && op.kind != ExecOp::Kind::Store)
            continue;
        AccessPattern pattern;
        pattern.argIndex = op.access.argIndex;
        pattern.write = op.kind == ExecOp::Kind::Store;
        pattern.coeffs = op.access.coeffs;
        pattern.countHint = kernel.pointsPerGroup();
        if (pattern.write)
            info.outputArgs.push_back(op.access.argIndex);
        info.accesses.push_back(std::move(pattern));
    }
    for (unsigned o = 0; o < kernel.epilogueLen; ++o)
        if (kernel.epilogue[o].kind == ExecOp::Kind::Store)
            info.outputArgs.push_back(kernel.epilogue[o].access.argIndex);
    return info;
}

} // namespace compiler
} // namespace dysel
