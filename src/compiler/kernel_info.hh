/**
 * @file
 * Structural kernel metadata ("kernel IR").
 *
 * This is the information a compiler front-end extracts from OpenCL
 * kernel source and hands to the DySel analyses (§3.4): the loop nest
 * with the nature of every loop bound, the memory access patterns as
 * affine expressions over work-item ids and loop variables, and the
 * presence of global atomics.  Workload modules author this metadata
 * alongside their kernels, playing the role of the front-end.
 */
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dysel {
namespace compiler {

/** What a loop's trip count depends on. */
enum class BoundKind {
    Constant,      ///< compile-time constant
    Param,         ///< scalar kernel parameter, uniform across groups
    DataDependent, ///< loaded from memory (e.g. CSR row pointers)
};

/** One loop of the (serialized) kernel loop nest. */
struct LoopInfo
{
    std::string name;       ///< e.g. "work-item-x" or "k"
    BoundKind bound = BoundKind::Constant;
    bool workItemLoop = false; ///< iterates work-items (vs in-kernel)
    bool hasEarlyExit = false; ///< break / early kernel termination
    /** Typical trip count, for heuristic weighting. */
    std::uint64_t tripHint = 1;
};

/**
 * A memory access whose index is an affine function of the loop
 * variables: index = offset + sum(coeff[l] * loopVar[l]).
 * Data-dependent (indirect) accesses set `affine = false`; an access
 * that is affine in some loops but data dependent in another uses the
 * unknownStride sentinel for that loop's coefficient (e.g. CSR's
 * val[rowPtr[wi] + k] is stride-1 in k but unknown in wi).
 */
struct AccessPattern
{
    /** Per-loop coefficient value meaning "data dependent". */
    static constexpr std::int64_t unknownStride =
        std::numeric_limits<std::int64_t>::min();

    std::size_t argIndex = 0; ///< which kernel argument is accessed
    bool write = false;
    bool affine = true;
    std::vector<std::int64_t> coeffs; ///< one per loop, in nest order
    std::uint32_t elemBytes = 4;
    /** Dynamic accesses per group, for heuristic weighting. */
    std::uint64_t countHint = 1;
};

/** Metadata for one kernel signature (shared by its variants). */
struct KernelInfo
{
    std::string signature;
    std::vector<LoopInfo> loops;
    std::vector<AccessPattern> accesses;
    bool usesGlobalAtomics = false;
    /** Argument positions the kernel writes. */
    std::vector<std::size_t> outputArgs;

    /** True when some loop bound is data dependent or exits early. */
    bool
    hasIrregularLoops() const
    {
        for (const auto &l : loops)
            if (l.bound == BoundKind::DataDependent || l.hasEarlyExit)
                return true;
        return false;
    }
};

} // namespace compiler
} // namespace dysel
