/**
 * @file
 * The locality-centric (LC) scheduling heuristic of Kim et al. [17],
 * as reimplemented for the baseline comparison of the paper's Figs. 8
 * and 11a.
 *
 * LC serializes OpenCL work-item execution and picks the loop-nest
 * order that minimizes overall memory access strides.  It is a purely
 * static heuristic: data-dependent strides and indirect (gather)
 * accesses get fixed pessimistic penalties regardless of the actual
 * input, which is exactly the blind spot DySel exploits on the
 * diagonal spmv matrix (§4.2, §4.4).
 */
#pragma once

#include <vector>

#include "compiler/kernel_info.hh"
#include "compiler/schedule.hh"

namespace dysel {
namespace baselines {

/** Tunable penalties of the stride heuristic. */
struct LcParams
{
    double invariant = 0.0;  ///< loop-invariant access
    double withinLine = 1.0; ///< stride within one cache line
    double strided = 8.0;    ///< stride crossing cache lines
    double unknown = 6.0;    ///< data-dependent stride
    double gather = 4.0;     ///< fully indirect access (schedule blind)
    unsigned lineBytes = 64;
    /** Weight of the second-innermost loop's strides. */
    double secondLevel = 0.125;
};

/** Locality cost of @p sched for the kernel described by @p info. */
double lcScheduleCost(const compiler::KernelInfo &info,
                      const compiler::Schedule &sched,
                      const LcParams &params = LcParams());

/**
 * Pick the schedule with the lowest locality cost.
 * @return index into @p candidates (ties break to the earliest).
 */
std::size_t lcSelect(const compiler::KernelInfo &info,
                     const std::vector<compiler::Schedule> &candidates,
                     const LcParams &params = LcParams());

} // namespace baselines
} // namespace dysel
