/**
 * @file
 * The implicit-vectorizer width heuristic of the Intel OpenCL stack
 * [13, 21], as reimplemented for the paper's Fig. 1 motivation
 * experiment.
 *
 * The figure's observation is that the production heuristic makes
 * counter-intuitive choices: it picks 4-wide SIMD for the regular,
 * divergence-free sgemm (where 8-wide wins) and 8-wide for the
 * control-divergent spmv-jds (where masking overhead makes 4-wide
 * faster).  We model the heuristic's actual observed behaviour: a
 * conservative width for regular kernels (assuming memory-bandwidth
 * saturation) and a wide vector for kernels with data-dependent inner
 * loops (hoping to amortize their scalar overhead).
 */
#pragma once

#include "compiler/kernel_info.hh"

namespace dysel {
namespace baselines {

/** SIMD width the modeled Intel heuristic would choose. */
unsigned intelVectorWidth(const compiler::KernelInfo &info);

} // namespace baselines
} // namespace dysel
