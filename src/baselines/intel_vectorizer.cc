#include "intel_vectorizer.hh"

namespace dysel {
namespace baselines {

unsigned
intelVectorWidth(const compiler::KernelInfo &info)
{
    // Kernels with data-dependent loops look scalar-overhead-bound to
    // the heuristic, so it goes wide; regular kernels look
    // memory-bound, so it stays at the "safe" width.  Both choices
    // are suboptimal on the actual hardware (paper Fig. 1).
    return info.hasIrregularLoops() ? 8 : 4;
}

} // namespace baselines
} // namespace dysel
