#include "lc_scheduler.hh"

#include <cmath>

#include "support/logging.hh"

namespace dysel {
namespace baselines {

namespace {

double
stridePenalty(const compiler::AccessPattern &acc, unsigned loop,
              const LcParams &p)
{
    if (!acc.affine)
        return p.gather;
    if (loop >= acc.coeffs.size())
        return p.invariant;
    const std::int64_t coeff = acc.coeffs[loop];
    if (coeff == compiler::AccessPattern::unknownStride)
        return p.unknown;
    if (coeff == 0)
        return p.invariant;
    const auto stride =
        static_cast<std::uint64_t>(std::llabs(coeff)) * acc.elemBytes;
    return stride <= p.lineBytes ? p.withinLine : p.strided;
}

} // namespace

double
lcScheduleCost(const compiler::KernelInfo &info,
               const compiler::Schedule &sched, const LcParams &params)
{
    if (sched.order.size() != info.loops.size())
        support::panic("schedule order size %zu != loop count %zu",
                       sched.order.size(), info.loops.size());
    const unsigned innermost = sched.order.back();
    const unsigned second = sched.order.size() > 1
        ? sched.order[sched.order.size() - 2]
        : innermost;

    double cost = 0.0;
    for (const auto &acc : info.accesses) {
        const double weight =
            std::log2(2.0 + static_cast<double>(acc.countHint));
        cost += weight * stridePenalty(acc, innermost, params);
        cost += weight * params.secondLevel
                * stridePenalty(acc, second, params);
    }
    return cost;
}

std::size_t
lcSelect(const compiler::KernelInfo &info,
         const std::vector<compiler::Schedule> &candidates,
         const LcParams &params)
{
    if (candidates.empty())
        support::panic("lcSelect with no candidate schedules");
    std::size_t best = 0;
    double best_cost = lcScheduleCost(info, candidates[0], params);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double cost = lcScheduleCost(info, candidates[i], params);
        if (cost < best_cost) {
            best_cost = cost;
            best = i;
        }
    }
    return best;
}

} // namespace baselines
} // namespace dysel
