#include "mixed.hh"

#include <limits>
#include <memory>

#include "compiler/analysis.hh"
#include "support/logging.hh"
#include "support/math_util.hh"

namespace dysel {
namespace runtime {

bool
MixedReport::heterogeneous() const
{
    for (std::size_t s = 1; s < segmentSelection.size(); ++s)
        if (segmentSelection[s] != segmentSelection[0])
            return true;
    return false;
}

support::Status
tryLaunchKernelMixed(Runtime &rt, const std::string &signature,
                     std::uint64_t total_units,
                     const kdp::KernelArgs &args, unsigned segments,
                     MixedReport &out)
{
    using support::ceilDiv;

    const auto *variantsp = rt.findVariants(signature);
    if (!variantsp)
        return support::Status::notFound(
            "launchKernelMixed: unknown kernel signature '" + signature
            + "'");
    const auto &variants = *variantsp;
    const auto num_variants = variants.size();
    if (num_variants == 0)
        return support::Status::failedPrecondition(
            "launchKernelMixed(" + signature
            + "): no variants registered");
    if (segments == 0)
        segments = 1;

    sim::Device &dev = rt.device();
    const bool gpu = dev.kind() == sim::DeviceKind::Gpu;
    unsigned fill = dev.computeUnits() * (gpu ? 4 : 1);

    std::vector<std::uint64_t> wafs;
    wafs.reserve(num_variants);
    for (const auto &v : variants)
        wafs.push_back(v.waFactor);
    const std::uint64_t lcm = support::lcmAll(wafs);

    // Shrink the segment count until each segment can afford one
    // safe-point slice per variant under the 50% cap.
    compiler::SafePointPlan plan;
    std::uint64_t seg_units = 0;
    while (true) {
        seg_units = total_units / segments;
        seg_units -= seg_units % lcm;
        if (seg_units > 0) {
            plan = compiler::safePointAnalysis(wafs, fill, seg_units);
            if (plan.unitsPerVariant > 0)
                break;
        }
        if (segments == 1)
            return support::Status::failedPrecondition(
                "launchKernelMixed(" + signature
                + "): workload too small to profile even one segment");
        segments /= 2;
    }
    const std::uint64_t slice = plan.unitsPerVariant;

    MixedReport &report = out;
    report = MixedReport();
    report.signature = signature;
    report.totalUnits = total_units;
    report.unitsPerSegment = seg_units;
    report.profiledUnits = slice * num_variants * segments;
    report.segmentSelection.assign(segments, 0);
    report.segmentMetrics.assign(
        segments, std::vector<sim::TimeNs>(
                      num_variants,
                      std::numeric_limits<sim::TimeNs>::max()));
    report.startTime = dev.now();

    struct SegState
    {
        unsigned outstanding = 0;
        std::uint64_t start = 0;
        std::uint64_t end = 0;
    };
    auto states = std::make_shared<std::vector<SegState>>(segments);

    for (unsigned s = 0; s < segments; ++s) {
        SegState &seg = (*states)[s];
        seg.start = std::uint64_t{s} * seg_units;
        seg.end = s + 1 == segments ? total_units
                                    : seg.start + seg_units;
        seg.outstanding = static_cast<unsigned>(num_variants);

        for (std::size_t i = 0; i < num_variants; ++i) {
            const kdp::KernelVariant &variant = variants[i];
            sim::Launch launch;
            launch.variant = &variant;
            launch.args = args;
            launch.firstGroup =
                (seg.start + i * slice) / variant.waFactor;
            launch.numGroups = plan.groups[i];
            launch.priority = 1;
            launch.stream =
                1 + static_cast<int>(s * num_variants + i);
            launch.exclusive = gpu;
            launch.onComplete = [&dev, &args, states, &report, &variants,
                                 s, i, slice, num_variants,
                                 gpu](const sim::LaunchStats &stats) {
                report.segmentMetrics[s][i] =
                    gpu ? stats.span() : stats.busyTime;
                SegState &seg = (*states)[s];
                if (--seg.outstanding > 0)
                    return;
                // Segment fully profiled: pick its winner and run the
                // rest of the segment with it.
                int best = 0;
                for (std::size_t k = 1; k < num_variants; ++k)
                    if (report.segmentMetrics[s][k]
                        < report.segmentMetrics[s][best])
                        best = static_cast<int>(k);
                report.segmentSelection[s] = best;
                const kdp::KernelVariant &winner = variants[best];
                const std::uint64_t first =
                    seg.start + num_variants * slice;
                if (first >= seg.end)
                    return;
                if (first % winner.waFactor != 0)
                    support::panic("mixed segment start %llu not "
                                   "aligned to wa factor %llu",
                                   (unsigned long long)first,
                                   (unsigned long long)winner.waFactor);
                sim::Launch rest;
                rest.variant = &winner;
                rest.args = args;
                rest.firstGroup = first / winner.waFactor;
                rest.numGroups =
                    support::ceilDiv(seg.end - first, winner.waFactor);
                rest.priority = 0;
                // Per-segment bulk streams so segments overlap on the
                // device once their profiling is done.
                rest.stream = 100000 + static_cast<int>(s);
                dev.submit(std::move(rest));
            };
            dev.submit(std::move(launch));
        }
    }

    dev.run();
    report.endTime = dev.now();
    return support::Status();
}

MixedReport
launchKernelMixed(Runtime &rt, const std::string &signature,
                  std::uint64_t total_units, const kdp::KernelArgs &args,
                  unsigned segments)
{
    MixedReport report;
    tryLaunchKernelMixed(rt, signature, total_units, args, segments,
                         report)
        .throwIfError();
    return report;
}

support::Status
tryLaunchKernelMixedCached(Runtime &rt, const std::string &signature,
                           std::uint64_t total_units,
                           const kdp::KernelArgs &args,
                           const MixedReport &selection)
{
    const auto *variantsp = rt.findVariants(signature);
    if (!variantsp)
        return support::Status::notFound(
            "launchKernelMixedCached: unknown kernel signature '"
            + signature + "'");
    const auto &variants = *variantsp;
    if (selection.signature != signature
        || selection.totalUnits != total_units)
        return support::Status::invalidArgument(
            "launchKernelMixedCached(" + signature
            + "): selection does not match this workload");
    for (const int v : selection.segmentSelection)
        if (v < 0 || v >= static_cast<int>(variants.size()))
            return support::Status::invalidArgument(
                "launchKernelMixedCached(" + signature
                + "): selected variant " + std::to_string(v)
                + " outside the registered pool");
    sim::Device &dev = rt.device();

    const auto segments = selection.segmentSelection.size();
    for (std::size_t s = 0; s < segments; ++s) {
        const std::uint64_t start = s * selection.unitsPerSegment;
        const std::uint64_t end = s + 1 == segments
            ? total_units
            : start + selection.unitsPerSegment;
        const kdp::KernelVariant &winner =
            variants[static_cast<std::size_t>(
                selection.segmentSelection[s])];
        if (start % winner.waFactor != 0)
            support::panic("cached mixed segment misaligned");
        sim::Launch launch;
        launch.variant = &winner;
        launch.args = args;
        launch.firstGroup = start / winner.waFactor;
        launch.numGroups =
            support::ceilDiv(end - start, winner.waFactor);
        launch.priority = 0;
        launch.stream = 100000 + static_cast<int>(s);
        dev.submit(std::move(launch));
    }
    dev.run();
    return support::Status();
}

void
launchKernelMixedCached(Runtime &rt, const std::string &signature,
                        std::uint64_t total_units,
                        const kdp::KernelArgs &args,
                        const MixedReport &selection)
{
    tryLaunchKernelMixedCached(rt, signature, total_units, args,
                               selection)
        .throwIfError();
}

} // namespace runtime
} // namespace dysel
