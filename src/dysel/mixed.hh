/**
 * @file
 * Mixed-version execution -- the paper's stated future work (§4.1):
 *
 *   "Note a mixed version that applies different pure versions on
 *    different partitions of computation could potentially outperform
 *    the 'oracle'. [...] For the mixed version, we consider it as the
 *    future work."
 *
 * This extension partitions the workload into segments and
 * micro-profiles the kernel pool *per segment*, so workloads whose
 * best variant changes across the data (e.g. a sparse matrix with a
 * dense region and a near-diagonal region) run each region with its
 * own winner.  Profiling stays productive: each variant's per-segment
 * slice contributes to the final output (fully-productive layout
 * within the segment).
 *
 * Limitations (deliberate, matching the base runtime's assumptions):
 * segments must be large enough for one safe-point slice per variant,
 * the mode is fully-productive (regular kernels -- per-segment
 * adaptation of irregular kernels would need per-segment sandboxes),
 * and orchestration is synchronous per segment (segments themselves
 * overlap freely on the device).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime.hh"

namespace dysel {
namespace runtime {

/** Result of one mixed-version launch. */
struct MixedReport
{
    std::string signature;

    /** Winning variant index per segment. */
    std::vector<int> segmentSelection;

    /** Per-segment profiling metrics: [segment][variant]. */
    std::vector<std::vector<sim::TimeNs>> segmentMetrics;

    sim::TimeNs startTime = 0;
    sim::TimeNs endTime = 0;
    std::uint64_t totalUnits = 0;
    std::uint64_t unitsPerSegment = 0;
    std::uint64_t profiledUnits = 0;

    /** True when at least two segments picked different variants. */
    bool heterogeneous() const;

    /** End-to-end virtual time of the call. */
    sim::TimeNs elapsed() const { return endTime - startTime; }
};

/**
 * Launch @p signature over @p total_units with per-segment variant
 * selection, the fallible entry point.
 *
 * @param rt         the runtime holding the kernel pool
 * @param signature  kernel to launch
 * @param total_units workload size
 * @param args       kernel arguments
 * @param segments   number of equal partitions (>= 1); reduced
 *                   automatically if segments are too small to
 *                   profile
 * @param report     filled with the per-segment selection on success
 *
 * Failure codes:
 *   NotFound            -- unknown signature
 *   FailedPrecondition  -- empty pool, or the workload is too small
 *                          to profile even one segment
 */
support::Status tryLaunchKernelMixed(Runtime &rt,
                                     const std::string &signature,
                                     std::uint64_t total_units,
                                     const kdp::KernelArgs &args,
                                     unsigned segments,
                                     MixedReport &report);

/**
 * Throwing wrapper of tryLaunchKernelMixed: returns the report on
 * success, throws std::out_of_range for an unknown signature and
 * std::runtime_error otherwise.
 */
MixedReport launchKernelMixed(Runtime &rt, const std::string &signature,
                              std::uint64_t total_units,
                              const kdp::KernelArgs &args,
                              unsigned segments);

/**
 * Re-execute a workload with a previously profiled per-segment
 * selection (the mixed-mode analogue of the profiling activation
 * flag): iterative solvers profile segments once and reuse the
 * partitioned selection for the remaining iterations; the fallible
 * entry point.
 *
 * @param selection a report from launchKernelMixed on the same
 *                  signature and workload size
 *
 * Failure codes:
 *   NotFound         -- unknown signature
 *   InvalidArgument  -- @p selection does not match this signature /
 *                       workload size, or selects a variant outside
 *                       the registered pool
 */
support::Status tryLaunchKernelMixedCached(Runtime &rt,
                                           const std::string &signature,
                                           std::uint64_t total_units,
                                           const kdp::KernelArgs &args,
                                           const MixedReport &selection);

/**
 * Throwing wrapper of tryLaunchKernelMixedCached (std::out_of_range /
 * std::invalid_argument).
 */
void launchKernelMixedCached(Runtime &rt, const std::string &signature,
                             std::uint64_t total_units,
                             const kdp::KernelArgs &args,
                             const MixedReport &selection);

} // namespace runtime
} // namespace dysel
