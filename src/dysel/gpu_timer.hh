/**
 * @file
 * Device-side profiling timer, reproducing the paper's Fig. 7.
 *
 * On a real GPU, DySel augments each profiling kernel with in-kernel
 * clock reads: every thread block atomicMin's its start stamp into a
 * per-kernel global; the *last* completing block of a kernel computes
 * the span from the global minimum start to its own end, atomicMin's
 * it into a global best-span cell, and exchanges the winning kernel id
 * into the selection cell when it improved the minimum.
 *
 * The simulator feeds this class the per-block (start, end) stamps the
 * in-kernel `%clock` reads would have produced; the update logic below
 * is a faithful transliteration of Fig. 7(b).
 */
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "support/logging.hh"

#include "sim/time.hh"

namespace dysel {
namespace runtime {

/** Fig. 7 profiling-timer state for one profiling phase. */
class GpuTimer
{
  public:
    /**
     * @param num_kernels       kernels (variants) being profiled
     * @param blocks_per_kernel `gridDim.x` of each profiling launch
     */
    GpuTimer(unsigned num_kernels,
             const std::vector<std::uint64_t> &blocks_per_kernel);

    /**
     * One profiling thread block of kernel @p kid ran from @p start
     * to @p end.  Equivalent to executing the instrumentation of
     * Fig. 7(b) for that block.
     */
    void blockDone(unsigned kid, sim::TimeNs start, sim::TimeNs end);

    /** True when every block of kernel @p kid has reported. */
    bool kernelDone(unsigned kid) const;

    /** True when every block of every kernel has reported. */
    bool allDone() const;

    /** Measured span of kernel @p kid (valid once kernelDone). */
    sim::TimeNs span(unsigned kid) const;

    /**
     * The `global_final_selection` cell: id of the fastest kernel so
     * far; -1 before any kernel finished.
     */
    int selection() const { return finalSelection; }

  private:
    struct PerKernel
    {
        sim::TimeNs globalStartStamp =
            std::numeric_limits<sim::TimeNs>::max();
        std::uint64_t count = 0;
        std::uint64_t expected = 0;
        sim::TimeNs diff = 0;
        bool done = false;
    };

    std::vector<PerKernel> kernels;
    sim::TimeNs globalDiff = std::numeric_limits<sim::TimeNs>::max();
    int finalSelection = -1;
};

} // namespace runtime
} // namespace dysel
