#include "selection_auditor.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dysel {
namespace obs {

namespace {

std::string
fractionStr(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

} // namespace

std::uint64_t
AuditConfig::stride() const
{
    if (sampleRate <= 0.0)
        return 0;
    const double s = std::round(1.0 / std::min(1.0, sampleRate));
    return s < 1.0 ? 1 : static_cast<std::uint64_t>(s);
}

std::uint64_t
AuditConfig::probeUnits(std::uint64_t jobUnits) const
{
    std::uint64_t units = jobUnits / std::max<std::uint64_t>(
                              1, probeDivisor);
    units = std::clamp(units, probeUnitsMin, probeUnitsMax);
    units = std::min(units, jobUnits);
    return std::max<std::uint64_t>(1, units);
}

support::Status
AuditConfig::validate() const
{
    if (sampleRate < 0.0 || sampleRate > 1.0)
        return support::Status::invalidArgument(
            "AuditConfig: sampleRate must be in [0, 1]");
    if (!enabled())
        return support::Status();
    if (regretThreshold <= 0.0)
        return support::Status::invalidArgument(
            "AuditConfig: regretThreshold must be > 0");
    if (minSamples == 0)
        return support::Status::invalidArgument(
            "AuditConfig: minSamples must be >= 1");
    if (emaAlpha <= 0.0 || emaAlpha > 1.0)
        return support::Status::invalidArgument(
            "AuditConfig: emaAlpha must be in (0, 1]");
    if (probeUnitsMin == 0 || probeUnitsMax < probeUnitsMin)
        return support::Status::invalidArgument(
            "AuditConfig: probe unit clamp must satisfy "
            "1 <= probeUnitsMin <= probeUnitsMax");
    return support::Status();
}

SelectionAuditor::SelectionAuditor(store::SelectionStore &store,
                                   support::MetricsRegistry &metrics,
                                   support::tracing::Tracer *tracer,
                                   AuditConfig cfg)
    : store_(store), metrics_(metrics), tracer_(tracer),
      cfg_(std::move(cfg)),
      samplesCounter(&metrics.counter("audit.samples")),
      demotionsCounter(&metrics.counter("audit.demotions")),
      probeFailedCounter(&metrics.counter("audit.probe_failed")),
      regretHist(&metrics.histogram("audit.regret_pct"))
{
    cfg_.validate().throwIfError();
}

bool
SelectionAuditor::shouldSample()
{
    const std::uint64_t stride = cfg_.stride();
    if (stride == 0)
        return false;
    return eligible_.fetch_add(1, std::memory_order_relaxed) % stride
           == 0;
}

AuditVerdict
SelectionAuditor::ingest(const AuditSample &sample)
{
    AuditVerdict verdict;
    if (sample.winnerUnitNs <= 0 || sample.runnerUpUnitNs <= 0) {
        // Degenerate measurement (zero-length probe): treat as a
        // failed probe rather than scoring garbage.
        noteProbeFailure(sample.traceTrack, sample.jobId, sample.nowNs,
                         sample.signature);
        return verdict;
    }
    const double best =
        std::min(sample.winnerUnitNs, sample.runnerUpUnitNs);
    verdict.regret = (sample.winnerUnitNs - best) / best;

    {
        std::lock_guard<std::mutex> lock(mu);
        KeyState &ks = keys[{sample.signature, sample.device,
                             store::bucketOf(sample.units)}];
        ks.samples++;
        ks.lastRegret = verdict.regret;
        ks.ema = ks.samples == 1
                     ? verdict.regret
                     : cfg_.emaAlpha * verdict.regret
                           + (1.0 - cfg_.emaAlpha) * ks.ema;
        verdict.keyEma = ks.ema;
        verdict.keySamples = ks.samples;
        verdict.demoted = ks.samples >= cfg_.minSamples
                          && ks.ema > cfg_.regretThreshold;
        if (verdict.demoted) {
            // Fresh start for whatever the quarantine serves next.
            ks.ema = 0;
            ks.samples = 0;
            ks.demotions++;
        }
        samples_++;
        regretSum_ += verdict.regret;
        if (verdict.demoted)
            demotions_++;
    }

    samplesCounter->inc();
    regretHist->observe(verdict.regret * 100.0);
    if (tracer_ && tracer_->enabled()) {
        tracer_->instant(
            sample.traceTrack, "audit.sample", sample.nowNs,
            sample.jobId,
            {{"signature", sample.signature},
             {"winner", sample.winner},
             {"runner_up", sample.runnerUp},
             {"regret", fractionStr(verdict.regret)},
             {"ema", fractionStr(verdict.keyEma)}});
    }

    if (verdict.demoted) {
        // The existing quarantine path: the record serves its
        // runner-up for a cooldown, then re-profiles.  Called outside
        // the auditor lock -- the store fires observers of its own.
        const store::Observation obs = store_.reportFailure(
            sample.signature, sample.device, sample.units);
        demotionsCounter->inc();
        if (tracer_ && tracer_->enabled()) {
            tracer_->instant(
                sample.traceTrack, "audit.demoted", sample.nowNs,
                sample.jobId,
                {{"signature", sample.signature},
                 {"winner", sample.winner},
                 {"runner_up", sample.runnerUp},
                 {"ema", fractionStr(verdict.keyEma)},
                 {"observation", store::observationName(obs)}});
        }
    }
    return verdict;
}

void
SelectionAuditor::noteProbeFailure(std::uint64_t traceTrack,
                                   std::uint64_t jobId,
                                   std::uint64_t nowNs,
                                   const std::string &signature)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        probeFailures_++;
    }
    probeFailedCounter->inc();
    if (tracer_ && tracer_->enabled()) {
        tracer_->instant(traceTrack, "audit.probe_failed", nowNs, jobId,
                         {{"signature", signature}});
    }
}

std::uint64_t
SelectionAuditor::samples() const
{
    std::lock_guard<std::mutex> lock(mu);
    return samples_;
}

std::uint64_t
SelectionAuditor::demotions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return demotions_;
}

std::uint64_t
SelectionAuditor::probeFailures() const
{
    std::lock_guard<std::mutex> lock(mu);
    return probeFailures_;
}

double
SelectionAuditor::meanRegret() const
{
    std::lock_guard<std::mutex> lock(mu);
    return samples_ == 0 ? 0.0
                         : regretSum_ / static_cast<double>(samples_);
}

support::Json
SelectionAuditor::toJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    support::Json cfg = support::Json::object();
    cfg.set("sample_rate", support::Json(cfg_.sampleRate));
    cfg.set("stride", support::Json(cfg_.stride()));
    cfg.set("regret_threshold", support::Json(cfg_.regretThreshold));
    cfg.set("min_samples", support::Json(cfg_.minSamples));
    cfg.set("ema_alpha", support::Json(cfg_.emaAlpha));

    support::Json keysJson = support::Json::array();
    for (const auto &[key, ks] : keys) {
        support::Json k = support::Json::object();
        k.set("signature", support::Json(std::get<0>(key)));
        k.set("device", support::Json(std::get<1>(key)));
        k.set("bucket", support::Json(
                            static_cast<std::uint64_t>(std::get<2>(key))));
        k.set("ema", support::Json(ks.ema));
        k.set("last_regret", support::Json(ks.lastRegret));
        k.set("samples", support::Json(ks.samples));
        k.set("demotions", support::Json(ks.demotions));
        keysJson.push(std::move(k));
    }

    support::Json root = support::Json::object();
    root.set("config", std::move(cfg));
    root.set("samples", support::Json(samples_));
    root.set("demotions", support::Json(demotions_));
    root.set("probe_failures", support::Json(probeFailures_));
    root.set("mean_regret",
             support::Json(samples_ == 0
                               ? 0.0
                               : regretSum_
                                     / static_cast<double>(samples_)));
    root.set("keys", std::move(keysJson));
    return root;
}

} // namespace obs
} // namespace dysel
