/**
 * @file
 * Continuous selection-quality audit (DESIGN §11).
 *
 * The store's EMA-drift heuristic only notices when the *served*
 * variant gets slower than its own past; it is blind to the
 * runner-up quietly becoming faster (device drift, clock changes,
 * input-shape shifts within a bucket).  The auditor closes that loop:
 * at a configurable sampling rate, a warm store hit is followed by a
 * shadow re-profile -- the served winner and the stored runner-up
 * each run a small forced-variant probe slice on the worker thread --
 * and the realized **regret** (served-winner per-unit time vs the
 * best observed) is recorded as a per-(signature, device fingerprint,
 * size bucket) EMA plus a global histogram.  A key whose regret EMA
 * stays above the threshold is demoted into the existing store
 * quarantine (SelectionStore::reportFailure), which serves the
 * runner-up and eventually forces a re-profile.
 *
 * Sampling is stride-based (every round(1/rate)-th eligible hit),
 * not random: the audit.samples counter and the audit.sample tracer
 * instants then reconcile exactly 1:1, which is what the
 * observability test suite asserts.
 *
 * Thread-safety: shouldSample()/ingest()/noteProbeFailure() may be
 * called from any worker thread; per-key state is mutex-protected,
 * counter updates are atomic.  The probes themselves are run by the
 * caller (the dispatch service, on the runtime it already owns) --
 * the auditor only decides, scores, and accounts.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "dysel/store/selection_store.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/status.hh"
#include "support/tracing/tracer.hh"

namespace dysel {
namespace obs {

/** Audit tuning knobs. */
struct AuditConfig
{
    /**
     * Fraction of warm store hits to shadow-audit, in [0, 1]; 0
     * disables the auditor.  Realized as a deterministic stride:
     * every round(1/sampleRate)-th eligible hit is sampled.
     */
    double sampleRate = 0.0;

    /**
     * Regret EMA above which a key's selection is demoted into the
     * store quarantine.  0.25 means "the served winner is 25% slower
     * per unit than the best variant we observed".
     */
    double regretThreshold = 0.25;

    /** Samples a key needs before its EMA can demote it. */
    std::uint64_t minSamples = 3;

    /** EMA weight of a new regret observation. */
    double emaAlpha = 0.3;

    /**
     * Probe slice sizing: a probe runs jobUnits / probeDivisor units,
     * clamped to [probeUnitsMin, probeUnitsMax] (and never more than
     * the job itself).  Both variants probe the same slice, so the
     * comparison is fair even though the slice is not amortized.
     */
    std::uint64_t probeUnitsMin = 32;
    std::uint64_t probeUnitsMax = 512;
    std::uint64_t probeDivisor = 16;

    bool enabled() const { return sampleRate > 0.0; }

    /** Sampling stride: round(1/sampleRate), at least 1. */
    std::uint64_t stride() const;

    /** Probe slice for a job of @p jobUnits units. */
    std::uint64_t probeUnits(std::uint64_t jobUnits) const;

    /** Typed consistency check (rate in [0,1], sane clamps). */
    support::Status validate() const;
};

/** One completed winner-vs-runner-up probe pair. */
struct AuditSample
{
    std::string signature;
    std::string device; ///< device fingerprint
    std::uint64_t units = 0; ///< the audited job's units (bucket key)

    std::string winner;   ///< served variant name
    std::string runnerUp; ///< best stored alternative probed
    double winnerUnitNs = 0;   ///< probe per-unit time of the winner
    double runnerUpUnitNs = 0; ///< probe per-unit time of the runner-up

    /** Trace correlation (the audited job). */
    std::uint64_t traceTrack = 0;
    std::uint64_t jobId = 0;
    std::uint64_t nowNs = 0; ///< device clock for the instant
};

/** What ingest() concluded. */
struct AuditVerdict
{
    double regret = 0;        ///< this sample's regret fraction
    double keyEma = 0;        ///< key EMA after the update
    std::uint64_t keySamples = 0; ///< key samples since last demotion
    bool demoted = false;     ///< the key was quarantined
};

/**
 * The audit sampler/scorer.  One instance per DispatchService; the
 * store reference is the same shared store the service serves from.
 */
class SelectionAuditor
{
  public:
    SelectionAuditor(store::SelectionStore &store,
                     support::MetricsRegistry &metrics,
                     support::tracing::Tracer *tracer, AuditConfig cfg);

    const AuditConfig &config() const { return cfg_; }

    /**
     * Whether this warm hit should be shadow-audited (deterministic
     * stride over all eligible hits, service-wide).
     */
    bool shouldSample();

    /**
     * Score one probe pair: update the key's regret EMA, account the
     * audit.samples counter / audit.regret_pct histogram, emit the
     * job-correlated audit.sample instant, and -- when the EMA stays
     * above the threshold with enough samples -- demote the key via
     * SelectionStore::reportFailure (audit.demotions counter +
     * audit.demoted instant).  A demotion resets the key's EMA so the
     * post-quarantine selection is judged fresh.
     */
    AuditVerdict ingest(const AuditSample &sample);

    /** A probe launch failed: account it without scoring. */
    void noteProbeFailure(std::uint64_t traceTrack, std::uint64_t jobId,
                          std::uint64_t nowNs,
                          const std::string &signature);

    /** Lifetime totals. */
    std::uint64_t samples() const;
    std::uint64_t demotions() const;
    std::uint64_t probeFailures() const;

    /** Mean regret fraction across all samples (0 when none). */
    double meanRegret() const;

    /**
     * Introspection document for /debug endpoints and reports:
     * config, totals, and per-key EMA/sample/demotion state.
     */
    support::Json toJson() const;

  private:
    struct KeyState
    {
        double ema = 0;
        double lastRegret = 0;
        std::uint64_t samples = 0;   ///< since the last demotion
        std::uint64_t demotions = 0; ///< lifetime
    };
    using Key = std::tuple<std::string, std::string, unsigned>;

    store::SelectionStore &store_;
    support::MetricsRegistry &metrics_;
    support::tracing::Tracer *tracer_;
    AuditConfig cfg_;

    /** Cached metric handles (stable addresses). */
    support::Counter *samplesCounter;
    support::Counter *demotionsCounter;
    support::Counter *probeFailedCounter;
    support::Histogram *regretHist;

    std::atomic<std::uint64_t> eligible_{0}; ///< stride input

    mutable std::mutex mu;
    std::map<Key, KeyState> keys;
    std::uint64_t samples_ = 0;
    std::uint64_t demotions_ = 0;
    std::uint64_t probeFailures_ = 0;
    double regretSum_ = 0;
};

} // namespace obs
} // namespace dysel
