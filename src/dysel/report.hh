/**
 * @file
 * Result record of one DySelLaunchKernel call.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

#include "options.hh"

namespace dysel {
namespace runtime {

/** Measured profile of one variant during micro-profiling. */
struct VariantProfile
{
    std::string name;
    /** Profiling measurement (Fig. 7 span on GPU, task time on CPU). */
    sim::TimeNs metric = 0;
    /** Wall span of the profiling launch. */
    sim::TimeNs span = 0;
    /** Sum of work-group busy times. */
    sim::TimeNs busy = 0;
    /** Workload units the variant profiled. */
    std::uint64_t units = 0;
    /** Virtual start/end of the first profiling execution. */
    sim::TimeNs startTime = 0;
    sim::TimeNs endTime = 0;
};

/**
 * One entry of the structured selection timeline: what happened to
 * one variant during this launch's micro-profiling.
 */
struct SelectionPass
{
    std::string variant;
    /** Workload units the pass profiled (0 for a skipped variant). */
    std::uint64_t units = 0;
    /** Virtual start/end of the pass (0/0 for a skipped variant). */
    sim::TimeNs startTime = 0;
    sim::TimeNs endTime = 0;
    /** Measured cost (profiling metric, averaged over repeats). */
    sim::TimeNs metric = 0;
    /**
     * Guard verdict of the pass: "pass", a tripped check's name
     * ("mismatch", "redzone", "nan", "watchdog"), or "blacklisted"
     * for a variant excluded before profiling.  "pass" also covers
     * launches with the guard off.
     */
    std::string guardOutcome;
    /** This variant won the selection. */
    bool selected = false;
};

/** One guard detection during a launch (a variant tripped a check). */
struct GuardEvent
{
    std::string variant; ///< offending variant name
    std::string check;   ///< guard::checkKindName of the tripped check
};

/** Everything the runtime can tell about one launch. */
struct LaunchReport
{
    std::string signature;
    int selected = -1;
    std::string selectedName;
    bool profiled = false;          ///< micro-profiling actually ran
    bool fromCache = false;         ///< selection reused from cache
    ProfilingMode mode = ProfilingMode::Fully;
    Orchestration orch = Orchestration::Sync;

    /** Virtual time the call started / ended. */
    sim::TimeNs startTime = 0;
    sim::TimeNs endTime = 0;

    /**
     * True for a fused (batched) launch: several jobs' workloads ran
     * back to back under one device submit.  Fused reports must not
     * feed the store's drift baseline (the launch overhead is
     * amortized across members, so per-unit time is not comparable
     * to a solo run); the service accounts them via noteServed().
     */
    bool fused = false;
    /** Member jobs of a fused launch (0 for a solo launch). */
    std::uint64_t fusedJobs = 0;

    /**
     * True for a shadow audit probe (LaunchOptions::shadow): a small
     * forced-variant measurement slice.  Like fused launches, shadow
     * reports must not feed the drift baseline -- their per-unit time
     * is not comparable to a full production run.
     */
    bool shadow = false;

    std::uint64_t totalUnits = 0;
    /** Units consumed by micro-profiling (all variants). */
    std::uint64_t profiledUnits = 0;
    /** Units whose profiling results were kept (productive output). */
    std::uint64_t productiveUnits = 0;
    /** Extra buffer bytes allocated for sandboxes / private outputs. */
    std::uint64_t extraBytes = 0;
    /** Eager chunks dispatched before profiling completed (async). */
    std::uint64_t eagerChunks = 0;

    std::vector<VariantProfile> profiles;

    /**
     * Per-pass selection timeline (profiled launches only): one entry
     * per registered variant -- profiled, struck, or excluded -- in
     * registration order.  This is the structured record a serving
     * layer renders as "why did this variant win".
     */
    std::vector<SelectionPass> timeline;

    /** Guard detections during this launch (profiled launches only). */
    std::vector<GuardEvent> guardEvents;
    /** Variants excluded up front because they were blacklisted. */
    std::uint64_t guardExcluded = 0;
    /** Productive slices re-executed after their producer failed. */
    std::uint64_t guardRepairs = 0;

    /** End-to-end virtual time of the call. */
    sim::TimeNs elapsed() const { return endTime - startTime; }
};

} // namespace runtime
} // namespace dysel
