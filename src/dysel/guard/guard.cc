#include "guard.hh"

#include <cmath>
#include <cstring>

#include "support/logging.hh"

namespace dysel {
namespace guard {

const char *
checkKindName(CheckKind kind)
{
    switch (kind) {
      case CheckKind::Mismatch: return "mismatch";
      case CheckKind::Redzone: return "redzone";
      case CheckKind::NanInf: return "nan";
      case CheckKind::Watchdog: return "watchdog";
    }
    return "?";
}

VariantGuard::VariantGuard(GuardConfig cfg) : cfg_(cfg) {}

void
VariantGuard::setBlacklistObserver(BlacklistObserver obs)
{
    std::lock_guard<std::mutex> lock(mu);
    observer = std::move(obs);
}

void
VariantGuard::blacklist(const std::string &signature,
                        const std::string &variant,
                        const std::string &reason)
{
    std::lock_guard<std::mutex> lock(mu);
    VariantHealth &h = ledger[LedgerKey{signature, variant}];
    if (!h.blacklisted) {
        h.blacklisted = true;
        h.lastReason = reason;
    }
}

bool
VariantGuard::isBlacklisted(const std::string &signature,
                            const std::string &variant) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = ledger.find(LedgerKey{signature, variant});
    return it != ledger.end() && it->second.blacklisted;
}

bool
VariantGuard::strike(const std::string &signature,
                     const std::string &variant, CheckKind check)
{
    BlacklistObserver notify;
    {
        std::lock_guard<std::mutex> lock(mu);
        VariantHealth &h = ledger[LedgerKey{signature, variant}];
        switch (check) {
          case CheckKind::Mismatch: h.mismatches++; break;
          case CheckKind::Redzone: h.redzones++; break;
          case CheckKind::NanInf: h.nans++; break;
          case CheckKind::Watchdog: h.watchdogs++; break;
        }
        checkCounts[static_cast<std::size_t>(check)]++;
        h.strikes++;
        h.lastReason = checkKindName(check);
        if (h.blacklisted || h.strikes < cfg_.strikeLimit)
            return false;
        h.blacklisted = true;
        blacklists++;
        notify = observer;
    }
    // Observer runs unlocked: it typically writes the selection
    // store, which takes its own mutex.
    if (notify)
        notify(signature, variant, checkKindName(check));
    return true;
}

void
VariantGuard::pass(const std::string &signature,
                   const std::string &variant)
{
    std::lock_guard<std::mutex> lock(mu);
    ledger[LedgerKey{signature, variant}].passes++;
}

std::optional<VariantHealth>
VariantGuard::health(const std::string &signature,
                     const std::string &variant) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = ledger.find(LedgerKey{signature, variant});
    if (it == ledger.end())
        return std::nullopt;
    return it->second;
}

std::uint64_t
VariantGuard::checkCount(CheckKind check) const
{
    std::lock_guard<std::mutex> lock(mu);
    return checkCounts[static_cast<std::size_t>(check)];
}

std::uint64_t
VariantGuard::blacklistCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return blacklists;
}

void
VariantGuard::paintRedzone(kdp::BufferBase &buf)
{
    auto *bytes = static_cast<unsigned char *>(buf.rawData());
    std::memset(bytes + buf.dataElems() * buf.elemSize(), kCanaryByte,
                buf.redzone() * buf.elemSize());
}

bool
VariantGuard::redzoneIntact(const kdp::BufferBase &buf)
{
    const auto *bytes = static_cast<const unsigned char *>(buf.rawData());
    const std::uint64_t from = buf.dataElems() * buf.elemSize();
    const std::uint64_t to = buf.size() * buf.elemSize();
    for (std::uint64_t i = from; i < to; ++i)
        if (bytes[i] != kCanaryByte)
            return false;
    return true;
}

namespace {

template <typename T>
bool
anyNanOrInf(const T *v, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        if (!std::isfinite(v[i]))
            return true;
    return false;
}

template <typename T>
bool
withinTolerance(const T *a, const T *b, std::uint64_t n, double abs_tol,
                double rel_tol)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(a[i]);
        const double y = static_cast<double>(b[i]);
        if (std::isnan(x) && std::isnan(y))
            continue; // both poisoned identically; NaN screen's job
        const double bound =
            abs_tol + rel_tol * std::max(std::fabs(x), std::fabs(y));
        if (!(std::fabs(x - y) <= bound))
            return false;
    }
    return true;
}

} // namespace

bool
VariantGuard::hasNanOrInf(const kdp::BufferBase &buf)
{
    const std::uint64_t n = buf.dataElems();
    if (buf.elemType() == typeid(float))
        return anyNanOrInf(static_cast<const float *>(buf.rawData()), n);
    if (buf.elemType() == typeid(double))
        return anyNanOrInf(static_cast<const double *>(buf.rawData()), n);
    return false;
}

bool
VariantGuard::outputsMatch(const kdp::BufferBase &ref,
                           const kdp::BufferBase &cand) const
{
    if (ref.elemType() != cand.elemType()
        || ref.dataElems() != cand.dataElems())
        return false;
    const std::uint64_t n = ref.dataElems();
    if (ref.elemType() == typeid(float)) {
        return withinTolerance(static_cast<const float *>(ref.rawData()),
                               static_cast<const float *>(cand.rawData()),
                               n, cfg_.absTol, cfg_.relTol);
    }
    if (ref.elemType() == typeid(double)) {
        return withinTolerance(
            static_cast<const double *>(ref.rawData()),
            static_cast<const double *>(cand.rawData()), n, cfg_.absTol,
            cfg_.relTol);
    }
    return std::memcmp(ref.rawData(), cand.rawData(),
                       n * ref.elemSize()) == 0;
}

void
VariantGuard::copyData(kdp::BufferBase &dst, const kdp::BufferBase &src)
{
    if (dst.elemType() != src.elemType()
        || src.dataElems() < dst.size())
        support::panic("guard::copyData type/size mismatch (%s <- %s)",
                       dst.name().c_str(), src.name().c_str());
    std::memcpy(dst.rawData(), src.rawData(),
                dst.size() * dst.elemSize());
}

} // namespace guard
} // namespace dysel
