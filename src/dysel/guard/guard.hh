/**
 * @file
 * The variant guard: functional validation of kernel variants during
 * micro-profiling.
 *
 * DySel's sandbox/swap profiling modes (paper §2.2) give every
 * non-default variant a private output space; the guard turns those
 * private copies into a verification stage, the way production
 * kernel-selection systems (EngineCL, kernel-tuning pipelines)
 * validate candidates against a reference before deployment:
 *
 *   (a) each variant's sandbox output is cross-checked against the
 *       reference variant's under a tolerance-aware comparator;
 *   (b) sandbox buffers carry trailing canary redzones, so a variant
 *       that writes past its output is caught red-handed;
 *   (c) a watchdog catches profiling slices that never complete (a
 *       hung variant is cancelled instead of stalling selection);
 *   (d) outputs are screened for NaN/Inf poisoning.
 *
 * A variant that trips any check is excluded from the running
 * selection, recorded in a per-variant health ledger, and -- after
 * strikeLimit strikes -- blacklisted.  The blacklist is mirrored into
 * SelectionStore v3 by the serving layer (keyed by signature, variant
 * and device fingerprint), so a misbehaving variant is never
 * re-served across restarts.
 *
 * Thread-safety: all non-static members take the ledger mutex; one
 * guard instance belongs to one Runtime, but tests and the serving
 * layer may inspect it from other threads.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kdp/buffer.hh"

namespace dysel {
namespace guard {

/** Which guard check a variant tripped. */
enum class CheckKind {
    Mismatch = 0, ///< output differs from the reference variant's
    Redzone,      ///< canary redzone overwritten (out-of-bounds write)
    NanInf,       ///< output poisoned with NaN or Inf
    Watchdog,     ///< profiling slice never completed
};

/** Stable lower-case name of @p kind ("mismatch", "redzone", ...). */
const char *checkKindName(CheckKind kind);

/** Guard tuning knobs. */
struct GuardConfig
{
    /** Master switch; a disabled guard never filters or checks. */
    bool enabled = false;

    /** Absolute tolerance of the float/double comparator. */
    double absTol = 1e-6;

    /** Relative tolerance of the float/double comparator. */
    double relTol = 1e-4;

    /** Canary elements appended to each sandbox output buffer. */
    std::uint64_t redzoneElems = 32;

    /**
     * Strikes (failed checks, across launches) before a variant is
     * blacklisted.  1 = zero tolerance.
     */
    unsigned strikeLimit = 2;
};

/** Health ledger entry of one (signature, variant). */
struct VariantHealth
{
    std::uint64_t passes = 0;     ///< clean validations
    std::uint64_t mismatches = 0; ///< Mismatch strikes
    std::uint64_t redzones = 0;   ///< Redzone strikes
    std::uint64_t nans = 0;       ///< NanInf strikes
    std::uint64_t watchdogs = 0;  ///< Watchdog strikes
    unsigned strikes = 0;         ///< total strikes
    bool blacklisted = false;
    std::string lastReason;       ///< check name of the latest strike
};

/** Canary byte pattern painted into redzones. */
constexpr unsigned char kCanaryByte = 0xcb;

/**
 * The guard: health ledger, blacklist, and the buffer checks.
 */
class VariantGuard
{
  public:
    explicit VariantGuard(GuardConfig cfg = GuardConfig());

    const GuardConfig &config() const { return cfg_; }
    bool enabled() const { return cfg_.enabled; }

    /**
     * Invoked (with the ledger mutex released) when a variant's
     * strikes reach strikeLimit; the serving layer hooks this to
     * persist the blacklist entry into the selection store.  The
     * reason is the check name of the final strike.
     */
    using BlacklistObserver =
        std::function<void(const std::string &signature,
                           const std::string &variant,
                           const std::string &reason)>;
    void setBlacklistObserver(BlacklistObserver obs);

    /**
     * Seed a blacklist entry from an external source (a loaded
     * selection store).  Idempotent; does not fire the observer (the
     * source already knows).
     */
    void blacklist(const std::string &signature,
                   const std::string &variant, const std::string &reason);

    /** Whether (signature, variant) is blacklisted. */
    bool isBlacklisted(const std::string &signature,
                       const std::string &variant) const;

    /**
     * Record a failed check against (signature, variant).  Returns
     * true when this strike crossed strikeLimit and blacklisted the
     * variant (the observer fires exactly once, on the transition).
     */
    bool strike(const std::string &signature, const std::string &variant,
                CheckKind check);

    /** Record a clean validation. */
    void pass(const std::string &signature, const std::string &variant);

    /** Ledger entry of (signature, variant), if any. */
    std::optional<VariantHealth>
    health(const std::string &signature,
           const std::string &variant) const;

    /** Total strikes recorded for @p check, across all variants. */
    std::uint64_t checkCount(CheckKind check) const;

    /** Variants blacklisted by strikes (excludes seeded entries). */
    std::uint64_t blacklistCount() const;

    // ---- Buffer checks ----------------------------------------------

    /** Paint @p buf's redzone with the canary pattern. */
    static void paintRedzone(kdp::BufferBase &buf);

    /** Whether @p buf's redzone still holds the canary pattern. */
    static bool redzoneIntact(const kdp::BufferBase &buf);

    /**
     * Whether @p buf's data region contains a NaN or Inf.  Only
     * meaningful for float/double buffers; other element types never
     * report poisoning.
     */
    static bool hasNanOrInf(const kdp::BufferBase &buf);

    /**
     * Whether @p cand's data region matches @p ref's under the
     * configured tolerances.  float/double buffers compare
     * element-wise with |a-b| <= absTol + relTol * max(|a|,|b|)
     * (different variants may legitimately reorder float reductions);
     * every other element type compares byte-exact.  Buffers of
     * different types or data sizes never match.
     */
    bool outputsMatch(const kdp::BufferBase &ref,
                      const kdp::BufferBase &cand) const;

    /**
     * Copy @p src's data region into @p dst (the redzone-aware
     * replacement for BufferBase::copyFrom in the swap path: the
     * winner's padded clone is wider than the destination).  Types
     * must match and src must carry at least dst.size() data
     * elements.
     */
    static void copyData(kdp::BufferBase &dst,
                         const kdp::BufferBase &src);

  private:
    using LedgerKey = std::pair<std::string, std::string>;

    mutable std::mutex mu;
    GuardConfig cfg_;
    std::map<LedgerKey, VariantHealth> ledger;
    std::array<std::uint64_t, 4> checkCounts{};
    std::uint64_t blacklists = 0;
    BlacklistObserver observer;
};

} // namespace guard
} // namespace dysel
