#include "selection_store.hh"

#include "dysel/fed/merge.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace dysel {
namespace store {

using support::Json;

unsigned
bucketOf(std::uint64_t units)
{
    // floor(log2(units)); 0 and 1 unit share bucket 0 (a 0-unit
    // launch is degenerate but must not wrap or trap).  The highest
    // representable bucket is 63 (units >= 2^63).
    unsigned b = 0;
    while (units > 1) {
        units >>= 1;
        ++b;
    }
    return b;
}

std::pair<std::uint64_t, std::uint64_t>
bucketRange(unsigned bucket)
{
    // Clamp at both ends rather than shifting by >= 64 (undefined
    // behaviour) or letting `lo * 2 - 1` wrap past 2^64: out-of-range
    // bucket indices from interpolation arithmetic must degrade to
    // the edge buckets, not alias small ones.
    if (bucket == 0)
        return {0, 1};
    if (bucket >= 63)
        return {std::uint64_t{1} << 63, ~std::uint64_t{0}};
    const std::uint64_t lo = std::uint64_t{1} << bucket;
    return {lo, lo * 2 - 1};
}

std::uint64_t
unitsForBucket(unsigned bucket)
{
    if (bucket == 0)
        return 1;
    return bucketRange(bucket).first;
}

const char *
observationName(Observation obs)
{
    switch (obs) {
      case Observation::Ok: return "ok";
      case Observation::Quarantined: return "quarantined";
      case Observation::Invalidated: return "invalidated";
    }
    return "?";
}

Json
recordToJson(const SelectionRecord &rec)
{
    Json profiles = Json::array();
    for (const auto &p : rec.profiles) {
        Json jp = Json::object();
        jp.set("name", Json(p.name));
        jp.set("metric_ns", Json(p.metricNs));
        jp.set("span_ns", Json(p.spanNs));
        jp.set("busy_ns", Json(p.busyNs));
        jp.set("units", Json(p.units));
        profiles.push(std::move(jp));
    }
    Json jr = Json::object();
    jr.set("signature", Json(rec.signature));
    jr.set("device", Json(rec.device));
    jr.set("bucket", Json(rec.bucket));
    jr.set("selected", Json(rec.selected));
    jr.set("selected_name", Json(rec.selectedName));
    jr.set("profiles", std::move(profiles));
    jr.set("launches", Json(rec.launches));
    jr.set("profiled_launches", Json(rec.profiledLaunches));
    jr.set("confidence", Json(rec.confidence));
    jr.set("unit_time_ns", Json(rec.unitTimeNs));
    jr.set("valid", Json(rec.valid));
    jr.set("quarantined_variant", Json(rec.quarantinedVariant));
    jr.set("cooldown_left", Json(rec.cooldownLeft));
    jr.set("quarantines", Json(rec.quarantines));
    jr.set("predicted", Json(rec.predicted));
    jr.set("predicted_confidence", Json(rec.predictedConfidence));
    jr.set("stamp_tick", Json(rec.stamp.tick));
    jr.set("stamp_origin", Json(rec.stamp.origin));
    jr.set("vv", rec.vv.toJson());
    jr.set("profile_cid", Json(rec.profileCid));
    jr.set("profile_origin", Json(rec.profileOrigin));
    return jr;
}

SelectionRecord
recordFromJson(const Json &jr)
{
    SelectionRecord rec;
    rec.signature = jr.at("signature").asString();
    rec.device = jr.at("device").asString();
    rec.bucket = static_cast<unsigned>(jr.at("bucket").asUint());
    rec.selected = static_cast<int>(jr.at("selected").asInt());
    rec.selectedName = jr.stringOr("selected_name", "");
    rec.launches = jr.at("launches").asUint();
    rec.profiledLaunches = jr.intOr("profiled_launches", 0);
    rec.confidence = jr.intOr("confidence", 0);
    rec.unitTimeNs = jr.numberOr("unit_time_ns", 0.0);
    rec.valid = jr.boolOr("valid", true);
    rec.quarantinedVariant =
        static_cast<int>(jr.intOr("quarantined_variant", -1));
    rec.cooldownLeft = jr.intOr("cooldown_left", 0);
    rec.quarantines = jr.intOr("quarantines", 0);
    rec.predicted = jr.boolOr("predicted", false);
    rec.predictedConfidence = jr.numberOr("predicted_confidence", 0.0);
    rec.stamp.tick = jr.intOr("stamp_tick", 0);
    rec.stamp.origin =
        static_cast<std::uint32_t>(jr.intOr("stamp_origin", 0));
    if (jr.has("vv"))
        rec.vv = fed::VersionVec::fromJson(jr.at("vv"));
    rec.profileCid = jr.intOr("profile_cid", 0);
    rec.profileOrigin =
        static_cast<std::uint32_t>(jr.intOr("profile_origin", 0));
    if (jr.has("profiles")) {
        for (const Json &jp : jr.at("profiles").items()) {
            StoredProfile sp;
            sp.name = jp.stringOr("name", "");
            sp.metricNs = jp.numberOr("metric_ns", 0.0);
            sp.spanNs = jp.numberOr("span_ns", 0.0);
            sp.busyNs = jp.numberOr("busy_ns", 0.0);
            sp.units = jp.intOr("units", 0);
            rec.profiles.push_back(std::move(sp));
        }
    }
    return rec;
}

Json
blacklistToJson(const BlacklistEntry &e)
{
    Json jb = Json::object();
    jb.set("signature", Json(e.signature));
    jb.set("variant", Json(e.variant));
    jb.set("device", Json(e.device));
    jb.set("reason", Json(e.reason));
    jb.set("strikes", Json(e.strikes));
    jb.set("stamp_tick", Json(e.stamp.tick));
    jb.set("stamp_origin", Json(e.stamp.origin));
    return jb;
}

BlacklistEntry
blacklistFromJson(const Json &jb)
{
    BlacklistEntry e;
    e.signature = jb.at("signature").asString();
    e.variant = jb.at("variant").asString();
    e.device = jb.at("device").asString();
    e.reason = jb.stringOr("reason", "");
    e.strikes = jb.intOr("strikes", 1);
    e.stamp.tick = jb.intOr("stamp_tick", 0);
    e.stamp.origin =
        static_cast<std::uint32_t>(jb.intOr("stamp_origin", 0));
    return e;
}

SelectionStore::SelectionStore(StoreConfig cfg) : cfg_(cfg) {}

fed::Stamp
SelectionStore::bumpLocked()
{
    return fed::Stamp{++lamport_, replica_};
}

void
SelectionStore::stampLocked(SelectionRecord &rec)
{
    rec.stamp = bumpLocked();
    rec.vv.observe(replica_, rec.stamp.tick);
    rec.seq = ++seq_;
}

std::optional<SelectionRecord>
SelectionStore::lookup(const std::string &signature,
                       const std::string &device,
                       std::uint64_t units) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucketOf(units)});
    if (it == recs.end() || !it->second.valid) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

std::optional<SelectionRecord>
SelectionStore::peek(const std::string &signature,
                     const std::string &device,
                     std::uint64_t units) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucketOf(units)});
    if (it == recs.end() || !it->second.valid)
        return std::nullopt;
    return it->second;
}

void
SelectionStore::noteServed(const std::string &signature,
                           const std::string &device, std::uint64_t units,
                           std::uint64_t jobs)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucketOf(units)});
    if (it == recs.end() || !it->second.valid)
        return;
    it->second.launches += jobs;
    stampLocked(it->second);
}

void
SelectionStore::recordProfile(const std::string &device,
                              const runtime::LaunchReport &report,
                              std::uint64_t profileCid)
{
    if (!report.profiled || report.selected < 0)
        return;
    SelectionRecord snapshot;
    std::function<void(const SelectionRecord &)> observer;
    {
        std::lock_guard<std::mutex> lock(mu);
        const unsigned bucket = bucketOf(report.totalUnits);
        SelectionRecord &rec =
            recs[Key{report.signature, device, bucket}];
        rec.signature = report.signature;
        rec.device = device;
        rec.bucket = bucket;
        rec.selected = report.selected;
        rec.selectedName = report.selectedName;
        rec.profiles.clear();
        rec.profiles.reserve(report.profiles.size());
        for (const auto &p : report.profiles) {
            StoredProfile sp;
            sp.name = p.name;
            sp.metricNs = static_cast<double>(p.metric);
            sp.spanNs = static_cast<double>(p.span);
            sp.busyNs = static_cast<double>(p.busy);
            sp.units = p.units;
            rec.profiles.push_back(std::move(sp));
        }
        rec.launches++;
        rec.profiledLaunches++;
        // A fresh profile starts a fresh observation history and lifts
        // any quarantine: the offending variant competed again and the
        // measurements above are the new truth.  It also supersedes
        // any prediction -- this record is measured now.
        rec.confidence = 0;
        rec.unitTimeNs = 0.0;
        rec.valid = true;
        rec.quarantinedVariant = -1;
        rec.cooldownLeft = 0;
        rec.predicted = false;
        rec.predictedConfidence = 0.0;
        rec.profileCid = profileCid;
        rec.profileOrigin = replica_;
        stampLocked(rec);
        if (profileObserver) {
            snapshot = rec;
            observer = profileObserver;
        }
    }
    // Training feed outside the lock: the observer (the predictor)
    // may take its own locks or call back into the store.
    if (observer)
        observer(snapshot);
}

void
SelectionStore::seedPrediction(const std::string &signature,
                               const std::string &device,
                               std::uint64_t units, int variantIndex,
                               const std::string &variantName,
                               double confidence)
{
    if (variantIndex < 0 || variantName.empty())
        return;
    std::lock_guard<std::mutex> lock(mu);
    const unsigned bucket = bucketOf(units);
    SelectionRecord &rec = recs[Key{signature, device, bucket}];
    if (rec.valid && !rec.signature.empty() && !rec.predicted)
        return; // a measured record outranks any prediction
    const std::uint64_t launches = rec.launches;
    const std::uint64_t profiled = rec.profiledLaunches;
    const std::uint64_t quarantines = rec.quarantines;
    // The replacement payload's causal history includes the old one.
    const fed::VersionVec vv = rec.vv;
    rec = SelectionRecord();
    rec.signature = signature;
    rec.device = device;
    rec.bucket = bucket;
    rec.selected = variantIndex;
    rec.selectedName = variantName;
    rec.launches = launches;
    rec.profiledLaunches = profiled;
    rec.quarantines = quarantines;
    rec.predicted = true;
    rec.predictedConfidence = confidence;
    rec.vv = vv;
    stampLocked(rec);
}

void
SelectionStore::invalidateLocked(SelectionRecord &rec)
{
    rec.valid = false;
    rec.confidence = 0;
    rec.unitTimeNs = 0.0;
    rec.quarantinedVariant = -1;
    rec.cooldownLeft = 0;
}

Observation
SelectionStore::demoteLocked(SelectionRecord &rec)
{
    if (rec.quarantinedVariant >= 0) {
        // The fallback misbehaved too; nothing left to trust.
        invalidateLocked(rec);
        ++drifts_;
        return Observation::Invalidated;
    }
    // Best profiled runner-up (lowest metric, not the offender).
    int runnerUp = -1;
    for (std::size_t i = 0; i < rec.profiles.size(); ++i) {
        if (static_cast<int>(i) == rec.selected)
            continue;
        if (rec.profiles[i].metricNs <= 0.0)
            continue;
        if (runnerUp < 0
            || rec.profiles[i].metricNs
                   < rec.profiles[runnerUp].metricNs) {
            runnerUp = static_cast<int>(i);
        }
    }
    if (runnerUp < 0) {
        invalidateLocked(rec);
        ++drifts_;
        return Observation::Invalidated;
    }
    rec.quarantinedVariant = rec.selected;
    rec.selected = runnerUp;
    rec.selectedName = rec.profiles[runnerUp].name;
    rec.cooldownLeft = cfg_.quarantineCooldown;
    rec.quarantines++;
    // The fallback needs its own baseline.
    rec.confidence = 0;
    rec.unitTimeNs = 0.0;
    ++quarantines_;
    return Observation::Quarantined;
}

Observation
SelectionStore::observePlain(const std::string &device,
                             const runtime::LaunchReport &report)
{
    if (report.profiled || report.totalUnits == 0)
        return Observation::Ok;
    Observation result = Observation::Ok;
    SelectionRecord demoted;
    std::function<void(const SelectionRecord &)> observer;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = recs.find(
            Key{report.signature, device, bucketOf(report.totalUnits)});
        if (it == recs.end() || !it->second.valid)
            return Observation::Ok; // nothing to check against
        SelectionRecord &rec = it->second;
        rec.launches++;

        const double observed =
            static_cast<double>(report.elapsed())
            / static_cast<double>(report.totalUnits);
        const bool seeding = rec.unitTimeNs <= 0.0;
        bool driftDemotion = false;
        if (!seeding) {
            const double ratio = observed > rec.unitTimeNs
                                     ? observed / rec.unitTimeNs
                                     : rec.unitTimeNs / observed;
            driftDemotion = ratio > cfg_.driftFactor;
        }
        if (driftDemotion) {
            // A drifted *predicted* selection is a mis-prediction:
            // snapshot the record first so the corrective feed sees
            // the variant that was wrong.
            if (rec.predicted && demotionObserver) {
                demoted = rec;
                observer = demotionObserver;
            }
            result = demoteLocked(rec);
        } else if (rec.predicted
                   && cfg_.predictedProbationLaunches > 0
                   && rec.launches >= cfg_.predictedProbationLaunches) {
            // Probation over: force a confirming profile.  Scheduled
            // validation, not a mis-prediction -- no demotion feed.
            invalidateLocked(rec);
            result = Observation::Invalidated;
        } else {
            if (seeding) {
                // First plain run after (re-)profiling seeds the
                // baseline.
                rec.unitTimeNs = observed;
                rec.confidence = 1;
            } else {
                rec.unitTimeNs = (1.0 - cfg_.emaAlpha) * rec.unitTimeNs
                                 + cfg_.emaAlpha * observed;
                if (rec.confidence < cfg_.maxConfidence)
                    rec.confidence++;
            }
            if (rec.quarantinedVariant >= 0
                && --rec.cooldownLeft == 0) {
                // Cooldown over: force a fresh profile so the
                // quarantined variant gets re-evaluated instead of
                // being exiled forever.
                invalidateLocked(rec);
                result = Observation::Invalidated;
            }
        }
        // Every branch above mutated the record (launches at least).
        stampLocked(rec);
    }
    if (observer)
        observer(demoted);
    return result;
}

Observation
SelectionStore::reportFailure(const std::string &signature,
                              const std::string &device,
                              std::uint64_t units)
{
    Observation result = Observation::Ok;
    SelectionRecord demoted;
    std::function<void(const SelectionRecord &)> observer;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = recs.find(Key{signature, device, bucketOf(units)});
        if (it == recs.end() || !it->second.valid)
            return Observation::Ok;
        if (it->second.predicted && demotionObserver) {
            demoted = it->second;
            observer = demotionObserver;
        }
        result = demoteLocked(it->second);
        stampLocked(it->second);
    }
    if (observer)
        observer(demoted);
    return result;
}

void
SelectionStore::invalidate(const std::string &signature,
                           const std::string &device, unsigned bucket)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucket});
    if (it != recs.end()) {
        invalidateLocked(it->second);
        stampLocked(it->second);
    }
}

void
SelectionStore::blacklistVariant(const std::string &signature,
                                 const std::string &variant,
                                 const std::string &device,
                                 const std::string &reason)
{
    std::vector<SelectionRecord> demotedPredictions;
    std::function<void(const SelectionRecord &)> observer;
    {
        std::lock_guard<std::mutex> lock(mu);
        BlacklistEntry &e =
            blacklist[BlKey{signature, variant, device}];
        e.signature = signature;
        e.variant = variant;
        e.device = device;
        e.reason = reason;
        e.strikes++;
        e.stamp = bumpLocked();
        e.seq = ++seq_;
        // A record serving the blacklisted variant must never
        // warm-start anyone again, whatever its bucket: force a miss,
        // which forces a re-profile that excludes the variant.
        for (auto &[key, rec] : recs) {
            (void)key;
            if (rec.signature == signature && rec.device == device
                && rec.valid && rec.selectedName == variant) {
                if (rec.predicted && demotionObserver)
                    demotedPredictions.push_back(rec);
                invalidateLocked(rec);
                stampLocked(rec);
            }
        }
        if (!demotedPredictions.empty())
            observer = demotionObserver;
    }
    for (const auto &rec : demotedPredictions)
        observer(rec);
}

bool
SelectionStore::isBlacklisted(const std::string &signature,
                              const std::string &variant,
                              const std::string &device) const
{
    std::lock_guard<std::mutex> lock(mu);
    return blacklist.count(BlKey{signature, variant, device}) > 0;
}

std::vector<std::pair<std::string, std::string>>
SelectionStore::blacklistedVariants(const std::string &signature,
                                    const std::string &device) const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &[key, e] : blacklist) {
        (void)key;
        if (e.signature == signature && e.device == device)
            out.emplace_back(e.variant, e.reason);
    }
    return out;
}

std::vector<BlacklistEntry>
SelectionStore::blacklistEntries() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<BlacklistEntry> out;
    out.reserve(blacklist.size());
    for (const auto &[key, e] : blacklist) {
        (void)key;
        out.push_back(e);
    }
    return out;
}

std::size_t
SelectionStore::blacklistSize() const
{
    std::lock_guard<std::mutex> lock(mu);
    return blacklist.size();
}

void
SelectionStore::setProfileObserver(
    std::function<void(const SelectionRecord &)> observer)
{
    std::lock_guard<std::mutex> lock(mu);
    profileObserver = std::move(observer);
}

void
SelectionStore::setDemotionObserver(
    std::function<void(const SelectionRecord &)> observer)
{
    std::lock_guard<std::mutex> lock(mu);
    demotionObserver = std::move(observer);
}

void
SelectionStore::setExtension(const std::string &name,
                             support::Json value)
{
    std::lock_guard<std::mutex> lock(mu);
    if (value.isNull()) {
        // Removal is local-only: no tombstones in the delta protocol,
        // so an erased extension does not propagate (peers keep their
        // copy until overwritten).
        extensions.erase(name);
        return;
    }
    ExtSlot &slot = extensions[name];
    slot.value = std::move(value);
    slot.stamp = bumpLocked();
    slot.seq = ++seq_;
}

std::optional<support::Json>
SelectionStore::extension(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = extensions.find(name);
    if (it == extensions.end())
        return std::nullopt;
    return it->second.value;
}

std::vector<ExtensionEntry>
SelectionStore::extensionEntries() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<ExtensionEntry> out;
    out.reserve(extensions.size());
    for (const auto &[name, slot] : extensions)
        out.push_back(ExtensionEntry{name, slot.value, slot.stamp});
    return out;
}

void
SelectionStore::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    recs.clear();
    blacklist.clear();
    extensions.clear();
}

std::size_t
SelectionStore::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return recs.size();
}

std::vector<SelectionRecord>
SelectionStore::records() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<SelectionRecord> out;
    out.reserve(recs.size());
    for (const auto &[key, rec] : recs)
        out.push_back(rec);
    return out;
}

std::uint64_t
SelectionStore::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return hits_;
}

std::uint64_t
SelectionStore::misses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return misses_;
}

std::uint64_t
SelectionStore::driftInvalidations() const
{
    std::lock_guard<std::mutex> lock(mu);
    return drifts_;
}

std::uint64_t
SelectionStore::quarantineCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return quarantines_;
}

void
SelectionStore::setReplica(std::uint32_t id)
{
    std::lock_guard<std::mutex> lock(mu);
    replica_ = id;
}

std::uint32_t
SelectionStore::replica() const
{
    std::lock_guard<std::mutex> lock(mu);
    return replica_;
}

std::uint64_t
SelectionStore::lamportClock() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lamport_;
}

std::uint64_t
SelectionStore::changeSeq() const
{
    std::lock_guard<std::mutex> lock(mu);
    return seq_;
}

SelectionStore::Changes
SelectionStore::changedSince(std::uint64_t seq) const
{
    std::lock_guard<std::mutex> lock(mu);
    Changes out;
    out.seqHigh = seq_;
    for (const auto &[key, rec] : recs) {
        (void)key;
        if (rec.seq > seq)
            out.records.push_back(rec);
    }
    for (const auto &[key, e] : blacklist) {
        (void)key;
        if (e.seq > seq)
            out.blacklist.push_back(e);
    }
    for (const auto &[name, slot] : extensions) {
        if (slot.seq > seq)
            out.extensions.push_back(
                ExtensionEntry{name, slot.value, slot.stamp});
    }
    return out;
}

SelectionStore::Apply
SelectionStore::applyRemoteRecord(const SelectionRecord &in)
{
    std::lock_guard<std::mutex> lock(mu);
    if (in.stamp.tick > lamport_)
        lamport_ = in.stamp.tick;
    Key key{in.signature, in.device, in.bucket};
    auto it = recs.find(key);
    if (it == recs.end()) {
        SelectionRecord rec = in;
        rec.seq = ++seq_;
        recs.emplace(std::move(key), std::move(rec));
        return Apply::Applied;
    }
    SelectionRecord &local = it->second;
    const bool remoteWins = fed::newerStamp(in.stamp, local.stamp);
    if (!remoteWins && local.vv.contains(in.vv))
        return Apply::Stale;
    SelectionRecord merged = fed::mergeRecord(local, in);
    merged.seq = ++seq_;
    local = std::move(merged);
    return remoteWins ? Apply::Applied : Apply::Merged;
}

SelectionStore::Apply
SelectionStore::applyRemoteBlacklist(const BlacklistEntry &in)
{
    std::lock_guard<std::mutex> lock(mu);
    if (in.stamp.tick > lamport_)
        lamport_ = in.stamp.tick;
    BlKey key{in.signature, in.variant, in.device};
    Apply result = Apply::Applied;
    auto it = blacklist.find(key);
    if (it == blacklist.end()) {
        BlacklistEntry e = in;
        e.seq = ++seq_;
        blacklist.emplace(std::move(key), std::move(e));
    } else {
        BlacklistEntry &local = it->second;
        if (!fed::newerStamp(in.stamp, local.stamp)) {
            if (in.strikes <= local.strikes)
                return Apply::Stale;
            // Local stamp (reason, provenance) holds; only the
            // grow-only strike count absorbs the remote evidence.
            result = Apply::Merged;
        }
        BlacklistEntry merged = fed::mergeBlacklist(local, in);
        merged.seq = ++seq_;
        local = std::move(merged);
    }
    // Mirror blacklistVariant(): any valid record still serving the
    // blacklisted variant is invalidated -- a replicated strike must
    // stop warm starts here just like a local one.  No observers:
    // replicated evidence is not a local mis-prediction.
    for (auto &[k, rec] : recs) {
        (void)k;
        if (rec.signature == in.signature && rec.device == in.device
            && rec.valid && rec.selectedName == in.variant) {
            invalidateLocked(rec);
            stampLocked(rec);
        }
    }
    return result;
}

SelectionStore::Apply
SelectionStore::applyRemoteExtension(const ExtensionEntry &in)
{
    std::lock_guard<std::mutex> lock(mu);
    if (in.stamp.tick > lamport_)
        lamport_ = in.stamp.tick;
    auto it = extensions.find(in.name);
    if (it == extensions.end()) {
        ExtSlot slot;
        slot.value = in.value;
        slot.stamp = in.stamp;
        slot.seq = ++seq_;
        extensions.emplace(in.name, std::move(slot));
        return Apply::Applied;
    }
    ExtSlot &local = it->second;
    if (!fed::newerStamp(in.stamp, local.stamp))
        return Apply::Stale;
    local.value = in.value;
    local.stamp = in.stamp;
    local.seq = ++seq_;
    return Apply::Applied;
}

Json
SelectionStore::toJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    Json arr = Json::array();
    for (const auto &[key, rec] : recs) {
        (void)key;
        arr.push(recordToJson(rec));
    }
    Json blarr = Json::array();
    for (const auto &[key, e] : blacklist) {
        (void)key;
        blarr.push(blacklistToJson(e));
    }
    Json root = Json::object();
    root.set("version", Json(5));
    root.set("records", std::move(arr));
    root.set("blacklist", std::move(blarr));
    if (!extensions.empty()) {
        Json ext = Json::object();
        Json stamps = Json::object();
        for (const auto &[name, slot] : extensions) {
            ext.set(name, slot.value);
            Json js = Json::object();
            js.set("tick", Json(slot.stamp.tick));
            js.set("origin", Json(slot.stamp.origin));
            stamps.set(name, std::move(js));
        }
        root.set("extensions", std::move(ext));
        root.set("extension_stamps", std::move(stamps));
    }
    return root;
}

void
SelectionStore::loadJson(const Json &doc)
{
    // Version 2 added the quarantine fields; version 3 the variant
    // blacklist; version 4 the predicted-selection fields and the
    // extensions object; version 5 the federation envelope (Lamport
    // stamps, version vectors, profiling provenance).  Older
    // documents load with the missing state at rest.
    const auto version = doc.isObject() ? doc.intOr("version", 0) : 0;
    if (version < 1 || version > 5)
        throw std::runtime_error(
            "selection store: unsupported document version");
    std::map<Key, SelectionRecord> loaded;
    for (const Json &jr : doc.at("records").items()) {
        SelectionRecord rec = recordFromJson(jr);
        Key key{rec.signature, rec.device, rec.bucket};
        loaded[std::move(key)] = std::move(rec);
    }
    std::map<BlKey, BlacklistEntry> loadedBl;
    if (doc.has("blacklist")) {
        for (const Json &jb : doc.at("blacklist").items()) {
            BlacklistEntry e = blacklistFromJson(jb);
            BlKey key{e.signature, e.variant, e.device};
            loadedBl[std::move(key)] = std::move(e);
        }
    }
    std::map<std::string, ExtSlot> loadedExt;
    if (doc.has("extensions")) {
        for (const auto &[name, value] : doc.at("extensions").fields()) {
            ExtSlot slot;
            slot.value = value;
            if (doc.has("extension_stamps")
                && doc.at("extension_stamps").has(name)) {
                const Json &js = doc.at("extension_stamps").at(name);
                slot.stamp.tick = js.intOr("tick", 0);
                slot.stamp.origin = static_cast<std::uint32_t>(
                    js.intOr("origin", 0));
            }
            loadedExt[name] = std::move(slot);
        }
    }
    // Everything parsed; only now replace the contents (a malformed
    // document above must not leave a half-loaded store).
    std::lock_guard<std::mutex> lock(mu);
    recs = std::move(loaded);
    blacklist = std::move(loadedBl);
    extensions = std::move(loadedExt);
    // Restore the Lamport clock from the loaded stamps so new local
    // writes outrank everything in the document, and stamp anything a
    // pre-federation document left unstamped -- two replicas seeded
    // from the same legacy file must not present identical stamps
    // over possibly-diverging payloads.
    for (const auto &[key, rec] : recs) {
        (void)key;
        if (rec.stamp.tick > lamport_)
            lamport_ = rec.stamp.tick;
    }
    for (const auto &[key, e] : blacklist) {
        (void)key;
        if (e.stamp.tick > lamport_)
            lamport_ = e.stamp.tick;
    }
    for (const auto &[name, slot] : extensions) {
        (void)name;
        if (slot.stamp.tick > lamport_)
            lamport_ = slot.stamp.tick;
    }
    for (auto &[key, rec] : recs) {
        (void)key;
        if (rec.stamp.tick == 0)
            stampLocked(rec);
        else
            rec.seq = ++seq_;
    }
    for (auto &[key, e] : blacklist) {
        (void)key;
        if (e.stamp.tick == 0)
            e.stamp = bumpLocked();
        e.seq = ++seq_;
    }
    for (auto &[name, slot] : extensions) {
        (void)name;
        if (slot.stamp.tick == 0)
            slot.stamp = bumpLocked();
        slot.seq = ++seq_;
    }
}

namespace {

/** FNV-1a 64-bit hash, the file-content checksum. */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** 16-hex-digit rendering of @p h. */
std::string
hex16(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

support::Status
ioError(const std::string &what, const std::string &path)
{
    return support::Status::unavailable(
        "selection store: " + what + " '" + path + "': "
        + std::strerror(errno));
}

} // namespace

support::Status
SelectionStore::saveFile(const std::string &path) const
{
    // The checksum covers the compact dump of the payload; dump() is
    // deterministic (sorted keys, stable number formatting), so a
    // loader can re-dump the parsed payload and compare.
    const Json payload = toJson();
    Json root = Json::object();
    root.set("checksum", Json(hex16(fnv1a64(payload.dump(0)))));
    root.set("payload", payload);
    const std::string text = root.dump(2) + "\n";

    // Crash-safe sequence: write a sibling temp file, fsync it, then
    // atomically rename over the target.  A crash anywhere in between
    // leaves the previous file intact.
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return ioError("cannot create", tmp);
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return ioError("cannot write", tmp);
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return ioError("cannot fsync", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return ioError("cannot close", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return ioError("cannot rename over", path);
    }
    return support::Status();
}

support::Status
SelectionStore::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return support::Status::notFound(
            "selection store: cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();

    Json doc;
    try {
        doc = Json::parse(buf.str());
    } catch (const std::exception &e) {
        return support::Status::dataLoss(
            "selection store: '" + path + "' is not valid JSON ("
            + e.what() + "); file truncated or corrupt");
    }
    try {
        if (doc.isObject() && doc.has("checksum")) {
            const std::string want = doc.at("checksum").asString();
            const Json &payload = doc.at("payload");
            const std::string got = hex16(fnv1a64(payload.dump(0)));
            if (got != want)
                return support::Status::dataLoss(
                    "selection store: '" + path + "' failed its "
                    "content checksum (expected " + want + ", got "
                    + got + "); refusing to load corrupt data");
            loadJson(payload);
        } else {
            // Legacy naked document (pre-checksum saveFile).
            loadJson(doc);
        }
    } catch (const std::exception &e) {
        return support::Status::dataLoss(
            "selection store: '" + path + "': " + e.what());
    }
    return support::Status();
}

} // namespace store
} // namespace dysel
