#include "selection_store.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dysel {
namespace store {

using support::Json;

unsigned
bucketOf(std::uint64_t units)
{
    unsigned b = 0;
    while (units > 1) {
        units >>= 1;
        ++b;
    }
    return b;
}

std::pair<std::uint64_t, std::uint64_t>
bucketRange(unsigned bucket)
{
    if (bucket == 0)
        return {0, 1};
    if (bucket >= 63)
        return {std::uint64_t{1} << 63, ~std::uint64_t{0}};
    const std::uint64_t lo = std::uint64_t{1} << bucket;
    return {lo, lo * 2 - 1};
}

const char *
observationName(Observation obs)
{
    switch (obs) {
      case Observation::Ok: return "ok";
      case Observation::Quarantined: return "quarantined";
      case Observation::Invalidated: return "invalidated";
    }
    return "?";
}

SelectionStore::SelectionStore(StoreConfig cfg) : cfg_(cfg) {}

std::optional<SelectionRecord>
SelectionStore::lookup(const std::string &signature,
                       const std::string &device,
                       std::uint64_t units) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucketOf(units)});
    if (it == recs.end() || !it->second.valid) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
SelectionStore::recordProfile(const std::string &device,
                              const runtime::LaunchReport &report)
{
    if (!report.profiled || report.selected < 0)
        return;
    std::lock_guard<std::mutex> lock(mu);
    const unsigned bucket = bucketOf(report.totalUnits);
    SelectionRecord &rec =
        recs[Key{report.signature, device, bucket}];
    rec.signature = report.signature;
    rec.device = device;
    rec.bucket = bucket;
    rec.selected = report.selected;
    rec.selectedName = report.selectedName;
    rec.profiles.clear();
    rec.profiles.reserve(report.profiles.size());
    for (const auto &p : report.profiles) {
        StoredProfile sp;
        sp.name = p.name;
        sp.metricNs = static_cast<double>(p.metric);
        sp.spanNs = static_cast<double>(p.span);
        sp.busyNs = static_cast<double>(p.busy);
        sp.units = p.units;
        rec.profiles.push_back(std::move(sp));
    }
    rec.launches++;
    rec.profiledLaunches++;
    // A fresh profile starts a fresh observation history and lifts
    // any quarantine: the offending variant competed again and the
    // measurements above are the new truth.
    rec.confidence = 0;
    rec.unitTimeNs = 0.0;
    rec.valid = true;
    rec.quarantinedVariant = -1;
    rec.cooldownLeft = 0;
}

void
SelectionStore::invalidateLocked(SelectionRecord &rec)
{
    rec.valid = false;
    rec.confidence = 0;
    rec.unitTimeNs = 0.0;
    rec.quarantinedVariant = -1;
    rec.cooldownLeft = 0;
}

Observation
SelectionStore::demoteLocked(SelectionRecord &rec)
{
    if (rec.quarantinedVariant >= 0) {
        // The fallback misbehaved too; nothing left to trust.
        invalidateLocked(rec);
        ++drifts_;
        return Observation::Invalidated;
    }
    // Best profiled runner-up (lowest metric, not the offender).
    int runnerUp = -1;
    for (std::size_t i = 0; i < rec.profiles.size(); ++i) {
        if (static_cast<int>(i) == rec.selected)
            continue;
        if (rec.profiles[i].metricNs <= 0.0)
            continue;
        if (runnerUp < 0
            || rec.profiles[i].metricNs
                   < rec.profiles[runnerUp].metricNs) {
            runnerUp = static_cast<int>(i);
        }
    }
    if (runnerUp < 0) {
        invalidateLocked(rec);
        ++drifts_;
        return Observation::Invalidated;
    }
    rec.quarantinedVariant = rec.selected;
    rec.selected = runnerUp;
    rec.selectedName = rec.profiles[runnerUp].name;
    rec.cooldownLeft = cfg_.quarantineCooldown;
    rec.quarantines++;
    // The fallback needs its own baseline.
    rec.confidence = 0;
    rec.unitTimeNs = 0.0;
    ++quarantines_;
    return Observation::Quarantined;
}

Observation
SelectionStore::observePlain(const std::string &device,
                             const runtime::LaunchReport &report)
{
    if (report.profiled || report.totalUnits == 0)
        return Observation::Ok;
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(
        Key{report.signature, device, bucketOf(report.totalUnits)});
    if (it == recs.end() || !it->second.valid)
        return Observation::Ok; // nothing to check against
    SelectionRecord &rec = it->second;
    rec.launches++;

    const double observed = static_cast<double>(report.elapsed())
                            / static_cast<double>(report.totalUnits);
    const bool seeding = rec.unitTimeNs <= 0.0;
    if (!seeding) {
        const double ratio = observed > rec.unitTimeNs
                                 ? observed / rec.unitTimeNs
                                 : rec.unitTimeNs / observed;
        if (ratio > cfg_.driftFactor)
            return demoteLocked(rec);
    }
    if (seeding) {
        // First plain run after (re-)profiling seeds the baseline.
        rec.unitTimeNs = observed;
        rec.confidence = 1;
    } else {
        rec.unitTimeNs = (1.0 - cfg_.emaAlpha) * rec.unitTimeNs
                         + cfg_.emaAlpha * observed;
        if (rec.confidence < cfg_.maxConfidence)
            rec.confidence++;
    }
    if (rec.quarantinedVariant >= 0 && --rec.cooldownLeft == 0) {
        // Cooldown over: force a fresh profile so the quarantined
        // variant gets re-evaluated instead of being exiled forever.
        invalidateLocked(rec);
        return Observation::Invalidated;
    }
    return Observation::Ok;
}

Observation
SelectionStore::reportFailure(const std::string &signature,
                              const std::string &device,
                              std::uint64_t units)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucketOf(units)});
    if (it == recs.end() || !it->second.valid)
        return Observation::Ok;
    return demoteLocked(it->second);
}

void
SelectionStore::invalidate(const std::string &signature,
                           const std::string &device, unsigned bucket)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = recs.find(Key{signature, device, bucket});
    if (it != recs.end())
        invalidateLocked(it->second);
}

void
SelectionStore::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    recs.clear();
}

std::size_t
SelectionStore::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return recs.size();
}

std::vector<SelectionRecord>
SelectionStore::records() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<SelectionRecord> out;
    out.reserve(recs.size());
    for (const auto &[key, rec] : recs)
        out.push_back(rec);
    return out;
}

std::uint64_t
SelectionStore::hits() const
{
    std::lock_guard<std::mutex> lock(mu);
    return hits_;
}

std::uint64_t
SelectionStore::misses() const
{
    std::lock_guard<std::mutex> lock(mu);
    return misses_;
}

std::uint64_t
SelectionStore::driftInvalidations() const
{
    std::lock_guard<std::mutex> lock(mu);
    return drifts_;
}

std::uint64_t
SelectionStore::quarantineCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return quarantines_;
}

Json
SelectionStore::toJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    Json arr = Json::array();
    for (const auto &[key, rec] : recs) {
        Json profiles = Json::array();
        for (const auto &p : rec.profiles) {
            Json jp = Json::object();
            jp.set("name", Json(p.name));
            jp.set("metric_ns", Json(p.metricNs));
            jp.set("span_ns", Json(p.spanNs));
            jp.set("busy_ns", Json(p.busyNs));
            jp.set("units", Json(p.units));
            profiles.push(std::move(jp));
        }
        Json jr = Json::object();
        jr.set("signature", Json(rec.signature));
        jr.set("device", Json(rec.device));
        jr.set("bucket", Json(rec.bucket));
        jr.set("selected", Json(rec.selected));
        jr.set("selected_name", Json(rec.selectedName));
        jr.set("profiles", std::move(profiles));
        jr.set("launches", Json(rec.launches));
        jr.set("profiled_launches", Json(rec.profiledLaunches));
        jr.set("confidence", Json(rec.confidence));
        jr.set("unit_time_ns", Json(rec.unitTimeNs));
        jr.set("valid", Json(rec.valid));
        jr.set("quarantined_variant", Json(rec.quarantinedVariant));
        jr.set("cooldown_left", Json(rec.cooldownLeft));
        jr.set("quarantines", Json(rec.quarantines));
        arr.push(std::move(jr));
    }
    Json root = Json::object();
    root.set("version", Json(2));
    root.set("records", std::move(arr));
    return root;
}

void
SelectionStore::loadJson(const Json &doc)
{
    // Version 2 added the quarantine fields; version-1 documents
    // load with quarantine state at rest.
    const auto version = doc.isObject() ? doc.intOr("version", 0) : 0;
    if (version != 1 && version != 2)
        throw std::runtime_error(
            "selection store: unsupported document version");
    std::map<Key, SelectionRecord> loaded;
    for (const Json &jr : doc.at("records").items()) {
        SelectionRecord rec;
        rec.signature = jr.at("signature").asString();
        rec.device = jr.at("device").asString();
        rec.bucket = static_cast<unsigned>(jr.at("bucket").asUint());
        rec.selected = static_cast<int>(jr.at("selected").asInt());
        rec.selectedName = jr.stringOr("selected_name", "");
        rec.launches = jr.at("launches").asUint();
        rec.profiledLaunches = jr.intOr("profiled_launches", 0);
        rec.confidence = jr.intOr("confidence", 0);
        rec.unitTimeNs = jr.numberOr("unit_time_ns", 0.0);
        rec.valid = jr.boolOr("valid", true);
        rec.quarantinedVariant =
            static_cast<int>(jr.intOr("quarantined_variant", -1));
        rec.cooldownLeft = jr.intOr("cooldown_left", 0);
        rec.quarantines = jr.intOr("quarantines", 0);
        if (jr.has("profiles")) {
            for (const Json &jp : jr.at("profiles").items()) {
                StoredProfile sp;
                sp.name = jp.stringOr("name", "");
                sp.metricNs = jp.numberOr("metric_ns", 0.0);
                sp.spanNs = jp.numberOr("span_ns", 0.0);
                sp.busyNs = jp.numberOr("busy_ns", 0.0);
                sp.units = jp.intOr("units", 0);
                rec.profiles.push_back(std::move(sp));
            }
        }
        Key key{rec.signature, rec.device, rec.bucket};
        loaded[std::move(key)] = std::move(rec);
    }
    std::lock_guard<std::mutex> lock(mu);
    recs = std::move(loaded);
}

bool
SelectionStore::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << toJson().dump(2) << '\n';
    return static_cast<bool>(out);
}

bool
SelectionStore::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        loadJson(Json::parse(buf.str()));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

} // namespace store
} // namespace dysel
