/**
 * @file
 * Persistent, device-aware selection store.
 *
 * The in-process Runtime remembers selections per signature and
 * forgets them at exit.  The store is the serving-layer complement:
 * records keyed by (kernel signature, device fingerprint,
 * workload-size bucket) that hold the winning variant, the
 * per-variant micro-profiling metrics it was chosen from, usage
 * counts, and a drift-tracked throughput baseline.  JSON save/load
 * gives cross-run warm starts; drift detection invalidates a record
 * (forcing re-profiling) when observed plain-run throughput deviates
 * from the baseline by more than a configurable factor.
 *
 * All public methods are thread-safe; the dispatch service shares one
 * store across all device workers.
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "dysel/report.hh"
#include "support/json.hh"

namespace dysel {
namespace store {

/**
 * Workload-size bucket of a launch: floor(log2(units)), so bucket b
 * covers [2^b, 2^(b+1)) units.  Selections generalize across nearby
 * sizes but not across order-of-magnitude changes (the paper's §4.2
 * input-dependence experiments are exactly about the latter).
 */
unsigned bucketOf(std::uint64_t units);

/** Inclusive [lo, hi] unit range covered by @p bucket. */
std::pair<std::uint64_t, std::uint64_t> bucketRange(unsigned bucket);

/** Store tuning knobs. */
struct StoreConfig
{
    /**
     * Drift threshold: a plain run whose per-unit time differs from
     * the record's baseline by more than this factor (either
     * direction) invalidates the record.
     */
    double driftFactor = 1.5;

    /** EMA weight of a new observation in the throughput baseline. */
    double emaAlpha = 0.3;

    /** Confidence cap (consistent observations since last profile). */
    std::uint64_t maxConfidence = 1000;
};

/** One variant's metrics as captured at selection time. */
struct StoredProfile
{
    std::string name;
    double metricNs = 0; ///< selection metric (span on GPU, busy on CPU)
    double spanNs = 0;
    double busyNs = 0;
    std::uint64_t units = 0; ///< units the variant profiled
};

/** One (signature, device, bucket) selection record. */
struct SelectionRecord
{
    std::string signature;
    std::string device; ///< sim::Device::fingerprint()
    unsigned bucket = 0;

    int selected = -1; ///< registration index of the winner
    std::string selectedName;
    std::vector<StoredProfile> profiles;

    std::uint64_t launches = 0;         ///< launches this record served
    std::uint64_t profiledLaunches = 0; ///< times profiling refreshed it
    /**
     * Staleness/confidence: consistent plain-run observations since
     * the last profile.  Reset to 0 by drift invalidation.
     */
    std::uint64_t confidence = 0;
    /**
     * Plain-run per-unit time baseline (ns/unit), EMA-updated;
     * 0 until the first plain run seeds it.
     */
    double unitTimeNs = 0.0;
    /** False after drift invalidation; invalid records never serve. */
    bool valid = true;
};

/**
 * The persistent selection database.
 */
class SelectionStore
{
  public:
    explicit SelectionStore(StoreConfig cfg = StoreConfig());

    const StoreConfig &config() const { return cfg_; }

    /**
     * Valid record for (@p signature, @p device, bucketOf(@p units)),
     * or nullopt.  Counts toward the hit/miss statistics.
     */
    std::optional<SelectionRecord>
    lookup(const std::string &signature, const std::string &device,
           std::uint64_t units) const;

    /**
     * Ingest a profiled launch: create or refresh the record for the
     * report's (signature, bucket) on @p device.  Ignores reports
     * that did not profile.
     */
    void recordProfile(const std::string &device,
                       const runtime::LaunchReport &report);

    /**
     * Ingest a plain (cache-served) launch: update the throughput
     * baseline and confidence.  Returns false when the observation
     * drifted beyond config().driftFactor and invalidated the record
     * (the next lookup misses, which triggers re-profiling upstream).
     */
    bool observePlain(const std::string &device,
                      const runtime::LaunchReport &report);

    /** Mark one record invalid (administrative invalidation). */
    void invalidate(const std::string &signature,
                    const std::string &device, unsigned bucket);

    /** Remove every record. */
    void clear();

    /** Number of records (valid and invalid). */
    std::size_t size() const;

    /** Copy of all records, ordered by (signature, device, bucket). */
    std::vector<SelectionRecord> records() const;

    /** Lifetime statistics. */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t driftInvalidations() const;

    /** Serialize all records (deterministic field and record order). */
    support::Json toJson() const;

    /**
     * Replace the contents from toJson() output.  Throws
     * std::runtime_error on a malformed document.
     */
    void loadJson(const support::Json &doc);

    /** Save to / load from a JSON file.  Return success. */
    bool saveFile(const std::string &path) const;
    bool loadFile(const std::string &path);

  private:
    using Key = std::tuple<std::string, std::string, unsigned>;

    mutable std::mutex mu;
    StoreConfig cfg_;
    std::map<Key, SelectionRecord> recs;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    std::uint64_t drifts_ = 0;
};

} // namespace store
} // namespace dysel
