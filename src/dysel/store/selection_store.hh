/**
 * @file
 * Persistent, device-aware selection store.
 *
 * The in-process Runtime remembers selections per signature and
 * forgets them at exit.  The store is the serving-layer complement:
 * records keyed by (kernel signature, device fingerprint,
 * workload-size bucket) that hold the winning variant, the
 * per-variant micro-profiling metrics it was chosen from, usage
 * counts, and a drift-tracked throughput baseline.  JSON save/load
 * gives cross-run warm starts; drift detection invalidates a record
 * (forcing re-profiling) when observed plain-run throughput deviates
 * from the baseline by more than a configurable factor.
 *
 * All public methods are thread-safe; the dispatch service shares one
 * store across all device workers.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "dysel/fed/version.hh"
#include "dysel/report.hh"
#include "support/json.hh"
#include "support/status.hh"

namespace dysel {
namespace store {

/**
 * Workload-size bucket of a launch: floor(log2(units)), so bucket b
 * covers [2^b, 2^(b+1)) units.  Selections generalize across nearby
 * sizes but not across order-of-magnitude changes (the paper's §4.2
 * input-dependence experiments are exactly about the latter).
 */
unsigned bucketOf(std::uint64_t units);

/** Inclusive [lo, hi] unit range covered by @p bucket. */
std::pair<std::uint64_t, std::uint64_t> bucketRange(unsigned bucket);

/**
 * Smallest launchable unit count that maps to @p bucket: the low edge
 * of the bucket's range, except 1 for bucket 0 (0 units is a
 * degenerate launch).  Inverse of bucketOf() for interpolation
 * arithmetic: bucketOf(unitsForBucket(b)) == min(b, 63) for every b.
 */
std::uint64_t unitsForBucket(unsigned bucket);

/** Store tuning knobs. */
struct StoreConfig
{
    /**
     * Drift threshold: a plain run whose per-unit time differs from
     * the record's baseline by more than this factor (either
     * direction) quarantines or invalidates the record.
     */
    double driftFactor = 1.5;

    /** EMA weight of a new observation in the throughput baseline. */
    double emaAlpha = 0.3;

    /** Confidence cap (consistent observations since last profile). */
    std::uint64_t maxConfidence = 1000;

    /**
     * Plain-run observations a quarantined record serves its
     * fallback variant before it is invalidated anyway (forcing a
     * fresh profile to re-evaluate the quarantined variant).
     */
    std::uint64_t quarantineCooldown = 8;

    /**
     * Plain launches a *predicted* record (seedPrediction) serves
     * before it is invalidated to force a confirming profile;
     * 0 leaves predicted records in place until drift, failure, or a
     * blacklist catches them.
     */
    std::uint64_t predictedProbationLaunches = 0;
};

/** What observePlain() / reportFailure() did to the record. */
enum class Observation {
    /** Observation consistent with the baseline (or no record). */
    Ok,
    /**
     * The selected variant misbehaved; the record now serves the
     * next-best profiled variant and will re-profile after a
     * cooldown.
     */
    Quarantined,
    /**
     * The record was invalidated; the next lookup misses, which
     * triggers re-profiling upstream.
     */
    Invalidated,
};

/** Stable lower-case name of @p obs (e.g. "quarantined"). */
const char *observationName(Observation obs);

/** One variant's metrics as captured at selection time. */
struct StoredProfile
{
    std::string name;
    double metricNs = 0; ///< selection metric (span on GPU, busy on CPU)
    double spanNs = 0;
    double busyNs = 0;
    std::uint64_t units = 0; ///< units the variant profiled
};

/** One (signature, device, bucket) selection record. */
struct SelectionRecord
{
    std::string signature;
    std::string device; ///< sim::Device::fingerprint()
    unsigned bucket = 0;

    int selected = -1; ///< registration index of the winner
    std::string selectedName;
    std::vector<StoredProfile> profiles;

    std::uint64_t launches = 0;         ///< launches this record served
    std::uint64_t profiledLaunches = 0; ///< times profiling refreshed it
    /**
     * Staleness/confidence: consistent plain-run observations since
     * the last profile.  Reset to 0 by drift invalidation.
     */
    std::uint64_t confidence = 0;
    /**
     * Plain-run per-unit time baseline (ns/unit), EMA-updated;
     * 0 until the first plain run seeds it.
     */
    double unitTimeNs = 0.0;
    /** False after drift invalidation; invalid records never serve. */
    bool valid = true;

    /**
     * Registration index of the variant quarantine demoted, or -1
     * when the record is not quarantined.  While quarantined, the
     * record serves the next-best profiled variant.
     */
    int quarantinedVariant = -1;
    /**
     * Plain-run observations left before a quarantined record is
     * invalidated (forced re-profile); 0 when not quarantined.
     */
    std::uint64_t cooldownLeft = 0;
    /** Times this record's selection was quarantined, lifetime. */
    std::uint64_t quarantines = 0;

    /**
     * True when the selection was seeded by the predictor
     * (seedPrediction) rather than measured by a profiling pass.
     * Cleared by the next recordProfile() of the key.  Predicted
     * records carry no profiles, so any demotion invalidates them --
     * a bad prediction always falls back to a forced profile.
     */
    bool predicted = false;
    /** Calibrated confidence the prediction carried (0 if measured). */
    double predictedConfidence = 0.0;

    /**
     * Federation metadata (DESIGN §13).  `stamp` is the Lamport time
     * of the last payload write; `vv` the per-replica write history
     * the record has absorbed.  Both persist (format version 5) and
     * drive the deterministic merge rule in dysel/fed/merge.hh.
     */
    fed::Stamp stamp;
    fed::VersionVec vv;

    /**
     * Correlation id of the profiling launch that measured the
     * current selection, and the replica that ran it; 0 for predicted
     * or legacy records.  A follower replica's warm hit traces back
     * to the owner's profiling pass through this pair.
     */
    std::uint64_t profileCid = 0;
    std::uint32_t profileOrigin = 0;

    /**
     * Store-local change cursor: bumped on every write (local or
     * merged-in), never persisted.  Peers pull "everything with
     * seq > my last-seen" -- the anti-entropy delta filter.
     */
    std::uint64_t seq = 0;
};

/**
 * One blacklisted variant: the guard caught it misbehaving
 * (corrupt output, out-of-bounds write, NaN poisoning, or a hang)
 * strikeLimit times.  Keyed by (signature, variant, device
 * fingerprint): a variant miscompiled for one device may be fine on
 * another.  Blacklist entries survive save/load, so dyseld never
 * re-serves a known-bad variant across restarts.
 */
struct BlacklistEntry
{
    std::string signature;
    std::string variant; ///< variant name (stable across reloads)
    std::string device;  ///< sim::Device::fingerprint()
    std::string reason;  ///< guard check name of the final strike
    std::uint64_t strikes = 0; ///< times the guard reported it

    /** Lamport time of the last strike (federation merge metadata). */
    fed::Stamp stamp;
    /** Store-local change cursor; never persisted. */
    std::uint64_t seq = 0;
};

/** One store extension with its federation metadata. */
struct ExtensionEntry
{
    std::string name;
    support::Json value;
    fed::Stamp stamp;
};

/**
 * JSON (de)serialization of one record / blacklist entry -- the
 * same encoding the store document and the federation delta wire
 * format share, so a replicated record round-trips byte-identically.
 * recordFromJson/blacklistFromJson throw std::runtime_error on
 * malformed input.
 */
support::Json recordToJson(const SelectionRecord &rec);
SelectionRecord recordFromJson(const support::Json &doc);
support::Json blacklistToJson(const BlacklistEntry &entry);
BlacklistEntry blacklistFromJson(const support::Json &doc);

/**
 * The persistent selection database.
 */
class SelectionStore
{
  public:
    explicit SelectionStore(StoreConfig cfg = StoreConfig());

    const StoreConfig &config() const { return cfg_; }

    /**
     * Valid record for (@p signature, @p device, bucketOf(@p units)),
     * or nullopt.  Counts toward the hit/miss statistics.
     */
    std::optional<SelectionRecord>
    lookup(const std::string &signature, const std::string &device,
           std::uint64_t units) const;

    /**
     * Like lookup(), but does NOT count toward the hit/miss
     * statistics.  The batcher uses this to probe whether a gathered
     * batch can be served warm without the probe itself skewing the
     * per-job hit-rate accounting (the fused launch then reports one
     * aggregate hit via the service's own counters).
     */
    std::optional<SelectionRecord>
    peek(const std::string &signature, const std::string &device,
         std::uint64_t units) const;

    /**
     * Account @p jobs launches served from the record covering
     * (@p signature, @p device, bucketOf(@p units)) without feeding
     * the drift baseline.  Fused launches use this instead of
     * observePlain(): a fused launch amortizes per-launch overhead
     * across members, so its per-unit time is not comparable to the
     * solo baseline and would trigger false drift quarantines.
     * No-op when no valid record covers the key.
     */
    void noteServed(const std::string &signature,
                    const std::string &device, std::uint64_t units,
                    std::uint64_t jobs);

    /**
     * Ingest a profiled launch: create or refresh the record for the
     * report's (signature, bucket) on @p device.  Ignores reports
     * that did not profile.  Fires the profile observer (the
     * predictor's training feed) outside the store lock.
     */
    void recordProfile(const std::string &device,
                       const runtime::LaunchReport &report,
                       std::uint64_t profileCid = 0);

    /**
     * Seed a *predicted* selection for (@p signature, @p device,
     * bucketOf(@p units)): a valid record that serves @p variantName
     * without any profiling having run.  No-op when a valid record
     * already covers the key (measurements outrank predictions).
     * The record carries no per-variant profiles, so the first drift
     * or failure invalidates it outright -- the safety net for a bad
     * prediction is a forced profile, never a guessier guess.
     */
    void seedPrediction(const std::string &signature,
                        const std::string &device, std::uint64_t units,
                        int variantIndex, const std::string &variantName,
                        double confidence);

    /**
     * Ingest a plain (cache-served) launch: update the throughput
     * baseline and confidence.  An observation that drifts beyond
     * config().driftFactor quarantines the record (first offense
     * with a known runner-up) or invalidates it; a quarantined
     * record is also invalidated once its cooldown runs out.
     */
    Observation observePlain(const std::string &device,
                             const runtime::LaunchReport &report);

    /**
     * Report that a launch served from this record failed outright
     * (e.g. an injected launch failure on a warm-started selection).
     * Same escalation as a drifted observation: quarantine first,
     * invalidate on repeat.  Ok when no record covers the key.
     */
    Observation reportFailure(const std::string &signature,
                              const std::string &device,
                              std::uint64_t units);

    /** Mark one record invalid (administrative invalidation). */
    void invalidate(const std::string &signature,
                    const std::string &device, unsigned bucket);

    /**
     * Blacklist (@p signature, @p variant) on @p device: the guard
     * caught the variant misbehaving.  Repeated calls bump the strike
     * count and keep the latest reason.  Any valid record of the
     * signature on the device whose selection is the variant is
     * invalidated (whatever its bucket), so lookups miss and
     * re-profiling -- which excludes the variant -- is forced.
     */
    void blacklistVariant(const std::string &signature,
                          const std::string &variant,
                          const std::string &device,
                          const std::string &reason);

    /** Whether (@p signature, @p variant, @p device) is blacklisted. */
    bool isBlacklisted(const std::string &signature,
                       const std::string &variant,
                       const std::string &device) const;

    /**
     * (variant name, reason) of every blacklisted variant of
     * @p signature on @p device; used to seed a Runtime's guard.
     */
    std::vector<std::pair<std::string, std::string>>
    blacklistedVariants(const std::string &signature,
                        const std::string &device) const;

    /** Copy of the whole blacklist, deterministically ordered. */
    std::vector<BlacklistEntry> blacklistEntries() const;

    /** Number of blacklist entries. */
    std::size_t blacklistSize() const;

    /**
     * Observer of every completed profiling pass, called with a copy
     * of the freshly refreshed record *after* the store lock is
     * released (the callback may call back into the store).  This is
     * the predictor's training-example feed -- the store's own
     * history, not a parallel log.  One observer; empty disables.
     */
    void setProfileObserver(
        std::function<void(const SelectionRecord &)> observer);

    /**
     * Observer of predicted-record demotions: called, outside the
     * lock, with a copy of the record as it was *before* demotion
     * whenever a record with predicted == true is quarantined or
     * invalidated by drift, failure, or a blacklist.  Probation
     * expiry (predictedProbationLaunches) does not fire it -- that is
     * scheduled confirmation, not a mis-prediction.
     */
    void setDemotionObserver(
        std::function<void(const SelectionRecord &)> observer);

    /**
     * Attach an extension document persisted with the store (format
     * version 4): a named payload such as the selection predictor's
     * learned model.  Null @p value removes the extension.
     */
    void setExtension(const std::string &name, support::Json value);

    /** Extension payload by name, or nullopt. */
    std::optional<support::Json>
    extension(const std::string &name) const;

    /** All extensions with their stamps, ordered by name. */
    std::vector<ExtensionEntry> extensionEntries() const;

    // ---- Federation (DESIGN §13) -------------------------------
    //
    // The store is the *local engine*; the replication layer in
    // src/dysel/fed/ drives it through the calls below.  Local
    // mutators stamp what they touch with (++lamport, replica) and a
    // fresh change cursor; applyRemote*() folds a peer's items in
    // through the deterministic merge rule (freshest stamp wins,
    // version vectors join, blacklists grow) WITHOUT firing the
    // profile/demotion observers -- replicated evidence is not local
    // training signal.

    /** Set this store's replica id (stamps carry it).  Default 0. */
    void setReplica(std::uint32_t id);
    std::uint32_t replica() const;

    /** Current Lamport clock (max of local writes and merged stamps). */
    std::uint64_t lamportClock() const;

    /** Current change cursor (seq of the most recent write). */
    std::uint64_t changeSeq() const;

    /** Everything a peer at cursor @p seq has not seen yet. */
    struct Changes
    {
        std::vector<SelectionRecord> records;
        std::vector<BlacklistEntry> blacklist;
        std::vector<ExtensionEntry> extensions;
        std::uint64_t seqHigh = 0; ///< the peer's next cursor
    };
    Changes changedSince(std::uint64_t seq) const;

    /** What applying one remote item did. */
    enum class Apply {
        Applied, ///< the remote payload won (installed or replaced)
        Merged,  ///< local payload kept, but its version vector grew
        Stale,   ///< already covered; no change at all
    };

    Apply applyRemoteRecord(const SelectionRecord &rec);
    Apply applyRemoteBlacklist(const BlacklistEntry &entry);
    Apply applyRemoteExtension(const ExtensionEntry &entry);

    /** Remove every record. */
    void clear();

    /** Number of records (valid and invalid). */
    std::size_t size() const;

    /** Copy of all records, ordered by (signature, device, bucket). */
    std::vector<SelectionRecord> records() const;

    /** Lifetime statistics. */
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t driftInvalidations() const;
    std::uint64_t quarantineCount() const;

    /** Serialize all records (deterministic field and record order). */
    support::Json toJson() const;

    /**
     * Replace the contents from toJson() output.  Throws
     * std::runtime_error on a malformed document.
     */
    void loadJson(const support::Json &doc);

    /**
     * Crash-safe save: the document is written to "<path>.tmp",
     * fsync'd, and atomically renamed over @p path, so a crash at any
     * point leaves either the old or the new file -- never a torn
     * one.  The file embeds an FNV-1a checksum of its payload.
     * Unavailable on I/O errors (the previous file, if any, is left
     * untouched).
     */
    support::Status saveFile(const std::string &path) const;

    /**
     * Load a saveFile() product.  NotFound when @p path does not
     * exist (callers usually treat that as a cold start); DataLoss
     * when the file is truncated, unparseable, fails its checksum, or
     * carries an unsupported version.  On any failure the in-memory
     * contents are left untouched -- the store never partially loads.
     * Legacy (pre-checksum) naked documents still load.
     */
    support::Status loadFile(const std::string &path);

  private:
    using Key = std::tuple<std::string, std::string, unsigned>;
    /** (signature, variant name, device fingerprint). */
    using BlKey = std::tuple<std::string, std::string, std::string>;

    /**
     * Demote @p rec's selection: switch to the best profiled
     * runner-up and start the cooldown, or invalidate when the
     * record is already quarantined / has no runner-up.  Caller
     * holds the lock.
     */
    Observation demoteLocked(SelectionRecord &rec);

    /** Invalidate @p rec in place.  Caller holds the lock. */
    void invalidateLocked(SelectionRecord &rec);

    /** Next local write stamp.  Caller holds the lock. */
    fed::Stamp bumpLocked();

    /** Stamp a local payload write of @p rec.  Caller holds the lock. */
    void stampLocked(SelectionRecord &rec);

    /** One extension payload with federation metadata. */
    struct ExtSlot
    {
        support::Json value;
        fed::Stamp stamp;
        std::uint64_t seq = 0;
    };

    mutable std::mutex mu;
    StoreConfig cfg_;
    std::map<Key, SelectionRecord> recs;
    std::map<BlKey, BlacklistEntry> blacklist;
    std::map<std::string, ExtSlot> extensions;
    std::function<void(const SelectionRecord &)> profileObserver;
    std::function<void(const SelectionRecord &)> demotionObserver;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    std::uint64_t drifts_ = 0;
    std::uint64_t quarantines_ = 0;
    std::uint32_t replica_ = 0;
    std::uint64_t lamport_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace store
} // namespace dysel
