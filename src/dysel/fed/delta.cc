#include "delta.hh"

#include <cstdio>
#include <stdexcept>

namespace dysel {
namespace fed {

using support::Json;
using support::Status;

namespace {

/** 16-hex-digit rendering (JSON doubles lose 64-bit ints). */
std::string
hex16(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::uint64_t
parseHex16(const std::string &s)
{
    return std::stoull(s, nullptr, 16);
}

} // namespace

Json
encodeDelta(const Delta &delta)
{
    Json recs = Json::array();
    for (const auto &rec : delta.records)
        recs.push(store::recordToJson(rec));
    Json bl = Json::array();
    for (const auto &e : delta.blacklist)
        bl.push(store::blacklistToJson(e));
    Json exts = Json::array();
    for (const auto &ext : delta.extensions) {
        Json je = Json::object();
        je.set("name", Json(ext.name));
        je.set("value", ext.value);
        je.set("stamp_tick", Json(ext.stamp.tick));
        je.set("stamp_origin", Json(ext.stamp.origin));
        exts.push(std::move(je));
    }
    Json doc = Json::object();
    doc.set("fed_version", Json(1));
    doc.set("replica", Json(delta.replica));
    doc.set("incarnation", Json(hex16(delta.incarnation)));
    doc.set("seq_high", Json(delta.seqHigh));
    doc.set("records", std::move(recs));
    doc.set("blacklist", std::move(bl));
    doc.set("extensions", std::move(exts));
    return doc;
}

Status
decodeDelta(const Json &doc, Delta &out)
{
    if (!doc.isObject())
        return Status::invalidArgument(
            "fed delta: document is not an object");
    try {
        const auto version = doc.intOr("fed_version", 0);
        if (version != 1)
            return Status::invalidArgument(
                "fed delta: unsupported fed_version "
                + std::to_string(version));
        Delta d;
        d.replica =
            static_cast<std::uint32_t>(doc.at("replica").asUint());
        d.incarnation = parseHex16(doc.at("incarnation").asString());
        d.seqHigh = doc.at("seq_high").asUint();
        for (const Json &jr : doc.at("records").items())
            d.records.push_back(store::recordFromJson(jr));
        for (const Json &jb : doc.at("blacklist").items())
            d.blacklist.push_back(store::blacklistFromJson(jb));
        for (const Json &je : doc.at("extensions").items()) {
            store::ExtensionEntry ext;
            ext.name = je.at("name").asString();
            ext.value = je.at("value");
            ext.stamp.tick = je.at("stamp_tick").asUint();
            ext.stamp.origin = static_cast<std::uint32_t>(
                je.at("stamp_origin").asUint());
            d.extensions.push_back(std::move(ext));
        }
        out = std::move(d);
    } catch (const std::exception &e) {
        return Status::invalidArgument(
            std::string("fed delta: truncated or garbled payload: ")
            + e.what());
    }
    return Status();
}

} // namespace fed
} // namespace dysel
