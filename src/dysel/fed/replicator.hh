/**
 * @file
 * The pluggable replication layer over SelectionStore (DESIGN §13).
 *
 * One Replicator per replica: it owns the peer table, a background
 * anti-entropy thread that pulls deltas from every peer over the
 * support/net HTTP front, and the distributed leader/follower
 * protocol that decides who profiles a cold key.
 *
 * Pull-only gossip: each replica serves GET /fed/delta?since=CURSOR
 * from its store's change log and pulls the same from every peer on
 * an interval.  Cursors are per-(puller, peer); a peer restart is
 * detected through its incarnation and resets the cursor to 0 (full
 * resync).  All mutation flows through the store's applyRemote*()
 * merge rule, so delta ordering, duplication, and partitions cannot
 * diverge replicas.
 *
 * Cold-key resolution mirrors the in-process ProfileCoalescer,
 * stretched across the fleet: the key's rendezvous-hash owner is the
 * single profiler.  A non-owner asks the owner for a lease
 * (GET /fed/lease): the owner answers "record" (already profiled --
 * warm-start now), "granted" (you profile; the record flows back by
 * gossip), or "wait" (someone is profiling; park on the
 * remote-pending state and poll).  Every transport failure degrades
 * to profiling locally -- federation is an optimization, never a
 * correctness dependency.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dysel/store/selection_store.hh"
#include "support/metrics.hh"

namespace dysel {
namespace fed {

/** One replica's federation shape. */
struct ReplicatorConfig
{
    /** This replica's id in [0, fleetSize). */
    std::uint32_t replica = 0;

    /** Replicas in the fleet (ownership hashes over this). */
    std::uint32_t fleetSize = 1;

    /** Peer admin addresses, "host:port" (self excluded). */
    std::vector<std::string> peers;

    /** Anti-entropy pull interval. */
    int syncIntervalMs = 50;

    /**
     * Longest a non-owner parks on a remote-pending cold key before
     * giving up and profiling locally.
     */
    int leaseWaitMs = 2000;

    /** Poll cadence while parked. */
    int leasePollMs = 10;

    /**
     * Owner-side lease expiry: a granted lease whose record never
     * arrived (grantee crashed) is re-grantable after this long.
     */
    int leaseTimeoutMs = 4000;

    /** Per-request transport deadline (httpGet). */
    int httpTimeoutMs = 1000;
};

/** The replication layer. */
class Replicator
{
  public:
    /** @p store must outlive the replicator. */
    Replicator(store::SelectionStore &store, ReplicatorConfig cfg);
    ~Replicator();

    Replicator(const Replicator &) = delete;
    Replicator &operator=(const Replicator &) = delete;

    const ReplicatorConfig &config() const { return cfg_; }

    /** Counters land here when set (fed.* namespace). */
    void bindMetrics(support::MetricsRegistry *reg);

    /** Spawn the anti-entropy thread.  Idempotent. */
    void start();

    /** Stop and join the anti-entropy thread.  Idempotent. */
    void stop();

    /** One synchronous pull round over every peer (tests, drain). */
    void syncNow();

    /**
     * Block until every peer answers /fed/info (their identities are
     * then learned and lease routing works), or @p timeoutMs passes.
     * Call before offering load: a storm started against unreachable
     * peers degrades cold misses to local profiling (fed.fallback),
     * which is safe but defeats the fleet's exactly-once economy.
     */
    bool awaitPeers(int timeoutMs);

    /** This process incarnation (changes across restarts). */
    std::uint64_t incarnation() const { return incarnation_; }

    /** Whether this replica owns (signature, device, bucket). */
    bool owns(const std::string &signature, const std::string &device,
              unsigned bucket) const;

    /** What resolveCold() decided for a cold profilable miss. */
    struct Resolve
    {
        enum Kind {
            /** Profile here: we own the key (or federation failed
             *  over).  The in-process coalescer still dedups local
             *  concurrency. */
            LocalProfile,
            /** The replicated record is in the store now: re-lookup
             *  and serve warm. */
            Warm,
            /** The owner granted us the fleet-wide profiling lease:
             *  profile here; gossip carries the record back. */
            LeaseGranted,
            /** Owner unreachable or lease wait timed out: profile
             *  locally (counted in fed.fallback). */
            Fallback,
        };
        Kind kind = LocalProfile;

        /** Warm only: the owning profile pass's correlation id and
         *  the replica that ran it -- the cross-replica trace link. */
        std::uint64_t ownerCid = 0;
        std::uint32_t profileOrigin = 0;

        /** Milliseconds parked on the remote-pending state. */
        double waitedMs = 0.0;
    };

    /**
     * Resolve a cold profilable miss of (@p signature, @p device,
     * bucketOf(@p units)).  Blocks up to leaseWaitMs while parked on
     * a remote-pending key.  Thread-safe.
     */
    Resolve resolveCold(const std::string &signature,
                        const std::string &device,
                        std::uint64_t units);

    /**
     * Serve one federation endpoint (target like
     * "/fed/delta?since=42").  Returns (HTTP status, JSON body).
     * Thread-safe; called from the admin HTTP front.
     */
    struct Reply
    {
        int status = 200;
        std::string body;
    };
    Reply handleFed(const std::string &target);

    /** /debug/peers document: per-peer sync and lease state. */
    support::Json peersJson() const;

    /**
     * Mark this replica drained (its storm is over; no more local
     * writes).  /fed/info advertises it so peers can detect
     * fleet-wide quiescence.
     */
    void markDrained();

    /**
     * Block until every peer is drained and reports the same store
     * digest as ours (fleet-wide convergence), or @p timeoutMs
     * passes.  Peers that vanish after matching while drained count
     * as converged (they saved and exited).  Call after
     * markDrained().
     */
    bool awaitQuiescence(int timeoutMs);

    /** FNV-1a64 of the store's serialized form (convergence probe). */
    std::uint64_t digest() const;

  private:
    struct Peer
    {
        std::string host;
        std::uint16_t port = 0;
        /** Peer replica id, learned from its first delta/info. */
        std::int64_t replica = -1;
        std::uint64_t incarnation = 0;
        std::uint64_t cursor = 0;
        std::uint64_t pulls = 0;
        std::uint64_t failures = 0;
        std::uint64_t applied = 0;
        std::string lastError;
        bool reachable = false;
        /** Last quiescence probe of this peer. */
        bool sawDrained = false;
        std::uint64_t lastDigest = 0;
    };

    struct Lease
    {
        std::uint32_t holder = 0;
        std::chrono::steady_clock::time_point expiry;
    };

    void syncLoop();
    /** Pull and apply one peer's delta.  Caller must NOT hold mu. */
    void pullPeer(std::size_t idx);
    /** Refresh peer identity via /fed/info.  Caller must NOT hold mu. */
    void probePeer(std::size_t idx);
    Reply deltaReply(const std::map<std::string, std::string> &query);
    Reply leaseReply(const std::map<std::string, std::string> &query);
    Reply infoReply(const std::map<std::string, std::string> &query);
    void count(const char *name, std::uint64_t delta = 1);

    store::SelectionStore &store_;
    const ReplicatorConfig cfg_;
    std::uint64_t incarnation_ = 0;

    /**
     * Guards reg_: bindMetrics() races the sync thread and the HTTP
     * front, and holding the lock across the increment means that
     * once bindMetrics(nullptr) returns, no in-flight count() can
     * still touch the old (possibly dying) registry.
     */
    mutable std::mutex regMu;
    support::MetricsRegistry *reg_ = nullptr;

    mutable std::mutex mu;
    std::vector<Peer> peers_;
    std::map<std::string, Lease> leases_;
    bool drained_ = false;

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::mutex wakeMu;
    std::condition_variable wakeCv;
};

} // namespace fed
} // namespace dysel
