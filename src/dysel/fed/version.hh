/**
 * @file
 * Versioning primitives of the selection-federation layer
 * (DESIGN §13).
 *
 * Every replicated item (selection record, blacklist entry, store
 * extension) carries two pieces of causal metadata:
 *
 *   - a Stamp: the Lamport time of the item's last payload write,
 *     qualified by the writing replica.  Stamps are totally ordered
 *     (tick first, origin as the tie-break), which makes
 *     "freshest evidence wins" a deterministic merge rule -- two
 *     replicas comparing the same pair of stamps always agree on the
 *     winner, whatever order the deltas arrived in.
 *
 *   - a VersionVec: per-origin high-water marks of every write the
 *     item has absorbed.  Vectors join under elementwise max, so a
 *     merged record remembers both parents' histories; a delta whose
 *     stamp loses and whose vector is already contained is a no-op,
 *     which is what makes merge idempotent.
 *
 * Header-only on purpose: the store (a lower layer than fed) embeds
 * these types in its records without linking the federation library.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/json.hh"

namespace dysel {
namespace fed {

/** Lamport time of one payload write: (tick, writing replica). */
struct Stamp
{
    std::uint64_t tick = 0;
    std::uint32_t origin = 0;

    bool operator==(const Stamp &o) const
    {
        return tick == o.tick && origin == o.origin;
    }
    bool operator!=(const Stamp &o) const { return !(*this == o); }
};

/**
 * Total order over stamps: higher tick wins; equal ticks break the
 * tie by origin (any deterministic tie-break works -- concurrent
 * writes with equal ticks at different replicas must resolve the same
 * way everywhere).
 */
inline bool
newerStamp(const Stamp &a, const Stamp &b)
{
    if (a.tick != b.tick)
        return a.tick > b.tick;
    return a.origin > b.origin;
}

/** Per-origin write high-water marks of one replicated item. */
struct VersionVec
{
    std::map<std::uint32_t, std::uint64_t> ticks;

    /** Record a write by @p origin at @p tick. */
    void observe(std::uint32_t origin, std::uint64_t tick)
    {
        auto &t = ticks[origin];
        if (tick > t)
            t = tick;
    }

    /** Elementwise max with @p other (semilattice join). */
    void join(const VersionVec &other)
    {
        for (const auto &[origin, tick] : other.ticks)
            observe(origin, tick);
    }

    /** Whether every entry of @p other is already covered here. */
    bool contains(const VersionVec &other) const
    {
        for (const auto &[origin, tick] : other.ticks) {
            auto it = ticks.find(origin);
            if (it == ticks.end() || it->second < tick)
                return false;
        }
        return true;
    }

    bool empty() const { return ticks.empty(); }

    bool operator==(const VersionVec &o) const
    {
        return ticks == o.ticks;
    }
    bool operator!=(const VersionVec &o) const { return !(*this == o); }

    /** {"<origin>": tick, ...} with string keys (JSON objects). */
    support::Json toJson() const
    {
        support::Json out = support::Json::object();
        for (const auto &[origin, tick] : ticks)
            out.set(std::to_string(origin),
                    support::Json(static_cast<double>(tick)));
        return out;
    }

    static VersionVec fromJson(const support::Json &doc)
    {
        VersionVec vv;
        if (!doc.isObject())
            return vv;
        for (const auto &[key, value] : doc.fields())
            vv.ticks[static_cast<std::uint32_t>(
                std::stoul(key))] = value.asUint();
        return vv;
    }
};

} // namespace fed
} // namespace dysel
