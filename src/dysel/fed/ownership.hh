/**
 * @file
 * Consistent-hash ownership of selection keys (DESIGN §13).
 *
 * Exactly one replica in an N-replica fleet owns each (signature,
 * device fingerprint, size bucket): the owner pays the key's one
 * fleet-wide micro-profiling pass; every other replica parks on a
 * remote-pending state and warm-starts from the replicated record.
 *
 * Rendezvous (highest-random-weight) hashing: each replica id scores
 * FNV-1a64(key # id) and the highest score owns.  Replicas agree on
 * the owner with no coordination beyond knowing the fleet size, and
 * growing the fleet from N to N+1 reassigns only ~1/(N+1) of the
 * keys -- no modulo reshuffle.
 */
#pragma once

#include <cstdint>
#include <string>

namespace dysel {
namespace fed {

/** Canonical "<signature>|<device>|<bucket>" key string. */
std::string keyString(const std::string &signature,
                      const std::string &device, unsigned bucket);

/**
 * Owning replica id (in [0, fleetSize)) of the key; 0 when
 * @p fleetSize is 0 or 1.
 */
std::uint32_t ownerOf(const std::string &signature,
                      const std::string &device, unsigned bucket,
                      std::uint32_t fleetSize);

} // namespace fed
} // namespace dysel
