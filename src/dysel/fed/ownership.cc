#include "ownership.hh"

namespace dysel {
namespace fed {

namespace {

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

std::string
keyString(const std::string &signature, const std::string &device,
          unsigned bucket)
{
    return signature + "|" + device + "|" + std::to_string(bucket);
}

std::uint32_t
ownerOf(const std::string &signature, const std::string &device,
        unsigned bucket, std::uint32_t fleetSize)
{
    if (fleetSize <= 1)
        return 0;
    const std::string key = keyString(signature, device, bucket);
    std::uint32_t best = 0;
    std::uint64_t bestScore = 0;
    for (std::uint32_t r = 0; r < fleetSize; ++r) {
        const std::uint64_t score =
            fnv1a64(key + "#" + std::to_string(r));
        if (r == 0 || score > bestScore) {
            best = r;
            bestScore = score;
        }
    }
    return best;
}

} // namespace fed
} // namespace dysel
