/**
 * @file
 * The federation merge rule as pure functions (DESIGN §13).
 *
 * Everything the fleet converges on reduces to these three
 * deterministic, side-effect-free merges.  They form a join
 * semilattice over each item type:
 *
 *   - commutative: merge(a, b) == merge(b, a)
 *   - associative: merge order over any set of versions is irrelevant
 *   - idempotent:  merge(a, a) == a
 *
 * which is what lets replicas apply deltas in any interleaving --
 * with duplicates, reorderings, partitions healed late -- and still
 * reach byte-identical stores.  tests/fed_merge_property_test.cc
 * replays thousands of shuffled interleavings against exactly these
 * functions; SelectionStore::applyRemote*() routes through them at
 * runtime.
 *
 * Rules:
 *   - selection records: freshest evidence wins -- the payload (EMA
 *     baseline, quarantine state, selection, profiles) of the record
 *     with the newer Lamport stamp is taken wholesale; the version
 *     vectors join.  Per-key counters (launches, confidence) ride the
 *     winning payload, so concurrent increments on different replicas
 *     are last-writer-wins, not summed -- an accepted imprecision for
 *     advisory statistics.
 *   - blacklist entries: grow-only.  Strikes take the max, the
 *     reason rides the newer stamp; an entry never un-blacklists.
 *   - extensions (e.g. the predictor model): last-writer-wins by
 *     stamp.
 *
 * Header-only so the store can embed the rule without linking the
 * federation library (fed links store, not the other way around).
 */
#pragma once

#include <algorithm>

#include "dysel/fed/version.hh"
#include "dysel/store/selection_store.hh"

namespace dysel {
namespace fed {

/** Merge two versions of one selection record (pure). */
inline store::SelectionRecord
mergeRecord(const store::SelectionRecord &a,
            const store::SelectionRecord &b)
{
    const store::SelectionRecord &winner =
        newerStamp(b.stamp, a.stamp) ? b : a;
    store::SelectionRecord out = winner;
    out.vv = a.vv;
    out.vv.join(b.vv);
    out.seq = 0; // change cursors are store-local, never merged
    return out;
}

/** Merge two versions of one blacklist entry (pure, grow-only). */
inline store::BlacklistEntry
mergeBlacklist(const store::BlacklistEntry &a,
               const store::BlacklistEntry &b)
{
    const store::BlacklistEntry &winner =
        newerStamp(b.stamp, a.stamp) ? b : a;
    store::BlacklistEntry out = winner;
    out.strikes = std::max(a.strikes, b.strikes);
    out.seq = 0;
    return out;
}

/** Merge two versions of one extension (pure, last-writer-wins). */
inline store::ExtensionEntry
mergeExtension(const store::ExtensionEntry &a,
               const store::ExtensionEntry &b)
{
    return newerStamp(b.stamp, a.stamp) ? b : a;
}

} // namespace fed
} // namespace dysel
