/**
 * @file
 * The federation delta wire format (DESIGN §13).
 *
 * One delta is everything a peer has not seen yet: full copies of
 * the changed selection records, blacklist entries, and extensions
 * (state-based deltas -- items are small and self-contained, so the
 * merge rule never needs operation logs), framed with the sender's
 * identity:
 *
 *   {
 *     "fed_version": 1,
 *     "replica": <sender replica id>,
 *     "incarnation": "<hex16>",   // changes on restart
 *     "seq_high": <sender change cursor after this delta>,
 *     "records": [ <v5 record documents> ],
 *     "blacklist": [ <v5 blacklist documents> ],
 *     "extensions": [ {"name", "value", "stamp_tick",
 *                      "stamp_origin"} ]
 *   }
 *
 * A puller advances its per-peer cursor to seq_high and sends it
 * back as ?since= on the next pull; a changed incarnation voids the
 * cursor (the peer restarted, its seq space is fresh).  decodeDelta
 * returns typed errors instead of throwing -- a garbled or truncated
 * payload from a half-dead peer must be droppable, never fatal.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dysel/fed/version.hh"
#include "dysel/store/selection_store.hh"
#include "support/json.hh"
#include "support/status.hh"

namespace dysel {
namespace fed {

/** One anti-entropy payload: a peer's changes since a cursor. */
struct Delta
{
    std::uint32_t replica = 0;
    std::uint64_t incarnation = 0;
    std::uint64_t seqHigh = 0;
    std::vector<store::SelectionRecord> records;
    std::vector<store::BlacklistEntry> blacklist;
    std::vector<store::ExtensionEntry> extensions;
};

/** Serialize @p delta (deterministic field order). */
support::Json encodeDelta(const Delta &delta);

/**
 * Parse a delta document into @p out.  INVALID_ARGUMENT on a
 * malformed or truncated payload (wrong kinds, missing fields,
 * unsupported fed_version); @p out is untouched on failure.
 */
support::Status decodeDelta(const support::Json &doc, Delta &out);

} // namespace fed
} // namespace dysel
