#include "replicator.hh"

#include <chrono>
#include <cstdio>
#include <stdexcept>

#include <unistd.h>

#include "dysel/fed/delta.hh"
#include "dysel/fed/ownership.hh"
#include "support/net/http.hh"

namespace dysel {
namespace fed {

using support::Json;
using support::Status;
namespace net = support::net;
using clock = std::chrono::steady_clock;

namespace {

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex16(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Split "/fed/delta?since=42&inc=ab" into path + decoded query. */
void
splitTarget(const std::string &target, std::string &path,
            std::map<std::string, std::string> &query)
{
    const auto qpos = target.find('?');
    path = target.substr(0, qpos);
    if (qpos == std::string::npos)
        return;
    std::size_t at = qpos + 1;
    while (at < target.size()) {
        auto amp = target.find('&', at);
        if (amp == std::string::npos)
            amp = target.size();
        const std::string pair = target.substr(at, amp - at);
        const auto eq = pair.find('=');
        if (eq != std::string::npos)
            query[net::urlDecode(pair.substr(0, eq))] =
                net::urlDecode(pair.substr(eq + 1));
        else if (!pair.empty())
            query[net::urlDecode(pair)] = "";
        at = amp + 1;
    }
}

} // namespace

Replicator::Replicator(store::SelectionStore &store,
                       ReplicatorConfig cfg)
    : store_(store), cfg_(std::move(cfg))
{
    store_.setReplica(cfg_.replica);
    // Unique-enough per process lifetime: a restarted replica
    // presents a different incarnation, which voids every peer's
    // cursor into us (their next pull resyncs from 0).
    const auto nowNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    incarnation_ =
        fnv1a64(std::to_string(::getpid()) + "/"
                + std::to_string(nowNs) + "/"
                + std::to_string(cfg_.replica));
    for (const auto &addr : cfg_.peers) {
        Peer p;
        const auto colon = addr.rfind(':');
        if (colon == std::string::npos)
            throw std::invalid_argument(
                "Replicator: peer '" + addr
                + "' is not host:port");
        p.host = addr.substr(0, colon);
        p.port = static_cast<std::uint16_t>(
            std::stoul(addr.substr(colon + 1)));
        peers_.push_back(std::move(p));
    }
}

Replicator::~Replicator()
{
    stop();
}

void
Replicator::bindMetrics(support::MetricsRegistry *reg)
{
    std::lock_guard<std::mutex> lock(regMu);
    reg_ = reg;
}

void
Replicator::count(const char *name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(regMu);
    if (reg_)
        reg_->counter(name).inc(delta);
}

void
Replicator::start()
{
    if (running_.exchange(true, std::memory_order_acq_rel))
        return;
    thread_ = std::thread([this] { syncLoop(); });
}

void
Replicator::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    wakeCv.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
Replicator::syncLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        syncNow();
        std::unique_lock<std::mutex> lock(wakeMu);
        wakeCv.wait_for(
            lock, std::chrono::milliseconds(cfg_.syncIntervalMs),
            [this] {
                return !running_.load(std::memory_order_acquire);
            });
    }
}

void
Replicator::syncNow()
{
    for (std::size_t i = 0; i < peers_.size(); ++i)
        pullPeer(i);
}

bool
Replicator::awaitPeers(int timeoutMs)
{
    const auto deadline =
        clock::now() + std::chrono::milliseconds(timeoutMs);
    while (true) {
        bool all = true;
        for (std::size_t i = 0; i < peers_.size(); ++i) {
            probePeer(i);
            std::lock_guard<std::mutex> lock(mu);
            if (!peers_[i].reachable)
                all = false;
        }
        if (all)
            return true;
        if (clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.leasePollMs));
    }
}

void
Replicator::probePeer(std::size_t idx)
{
    std::string host;
    std::uint16_t port;
    bool drained;
    {
        std::lock_guard<std::mutex> lock(mu);
        host = peers_[idx].host;
        port = peers_[idx].port;
        drained = drained_;
    }
    std::string target =
        "/fed/info?from=" + std::to_string(cfg_.replica);
    // Announce our own quiescence state with the probe (see
    // infoReply).  The digest serializes the store, so only pay for
    // it once we are drained and peers actually compare it.
    if (drained)
        target += "&drained=1&digest=" + hex16(digest());
    std::string body;
    int status = 0;
    const Status st = net::httpGet(host, port, target, body, status,
                                   cfg_.httpTimeoutMs);
    std::lock_guard<std::mutex> lock(mu);
    Peer &p = peers_[idx];
    if (!st.ok() || status != 200) {
        p.reachable = false;
        p.lastError = st.ok() ? "HTTP " + std::to_string(status)
                              : std::string(st.message());
        return;
    }
    try {
        const Json doc = Json::parse(body);
        p.replica =
            static_cast<std::int64_t>(doc.at("replica").asUint());
        const std::uint64_t inc = std::stoull(
            doc.at("incarnation").asString(), nullptr, 16);
        if (p.incarnation != 0 && inc != p.incarnation)
            p.cursor = 0; // peer restarted: full resync
        p.incarnation = inc;
        p.sawDrained = doc.boolOr("drained", false);
        p.lastDigest = std::stoull(doc.at("digest").asString(),
                                   nullptr, 16);
        p.reachable = true;
        p.lastError.clear();
    } catch (const std::exception &e) {
        p.reachable = false;
        p.lastError = std::string("info parse: ") + e.what();
    }
}

void
Replicator::pullPeer(std::size_t idx)
{
    std::string host;
    std::uint16_t port;
    std::uint64_t cursor, inc;
    {
        std::lock_guard<std::mutex> lock(mu);
        const Peer &p = peers_[idx];
        host = p.host;
        port = p.port;
        cursor = p.cursor;
        inc = p.incarnation;
    }
    const std::string target = "/fed/delta?since="
                               + std::to_string(cursor)
                               + "&inc=" + hex16(inc);
    std::string body;
    int status = 0;
    const Status st = net::httpGet(host, port, target, body, status,
                                   cfg_.httpTimeoutMs);
    count("fed.pull");
    if (!st.ok() || status != 200) {
        count("fed.pull_fail");
        std::lock_guard<std::mutex> lock(mu);
        Peer &p = peers_[idx];
        p.failures++;
        p.reachable = false;
        p.lastError = st.ok() ? "HTTP " + std::to_string(status)
                              : std::string(st.message());
        return;
    }
    Delta delta;
    try {
        const Status ds = decodeDelta(Json::parse(body), delta);
        if (!ds.ok()) {
            count("fed.delta_invalid");
            std::lock_guard<std::mutex> lock(mu);
            peers_[idx].failures++;
            peers_[idx].lastError = std::string(ds.message());
            return;
        }
    } catch (const std::exception &e) {
        count("fed.delta_invalid");
        std::lock_guard<std::mutex> lock(mu);
        peers_[idx].failures++;
        peers_[idx].lastError =
            std::string("delta parse: ") + e.what();
        return;
    }
    // Apply through the merge rule; stale items are the expected
    // steady state of anti-entropy, not errors.
    std::uint64_t applied = 0;
    for (const auto &rec : delta.records) {
        if (store_.applyRemoteRecord(rec)
            != store::SelectionStore::Apply::Stale) {
            applied++;
            count("fed.apply_record");
        } else {
            count("fed.stale");
        }
    }
    for (const auto &e : delta.blacklist) {
        if (store_.applyRemoteBlacklist(e)
            != store::SelectionStore::Apply::Stale) {
            applied++;
            count("fed.apply_blacklist");
        } else {
            count("fed.stale");
        }
    }
    for (const auto &ext : delta.extensions) {
        if (store_.applyRemoteExtension(ext)
            != store::SelectionStore::Apply::Stale) {
            applied++;
            count("fed.apply_extension");
        } else {
            count("fed.stale");
        }
    }
    std::lock_guard<std::mutex> lock(mu);
    Peer &p = peers_[idx];
    p.pulls++;
    p.applied += applied;
    p.replica = delta.replica;
    p.incarnation = delta.incarnation;
    p.cursor = delta.seqHigh;
    p.reachable = true;
    p.lastError.clear();
}

bool
Replicator::owns(const std::string &signature,
                 const std::string &device, unsigned bucket) const
{
    return ownerOf(signature, device, bucket, cfg_.fleetSize)
           == cfg_.replica;
}

Replicator::Resolve
Replicator::resolveCold(const std::string &signature,
                        const std::string &device,
                        std::uint64_t units)
{
    const unsigned bucket = store::bucketOf(units);
    const std::uint32_t owner =
        ownerOf(signature, device, bucket, cfg_.fleetSize);
    const std::string key = keyString(signature, device, bucket);
    const auto t0 = clock::now();
    const auto waited = [&t0]() {
        return std::chrono::duration<double, std::milli>(
                   clock::now() - t0)
            .count();
    };

    if (owner == cfg_.replica) {
        // We profile our own keys -- unless a peer already holds the
        // fleet-wide lease, in which case we park like any follower
        // and take over only if the lease expires.
        {
            std::lock_guard<std::mutex> lock(mu);
            auto it = leases_.find(key);
            if (it == leases_.end() || it->second.expiry < clock::now()
                || it->second.holder == cfg_.replica) {
                it = leases_
                         .insert_or_assign(
                             key,
                             Lease{cfg_.replica,
                                   clock::now()
                                       + std::chrono::milliseconds(
                                           cfg_.leaseTimeoutMs)})
                         .first;
                count("fed.own_local");
                Resolve r;
                r.kind = Resolve::LocalProfile;
                r.waitedMs = waited();
                return r;
            }
        }
        count("fed.own_parked");
        const auto deadline =
            t0 + std::chrono::milliseconds(cfg_.leaseWaitMs);
        while (clock::now() < deadline) {
            if (auto rec = store_.peek(signature, device, units)) {
                Resolve r;
                r.kind = Resolve::Warm;
                r.ownerCid = rec->profileCid;
                r.profileOrigin = rec->profileOrigin;
                r.waitedMs = waited();
                count("fed.warm");
                return r;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg_.leasePollMs));
        }
        // The grantee never delivered: take the lease back.
        {
            std::lock_guard<std::mutex> lock(mu);
            leases_.insert_or_assign(
                key, Lease{cfg_.replica,
                           clock::now()
                               + std::chrono::milliseconds(
                                   cfg_.leaseTimeoutMs)});
        }
        count("fed.own_takeover");
        Resolve r;
        r.kind = Resolve::LocalProfile;
        r.waitedMs = waited();
        return r;
    }

    // Follower: find the owner's address (learned from handshakes).
    auto ownerAddr = [&]() -> std::pair<std::string, std::uint16_t> {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &p : peers_)
            if (p.replica == static_cast<std::int64_t>(owner))
                return {p.host, p.port};
        return {"", 0};
    };
    auto addr = ownerAddr();
    if (addr.second == 0) {
        // Identities not learned yet (early cold keys race the first
        // sync round): probe everyone once, then give up gracefully.
        for (std::size_t i = 0; i < peers_.size(); ++i)
            probePeer(i);
        addr = ownerAddr();
        if (addr.second == 0) {
            count("fed.fallback");
            Resolve r;
            r.kind = Resolve::Fallback;
            r.waitedMs = waited();
            return r;
        }
    }

    const std::string target =
        "/fed/lease?sig=" + net::urlEncode(signature)
        + "&device=" + net::urlEncode(device)
        + "&bucket=" + std::to_string(bucket)
        + "&requester=" + std::to_string(cfg_.replica);
    const auto deadline =
        t0 + std::chrono::milliseconds(cfg_.leaseWaitMs);
    while (clock::now() < deadline) {
        // The record may arrive by gossip while we park.
        if (auto rec = store_.peek(signature, device, units)) {
            Resolve r;
            r.kind = Resolve::Warm;
            r.ownerCid = rec->profileCid;
            r.profileOrigin = rec->profileOrigin;
            r.waitedMs = waited();
            count("fed.warm");
            return r;
        }
        std::string body;
        int status = 0;
        const Status st =
            net::httpGet(addr.first, addr.second, target, body,
                         status, cfg_.httpTimeoutMs);
        if (!st.ok() || status != 200) {
            count("fed.fallback");
            Resolve r;
            r.kind = Resolve::Fallback;
            r.waitedMs = waited();
            return r;
        }
        try {
            const Json doc = Json::parse(body);
            const std::string &state = doc.at("status").asString();
            if (state == "record") {
                const auto rec =
                    store::recordFromJson(doc.at("record"));
                store_.applyRemoteRecord(rec);
                if (auto got =
                        store_.peek(signature, device, units)) {
                    Resolve r;
                    r.kind = Resolve::Warm;
                    r.ownerCid = got->profileCid;
                    r.profileOrigin = got->profileOrigin;
                    r.waitedMs = waited();
                    count("fed.warm");
                    return r;
                }
                // Blacklisted/invalid on arrival: profile locally.
                count("fed.fallback");
                Resolve r;
                r.kind = Resolve::Fallback;
                r.waitedMs = waited();
                return r;
            }
            if (state == "granted") {
                count("fed.lease_granted");
                Resolve r;
                r.kind = Resolve::LeaseGranted;
                r.waitedMs = waited();
                return r;
            }
            // "wait": someone is profiling; stay parked.
            count("fed.parked");
        } catch (const std::exception &) {
            count("fed.fallback");
            Resolve r;
            r.kind = Resolve::Fallback;
            r.waitedMs = waited();
            return r;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.leasePollMs));
    }
    count("fed.fallback");
    Resolve r;
    r.kind = Resolve::Fallback;
    r.waitedMs = waited();
    return r;
}

Replicator::Reply
Replicator::handleFed(const std::string &target)
{
    std::string path;
    std::map<std::string, std::string> query;
    splitTarget(target, path, query);
    if (path == "/fed/delta")
        return deltaReply(query);
    if (path == "/fed/lease")
        return leaseReply(query);
    if (path == "/fed/info")
        return infoReply(query);
    return Reply{404, "{\"error\": \"unknown federation endpoint\"}\n"};
}

Replicator::Reply
Replicator::deltaReply(const std::map<std::string, std::string> &query)
{
    std::uint64_t since = 0;
    auto it = query.find("since");
    if (it != query.end() && !it->second.empty())
        since = std::stoull(it->second);
    // A cursor minted against a previous incarnation of this process
    // indexes a seq space that no longer exists: serve everything.
    it = query.find("inc");
    if (it == query.end() || it->second != hex16(incarnation_))
        since = 0;
    const auto changes = store_.changedSince(since);
    Delta delta;
    delta.replica = cfg_.replica;
    delta.incarnation = incarnation_;
    delta.seqHigh = changes.seqHigh;
    delta.records = changes.records;
    delta.blacklist = changes.blacklist;
    delta.extensions = changes.extensions;
    count("fed.delta_serve");
    return Reply{200, encodeDelta(delta).dump(0) + "\n"};
}

Replicator::Reply
Replicator::leaseReply(const std::map<std::string, std::string> &query)
{
    const auto arg = [&query](const char *name) -> const std::string & {
        static const std::string empty;
        auto it = query.find(name);
        return it == query.end() ? empty : it->second;
    };
    const std::string &sig = arg("sig");
    const std::string &device = arg("device");
    if (sig.empty() || device.empty())
        return Reply{400, "{\"error\": \"sig and device required\"}\n"};
    const unsigned bucket = static_cast<unsigned>(
        arg("bucket").empty() ? 0u : std::stoul(arg("bucket")));
    const std::uint32_t requester = static_cast<std::uint32_t>(
        arg("requester").empty() ? 0u : std::stoul(arg("requester")));

    // Already profiled: hand the record over; the lease (if any) is
    // done with.
    if (auto rec = store_.peek(sig, device,
                               store::unitsForBucket(bucket))) {
        {
            std::lock_guard<std::mutex> lock(mu);
            leases_.erase(keyString(sig, device, bucket));
        }
        Json doc = Json::object();
        doc.set("status", Json("record"));
        doc.set("record", store::recordToJson(*rec));
        count("fed.lease_record");
        return Reply{200, doc.dump(0) + "\n"};
    }
    const std::string key = keyString(sig, device, bucket);
    std::lock_guard<std::mutex> lock(mu);
    auto it = leases_.find(key);
    if (it != leases_.end() && it->second.expiry >= clock::now()
        && it->second.holder != requester) {
        Json doc = Json::object();
        doc.set("status", Json("wait"));
        doc.set("holder", Json(it->second.holder));
        count("fed.lease_wait");
        return Reply{200, doc.dump(0) + "\n"};
    }
    leases_.insert_or_assign(
        key, Lease{requester,
                   clock::now() + std::chrono::milliseconds(
                                      cfg_.leaseTimeoutMs)});
    Json doc = Json::object();
    doc.set("status", Json("granted"));
    count("fed.lease_grant");
    return Reply{200, doc.dump(0) + "\n"};
}

Replicator::Reply
Replicator::infoReply(const std::map<std::string, std::string> &query)
{
    // The probe doubles as a push: the prober announces its own
    // drained flag and digest so one request in either direction
    // informs both sides.  Without this the last replica to drain can
    // satisfy its quiescence predicate and exit before its peers ever
    // probe its drained state, stranding them at the barrier.
    const auto arg = [&query](const char *name) -> const std::string & {
        static const std::string empty;
        auto it = query.find(name);
        return it == query.end() ? empty : it->second;
    };
    if (!arg("from").empty()) {
        const auto from =
            static_cast<std::int64_t>(std::stoll(arg("from")));
        std::lock_guard<std::mutex> lock(mu);
        for (auto &p : peers_) {
            if (p.replica != from)
                continue;
            if (arg("drained") == "1")
                p.sawDrained = true;
            if (!arg("digest").empty())
                p.lastDigest =
                    std::stoull(arg("digest"), nullptr, 16);
            break;
        }
    }
    Json doc = Json::object();
    doc.set("replica", Json(cfg_.replica));
    doc.set("incarnation", Json(hex16(incarnation_)));
    doc.set("lamport", Json(store_.lamportClock()));
    doc.set("seq", Json(store_.changeSeq()));
    doc.set("records", Json(store_.size()));
    doc.set("digest", Json(hex16(digest())));
    {
        std::lock_guard<std::mutex> lock(mu);
        doc.set("drained", Json(drained_));
    }
    return Reply{200, doc.dump(0) + "\n"};
}

support::Json
Replicator::peersJson() const
{
    Json arr = Json::array();
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto &p : peers_) {
            Json jp = Json::object();
            jp.set("addr",
                   Json(p.host + ":" + std::to_string(p.port)));
            jp.set("replica", Json(p.replica));
            jp.set("incarnation", Json(hex16(p.incarnation)));
            jp.set("cursor", Json(p.cursor));
            jp.set("pulls", Json(p.pulls));
            jp.set("failures", Json(p.failures));
            jp.set("applied", Json(p.applied));
            jp.set("reachable", Json(p.reachable));
            if (!p.lastError.empty())
                jp.set("last_error", Json(p.lastError));
            arr.push(std::move(jp));
        }
    }
    Json doc = Json::object();
    doc.set("replica", Json(cfg_.replica));
    doc.set("fleet_size", Json(cfg_.fleetSize));
    doc.set("incarnation", Json(hex16(incarnation_)));
    doc.set("lamport", Json(store_.lamportClock()));
    doc.set("seq", Json(store_.changeSeq()));
    doc.set("digest", Json(hex16(digest())));
    doc.set("peers", std::move(arr));
    {
        std::lock_guard<std::mutex> lock(mu);
        doc.set("leases", Json(leases_.size()));
        doc.set("drained", Json(drained_));
    }
    return doc;
}

void
Replicator::markDrained()
{
    std::lock_guard<std::mutex> lock(mu);
    drained_ = true;
}

std::uint64_t
Replicator::digest() const
{
    return fnv1a64(store_.toJson().dump(0));
}

bool
Replicator::awaitQuiescence(int timeoutMs)
{
    const auto deadline =
        clock::now() + std::chrono::milliseconds(timeoutMs);
    while (clock::now() < deadline) {
        syncNow();
        const std::uint64_t mine = digest();
        for (std::size_t i = 0; i < peers_.size(); ++i)
            probePeer(i);
        bool all = true;
        {
            std::lock_guard<std::mutex> lock(mu);
            for (const auto &p : peers_) {
                // An unreachable peer that matched while drained has
                // saved and exited; anyone else is unconverged.
                if (!(p.sawDrained && p.lastDigest == mine)) {
                    all = false;
                    break;
                }
            }
        }
        if (all)
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.leasePollMs));
    }
    return false;
}

} // namespace fed
} // namespace dysel
