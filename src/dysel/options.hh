/**
 * @file
 * Launch-time options of the DySel runtime (paper Fig. 6b).
 */
#pragma once

#include <cstdint>

#include "compiler/analysis.hh"

namespace dysel {
namespace runtime {

using compiler::ProfilingMode;

/** How profiling overlaps with bulk execution (paper §2.4). */
enum class Orchestration {
    Sync,  ///< barrier after profiling (Fig. 4a)
    Async, ///< eager execution with the best version so far (Fig. 4b)
};

/** Human-readable orchestration name. */
const char *orchestrationName(Orchestration o);

/**
 * Options of one DySelLaunchKernel call.
 *
 * Mirrors the paper's launch API: a profiling activation flag (turn
 * profiling on only for the first iteration of an iterative solver)
 * and a profiling mode, which defaults to the compiler analyses'
 * recommendation unless the caller overrides it.
 */
struct LaunchOptions
{
    /** Profiling activation flag. */
    bool profiling = true;

    /** Override the compiler's recommended profiling mode. */
    ProfilingMode mode = ProfilingMode::Fully;
    bool modeExplicit = false;

    /** Orchestration of profiling vs. bulk execution. */
    Orchestration orch = Orchestration::Async;

    /**
     * Suggested initial version for eager execution in async mode
     * (the compiler/programmer-provided Kdefault); -1 means the first
     * registered variant.
     */
    int initialVariant = -1;

    /**
     * Eager chunk size in workload units (0 = automatic).  Rounded up
     * to a multiple of the variants' LCM work assignment.
     */
    std::uint64_t eagerChunkUnits = 0;

    /**
     * Profiling executions per kernel variant.  More repeats improve
     * selection accuracy under measurement noise and cache-warmup
     * effects at the cost of extra profiling work (§5.2 discussion).
     * 0 = automatic: 2 on the CPU (the first execution warms the
     * caches; the faster repeat is the steady-state measurement), 1
     * on the GPU (whose profiling slices are large enough to warm up
     * internally).
     */
    unsigned profileRepeats = 0;

    /**
     * Correlation id stamped on every trace event this launch emits
     * (see support/tracing).  The dispatch service propagates the job
     * id here so a job's spans line up across service, runtime, and
     * device layers; 0 means "not job-scoped".
     */
    std::uint64_t correlationId = 0;

    /**
     * Shadow audit probe: the launch is a measurement, not production
     * work.  With profiling off, `initialVariant` overrides the cached
     * selection (the audit sampler forces the winner and the runner-up
     * in turn), and the report carries the flag so the store's drift
     * baseline ignores it -- a tiny probe slice has non-amortized
     * launch overhead and would otherwise trigger false quarantines.
     */
    bool shadow = false;
};

} // namespace runtime
} // namespace dysel
