/**
 * @file
 * The DySel runtime (paper §3): kernel pool, registration and launch
 * API, the three productive micro-profiling modes, and the
 * synchronous / asynchronous orchestrators.
 *
 * API mapping to the paper's Fig. 6:
 *   DySelAddKernel(sig, impl, wa_factor, sandbox_index)
 *     -> Runtime::addKernel(sig, KernelVariant{...})
 *   DySelLaunchKernel(sig, profiling, mode)
 *     -> Runtime::launchKernel(sig, units, args, LaunchOptions{...})
 *
 * A "workload unit" is the work of one base-version work-group; a
 * variant with work assignment factor f covers f units per group.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compiler/analysis.hh"
#include "compiler/kernel_info.hh"
#include "guard/guard.hh"
#include "kdp/args.hh"
#include "kdp/kernel.hh"
#include "sim/device.hh"
#include "support/status.hh"
#include "support/tracing/tracer.hh"

#include "options.hh"
#include "report.hh"

namespace dysel {
namespace runtime {

/** Runtime-wide configuration. */
struct RuntimeConfig
{
    /**
     * Profiling is deactivated for workloads smaller than this many
     * units (the paper targets kernels with >= 128 work-groups; for
     * small workloads the performance variation is not critical and
     * the profiling overhead is not amortizable).
     */
    std::uint64_t minUnitsForProfiling = 128;

    /** Cap on the fraction of the workload used for profiling. */
    double maxProfileFraction = 0.5;

    /**
     * The "constant" of §3.4's safe point scaling, applied on GPUs:
     * profile this many work-groups per SM (rather than one) so the
     * device saturates and per-SM caches warm up during the
     * measurement.
     */
    unsigned gpuSaturationBoost = 4;

    /** Emit inform() lines on selection decisions. */
    bool verbose = false;

    /**
     * Variant guard configuration.  When guard.enabled, profiling
     * launches validate every variant's sandbox output (cross-check,
     * canary redzones, NaN screen, watchdog); misbehaving variants
     * are excluded mid-selection and blacklisted after
     * guard.strikeLimit strikes.
     */
    guard::GuardConfig guard;
};

/**
 * One member of a fused (batched) launch: a slice of the fused grid
 * executed with the member job's own argument list, so each member
 * reads and writes its own buffers (per-job output slicing) while the
 * whole batch pays a single device submit.
 */
struct FusedSlice
{
    /**
     * The member's argument list.  Must outlive the launchFused()
     * call.  The member kernel bounds itself through its own scalar
     * arguments, exactly as in a solo launch.
     */
    const kdp::KernelArgs *args = nullptr;
    /** Member workload units. */
    std::uint64_t units = 0;
    /** Member job's tracer correlation id (for per-job batch spans). */
    std::uint64_t correlationId = 0;
};

/**
 * The DySel runtime for one device.
 */
class Runtime
{
  public:
    /** Bind to a device.  The device must outlive the runtime. */
    explicit Runtime(sim::Device &device,
                     const RuntimeConfig &cfg = RuntimeConfig());

    /**
     * Register a kernel variant (DySelAddKernel).  Variants of a
     * signature are ordered by registration; index 0 is the default.
     * Fails with InvalidArgument for a variant without an
     * implementation, with zero geometry, or with a duplicate name.
     */
    support::Status tryAddKernel(const std::string &signature,
                                 kdp::KernelVariant variant);

    /** Throwing wrapper of tryAddKernel (std::invalid_argument). */
    void addKernel(const std::string &signature,
                   kdp::KernelVariant variant);

    /** Whether any variant is registered under @p signature. */
    bool hasKernel(const std::string &signature) const;

    /**
     * Drop a signature's variants, metadata, and cached selection.
     * No-op when the signature was never registered.  Lets a serving
     * layer re-register a kernel pool whose variants were generated
     * for a different problem geometry.
     */
    void removeKernel(const std::string &signature);

    /**
     * Attach compiler metadata to a signature; enables the automatic
     * profiling-mode recommendation of §3.4.
     */
    void setKernelInfo(const std::string &signature,
                       compiler::KernelInfo info);

    /** Number of variants registered under @p signature. */
    std::size_t variantCount(const std::string &signature) const;

    /**
     * The registered variants of @p signature; the throwing wrapper
     * of findVariants() (an unknown signature surfaces as a NotFound
     * support::Status, thrown as std::out_of_range).
     */
    const std::vector<kdp::KernelVariant> &
    variants(const std::string &signature) const;

    /**
     * The registered variants of @p signature, or nullptr for an
     * unknown signature (the non-throwing lookup).
     */
    const std::vector<kdp::KernelVariant> *
    findVariants(const std::string &signature) const noexcept;

    /**
     * The compiler-produced KernelInfo registered with @p signature,
     * or nullptr when the signature is unknown or was registered
     * without one.  Feeds the selection predictor's feature
     * extraction on the serving path.
     */
    const compiler::KernelInfo *
    findKernelInfo(const std::string &signature) const noexcept;

    /**
     * Launch a kernel over @p total_units workload units
     * (DySelLaunchKernel), the fallible entry point.  Runs the
     * device's event loop to completion; on success fills @p report.
     *
     * Failure codes:
     *   NotFound            -- unknown signature
     *   InvalidArgument     -- zero units / initial variant range
     *   FailedPrecondition  -- empty pool, missing sandbox metadata
     *   Unavailable         -- injected launch failure (retryable)
     *   DeadlineExceeded    -- the device hung
     */
    support::Status launch(const std::string &signature,
                           std::uint64_t total_units,
                           const kdp::KernelArgs &args,
                           const LaunchOptions &opt, LaunchReport &report);

    /**
     * Fused (batched) launch: run every member of @p slices back to
     * back with one variant under a single device submit.  All
     * members share @p signature; each executes over its own argument
     * list, so outputs land in each member's own buffers with no
     * host-side copies.  @p variant selects the variant explicitly
     * (the serving layer passes a warm store winner); -1 applies the
     * default policy (cached selection, else opt.initialVariant,
     * else variant 0), falling back to the first non-blacklisted
     * variant.  Never profiles.  The report comes back with
     * fused == true and must not feed the drift baseline.
     *
     * Failure codes match launch(); a device fault fails the whole
     * batch (the serving layer then demotes members to solo runs).
     */
    support::Status launchFused(const std::string &signature, int variant,
                                std::span<const FusedSlice> slices,
                                const LaunchOptions &opt,
                                LaunchReport &report);

    /**
     * Throwing wrapper of launch(): returns the report on success,
     * throws std::out_of_range for an unknown signature and
     * std::runtime_error / std::invalid_argument otherwise.
     */
    LaunchReport launchKernel(const std::string &signature,
                              std::uint64_t total_units,
                              const kdp::KernelArgs &args,
                              const LaunchOptions &opt = LaunchOptions());

    /** Drop all cached selections. */
    void clearSelectionCache();

    /** Cached selection for @p signature, if any. */
    std::optional<int>
    cachedSelection(const std::string &signature) const;

    /**
     * Seed the selection cache from an external source (a persistent
     * selection store): subsequent non-profiled launches of
     * @p signature run @p variant directly.  Fails with NotFound for
     * an unknown signature and InvalidArgument for a variant index
     * outside the registered pool.
     */
    support::Status tryImportSelection(const std::string &signature,
                                       int variant);

    /**
     * Throwing wrapper of tryImportSelection (std::out_of_range /
     * std::invalid_argument).
     */
    void importSelection(const std::string &signature, int variant);

    /** Snapshot of all cached selections (for export to a store). */
    std::map<std::string, int> exportSelections() const;

    /**
     * Post-launch observation callback, invoked with the final
     * LaunchReport of every launchKernel() call (profiled or plain).
     * A serving layer hooks this to feed the selection store without
     * wrapping every call site.
     */
    using LaunchObserver = std::function<void(const LaunchReport &)>;
    void setLaunchObserver(LaunchObserver observer);

    /**
     * Attach a trace sink (must outlive the runtime; nullptr
     * detaches).  When the tracer is enabled, every launch emits
     * spans on a track named @p trackName (default: the device name;
     * the dispatch service passes "devN:<name>" so same-named devices
     * stay distinguishable) -- the end-to-end launch, each
     * micro-profiling pass (on per-variant subtracks), guard strikes,
     * and the winner's bulk execution -- all stamped with
     * LaunchOptions::correlationId.
     */
    void setTracer(support::tracing::Tracer *tracer,
                   const std::string &trackName = std::string());

    /** The bound device. */
    sim::Device &device() { return dev; }

    /** The variant guard (health ledger + blacklist). */
    guard::VariantGuard &guard() { return guard_; }
    const guard::VariantGuard &guard() const { return guard_; }

  private:
    struct KernelEntry
    {
        std::vector<kdp::KernelVariant> variants;
        compiler::KernelInfo info;
        bool hasInfo = false;
    };

    /** Non-throwing pool lookup; nullptr for an unknown signature. */
    const KernelEntry *findEntry(const std::string &signature)
        const noexcept;

    /**
     * Turn a pending launch-aborting device fault into a Status
     * (Unavailable for a launch failure, DeadlineExceeded for a
     * hang); Ok when no fault is pending.
     */
    support::Status consumeDeviceFault();

    /** Notify the launch observer (if any) and forward the report. */
    LaunchReport finish(LaunchReport report);

    /** Resolve the effective profiling mode for this launch. */
    ProfilingMode resolveMode(const KernelEntry &entry,
                              const LaunchOptions &opt) const;

    /** Run [first_unit, first_unit+units) with @p variant, batch. */
    void submitBatch(const kdp::KernelVariant &variant,
                     const kdp::KernelArgs &args, std::uint64_t first_unit,
                     std::uint64_t units, int priority, int stream,
                     std::function<void(const sim::LaunchStats &)> done);

    /** Non-profiled path: run everything with one variant. */
    support::Status runPlain(const std::string &signature,
                             const KernelEntry &entry, int variant,
                             std::uint64_t total_units,
                             const kdp::KernelArgs &args,
                             const LaunchOptions &opt, bool from_cache,
                             LaunchReport &report);

    /** Whether trace emission is live for the current launch. */
    bool tracing() const { return tracer_ && tracer_->enabled(); }

    sim::Device &dev;
    RuntimeConfig config;
    guard::VariantGuard guard_;
    std::map<std::string, KernelEntry> pool;
    std::map<std::string, int> selectionCache;
    LaunchObserver observer;

    support::tracing::Tracer *tracer_ = nullptr;
    /** Base track name (profiling subtracks append "/profile/..."). */
    std::string trackName_;
    /** The device's main trace track (valid while tracer_ is set). */
    std::uint64_t traceTrack = 0;
    /** Fused-grid member start offsets, reused across launchFused(). */
    std::vector<std::uint64_t> fusedStarts;
    /** Correlation id of the launch in flight (single-threaded). */
    std::uint64_t activeCorrelation = 0;
};

} // namespace runtime
} // namespace dysel
