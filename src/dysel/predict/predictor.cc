#include "predictor.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dysel {
namespace predict {

using support::Json;

const char *
sourceName(Source source)
{
    switch (source) {
      case Source::Exact: return "exact";
      case Source::Interpolated: return "interpolated";
      case Source::Model: return "model";
    }
    return "?";
}

SelectionPredictor::SelectionPredictor(PredictorConfig cfg) : cfg_(cfg) {}

void
SelectionPredictor::noteKernel(const std::string &signature,
                               const compiler::KernelInfo &info)
{
    const FeatureVector f = kernelFeatures(info);
    std::lock_guard<std::mutex> lock(mu);
    kernelFeats[signature] = f;
}

double
SelectionPredictor::calibrationLocked() const
{
    const double c = (cfg_.priorCorrect + shadowCorrect_)
                     / (cfg_.priorTotal + shadowTotal_);
    return std::clamp(c, 0.0, 1.0);
}

FeatureVector
SelectionPredictor::featuresLocked(const std::string &signature,
                                   unsigned bucket,
                                   unsigned deviceClass) const
{
    auto it = kernelFeats.find(signature);
    const FeatureVector base =
        it != kernelFeats.end() ? it->second : FeatureVector{};
    return composeFeatures(base, bucket, deviceClass);
}

std::optional<Prediction>
SelectionPredictor::predictLocked(const std::string &signature,
                                  const std::string &fingerprint,
                                  unsigned bucket) const
{
    std::optional<Prediction> best;

    // Exact recorded winner.
    if (auto it = winners.find(Key{signature, fingerprint, bucket});
        it != winners.end()) {
        best = Prediction{it->second, cfg_.exactConfidence,
                          Source::Exact, 0};
    }

    // Cross-bucket interpolation: the nearest recorded winner within
    // the radius, decayed per bucket of distance.  Bucket arithmetic
    // is clamped at both ends -- bucket 0 has no lower neighbour and
    // 63 no upper one; wrapping would alias order-of-magnitude
    // distant workload sizes (the exact mistake bucketing exists to
    // avoid).
    if (!best) {
        for (unsigned d = 1; d <= cfg_.interpolationRadius && !best;
             ++d) {
            const double conf =
                cfg_.exactConfidence
                * std::pow(cfg_.interpolationDecay,
                           static_cast<double>(d));
            if (bucket >= d) {
                if (auto it = winners.find(
                        Key{signature, fingerprint, bucket - d});
                    it != winners.end()) {
                    best = Prediction{it->second, conf,
                                      Source::Interpolated, d};
                    break;
                }
            }
            if (bucket + d <= 63) {
                if (auto it = winners.find(
                        Key{signature, fingerprint, bucket + d});
                    it != winners.end()) {
                    best = Prediction{it->second, conf,
                                      Source::Interpolated, d};
                }
            }
        }
    }

    // Linear model: argmax over this device class's variant scores,
    // confidence from the margin over the runner-up (squashed, capped
    // below exact/interpolated confidence so recorded winners always
    // outrank model guesses).
    if (!best) {
        const unsigned cls = deviceClassOf(fingerprint);
        const FeatureVector f = featuresLocked(signature, bucket, cls);
        std::string argmax;
        double bestScore = 0.0, secondScore = 0.0;
        bool any = false;
        for (const auto &[key, w] : weights) {
            if (key.first != cls)
                continue;
            double score = 0.0;
            for (std::size_t i = 0; i < kFeatureDim; ++i)
                score += w[i] * f[i];
            if (!any || score > bestScore) {
                secondScore = any ? bestScore : 0.0;
                bestScore = score;
                argmax = key.second;
                any = true;
            } else if (score > secondScore) {
                secondScore = score;
            }
        }
        if (any) {
            const double margin = bestScore - secondScore;
            const double conf =
                cfg_.modelCap / (1.0 + std::exp(-margin));
            best = Prediction{argmax, conf, Source::Model, 0};
        }
    }

    if (best) {
        best->confidence =
            std::clamp(best->confidence * calibrationLocked(), 0.0, 1.0);
    }
    return best;
}

std::optional<Prediction>
SelectionPredictor::predict(const std::string &signature,
                            const std::string &fingerprint,
                            unsigned bucket) const
{
    std::lock_guard<std::mutex> lock(mu);
    return predictLocked(signature, fingerprint, bucket);
}

void
SelectionPredictor::observeProfile(const store::SelectionRecord &rec)
{
    if (rec.selectedName.empty())
        return;
    std::lock_guard<std::mutex> lock(mu);

    // Shadow evaluation first (against the state *before* this
    // example lands): would the predictor have called this winner?
    if (auto pred = predictLocked(rec.signature, rec.device,
                                  rec.bucket)) {
        shadowTotal_ += 1.0;
        if (pred->variant == rec.selectedName)
            shadowCorrect_ += 1.0;
    }

    winners[Key{rec.signature, rec.device, rec.bucket}] =
        rec.selectedName;
    examples_++;

    // Perceptron update of the per-device-class model.
    const unsigned cls = deviceClassOf(rec.device);
    const FeatureVector f =
        featuresLocked(rec.signature, rec.bucket, cls);
    FeatureVector &wWin = weights[ClassVariant{cls, rec.selectedName}];

    std::string argmax;
    double bestScore = 0.0, winScore = 0.0, secondScore = 0.0;
    bool any = false;
    for (const auto &[key, w] : weights) {
        if (key.first != cls)
            continue;
        double score = 0.0;
        for (std::size_t i = 0; i < kFeatureDim; ++i)
            score += w[i] * f[i];
        if (key.second == rec.selectedName)
            winScore = score;
        if (!any || score > bestScore) {
            secondScore = any ? bestScore : 0.0;
            bestScore = score;
            argmax = key.second;
            any = true;
        } else if (score > secondScore) {
            secondScore = score;
        }
    }
    if (argmax != rec.selectedName) {
        // Mistake: pull the winner up, push the impostor down.
        for (std::size_t i = 0; i < kFeatureDim; ++i)
            wWin[i] += cfg_.learningRate * f[i];
        if (auto it = weights.find(ClassVariant{cls, argmax});
            it != weights.end()) {
            for (std::size_t i = 0; i < kFeatureDim; ++i)
                it->second[i] -= cfg_.learningRate * f[i];
        }
    } else if (winScore - secondScore < cfg_.reinforceMargin) {
        // Correct but not yet confident: reinforce toward the margin.
        for (std::size_t i = 0; i < kFeatureDim; ++i)
            wWin[i] += cfg_.learningRate * f[i];
    }
}

void
SelectionPredictor::observeDemotion(const std::string &signature,
                                    const std::string &fingerprint,
                                    unsigned bucket)
{
    std::lock_guard<std::mutex> lock(mu);
    demotions_++;
    shadowTotal_ += cfg_.demotionPenalty;

    auto it = winners.find(Key{signature, fingerprint, bucket});
    if (it == winners.end())
        return;
    const std::string demoted = it->second;
    winners.erase(it);

    // Corrective model update: we know this variant was wrong for the
    // key even though we don't yet know what is right -- the forced
    // re-profile will supply that as a fresh training example.
    const unsigned cls = deviceClassOf(fingerprint);
    if (auto wit = weights.find(ClassVariant{cls, demoted});
        wit != weights.end()) {
        const FeatureVector f = featuresLocked(signature, bucket, cls);
        for (std::size_t i = 0; i < kFeatureDim; ++i)
            wit->second[i] -= cfg_.learningRate * f[i];
    }
}

std::uint64_t
SelectionPredictor::trainingExamples() const
{
    std::lock_guard<std::mutex> lock(mu);
    return examples_;
}

std::uint64_t
SelectionPredictor::demotions() const
{
    std::lock_guard<std::mutex> lock(mu);
    return demotions_;
}

double
SelectionPredictor::calibration() const
{
    std::lock_guard<std::mutex> lock(mu);
    return calibrationLocked();
}

std::size_t
SelectionPredictor::winnerCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return winners.size();
}

void
SelectionPredictor::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    kernelFeats.clear();
    winners.clear();
    weights.clear();
    examples_ = 0;
    demotions_ = 0;
    shadowCorrect_ = 0.0;
    shadowTotal_ = 0.0;
}

Json
SelectionPredictor::toJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    auto vec = [](const FeatureVector &v) {
        Json arr = Json::array();
        for (double x : v)
            arr.push(Json(x));
        return arr;
    };

    Json feats = Json::array();
    for (const auto &[sig, f] : kernelFeats) {
        Json jf = Json::object();
        jf.set("signature", Json(sig));
        jf.set("f", vec(f));
        feats.push(std::move(jf));
    }
    Json wins = Json::array();
    for (const auto &[key, variant] : winners) {
        Json jw = Json::object();
        jw.set("signature", Json(std::get<0>(key)));
        jw.set("device", Json(std::get<1>(key)));
        jw.set("bucket", Json(std::get<2>(key)));
        jw.set("variant", Json(variant));
        wins.push(std::move(jw));
    }
    Json model = Json::array();
    for (const auto &[key, w] : weights) {
        Json jm = Json::object();
        jm.set("device_class", Json(key.first));
        jm.set("variant", Json(key.second));
        jm.set("w", vec(w));
        model.push(std::move(jm));
    }

    Json root = Json::object();
    root.set("version", Json(1));
    root.set("examples", Json(examples_));
    root.set("demotions", Json(demotions_));
    root.set("shadow_correct", Json(shadowCorrect_));
    root.set("shadow_total", Json(shadowTotal_));
    root.set("features", std::move(feats));
    root.set("winners", std::move(wins));
    root.set("weights", std::move(model));
    return root;
}

void
SelectionPredictor::loadJson(const Json &doc)
{
    const auto version = doc.isObject() ? doc.intOr("version", 0) : 0;
    if (version != 1)
        throw std::runtime_error(
            "selection predictor: unsupported document version");
    auto vec = [](const Json &arr) {
        FeatureVector v{};
        const auto &items = arr.items();
        if (items.size() != kFeatureDim)
            throw std::runtime_error(
                "selection predictor: feature dimension mismatch");
        for (std::size_t i = 0; i < kFeatureDim; ++i)
            v[i] = items[i].asNumber();
        return v;
    };

    std::map<std::string, FeatureVector> feats;
    if (doc.has("features")) {
        for (const Json &jf : doc.at("features").items())
            feats[jf.at("signature").asString()] = vec(jf.at("f"));
    }
    std::map<Key, std::string> wins;
    if (doc.has("winners")) {
        for (const Json &jw : doc.at("winners").items()) {
            wins[Key{jw.at("signature").asString(),
                     jw.at("device").asString(),
                     static_cast<unsigned>(jw.at("bucket").asUint())}] =
                jw.at("variant").asString();
        }
    }
    std::map<ClassVariant, FeatureVector> model;
    if (doc.has("weights")) {
        for (const Json &jm : doc.at("weights").items()) {
            model[ClassVariant{
                static_cast<unsigned>(jm.at("device_class").asUint()),
                jm.at("variant").asString()}] = vec(jm.at("w"));
        }
    }
    const auto examples =
        static_cast<std::uint64_t>(doc.intOr("examples", 0));
    const auto demotions =
        static_cast<std::uint64_t>(doc.intOr("demotions", 0));
    const double correct = doc.numberOr("shadow_correct", 0.0);
    const double total = doc.numberOr("shadow_total", 0.0);

    // Everything parsed; only now replace the state.
    std::lock_guard<std::mutex> lock(mu);
    kernelFeats = std::move(feats);
    winners = std::move(wins);
    weights = std::move(model);
    examples_ = examples;
    demotions_ = demotions;
    shadowCorrect_ = correct;
    shadowTotal_ = total;
}

} // namespace predict
} // namespace dysel
