#include "features.hh"

#include <algorithm>
#include <cmath>

#include "compiler/analysis.hh"

namespace dysel {
namespace predict {

namespace {

/**
 * Feature layout.  Dimensions 1 (bucket) and 11 (device class) are
 * launch-dependent and stamped by composeFeatures(); the rest are
 * kernel structure.
 */
enum Feature : std::size_t {
    FBias = 0,
    FBucket,        ///< size bucket / 64
    FLoopCount,     ///< loop-nest depth, capped at 8
    FTripMagnitude, ///< log2(max trip hint) / 32
    FWorkItemFrac,  ///< fraction of loops iterating work-items
    FIrregular,     ///< data-dependent bounds or early exits
    FUniform,       ///< uniformWorkloadAnalysis verdict
    FSideEffects,   ///< sideEffectAnalysis verdict (global atomics)
    FAccessCount,   ///< access patterns, capped at 16
    FWriteFrac,     ///< fraction of accesses that write
    FAffineFrac,    ///< fraction of accesses with affine indices
    FDeviceClass,   ///< deviceClassOf() / 2
};

static_assert(FDeviceClass + 1 == kFeatureDim,
              "feature layout out of sync with kFeatureDim");

constexpr const char *kFeatureNames[kFeatureDim] = {
    "bias",        "bucket",       "loop_count",  "trip_magnitude",
    "workitem_frac", "irregular",  "uniform",     "side_effects",
    "access_count", "write_frac",  "affine_frac", "device_class",
};

} // namespace

const char *
featureName(std::size_t i)
{
    return i < kFeatureDim ? kFeatureNames[i] : "?";
}

unsigned
deviceClassOf(const std::string &fingerprint)
{
    const auto slash = fingerprint.find('/');
    const std::string cls = fingerprint.substr(0, slash);
    if (cls == "cpu")
        return 0;
    if (cls == "gpu")
        return 1;
    return 2;
}

FeatureVector
kernelFeatures(const compiler::KernelInfo &info)
{
    FeatureVector f{};
    f[FBias] = 1.0;

    const double nLoops = static_cast<double>(info.loops.size());
    f[FLoopCount] = std::min(nLoops, 8.0) / 8.0;

    std::uint64_t maxTrip = 1;
    double workItemLoops = 0.0;
    for (const auto &l : info.loops) {
        maxTrip = std::max(maxTrip, l.tripHint);
        if (l.workItemLoop)
            workItemLoops += 1.0;
    }
    f[FTripMagnitude] =
        std::min(std::log2(static_cast<double>(maxTrip)), 32.0) / 32.0;
    f[FWorkItemFrac] = nLoops > 0.0 ? workItemLoops / nLoops : 0.0;

    f[FIrregular] = info.hasIrregularLoops() ? 1.0 : 0.0;
    f[FUniform] = compiler::uniformWorkloadAnalysis(info) ? 1.0 : 0.0;
    f[FSideEffects] = compiler::sideEffectAnalysis(info) ? 1.0 : 0.0;

    const double nAccesses = static_cast<double>(info.accesses.size());
    f[FAccessCount] = std::min(nAccesses, 16.0) / 16.0;
    double writes = 0.0, affine = 0.0;
    for (const auto &a : info.accesses) {
        if (a.write)
            writes += 1.0;
        if (a.affine)
            affine += 1.0;
    }
    f[FWriteFrac] = nAccesses > 0.0 ? writes / nAccesses : 0.0;
    f[FAffineFrac] = nAccesses > 0.0 ? affine / nAccesses : 0.0;
    return f;
}

FeatureVector
composeFeatures(const FeatureVector &base, unsigned bucket,
                unsigned deviceClass)
{
    FeatureVector f = base;
    f[FBias] = 1.0;
    f[FBucket] = static_cast<double>(std::min(bucket, 63u)) / 64.0;
    f[FDeviceClass] = static_cast<double>(std::min(deviceClass, 2u)) / 2.0;
    return f;
}

} // namespace predict
} // namespace dysel
