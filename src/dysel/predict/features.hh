/**
 * @file
 * Feature extraction for the selection predictor.
 *
 * A prediction key is the same triple the store uses -- (kernel
 * signature, device fingerprint, workload-size bucket) -- but the
 * *model* never sees the raw strings: it sees a fixed-dimension
 * numeric feature vector built from the compiler's structural kernel
 * metadata (loop nest shape, access-pattern character, uniformity,
 * side effects -- the same KernelInfo the §3.4 analyses consume), the
 * device class parsed off the fingerprint, and the size bucket.  Two
 * kernels with the same structure therefore share model evidence even
 * when their signatures differ -- that is what lets the predictor
 * warm-start keys it has never profiled.
 *
 * All features are normalized into [0, 1] so one perceptron learning
 * rate fits every dimension.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "compiler/kernel_info.hh"

namespace dysel {
namespace predict {

/** Fixed model dimensionality (see featureName() for the layout). */
constexpr std::size_t kFeatureDim = 12;

/** One point in feature space. */
using FeatureVector = std::array<double, kFeatureDim>;

/** Stable name of feature dimension @p i (diagnostics, persistence). */
const char *featureName(std::size_t i);

/**
 * Device class parsed from a sim::Device fingerprint (the prefix
 * before the first '/'): 0 for "cpu/...", 1 for "gpu/...", 2 for
 * anything else.  Model weights are kept per device class -- a CPU
 * winner says little about a GPU.
 */
unsigned deviceClassOf(const std::string &fingerprint);

/**
 * Kernel-structure features of @p info: everything except the
 * size-bucket and device-class dimensions, which depend on the launch
 * rather than the kernel (composeFeatures() fills those in).
 */
FeatureVector kernelFeatures(const compiler::KernelInfo &info);

/**
 * Complete a kernel feature vector for one prediction key: stamp the
 * size bucket and the device class into their dimensions.  @p base is
 * kernelFeatures() output (or a zero vector when no KernelInfo was
 * ever attached -- bias, bucket, and device class still carry signal).
 */
FeatureVector composeFeatures(const FeatureVector &base, unsigned bucket,
                              unsigned deviceClass);

} // namespace predict
} // namespace dysel
