/**
 * @file
 * Learned selection: an online predictor that skips micro-profiling.
 *
 * Micro-profiling is DySel's ground truth, but at serving scale it is
 * the dominant cold-start cost: every cold (signature, device
 * fingerprint, size-bucket) key pays a full profiling pass even when
 * the store already holds the answer for a structurally identical
 * kernel one bucket over.  The SelectionPredictor turns the store's
 * own profiling history into warm starts for keys it has never seen,
 * trained online from every completed profiling pass the store
 * records (SelectionStore::setProfileObserver -- the training feed;
 * there is no parallel log).
 *
 * Three evidence sources back a prediction, strongest first:
 *
 *   exact        -- the key itself was profiled before (the store's
 *                   record may be gone -- restart with a fresh store,
 *                   administrative invalidation -- but the winner is
 *                   remembered);
 *   interpolated -- a winner recorded at a neighbouring size bucket
 *                   seeds this bucket at confidence decayed per
 *                   bucket of distance (cross-bucket interpolation);
 *   model        -- a per-device-class linear model over the kernel
 *                   feature vector (features.hh), updated
 *                   perceptron-style from every training example, for
 *                   keys with no recorded neighbour at all.
 *
 * Every raw confidence is multiplied by a *calibration* factor: the
 * predictor shadow-evaluates itself against each incoming training
 * example (would I have predicted this winner?) and keeps a smoothed
 * hit rate.  Mis-predictions demoted by the serving layer
 * (setDemotionObserver) erase the offending winner and charge extra
 * shadow misses -- a predictor that keeps being wrong talks itself
 * below the confidence threshold and the service falls back to plain
 * micro-profiling.  The guard and drift machinery remain the safety
 * net either way: a predicted selection is a normal store record and
 * is quarantined / invalidated like any other.
 *
 * All public methods are thread-safe; the dispatch service consults
 * one predictor from all device workers.  toJson()/loadJson()
 * persist the learned state; the serving layer stores it in the
 * selection store's "predictor" extension slot so one file carries
 * both the records and the model.
 */
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <utility>

#include "compiler/kernel_info.hh"
#include "dysel/store/selection_store.hh"
#include "support/json.hh"

#include "features.hh"

namespace dysel {
namespace predict {

/** Predictor tuning knobs. */
struct PredictorConfig
{
    /**
     * Calibrated confidence a prediction needs before the serving
     * layer acts on it (skips profiling); below it the job falls
     * back to micro-profiling.
     */
    double threshold = 0.65;

    /** Perceptron learning rate of the linear model. */
    double learningRate = 0.15;

    /**
     * Buckets of distance a recorded winner seeds (cross-bucket
     * interpolation); 0 disables interpolation.
     */
    unsigned interpolationRadius = 2;

    /** Confidence multiplier per bucket of interpolation distance. */
    double interpolationDecay = 0.8;

    /** Raw confidence of an exact recorded winner. */
    double exactConfidence = 0.98;

    /** Raw confidence cap of the linear model. */
    double modelCap = 0.9;

    /**
     * Model margin under which a correct prediction still reinforces
     * its winner's weights (lets confidence grow on consistent data;
     * a classic perceptron only learns from mistakes).
     */
    double reinforceMargin = 2.0;

    /**
     * Calibration prior: the shadow hit rate starts at
     * priorCorrect / priorTotal and is updated by every shadow
     * evaluation.  The prior keeps early predictions below
     * exactConfidence until the predictor has earned trust.
     */
    double priorCorrect = 8.0;
    double priorTotal = 9.0;

    /** Shadow misses charged per demoted (mis-predicted) selection. */
    double demotionPenalty = 2.0;
};

/** Which evidence source backed a prediction. */
enum class Source {
    Exact,        ///< this key's own recorded winner
    Interpolated, ///< a neighbouring bucket's recorded winner
    Model,        ///< the per-device-class linear model
};

/** Stable lower-case name of @p source (e.g. "interpolated"). */
const char *sourceName(Source source);

/** One actionable prediction. */
struct Prediction
{
    std::string variant; ///< predicted winning variant (by name)
    double confidence = 0.0; ///< calibrated, in [0, 1]
    Source source = Source::Exact;
    /** Bucket distance of the seeding winner (0 unless interpolated). */
    unsigned distance = 0;
};

/**
 * The online selection predictor.
 */
class SelectionPredictor
{
  public:
    explicit SelectionPredictor(PredictorConfig cfg = PredictorConfig());

    const PredictorConfig &config() const { return cfg_; }

    /**
     * Attach kernel-structure features for @p signature (idempotent;
     * typically called with Runtime::findKernelInfo() output on the
     * serving path).  Signatures without features still predict from
     * recorded winners; only the model's generalization suffers.
     */
    void noteKernel(const std::string &signature,
                    const compiler::KernelInfo &info);

    /**
     * Predict the winning variant for (@p signature, @p fingerprint,
     * @p bucket), or nullopt when no evidence source has anything to
     * say.  The caller compares Prediction::confidence against
     * config().threshold -- predictions below it are still returned
     * (shadow evaluation and diagnostics want them).
     */
    std::optional<Prediction> predict(const std::string &signature,
                                      const std::string &fingerprint,
                                      unsigned bucket) const;

    /**
     * Training feed: one completed profiling pass, as recorded by the
     * store.  Shadow-evaluates the predictor against the example
     * (calibration), remembers the winner, and updates the model.
     * Wired to SelectionStore::setProfileObserver by the serving
     * layer.
     */
    void observeProfile(const store::SelectionRecord &rec);

    /**
     * Corrective feed: a *predicted* selection misbehaved (launch
     * failure or drift) and was demoted to a forced re-profile.
     * Erases the remembered winner for the key, pushes the model away
     * from it, and charges the calibration penalty.  The re-profile
     * that follows lands back in observeProfile() as the corrective
     * example.
     */
    void observeDemotion(const std::string &signature,
                         const std::string &fingerprint, unsigned bucket);

    /** Training examples consumed (observeProfile calls). */
    std::uint64_t trainingExamples() const;

    /** Demotions consumed (observeDemotion calls). */
    std::uint64_t demotions() const;

    /**
     * Current calibration factor in [0, 1]: the smoothed shadow hit
     * rate every raw confidence is multiplied by.
     */
    double calibration() const;

    /** Recorded (signature, fingerprint, bucket) winners. */
    std::size_t winnerCount() const;

    /** Drop all learned state (winners, model, calibration). */
    void clear();

    /** Serialize the learned state (deterministic order). */
    support::Json toJson() const;

    /**
     * Replace the learned state from toJson() output.  Throws
     * std::runtime_error on a malformed document; the previous state
     * is left untouched.  The config is not persisted -- thresholds
     * are operator knobs, not learned state.
     */
    void loadJson(const support::Json &doc);

  private:
    /** (signature, device fingerprint, bucket). */
    using Key = std::tuple<std::string, std::string, unsigned>;
    /** (device class, variant name). */
    using ClassVariant = std::pair<unsigned, std::string>;

    std::optional<Prediction>
    predictLocked(const std::string &signature,
                  const std::string &fingerprint, unsigned bucket) const;

    /** Feature vector of one prediction key.  Caller holds the lock. */
    FeatureVector featuresLocked(const std::string &signature,
                                 unsigned bucket,
                                 unsigned deviceClass) const;

    double calibrationLocked() const;

    mutable std::mutex mu;
    PredictorConfig cfg_;
    /** Kernel-structure features per signature (noteKernel). */
    std::map<std::string, FeatureVector> kernelFeats;
    /** Recorded winner per exact key. */
    std::map<Key, std::string> winners;
    /** Linear model: one weight vector per (device class, variant). */
    std::map<ClassVariant, FeatureVector> weights;
    std::uint64_t examples_ = 0;
    std::uint64_t demotions_ = 0;
    double shadowCorrect_ = 0.0;
    double shadowTotal_ = 0.0;
};

} // namespace predict
} // namespace dysel
