#include "runtime.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "support/logging.hh"
#include "support/math_util.hh"

#include "gpu_timer.hh"

namespace dysel {
namespace runtime {

using support::ceilDiv;
using support::roundUp;

const char *
orchestrationName(Orchestration o)
{
    switch (o) {
      case Orchestration::Sync: return "sync";
      case Orchestration::Async: return "async";
    }
    return "?";
}

Runtime::Runtime(sim::Device &device, const RuntimeConfig &cfg)
    : dev(device), config(cfg), guard_(cfg.guard)
{
}

support::Status
Runtime::tryAddKernel(const std::string &signature,
                      kdp::KernelVariant variant)
{
    if (!variant.fn)
        return support::Status::invalidArgument(
            "DySelAddKernel(" + signature + "): variant '" + variant.name
            + "' has no implementation");
    if (variant.waFactor == 0 || variant.groupSize == 0)
        return support::Status::invalidArgument(
            "DySelAddKernel(" + signature + "): variant '" + variant.name
            + "' has zero work assignment factor or group size");
    KernelEntry &entry = pool[signature];
    for (const auto &v : entry.variants)
        if (v.name == variant.name)
            return support::Status::invalidArgument(
                "DySelAddKernel(" + signature + "): duplicate variant '"
                + variant.name + "'");
    entry.variants.push_back(std::move(variant));
    return support::Status();
}

void
Runtime::addKernel(const std::string &signature, kdp::KernelVariant variant)
{
    tryAddKernel(signature, std::move(variant)).throwIfError();
}

void
Runtime::setKernelInfo(const std::string &signature,
                       compiler::KernelInfo info)
{
    KernelEntry &entry = pool[signature];
    entry.info = std::move(info);
    entry.hasInfo = true;
}

std::size_t
Runtime::variantCount(const std::string &signature) const
{
    auto it = pool.find(signature);
    return it == pool.end() ? 0 : it->second.variants.size();
}

const std::vector<kdp::KernelVariant> &
Runtime::variants(const std::string &signature) const
{
    const std::vector<kdp::KernelVariant> *v = findVariants(signature);
    if (!v)
        support::Status::notFound(
            "DySel: unknown kernel signature '" + signature + "'")
            .throwIfError();
    return *v;
}

const std::vector<kdp::KernelVariant> *
Runtime::findVariants(const std::string &signature) const noexcept
{
    const KernelEntry *entry = findEntry(signature);
    return entry ? &entry->variants : nullptr;
}

const compiler::KernelInfo *
Runtime::findKernelInfo(const std::string &signature) const noexcept
{
    const KernelEntry *entry = findEntry(signature);
    return entry && entry->hasInfo ? &entry->info : nullptr;
}

const Runtime::KernelEntry *
Runtime::findEntry(const std::string &signature) const noexcept
{
    auto it = pool.find(signature);
    return it == pool.end() ? nullptr : &it->second;
}

support::Status
Runtime::consumeDeviceFault()
{
    const auto fault = dev.takeFault();
    if (!fault)
        return support::Status();
    const std::string where =
        " (variant '" + fault->variant + "' on " + fault->device + ")";
    if (fault->kind == sim::FaultKind::Hang)
        return support::Status::deadlineExceeded(
            "DySel: device hung during launch" + where);
    return support::Status::unavailable(
        "DySel: injected launch failure" + where);
}

bool
Runtime::hasKernel(const std::string &signature) const
{
    return pool.count(signature) > 0;
}

void
Runtime::removeKernel(const std::string &signature)
{
    pool.erase(signature);
    selectionCache.erase(signature);
}

void
Runtime::clearSelectionCache()
{
    selectionCache.clear();
}

std::optional<int>
Runtime::cachedSelection(const std::string &signature) const
{
    auto it = selectionCache.find(signature);
    if (it == selectionCache.end())
        return std::nullopt;
    return it->second;
}

support::Status
Runtime::tryImportSelection(const std::string &signature, int variant)
{
    const KernelEntry *entry = findEntry(signature);
    if (!entry)
        return support::Status::notFound(
            "DySel: unknown kernel signature '" + signature + "'");
    if (variant < 0
        || variant >= static_cast<int>(entry->variants.size()))
        return support::Status::invalidArgument(
            "DySel: imported selection " + std::to_string(variant)
            + " out of range for '" + signature + "'");
    if (guard_.enabled()
        && guard_.isBlacklisted(signature,
                                entry->variants[variant].name))
        return support::Status::failedPrecondition(
            "DySel: variant '" + entry->variants[variant].name
            + "' is blacklisted for '" + signature + "'");
    selectionCache[signature] = variant;
    return support::Status();
}

void
Runtime::importSelection(const std::string &signature, int variant)
{
    tryImportSelection(signature, variant).throwIfError();
}

std::map<std::string, int>
Runtime::exportSelections() const
{
    return selectionCache;
}

void
Runtime::setLaunchObserver(LaunchObserver obs)
{
    observer = std::move(obs);
}

void
Runtime::setTracer(support::tracing::Tracer *tracer,
                   const std::string &trackName)
{
    tracer_ = tracer;
    trackName_ = trackName.empty() ? dev.name() : trackName;
    traceTrack = tracer_ ? tracer_->track(trackName_) : 0;
}

LaunchReport
Runtime::finish(LaunchReport report)
{
    if (observer)
        observer(report);
    return report;
}

ProfilingMode
Runtime::resolveMode(const KernelEntry &entry,
                     const LaunchOptions &opt) const
{
    if (opt.modeExplicit)
        return opt.mode;
    if (entry.hasInfo)
        return compiler::recommendProfilingMode(entry.info);
    return ProfilingMode::Fully;
}

void
Runtime::submitBatch(const kdp::KernelVariant &variant,
                     const kdp::KernelArgs &args, std::uint64_t first_unit,
                     std::uint64_t units, int priority, int stream,
                     std::function<void(const sim::LaunchStats &)> done)
{
    if (first_unit % variant.waFactor != 0)
        support::panic("batch start unit %llu not aligned to wa factor "
                       "%llu of variant '%s'",
                       (unsigned long long)first_unit,
                       (unsigned long long)variant.waFactor,
                       variant.name.c_str());
    sim::Launch launch;
    launch.variant = &variant;
    launch.args = args;
    launch.firstGroup = first_unit / variant.waFactor;
    launch.numGroups = ceilDiv(units, variant.waFactor);
    launch.priority = priority;
    launch.stream = stream;
    launch.onComplete = std::move(done);
    if (config.verbose)
        support::inform("submitBatch t=%llu variant=%s units=[%llu,%llu) "
                        "groups=%llu prio=%d",
                        (unsigned long long)dev.now(),
                        variant.name.c_str(),
                        (unsigned long long)first_unit,
                        (unsigned long long)(first_unit + units),
                        (unsigned long long)launch.numGroups, priority);
    if (tracing()) {
        tracer_->instant(
            traceTrack, "device.submit", dev.now(), activeCorrelation,
            {{"variant", variant.name},
             {"units", std::to_string(units)},
             {"groups", std::to_string(launch.numGroups)}});
    }
    dev.submit(std::move(launch));
}

support::Status
Runtime::runPlain(const std::string &signature, const KernelEntry &entry,
                  int variant, std::uint64_t total_units,
                  const kdp::KernelArgs &args, const LaunchOptions &opt,
                  bool from_cache, LaunchReport &out)
{
    LaunchReport report;
    report.signature = signature;
    report.selected = variant;
    report.selectedName = entry.variants[variant].name;
    report.fromCache = from_cache;
    report.shadow = opt.shadow;
    report.orch = opt.orch;
    report.totalUnits = total_units;
    report.startTime = dev.now();
    activeCorrelation = opt.correlationId;

    submitBatch(entry.variants[variant], args, 0, total_units, 0, 0,
                nullptr);
    dev.run();
    if (auto fault = consumeDeviceFault(); !fault.ok())
        return fault;
    report.endTime = dev.now();
    if (tracing()) {
        tracer_->complete(
            traceTrack, "execute", report.startTime, report.endTime,
            opt.correlationId,
            {{"variant", report.selectedName},
             {"units", std::to_string(total_units)},
             {"cached", from_cache ? "yes" : "no"}});
    }
    out = finish(std::move(report));
    return support::Status();
}

support::Status
Runtime::launchFused(const std::string &signature, int variant,
                     std::span<const FusedSlice> slices,
                     const LaunchOptions &opt, LaunchReport &out)
{
    const KernelEntry *entryp = findEntry(signature);
    if (!entryp)
        return support::Status::notFound(
            "DySel: unknown kernel signature '" + signature + "'");
    const KernelEntry &entry = *entryp;
    if (entry.variants.empty())
        return support::Status::failedPrecondition(
            "DySelLaunchFused(" + signature + "): no variants registered");
    if (slices.empty())
        return support::Status::invalidArgument(
            "DySelLaunchFused(" + signature + "): empty batch");

    // Resolve the variant: an explicit index is the serving layer's
    // warm store winner; -1 applies the plain-run default policy.
    int want = variant;
    if (want < 0) {
        auto cached = cachedSelection(signature);
        want = cached.value_or(
            opt.initialVariant >= 0 ? opt.initialVariant : 0);
    }
    if (want < 0 || want >= static_cast<int>(entry.variants.size()))
        return support::Status::invalidArgument(
            "DySelLaunchFused(" + signature + "): variant "
            + std::to_string(want) + " out of range");
    if (guard_.enabled()
        && guard_.isBlacklisted(signature, entry.variants[want].name)) {
        int fallback = -1;
        for (std::size_t i = 0; i < entry.variants.size(); ++i) {
            if (!guard_.isBlacklisted(signature, entry.variants[i].name)) {
                fallback = static_cast<int>(i);
                break;
            }
        }
        if (fallback < 0)
            return support::Status::failedPrecondition(
                "DySelLaunchFused(" + signature
                + "): every variant is blacklisted");
        want = fallback;
    }
    const kdp::KernelVariant &real = entry.variants[want];

    // Member m occupies fused groups [fusedStarts[m], fusedStarts[m+1]).
    fusedStarts.clear();
    fusedStarts.reserve(slices.size() + 1);
    std::uint64_t groups = 0;
    std::uint64_t total_units = 0;
    fusedStarts.push_back(0);
    for (const FusedSlice &s : slices) {
        if (!s.args || s.units == 0)
            return support::Status::invalidArgument(
                "DySelLaunchFused(" + signature
                + "): fused slice without args or units");
        groups += real.groupsFor(s.units);
        total_units += s.units;
        fusedStarts.push_back(groups);
    }

    // Pack factor: a variant whose waFactor underfills its lanes
    // (waFactor < groupSize, the typical tiny-job shape) leaves most
    // of a physical group idle, so each physical group runs `pack`
    // consecutive member groups back to back.  Every member group
    // keeps its exact solo-launch context (rebased into the member's
    // own grid with the member's own argument list); only the
    // per-group scheduling constant is amortized.  For waFactor >=
    // groupSize this degenerates to one member group per physical
    // group, the unpacked behaviour.
    const std::uint64_t pack = std::max<std::uint64_t>(
        1, real.groupSize / std::max<std::uint64_t>(1, real.waFactor));
    const std::uint64_t physGroups = (groups + pack - 1) / pack;

    // The wrapper variant re-addresses each fused member group into
    // its member's own grid and runs the real implementation with the
    // member's own argument list.  It carries the real variant's name
    // so launch-level fault injection treats fused and solo launches
    // alike, but no sandboxIndex: output-corruption faults target
    // profiling launches, where the guard can catch them.
    kdp::KernelVariant wrapper;
    wrapper.name = real.name;
    wrapper.waFactor = real.waFactor;
    wrapper.groupSize = real.groupSize;
    wrapper.traits = real.traits;
    const std::uint64_t *starts = fusedStarts.data();
    const FusedSlice *mem = slices.data();
    const std::size_t nmem = slices.size();
    const kdp::KernelFn &fn = real.fn;
    wrapper.fn = [starts, mem, nmem, &fn, pack](kdp::GroupCtx &g,
                                                const kdp::KernelArgs &) {
        const std::uint64_t lo = g.group() * pack;
        const std::uint64_t hi = std::min(lo + pack, starts[nmem]);
        std::size_t m = static_cast<std::size_t>(
            std::upper_bound(starts, starts + nmem + 1, lo) - starts) - 1;
        for (std::uint64_t mg = lo; mg < hi; ++mg) {
            while (starts[m + 1] <= mg)
                ++m;
            kdp::GroupCtx local = g.rebased(mg - starts[m]);
            fn(local, *mem[m].args);
        }
    };

    LaunchReport report;
    report.signature = signature;
    report.selected = want;
    report.selectedName = real.name;
    report.fromCache = variant >= 0;
    report.fused = true;
    report.fusedJobs = slices.size();
    report.orch = opt.orch;
    report.totalUnits = total_units;
    report.startTime = dev.now();
    activeCorrelation = opt.correlationId;

    sim::Launch launch;
    launch.variant = &wrapper;
    launch.firstGroup = 0;
    launch.numGroups = physGroups;
    if (config.verbose)
        support::inform("launchFused t=%llu variant=%s jobs=%zu "
                        "units=%llu groups=%llu pack=%llu",
                        (unsigned long long)dev.now(), real.name.c_str(),
                        nmem, (unsigned long long)total_units,
                        (unsigned long long)physGroups,
                        (unsigned long long)pack);
    if (tracing()) {
        tracer_->instant(
            traceTrack, "device.submit", dev.now(), activeCorrelation,
            {{"variant", real.name},
             {"units", std::to_string(total_units)},
             {"groups", std::to_string(physGroups)},
             {"pack", std::to_string(pack)},
             {"fused_jobs", std::to_string(nmem)}});
    }
    dev.submit(std::move(launch));
    dev.run();
    if (auto fault = consumeDeviceFault(); !fault.ok())
        return fault;
    report.endTime = dev.now();
    if (tracing()) {
        for (std::size_t m = 0; m < nmem; ++m) {
            tracer_->instant(
                traceTrack, "batch.slice", report.endTime,
                mem[m].correlationId,
                {{"variant", real.name},
                 {"units", std::to_string(mem[m].units)}});
        }
        tracer_->complete(
            traceTrack, "execute.fused", report.startTime, report.endTime,
            opt.correlationId,
            {{"variant", real.name},
             {"jobs", std::to_string(nmem)},
             {"units", std::to_string(total_units)}});
    }
    out = finish(std::move(report));
    return support::Status();
}

LaunchReport
Runtime::launchKernel(const std::string &signature,
                      std::uint64_t total_units,
                      const kdp::KernelArgs &args, const LaunchOptions &opt)
{
    LaunchReport report;
    launch(signature, total_units, args, opt, report).throwIfError();
    return report;
}

support::Status
Runtime::launch(const std::string &signature, std::uint64_t total_units,
                const kdp::KernelArgs &args, const LaunchOptions &opt,
                LaunchReport &out)
{
    const KernelEntry *entryp = findEntry(signature);
    if (!entryp)
        return support::Status::notFound(
            "DySel: unknown kernel signature '" + signature + "'");
    const KernelEntry &entry = *entryp;
    const auto num_variants = entry.variants.size();
    activeCorrelation = opt.correlationId;
    if (num_variants == 0)
        return support::Status::failedPrecondition(
            "DySelLaunchKernel(" + signature
            + "): no variants registered");
    if (total_units == 0)
        return support::Status::invalidArgument(
            "DySelLaunchKernel(" + signature + "): empty workload");
    if (opt.initialVariant >= static_cast<int>(num_variants))
        return support::Status::invalidArgument(
            "DySelLaunchKernel(" + signature + "): initial variant "
            + std::to_string(opt.initialVariant) + " out of range");
    const int default_variant =
        opt.initialVariant >= 0 ? opt.initialVariant : 0;

    // ---- Guard: exclude blacklisted variants up front ----------------
    // `act` maps active-local index j -> original variant index; every
    // profiling-side vector below is indexed by j.
    std::vector<std::size_t> act;
    act.reserve(num_variants);
    for (std::size_t i = 0; i < num_variants; ++i) {
        if (guard_.enabled()
            && guard_.isBlacklisted(signature, entry.variants[i].name))
            continue;
        act.push_back(i);
    }
    if (act.empty())
        return support::Status::failedPrecondition(
            "DySelLaunchKernel(" + signature
            + "): every variant is blacklisted");
    const std::uint64_t excluded = num_variants - act.size();
    // A requested variant that is blacklisted falls back to the first
    // healthy one.
    auto healthy = [&](int v) {
        if (std::find(act.begin(), act.end(),
                      static_cast<std::size_t>(v)) != act.end())
            return v;
        return static_cast<int>(act.front());
    };

    // Profiling deactivated: reuse the cached selection (iterative
    // kernels profile only their first launch) or fall back to the
    // default variant.
    if (!opt.profiling) {
        auto cached = cachedSelection(signature);
        if (!cached && !opt.shadow && config.verbose)
            support::warn("DySelLaunchKernel(%s): profiling off with no "
                          "cached selection; using default variant",
                          signature.c_str());
        // A shadow audit probe measures a *forced* variant: the
        // explicit initialVariant outranks the cached winner (which
        // is exactly what the probe is second-guessing).
        const int want = opt.shadow && opt.initialVariant >= 0
                             ? opt.initialVariant
                             : cached.value_or(default_variant);
        const int use = healthy(want);
        return runPlain(signature, entry, use, total_units, args, opt,
                        cached.has_value() && use == want, out);
    }

    if (act.size() == 1)
        return runPlain(signature, entry, static_cast<int>(act.front()),
                        total_units, args, opt, false, out);

    ProfilingMode mode = resolveMode(entry, opt);
    Orchestration orch = opt.orch;
    if (mode == ProfilingMode::Swap && orch == Orchestration::Async) {
        // The final output space is unknown until profiling completes
        // (Table 1): swap cannot run eagerly.
        orch = Orchestration::Sync;
    }
    if (guard_.enabled() && orch == Orchestration::Async) {
        // The guard must validate a variant before its output becomes
        // real; eager chunks by an unvalidated best-so-far would leak
        // unchecked writes into the final buffer.
        orch = Orchestration::Sync;
    }
    unsigned repeats = opt.profileRepeats;
    if (repeats == 0)
        repeats = dev.kind() == sim::DeviceKind::Cpu ? 2 : 1;
    if (mode == ProfilingMode::Swap && repeats > 1) {
        support::warn("DySelLaunchKernel(%s): profile repeats are not "
                      "supported with swap profiling; using 1",
                      signature.c_str());
        repeats = 1;
    }

    const std::size_t num_active = act.size();

    // Safe point analysis: how much each active variant profiles.
    std::vector<std::uint64_t> wafs;
    wafs.reserve(num_active);
    for (std::size_t i : act)
        wafs.push_back(entry.variants[i].waFactor);
    unsigned fill_target = dev.computeUnits();
    if (dev.kind() == sim::DeviceKind::Gpu)
        fill_target *= std::max(1u, config.gpuSaturationBoost);
    const compiler::SafePointPlan plan = compiler::safePointAnalysis(
        wafs, fill_target, total_units, config.maxProfileFraction);

    if (total_units < config.minUnitsForProfiling
        || plan.unitsPerVariant == 0) {
        // Small workload: profiling-based selection is deactivated.
        return runPlain(signature, entry, healthy(default_variant),
                        total_units, args, opt, false, out);
    }

    const std::uint64_t slice = plan.unitsPerVariant;
    const std::uint64_t profiled_span_units =
        mode == ProfilingMode::Fully ? slice * num_active : slice;

    LaunchReport report;
    report.signature = signature;
    report.profiled = true;
    report.mode = mode;
    report.orch = orch;
    report.totalUnits = total_units;
    report.profiledUnits = slice * num_active * repeats;
    report.productiveUnits =
        mode == ProfilingMode::Fully ? slice * num_active : slice;
    report.guardExcluded = excluded;
    report.startTime = dev.now();

    // ---- Sandbox / private output spaces -----------------------------
    auto outputs_of = [&](const kdp::KernelVariant &v) {
        if (!v.sandboxIndex.empty())
            return v.sandboxIndex;
        if (entry.hasInfo)
            return entry.info.outputArgs;
        return std::vector<std::size_t>{};
    };

    std::vector<kdp::KernelArgs> vargs(num_active, args);
    std::vector<std::unique_ptr<kdp::BufferBase>> extras;
    // Winner's (arg index, private clone) pairs for the final swap.
    std::vector<std::vector<std::pair<std::size_t, kdp::BufferBase *>>>
        swap_map(num_active);

    if (mode != ProfilingMode::Fully) {
        const std::size_t first_cloned =
            mode == ProfilingMode::Hybrid ? 1 : 0;
        for (std::size_t j = first_cloned; j < num_active; ++j) {
            const auto outs = outputs_of(entry.variants[act[j]]);
            if (outs.empty())
                return support::Status::failedPrecondition(
                    "DySelLaunchKernel(" + signature + "): "
                    + std::string(compiler::profilingModeName(mode))
                    + " profiling needs sandbox indices or output-arg "
                      "metadata");
            for (std::size_t idx : outs) {
                // With the guard on, sandboxes grow a trailing canary
                // redzone so an out-of-bounds writer is caught.
                auto clone = guard_.enabled()
                    ? args.bufBase(idx).clonePadded(
                          guard_.config().redzoneElems)
                    : args.bufBase(idx).clone();
                if (guard_.enabled())
                    guard::VariantGuard::paintRedzone(*clone);
                report.extraBytes += clone->sizeBytes();
                vargs[j].rebind(idx, *clone);
                swap_map[j].emplace_back(idx, clone.get());
                extras.push_back(std::move(clone));
            }
        }
    }

    // ---- Shared profiling state --------------------------------------
    struct PState
    {
        std::vector<sim::TimeNs> metric;
        /// Aggregation across repeats: the first repeat doubles as a
        /// cache warmup, later repeats are averaged -- which is what
        /// makes extra executions recover selection accuracy under
        /// measurement noise (§5.2).
        std::vector<double> metricSum;
        std::vector<unsigned> metricCount;
        std::vector<VariantProfile> profiles;
        unsigned outstanding = 0;
        int bestSoFar = 0;
        sim::TimeNs bestMetric = std::numeric_limits<sim::TimeNs>::max();
        bool profilingDone = false;
        int selected = -1;
        std::uint64_t nextUnit = 0;
        bool batchSubmitted = false;
        std::uint64_t eagerChunks = 0;
        // Guard bookkeeping (all indexed by active-local j).
        std::vector<unsigned> completions;
        std::vector<bool> failed;
        std::vector<GuardEvent> guardEvents;
        std::uint64_t repairs = 0;
        bool allFailed = false;
        // Telemetry (indexed by active-local j).
        std::vector<std::string> outcome;
        sim::TimeNs remainderStart = 0;
    };
    auto st = std::make_shared<PState>();
    st->metric.assign(num_active,
                      std::numeric_limits<sim::TimeNs>::max());
    st->metricSum.assign(num_active, 0.0);
    st->metricCount.assign(num_active, 0);
    st->profiles.resize(num_active);
    for (std::size_t j = 0; j < num_active; ++j)
        st->profiles[j].name = entry.variants[act[j]].name;
    st->outstanding = static_cast<unsigned>(num_active) * repeats;
    st->completions.assign(num_active, 0);
    st->failed.assign(num_active, false);
    st->outcome.assign(num_active, "pass");
    st->nextUnit = profiled_span_units;

    // bestSoFar is active-local; start at the default variant (or the
    // first healthy one if the default is blacklisted).
    st->bestSoFar = 0;
    for (std::size_t j = 0; j < num_active; ++j)
        if (static_cast<int>(act[j]) == healthy(default_variant))
            st->bestSoFar = static_cast<int>(j);

    // The Fig. 7 in-kernel timer (GPU path).
    std::shared_ptr<GpuTimer> timer;
    if (dev.kind() == sim::DeviceKind::Gpu) {
        timer = std::make_shared<GpuTimer>(
            static_cast<unsigned>(num_active), plan.groups);
    }

    const bool gpu = dev.kind() == sim::DeviceKind::Gpu;

    // Forward declaration of the post-profiling step.
    auto finish_profiling = std::make_shared<std::function<void()>>();

    // ---- Submit the profiling launches -------------------------------
    for (std::size_t j = 0; j < num_active; ++j) {
        const kdp::KernelVariant &variant = entry.variants[act[j]];
        const std::uint64_t first_unit =
            mode == ProfilingMode::Fully ? j * slice : 0;
        // Profiling passes render on a subtrack per (device, variant)
        // so concurrent passes don't overlap on one timeline row.
        const std::uint64_t passTrack =
            tracing() ? tracer_->track(trackName_ + "/profile/"
                                       + variant.name)
                      : 0;
        for (unsigned r = 0; r < repeats; ++r) {
            sim::Launch launch;
            launch.variant = &variant;
            launch.args = vargs[j];
            launch.firstGroup = first_unit / variant.waFactor;
            launch.numGroups = plan.groups[j];
            launch.priority = 1;
            launch.stream = 1 + static_cast<int>(j);
            // GPU profiling kernels measure in effective isolation
            // (concurrent kernels overlap only at tails on Kepler).
            launch.exclusive = gpu;
            if (timer && r == 0) {
                launch.onGroupStamp = [timer, j](sim::TimeNs s,
                                                 sim::TimeNs e) {
                    timer->blockDone(static_cast<unsigned>(j), s, e);
                };
            }
            launch.onComplete = [this, st, finish_profiling, j, gpu, slice,
                                 r, repeats,
                                 passTrack](const sim::LaunchStats &stats) {
                const sim::TimeNs m =
                    gpu ? stats.span() : stats.busyTime;
                st->completions[j]++;
                if (repeats == 1 || r > 0) {
                    // With repeats, the first execution is a cache
                    // warmup; steady-state repeats are averaged.
                    st->metricSum[j] += static_cast<double>(m);
                    st->metricCount[j]++;
                    st->metric[j] = static_cast<sim::TimeNs>(
                        st->metricSum[j] / st->metricCount[j]);
                }
                VariantProfile &prof = st->profiles[j];
                if (r == 0) {
                    prof.span = stats.span();
                    prof.busy = stats.busyTime;
                    prof.units = slice;
                    prof.startTime = stats.firstStamp;
                    prof.endTime = stats.lastStamp;
                }
                if (tracing()) {
                    tracer_->complete(
                        passTrack, "profile:" + st->profiles[j].name,
                        stats.firstStamp, stats.lastStamp,
                        activeCorrelation,
                        {{"variant", st->profiles[j].name},
                         {"repeat", std::to_string(r)},
                         {"units", std::to_string(slice)},
                         {"metric", std::to_string(m)}});
                }
                prof.metric = st->metric[j];
                if (st->metric[j] < st->bestMetric) {
                    st->bestMetric = st->metric[j];
                    st->bestSoFar = static_cast<int>(j);
                }
                if (--st->outstanding == 0)
                    (*finish_profiling)();
            };
            dev.submit(std::move(launch));
        }
    }

    // ---- Post-profiling: validate, select, swap, launch the rest -----
    *finish_profiling = [this, st, &entry, &args, &swap_map, &act, mode,
                         orch, total_units, signature, slice] {
        st->profilingDone = true;
        const std::size_t n = act.size();

        if (guard_.enabled()) {
            auto strike = [&](std::size_t j, guard::CheckKind ck) {
                st->failed[j] = true;
                st->outcome[j] = guard::checkKindName(ck);
                guard_.strike(signature, entry.variants[act[j]].name,
                              ck);
                st->guardEvents.push_back(
                    {entry.variants[act[j]].name,
                     guard::checkKindName(ck)});
                if (tracing()) {
                    tracer_->instant(
                        traceTrack, "guard.strike", dev.now(),
                        activeCorrelation,
                        {{"variant", entry.variants[act[j]].name},
                         {"check", guard::checkKindName(ck)}});
                }
            };
            if (mode != ProfilingMode::Fully) {
                // Self checks on each variant's private clones (in
                // hybrid mode variant 0 has none; only the watchdog
                // covers it).  At most one strike per variant per
                // pass, in check order: redzone, NaN, mismatch.
                for (std::size_t j = 0; j < n; ++j) {
                    if (st->failed[j])
                        continue;
                    bool bad_rz = false;
                    bool bad_nan = false;
                    for (const auto &[idx, clone] : swap_map[j]) {
                        (void)idx;
                        if (!guard::VariantGuard::redzoneIntact(*clone))
                            bad_rz = true;
                        else if (guard::VariantGuard::hasNanOrInf(
                                     *clone))
                            bad_nan = true;
                    }
                    if (bad_rz)
                        strike(j, guard::CheckKind::Redzone);
                    else if (bad_nan)
                        strike(j, guard::CheckKind::NanInf);
                }
                // Cross-check everyone against the reference: the
                // first variant that passed its self checks.  (A
                // corrupt reference with plausible values defeats
                // this -- a documented reference-trust limitation.)
                std::size_t ref = n;
                for (std::size_t j = 0; j < n; ++j) {
                    if (!st->failed[j]) {
                        ref = j;
                        break;
                    }
                }
                for (std::size_t j = 0; ref < n && j < n; ++j) {
                    if (j == ref || st->failed[j])
                        continue;
                    bool match = true;
                    for (const auto &[idx, clone] : swap_map[j]) {
                        // The reference output for this arg: its own
                        // clone, or the real buffer (hybrid ref 0).
                        const kdp::BufferBase *refbuf =
                            &args.bufBase(idx);
                        for (const auto &[ridx, rclone] : swap_map[ref])
                            if (ridx == idx)
                                refbuf = rclone;
                        if (!guard_.outputsMatch(*refbuf, *clone)) {
                            match = false;
                            break;
                        }
                    }
                    if (!match)
                        strike(j, guard::CheckKind::Mismatch);
                }
                for (std::size_t j = 0; j < n; ++j)
                    if (!st->failed[j])
                        guard_.pass(signature,
                                    entry.variants[act[j]].name);
            }
        }

        // Select the fastest variant that survived validation.
        std::size_t best = n;
        for (std::size_t j = 0; j < n; ++j) {
            if (st->failed[j])
                continue;
            if (best == n || st->metric[j] < st->metric[best])
                best = j;
        }
        if (best == n) {
            // Every variant failed validation: there is no
            // trustworthy implementation to run the remainder with.
            st->allFailed = true;
            st->selected = -1;
            return;
        }
        st->selected = static_cast<int>(act[best]);
        selectionCache[signature] = st->selected;

        if (mode == ProfilingMode::Swap) {
            // Swap the winner's private outputs into place; the
            // losers' copies are discarded.  On real hardware this is
            // a pointer swap, so no virtual time is charged.  Guarded
            // clones are redzone-padded, so only the data prefix is
            // copied.
            for (const auto &[idx, clone] : swap_map[best]) {
                if (guard_.enabled())
                    guard::VariantGuard::copyData(args.bufBase(idx),
                                                  *clone);
                else
                    args.bufBase(idx).copyFrom(*clone);
            }
        }

        if (guard_.enabled()) {
            // Repair productive slices whose producer failed, so
            // profiling stays productive: in hybrid mode a failed
            // variant 0 invalidates units [0, slice) of the real
            // output; in fully mode each failed variant leaves its
            // own slice unwritten or corrupt.
            const kdp::KernelVariant &winner =
                entry.variants[st->selected];
            if (mode == ProfilingMode::Hybrid && st->failed[0]) {
                st->repairs++;
                submitBatch(winner, args, 0, slice, 1, 0, nullptr);
            } else if (mode == ProfilingMode::Fully) {
                for (std::size_t j = 0; j < n; ++j) {
                    if (!st->failed[j])
                        continue;
                    st->repairs++;
                    submitBatch(winner, args, j * slice, slice, 1, 0,
                                nullptr);
                }
            }
        }

        if (st->nextUnit < total_units && !st->batchSubmitted) {
            st->batchSubmitted = true;
            // Host-side cost of noticing completion and launching.
            dev.engine().scheduleAfter(
                dev.hostQueryLatencyNs(),
                [this, st, &entry, &args, total_units] {
                    st->remainderStart = dev.now();
                    submitBatch(entry.variants[st->selected], args,
                                st->nextUnit, total_units - st->nextUnit,
                                0, 0, nullptr);
                    st->nextUnit = total_units;
                });
        }
    };

    // ---- Async eager execution (Fig. 4b) ------------------------------
    if (orch == Orchestration::Async) {
        std::uint64_t chunk = opt.eagerChunkUnits;
        if (chunk == 0) {
            chunk = std::max<std::uint64_t>(plan.lcm * plan.scale,
                                            total_units / 32);
        }
        chunk = roundUp(chunk, plan.lcm);

        auto pump = std::make_shared<std::function<void()>>();
        // The continuations capture pump weakly: the local shared_ptr
        // outlives dev.run() below, and a strong self-capture would
        // cycle and leak the profiling state.
        std::weak_ptr<std::function<void()>> pump_weak = pump;
        *pump = [this, st, &entry, &args, &act, total_units, chunk,
                 pump_weak] {
            if (st->profilingDone || st->batchSubmitted)
                return; // the remainder goes out as one batch
            if (st->nextUnit >= total_units)
                return;
            const std::uint64_t units =
                std::min<std::uint64_t>(chunk, total_units - st->nextUnit);
            const kdp::KernelVariant &variant =
                entry.variants[act[st->bestSoFar]];
            st->eagerChunks++;
            const std::uint64_t first = st->nextUnit;
            st->nextUnit += units;
            submitBatch(variant, args, first, units, 0, 0,
                        [this, pump_weak](const sim::LaunchStats &) {
                            dev.engine().scheduleAfter(
                                dev.hostQueryLatencyNs(), [pump_weak] {
                                    if (auto p = pump_weak.lock())
                                        (*p)();
                                });
                        });
        };
        dev.engine().scheduleAfter(dev.hostQueryLatencyNs(),
                                   [pump] { (*pump)(); });
    }

    dev.run();

    if (auto fault = consumeDeviceFault(); !fault.ok())
        return fault;

    if (!st->profilingDone) {
        if (!guard_.enabled())
            support::panic("profiling did not complete for '%s'",
                           signature.c_str());
        // Watchdog: the event queue drained with profiling slices
        // still missing -- a hung variant's launches never completed.
        // Strike the laggards and finish selection with the
        // survivors, then drain the repair / remainder work.
        bool any_hung = false;
        for (std::size_t j = 0; j < num_active; ++j) {
            if (st->completions[j] >= repeats)
                continue;
            any_hung = true;
            st->failed[j] = true;
            st->outcome[j] =
                guard::checkKindName(guard::CheckKind::Watchdog);
            guard_.strike(signature, entry.variants[act[j]].name,
                          guard::CheckKind::Watchdog);
            st->guardEvents.push_back(
                {entry.variants[act[j]].name,
                 guard::checkKindName(guard::CheckKind::Watchdog)});
            if (tracing()) {
                tracer_->instant(
                    traceTrack, "guard.strike", dev.now(),
                    activeCorrelation,
                    {{"variant", entry.variants[act[j]].name},
                     {"check", guard::checkKindName(
                                   guard::CheckKind::Watchdog)}});
            }
        }
        if (!any_hung)
            support::panic("profiling did not complete for '%s'",
                           signature.c_str());
        (*finish_profiling)();
        dev.run();
        if (auto fault = consumeDeviceFault(); !fault.ok())
            return fault;
    }

    if (st->allFailed)
        return support::Status::dataLoss(
            "DySelLaunchKernel(" + signature + "): every variant "
            "failed guard validation; no trustworthy output");

    report.selected = st->selected;
    report.selectedName = entry.variants[st->selected].name;
    report.eagerChunks = st->eagerChunks;
    report.profiles = st->profiles;
    report.guardEvents = st->guardEvents;
    report.guardRepairs = st->repairs;
    report.endTime = dev.now();

    // Structured selection timeline: one pass record per registered
    // variant, registration order, skipped variants included.
    const sim::TimeNs unmeasured =
        std::numeric_limits<sim::TimeNs>::max();
    for (std::size_t i = 0; i < num_variants; ++i) {
        SelectionPass pass;
        pass.variant = entry.variants[i].name;
        const auto jt = std::find(act.begin(), act.end(), i);
        if (jt == act.end()) {
            pass.guardOutcome = "blacklisted";
        } else {
            const auto j = static_cast<std::size_t>(jt - act.begin());
            pass.units = slice;
            pass.startTime = st->profiles[j].startTime;
            pass.endTime = st->profiles[j].endTime;
            pass.metric = st->metric[j] == unmeasured ? 0 : st->metric[j];
            pass.guardOutcome = st->outcome[j];
            pass.selected = static_cast<int>(i) == st->selected;
        }
        report.timeline.push_back(std::move(pass));
    }

    if (tracing()) {
        if (st->batchSubmitted) {
            // The winner's bulk execution of the remainder.
            tracer_->complete(
                traceTrack, "execute", st->remainderStart,
                report.endTime, opt.correlationId,
                {{"variant", report.selectedName},
                 {"units",
                  std::to_string(total_units - profiled_span_units)},
                 {"winner", "yes"}});
        }
        tracer_->complete(
            traceTrack, "launch", report.startTime, report.endTime,
            opt.correlationId,
            {{"signature", signature},
             {"mode", compiler::profilingModeName(mode)},
             {"orch", orchestrationName(orch)},
             {"selected", report.selectedName},
             {"profiledUnits", std::to_string(report.profiledUnits)},
             {"totalUnits", std::to_string(total_units)}});
    }

    if (config.verbose) {
        support::inform("DySel[%s]: selected '%s' (%s, %s), %llu eager "
                        "chunks, %.2f%% profiled",
                        signature.c_str(), report.selectedName.c_str(),
                        compiler::profilingModeName(mode),
                        orchestrationName(orch),
                        (unsigned long long)report.eagerChunks,
                        100.0 * static_cast<double>(report.profiledUnits)
                            / static_cast<double>(total_units));
    }
    out = finish(std::move(report));
    return support::Status();
}

} // namespace runtime
} // namespace dysel
