#include "runtime.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "support/logging.hh"
#include "support/math_util.hh"

#include "gpu_timer.hh"

namespace dysel {
namespace runtime {

using support::ceilDiv;
using support::roundUp;

const char *
orchestrationName(Orchestration o)
{
    switch (o) {
      case Orchestration::Sync: return "sync";
      case Orchestration::Async: return "async";
    }
    return "?";
}

Runtime::Runtime(sim::Device &device, const RuntimeConfig &cfg)
    : dev(device), config(cfg)
{
}

support::Status
Runtime::tryAddKernel(const std::string &signature,
                      kdp::KernelVariant variant)
{
    if (!variant.fn)
        return support::Status::invalidArgument(
            "DySelAddKernel(" + signature + "): variant '" + variant.name
            + "' has no implementation");
    if (variant.waFactor == 0 || variant.groupSize == 0)
        return support::Status::invalidArgument(
            "DySelAddKernel(" + signature + "): variant '" + variant.name
            + "' has zero work assignment factor or group size");
    KernelEntry &entry = pool[signature];
    for (const auto &v : entry.variants)
        if (v.name == variant.name)
            return support::Status::invalidArgument(
                "DySelAddKernel(" + signature + "): duplicate variant '"
                + variant.name + "'");
    entry.variants.push_back(std::move(variant));
    return support::Status();
}

void
Runtime::addKernel(const std::string &signature, kdp::KernelVariant variant)
{
    tryAddKernel(signature, std::move(variant)).throwIfError();
}

void
Runtime::setKernelInfo(const std::string &signature,
                       compiler::KernelInfo info)
{
    KernelEntry &entry = pool[signature];
    entry.info = std::move(info);
    entry.hasInfo = true;
}

std::size_t
Runtime::variantCount(const std::string &signature) const
{
    auto it = pool.find(signature);
    return it == pool.end() ? 0 : it->second.variants.size();
}

const std::vector<kdp::KernelVariant> &
Runtime::variants(const std::string &signature) const
{
    return entryOf(signature).variants;
}

const std::vector<kdp::KernelVariant> *
Runtime::findVariants(const std::string &signature) const noexcept
{
    const KernelEntry *entry = findEntry(signature);
    return entry ? &entry->variants : nullptr;
}

const Runtime::KernelEntry *
Runtime::findEntry(const std::string &signature) const noexcept
{
    auto it = pool.find(signature);
    return it == pool.end() ? nullptr : &it->second;
}

support::Status
Runtime::consumeDeviceFault()
{
    const auto fault = dev.takeFault();
    if (!fault)
        return support::Status();
    const std::string where =
        " (variant '" + fault->variant + "' on " + fault->device + ")";
    if (fault->kind == sim::FaultKind::Hang)
        return support::Status::deadlineExceeded(
            "DySel: device hung during launch" + where);
    return support::Status::unavailable(
        "DySel: injected launch failure" + where);
}

Runtime::KernelEntry &
Runtime::entryOf(const std::string &signature)
{
    auto it = pool.find(signature);
    if (it == pool.end())
        throw std::out_of_range(
            "DySel: unknown kernel signature '" + signature + "'");
    return it->second;
}

const Runtime::KernelEntry &
Runtime::entryOf(const std::string &signature) const
{
    auto it = pool.find(signature);
    if (it == pool.end())
        throw std::out_of_range(
            "DySel: unknown kernel signature '" + signature + "'");
    return it->second;
}

bool
Runtime::hasKernel(const std::string &signature) const
{
    return pool.count(signature) > 0;
}

void
Runtime::removeKernel(const std::string &signature)
{
    pool.erase(signature);
    selectionCache.erase(signature);
}

void
Runtime::clearSelectionCache()
{
    selectionCache.clear();
}

std::optional<int>
Runtime::cachedSelection(const std::string &signature) const
{
    auto it = selectionCache.find(signature);
    if (it == selectionCache.end())
        return std::nullopt;
    return it->second;
}

support::Status
Runtime::tryImportSelection(const std::string &signature, int variant)
{
    const KernelEntry *entry = findEntry(signature);
    if (!entry)
        return support::Status::notFound(
            "DySel: unknown kernel signature '" + signature + "'");
    if (variant < 0
        || variant >= static_cast<int>(entry->variants.size()))
        return support::Status::invalidArgument(
            "DySel: imported selection " + std::to_string(variant)
            + " out of range for '" + signature + "'");
    selectionCache[signature] = variant;
    return support::Status();
}

void
Runtime::importSelection(const std::string &signature, int variant)
{
    tryImportSelection(signature, variant).throwIfError();
}

std::map<std::string, int>
Runtime::exportSelections() const
{
    return selectionCache;
}

void
Runtime::setLaunchObserver(LaunchObserver obs)
{
    observer = std::move(obs);
}

LaunchReport
Runtime::finish(LaunchReport report)
{
    if (observer)
        observer(report);
    return report;
}

ProfilingMode
Runtime::resolveMode(const KernelEntry &entry,
                     const LaunchOptions &opt) const
{
    if (opt.modeExplicit)
        return opt.mode;
    if (entry.hasInfo)
        return compiler::recommendProfilingMode(entry.info);
    return ProfilingMode::Fully;
}

void
Runtime::submitBatch(const kdp::KernelVariant &variant,
                     const kdp::KernelArgs &args, std::uint64_t first_unit,
                     std::uint64_t units, int priority, int stream,
                     std::function<void(const sim::LaunchStats &)> done)
{
    if (first_unit % variant.waFactor != 0)
        support::panic("batch start unit %llu not aligned to wa factor "
                       "%llu of variant '%s'",
                       (unsigned long long)first_unit,
                       (unsigned long long)variant.waFactor,
                       variant.name.c_str());
    sim::Launch launch;
    launch.variant = &variant;
    launch.args = args;
    launch.firstGroup = first_unit / variant.waFactor;
    launch.numGroups = ceilDiv(units, variant.waFactor);
    launch.priority = priority;
    launch.stream = stream;
    launch.onComplete = std::move(done);
    if (config.verbose)
        support::inform("submitBatch t=%llu variant=%s units=[%llu,%llu) "
                        "groups=%llu prio=%d",
                        (unsigned long long)dev.now(),
                        variant.name.c_str(),
                        (unsigned long long)first_unit,
                        (unsigned long long)(first_unit + units),
                        (unsigned long long)launch.numGroups, priority);
    dev.submit(std::move(launch));
}

support::Status
Runtime::runPlain(const std::string &signature, const KernelEntry &entry,
                  int variant, std::uint64_t total_units,
                  const kdp::KernelArgs &args, const LaunchOptions &opt,
                  bool from_cache, LaunchReport &out)
{
    LaunchReport report;
    report.signature = signature;
    report.selected = variant;
    report.selectedName = entry.variants[variant].name;
    report.fromCache = from_cache;
    report.orch = opt.orch;
    report.totalUnits = total_units;
    report.startTime = dev.now();

    submitBatch(entry.variants[variant], args, 0, total_units, 0, 0,
                nullptr);
    dev.run();
    if (auto fault = consumeDeviceFault(); !fault.ok())
        return fault;
    report.endTime = dev.now();
    out = finish(std::move(report));
    return support::Status();
}

LaunchReport
Runtime::launchKernel(const std::string &signature,
                      std::uint64_t total_units,
                      const kdp::KernelArgs &args, const LaunchOptions &opt)
{
    LaunchReport report;
    launch(signature, total_units, args, opt, report).throwIfError();
    return report;
}

support::Status
Runtime::launch(const std::string &signature, std::uint64_t total_units,
                const kdp::KernelArgs &args, const LaunchOptions &opt,
                LaunchReport &out)
{
    const KernelEntry *entryp = findEntry(signature);
    if (!entryp)
        return support::Status::notFound(
            "DySel: unknown kernel signature '" + signature + "'");
    const KernelEntry &entry = *entryp;
    const auto num_variants = entry.variants.size();
    if (num_variants == 0)
        return support::Status::failedPrecondition(
            "DySelLaunchKernel(" + signature
            + "): no variants registered");
    if (total_units == 0)
        return support::Status::invalidArgument(
            "DySelLaunchKernel(" + signature + "): empty workload");
    if (opt.initialVariant >= static_cast<int>(num_variants))
        return support::Status::invalidArgument(
            "DySelLaunchKernel(" + signature + "): initial variant "
            + std::to_string(opt.initialVariant) + " out of range");
    const int default_variant =
        opt.initialVariant >= 0 ? opt.initialVariant : 0;

    // Profiling deactivated: reuse the cached selection (iterative
    // kernels profile only their first launch) or fall back to the
    // default variant.
    if (!opt.profiling) {
        auto cached = cachedSelection(signature);
        if (!cached && config.verbose)
            support::warn("DySelLaunchKernel(%s): profiling off with no "
                          "cached selection; using default variant",
                          signature.c_str());
        return runPlain(signature, entry,
                        cached.value_or(default_variant), total_units,
                        args, opt, cached.has_value(), out);
    }

    if (num_variants == 1)
        return runPlain(signature, entry, 0, total_units, args, opt,
                        false, out);

    ProfilingMode mode = resolveMode(entry, opt);
    Orchestration orch = opt.orch;
    if (mode == ProfilingMode::Swap && orch == Orchestration::Async) {
        // The final output space is unknown until profiling completes
        // (Table 1): swap cannot run eagerly.
        orch = Orchestration::Sync;
    }
    unsigned repeats = opt.profileRepeats;
    if (repeats == 0)
        repeats = dev.kind() == sim::DeviceKind::Cpu ? 2 : 1;
    if (mode == ProfilingMode::Swap && repeats > 1) {
        support::warn("DySelLaunchKernel(%s): profile repeats are not "
                      "supported with swap profiling; using 1",
                      signature.c_str());
        repeats = 1;
    }

    // Safe point analysis: how much each variant profiles.
    std::vector<std::uint64_t> wafs;
    wafs.reserve(num_variants);
    for (const auto &v : entry.variants)
        wafs.push_back(v.waFactor);
    unsigned fill_target = dev.computeUnits();
    if (dev.kind() == sim::DeviceKind::Gpu)
        fill_target *= std::max(1u, config.gpuSaturationBoost);
    const compiler::SafePointPlan plan = compiler::safePointAnalysis(
        wafs, fill_target, total_units, config.maxProfileFraction);

    if (total_units < config.minUnitsForProfiling
        || plan.unitsPerVariant == 0) {
        // Small workload: profiling-based selection is deactivated.
        return runPlain(signature, entry, default_variant, total_units,
                        args, opt, false, out);
    }

    const std::uint64_t slice = plan.unitsPerVariant;
    const std::uint64_t profiled_span_units =
        mode == ProfilingMode::Fully ? slice * num_variants : slice;

    LaunchReport report;
    report.signature = signature;
    report.profiled = true;
    report.mode = mode;
    report.orch = orch;
    report.totalUnits = total_units;
    report.profiledUnits = slice * num_variants * repeats;
    report.productiveUnits =
        mode == ProfilingMode::Fully ? slice * num_variants : slice;
    report.startTime = dev.now();

    // ---- Sandbox / private output spaces -----------------------------
    auto outputs_of = [&](const kdp::KernelVariant &v) {
        if (!v.sandboxIndex.empty())
            return v.sandboxIndex;
        if (entry.hasInfo)
            return entry.info.outputArgs;
        return std::vector<std::size_t>{};
    };

    std::vector<kdp::KernelArgs> vargs(num_variants, args);
    std::vector<std::unique_ptr<kdp::BufferBase>> extras;
    // Winner's (arg index, private clone) pairs for the final swap.
    std::vector<std::vector<std::pair<std::size_t, kdp::BufferBase *>>>
        swap_map(num_variants);

    if (mode != ProfilingMode::Fully) {
        const std::size_t first_cloned =
            mode == ProfilingMode::Hybrid ? 1 : 0;
        for (std::size_t i = first_cloned; i < num_variants; ++i) {
            const auto outs = outputs_of(entry.variants[i]);
            if (outs.empty())
                return support::Status::failedPrecondition(
                    "DySelLaunchKernel(" + signature + "): "
                    + std::string(compiler::profilingModeName(mode))
                    + " profiling needs sandbox indices or output-arg "
                      "metadata");
            for (std::size_t idx : outs) {
                auto clone = args.bufBase(idx).clone();
                report.extraBytes += clone->sizeBytes();
                vargs[i].rebind(idx, *clone);
                swap_map[i].emplace_back(idx, clone.get());
                extras.push_back(std::move(clone));
            }
        }
    }

    // ---- Shared profiling state --------------------------------------
    struct PState
    {
        std::vector<sim::TimeNs> metric;
        /// Aggregation across repeats: the first repeat doubles as a
        /// cache warmup, later repeats are averaged -- which is what
        /// makes extra executions recover selection accuracy under
        /// measurement noise (§5.2).
        std::vector<double> metricSum;
        std::vector<unsigned> metricCount;
        std::vector<VariantProfile> profiles;
        unsigned outstanding = 0;
        int bestSoFar = 0;
        sim::TimeNs bestMetric = std::numeric_limits<sim::TimeNs>::max();
        bool profilingDone = false;
        int selected = -1;
        std::uint64_t nextUnit = 0;
        bool batchSubmitted = false;
        std::uint64_t eagerChunks = 0;
    };
    auto st = std::make_shared<PState>();
    st->metric.assign(num_variants,
                      std::numeric_limits<sim::TimeNs>::max());
    st->metricSum.assign(num_variants, 0.0);
    st->metricCount.assign(num_variants, 0);
    st->profiles.resize(num_variants);
    st->outstanding = static_cast<unsigned>(num_variants) * repeats;
    st->bestSoFar = default_variant;
    st->nextUnit = profiled_span_units;

    // The Fig. 7 in-kernel timer (GPU path).
    std::shared_ptr<GpuTimer> timer;
    if (dev.kind() == sim::DeviceKind::Gpu) {
        timer = std::make_shared<GpuTimer>(
            static_cast<unsigned>(num_variants), plan.groups);
    }

    const bool gpu = dev.kind() == sim::DeviceKind::Gpu;

    // Forward declaration of the post-profiling step.
    auto finish_profiling = std::make_shared<std::function<void()>>();

    // ---- Submit the profiling launches -------------------------------
    for (std::size_t i = 0; i < num_variants; ++i) {
        const kdp::KernelVariant &variant = entry.variants[i];
        const std::uint64_t first_unit =
            mode == ProfilingMode::Fully ? i * slice : 0;
        for (unsigned r = 0; r < repeats; ++r) {
            sim::Launch launch;
            launch.variant = &variant;
            launch.args = vargs[i];
            launch.firstGroup = first_unit / variant.waFactor;
            launch.numGroups = plan.groups[i];
            launch.priority = 1;
            launch.stream = 1 + static_cast<int>(i);
            // GPU profiling kernels measure in effective isolation
            // (concurrent kernels overlap only at tails on Kepler).
            launch.exclusive = gpu;
            if (timer && r == 0) {
                launch.onGroupStamp = [timer, i](sim::TimeNs s,
                                                 sim::TimeNs e) {
                    timer->blockDone(static_cast<unsigned>(i), s, e);
                };
            }
            launch.onComplete = [this, st, finish_profiling, i, gpu, slice,
                                 r, repeats](const sim::LaunchStats &stats) {
                const sim::TimeNs m =
                    gpu ? stats.span() : stats.busyTime;
                if (repeats == 1 || r > 0) {
                    // With repeats, the first execution is a cache
                    // warmup; steady-state repeats are averaged.
                    st->metricSum[i] += static_cast<double>(m);
                    st->metricCount[i]++;
                    st->metric[i] = static_cast<sim::TimeNs>(
                        st->metricSum[i] / st->metricCount[i]);
                }
                VariantProfile &prof = st->profiles[i];
                if (r == 0) {
                    prof.span = stats.span();
                    prof.busy = stats.busyTime;
                    prof.units = slice;
                }
                prof.metric = st->metric[i];
                if (st->metric[i] < st->bestMetric) {
                    st->bestMetric = st->metric[i];
                    st->bestSoFar = static_cast<int>(i);
                }
                if (--st->outstanding == 0)
                    (*finish_profiling)();
            };
            dev.submit(std::move(launch));
        }
    }

    // ---- Post-profiling: select, swap, launch the remainder ----------
    *finish_profiling = [this, st, &entry, &args, &vargs, &swap_map, mode,
                         orch, total_units, signature] {
        st->profilingDone = true;
        int best = 0;
        for (std::size_t i = 1; i < st->metric.size(); ++i)
            if (st->metric[i] < st->metric[best])
                best = static_cast<int>(i);
        st->selected = best;
        selectionCache[signature] = best;

        if (mode == ProfilingMode::Swap) {
            // Swap the winner's private outputs into place; the
            // losers' copies are discarded.  On real hardware this is
            // a pointer swap, so no virtual time is charged.
            for (const auto &[idx, clone] : swap_map[best])
                args.bufBase(idx).copyFrom(*clone);
        }

        if (st->nextUnit < total_units && !st->batchSubmitted) {
            st->batchSubmitted = true;
            // Host-side cost of noticing completion and launching.
            dev.engine().scheduleAfter(
                dev.hostQueryLatencyNs(),
                [this, st, &entry, &args, total_units] {
                    submitBatch(entry.variants[st->selected], args,
                                st->nextUnit, total_units - st->nextUnit,
                                0, 0, nullptr);
                    st->nextUnit = total_units;
                });
        }
    };

    // ---- Async eager execution (Fig. 4b) ------------------------------
    if (orch == Orchestration::Async) {
        std::uint64_t chunk = opt.eagerChunkUnits;
        if (chunk == 0) {
            chunk = std::max<std::uint64_t>(plan.lcm * plan.scale,
                                            total_units / 32);
        }
        chunk = roundUp(chunk, plan.lcm);

        auto pump = std::make_shared<std::function<void()>>();
        // The continuations capture pump weakly: the local shared_ptr
        // outlives dev.run() below, and a strong self-capture would
        // cycle and leak the profiling state.
        std::weak_ptr<std::function<void()>> pump_weak = pump;
        *pump = [this, st, &entry, &args, total_units, chunk, pump_weak] {
            if (st->profilingDone || st->batchSubmitted)
                return; // the remainder goes out as one batch
            if (st->nextUnit >= total_units)
                return;
            const std::uint64_t units =
                std::min<std::uint64_t>(chunk, total_units - st->nextUnit);
            const kdp::KernelVariant &variant =
                entry.variants[st->bestSoFar];
            st->eagerChunks++;
            const std::uint64_t first = st->nextUnit;
            st->nextUnit += units;
            submitBatch(variant, args, first, units, 0, 0,
                        [this, pump_weak](const sim::LaunchStats &) {
                            dev.engine().scheduleAfter(
                                dev.hostQueryLatencyNs(), [pump_weak] {
                                    if (auto p = pump_weak.lock())
                                        (*p)();
                                });
                        });
        };
        dev.engine().scheduleAfter(dev.hostQueryLatencyNs(),
                                   [pump] { (*pump)(); });
    }

    dev.run();

    if (auto fault = consumeDeviceFault(); !fault.ok())
        return fault;

    if (!st->profilingDone)
        support::panic("profiling did not complete for '%s'",
                       signature.c_str());

    report.selected = st->selected;
    report.selectedName = entry.variants[st->selected].name;
    report.eagerChunks = st->eagerChunks;
    for (std::size_t i = 0; i < num_variants; ++i)
        st->profiles[i].name = entry.variants[i].name;
    report.profiles = st->profiles;
    report.endTime = dev.now();

    if (config.verbose) {
        support::inform("DySel[%s]: selected '%s' (%s, %s), %llu eager "
                        "chunks, %.2f%% profiled",
                        signature.c_str(), report.selectedName.c_str(),
                        compiler::profilingModeName(mode),
                        orchestrationName(orch),
                        (unsigned long long)report.eagerChunks,
                        100.0 * static_cast<double>(report.profiledUnits)
                            / static_cast<double>(total_units));
    }
    out = finish(std::move(report));
    return support::Status();
}

} // namespace runtime
} // namespace dysel
