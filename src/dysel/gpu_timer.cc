#include "gpu_timer.hh"

namespace dysel {
namespace runtime {

GpuTimer::GpuTimer(unsigned num_kernels,
                   const std::vector<std::uint64_t> &blocks_per_kernel)
{
    if (blocks_per_kernel.size() != num_kernels)
        support::panic("GpuTimer: %u kernels but %zu block counts",
                       num_kernels, blocks_per_kernel.size());
    kernels.resize(num_kernels);
    for (unsigned k = 0; k < num_kernels; ++k) {
        if (blocks_per_kernel[k] == 0)
            support::panic("GpuTimer: kernel %u profiles zero blocks", k);
        kernels[k].expected = blocks_per_kernel[k];
    }
}

void
GpuTimer::blockDone(unsigned kid, sim::TimeNs start, sim::TimeNs end)
{
    if (kid >= kernels.size())
        support::panic("GpuTimer: kernel id %u out of range", kid);
    PerKernel &k = kernels[kid];
    if (k.done)
        support::panic("GpuTimer: kernel %u reported after completion",
                       kid);

    // atomicMin(global_start_stamp + kid, local_start_stamp);
    // local_start_stamp = min(old, local_start_stamp);
    k.globalStartStamp = std::min(k.globalStartStamp, start);
    const sim::TimeNs local_start = k.globalStartStamp;

    // old = atomicInc(global_count + kid, gridDim.x);
    const std::uint64_t old_count = k.count++;
    if (old_count == k.expected - 1) {
        // Only the last completing thread block of the kernel:
        //   local_diff = get_cycle() - local_start_stamp;
        //   old = atomicMin(global_diff, local_diff);
        //   if (global_diff < old) selection = kid;
        k.diff = end - local_start;
        k.done = true;
        const sim::TimeNs old_diff = globalDiff;
        globalDiff = std::min(globalDiff, k.diff);
        if (globalDiff < old_diff)
            finalSelection = static_cast<int>(kid);
    }
}

bool
GpuTimer::kernelDone(unsigned kid) const
{
    if (kid >= kernels.size())
        support::panic("GpuTimer: kernel id %u out of range", kid);
    return kernels[kid].done;
}

bool
GpuTimer::allDone() const
{
    for (const auto &k : kernels)
        if (!k.done)
            return false;
    return true;
}

sim::TimeNs
GpuTimer::span(unsigned kid) const
{
    if (!kernelDone(kid))
        support::panic("GpuTimer::span before kernel %u finished", kid);
    return kernels[kid].diff;
}

} // namespace runtime
} // namespace dysel
