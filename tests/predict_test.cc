/**
 * @file
 * Tests for learned selection: feature extraction, the three evidence
 * sources (exact winner, cross-bucket interpolation, linear model),
 * calibration collapse under mis-predictions, model persistence, and
 * the dispatch-service integration -- confident predictions skip
 * micro-profiling entirely, low-confidence keys fall back to it, and
 * a seeded launch fault on a predicted selection demotes it back to a
 * forced profile with the predict.* counters reconciling 1:1 against
 * the injector log.
 */
#include <gtest/gtest.h>

#include <vector>

#include "dysel/predict/predictor.hh"
#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"

using namespace dysel;
using namespace dysel::predict;
using namespace dysel::serve;

namespace {

constexpr const char *kCpuDev = "cpu/test-device/c8@3.60GHz";
constexpr const char *kGpuDev = "gpu/test-device/sm64@1.50GHz";

/** A two-loop kernel: one work-item loop, one inner reduction. */
compiler::KernelInfo
sampleInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {
        {"wi", compiler::BoundKind::Constant, true, false, 1024},
        {"k", compiler::BoundKind::Param, false, false, 64},
    };
    compiler::AccessPattern read;
    read.argIndex = 0;
    read.coeffs = {1, 0};
    compiler::AccessPattern write;
    write.argIndex = 1;
    write.write = true;
    write.coeffs = {1, 0};
    info.accesses = {read, write};
    info.outputArgs = {1};
    return info;
}

/** A training example as the store's profile feed delivers it. */
store::SelectionRecord
example(const std::string &sig, const std::string &dev, unsigned bucket,
        const std::string &winner)
{
    store::SelectionRecord rec;
    rec.signature = sig;
    rec.device = dev;
    rec.bucket = bucket;
    rec.selected = 0;
    rec.selectedName = winner;
    return rec;
}

} // namespace

TEST(Features, DeviceClassParsesFingerprints)
{
    EXPECT_EQ(deviceClassOf(kCpuDev), 0u);
    EXPECT_EQ(deviceClassOf(kGpuDev), 1u);
    EXPECT_EQ(deviceClassOf("tpu/foo"), 2u);
    EXPECT_EQ(deviceClassOf("noslash"), 2u);
    EXPECT_EQ(deviceClassOf(""), 2u);
}

TEST(Features, KernelFeaturesAreNormalized)
{
    const FeatureVector f = kernelFeatures(sampleInfo("k"));
    for (std::size_t i = 0; i < kFeatureDim; ++i) {
        EXPECT_GE(f[i], 0.0) << featureName(i);
        EXPECT_LE(f[i], 1.0) << featureName(i);
    }
    EXPECT_DOUBLE_EQ(f[0], 1.0); // bias
    // One of the two loops iterates work-items; one of the two
    // accesses writes; both are affine.
    EXPECT_DOUBLE_EQ(f[4], 0.5);  // workitem_frac
    EXPECT_DOUBLE_EQ(f[9], 0.5);  // write_frac
    EXPECT_DOUBLE_EQ(f[10], 1.0); // affine_frac
    EXPECT_DOUBLE_EQ(f[5], 0.0);  // no irregular loops

    // Same structure, different signature: identical features (that
    // is what lets model evidence transfer across signatures).
    EXPECT_EQ(f, kernelFeatures(sampleInfo("other")));
}

TEST(Features, ComposeClampsBucketAndClass)
{
    const FeatureVector base{};
    const FeatureVector f = composeFeatures(base, 100, 7);
    EXPECT_DOUBLE_EQ(f[1], 63.0 / 64.0); // bucket clamped to 63
    EXPECT_DOUBLE_EQ(f[11], 1.0);        // class clamped to 2
    const FeatureVector g = composeFeatures(base, 9, 1);
    EXPECT_DOUBLE_EQ(g[1], 9.0 / 64.0);
    EXPECT_DOUBLE_EQ(g[11], 0.5);
}

TEST(Predictor, ExactWinnerPredictsAboveThreshold)
{
    SelectionPredictor p;
    EXPECT_FALSE(p.predict("k", kCpuDev, 10).has_value());

    p.observeProfile(example("k", kCpuDev, 10, "fast"));
    EXPECT_EQ(p.trainingExamples(), 1u);
    EXPECT_EQ(p.winnerCount(), 1u);

    const auto pred = p.predict("k", kCpuDev, 10);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->variant, "fast");
    EXPECT_EQ(pred->source, Source::Exact);
    EXPECT_EQ(pred->distance, 0u);
    // exactConfidence * the calibration prior (8/9) clears the gate.
    EXPECT_GE(pred->confidence, p.config().threshold);
    EXPECT_LT(pred->confidence, 1.0);

    // Different device fingerprint: the winner does not apply; the
    // model has no GPU-class weights either.
    EXPECT_FALSE(p.predict("k", kGpuDev, 10).has_value());
}

TEST(Predictor, InterpolationDecaysWithDistance)
{
    SelectionPredictor p;
    p.observeProfile(example("k", kCpuDev, 10, "fast"));

    const auto d1 = p.predict("k", kCpuDev, 11);
    const auto d2 = p.predict("k", kCpuDev, 12);
    ASSERT_TRUE(d1.has_value());
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d1->source, Source::Interpolated);
    EXPECT_EQ(d2->source, Source::Interpolated);
    EXPECT_EQ(d1->variant, "fast");
    EXPECT_EQ(d1->distance, 1u);
    EXPECT_EQ(d2->distance, 2u);
    EXPECT_GT(d1->confidence, d2->confidence);
    // One bucket away still clears the default gate; the exact hit
    // outranks both.
    EXPECT_GE(d1->confidence, p.config().threshold);
    EXPECT_GT(p.predict("k", kCpuDev, 10)->confidence, d1->confidence);

    // Beyond the radius only the (weak) model speaks.
    const auto d3 = p.predict("k", kCpuDev, 13);
    ASSERT_TRUE(d3.has_value());
    EXPECT_EQ(d3->source, Source::Model);
    EXPECT_LT(d3->confidence, p.config().threshold);

    // The nearer neighbour wins when both sides have winners.
    p.observeProfile(example("k", kCpuDev, 13, "slow"));
    const auto mid = p.predict("k", kCpuDev, 12);
    ASSERT_TRUE(mid.has_value());
    EXPECT_EQ(mid->variant, "slow"); // distance 1 beats distance 2
    EXPECT_EQ(mid->distance, 1u);
}

TEST(Predictor, InterpolationClampsAtBucketEdges)
{
    // Winners at the extreme buckets: neighbour arithmetic must clamp,
    // not wrap -- a bucket-0 winner seeding bucket 63 (or vice versa)
    // would alias workload sizes 2^63 apart.
    SelectionPredictor p;
    p.observeProfile(example("lo", kCpuDev, 0, "fast"));
    p.observeProfile(example("hi", kCpuDev, 63, "slow"));

    const auto up = p.predict("lo", kCpuDev, 1);
    ASSERT_TRUE(up.has_value());
    EXPECT_EQ(up->source, Source::Interpolated);
    EXPECT_EQ(up->distance, 1u);

    const auto down = p.predict("hi", kCpuDev, 62);
    ASSERT_TRUE(down.has_value());
    EXPECT_EQ(down->source, Source::Interpolated);
    EXPECT_EQ(down->distance, 1u);

    // Across the space: no interpolation evidence (the model may
    // still answer, but never with a recorded-winner source).
    const auto far = p.predict("lo", kCpuDev, 63);
    if (far.has_value()) {
        EXPECT_EQ(far->source, Source::Model);
    }
    const auto near0 = p.predict("hi", kCpuDev, 0);
    if (near0.has_value()) {
        EXPECT_EQ(near0->source, Source::Model);
    }
}

TEST(Predictor, ModelGeneralizesAcrossSignatures)
{
    SelectionPredictor p;
    // Two structurally identical kernels on the same device class:
    // training examples for one build model evidence for the other.
    p.noteKernel("a", sampleInfo("a"));
    p.noteKernel("b", sampleInfo("b"));
    for (int i = 0; i < 8; ++i)
        p.observeProfile(example("a", kCpuDev, 10, "fast"));

    const auto pred = p.predict("b", kCpuDev, 10);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->source, Source::Model);
    EXPECT_EQ(pred->variant, "fast");
    EXPECT_GT(pred->confidence, 0.0);
    // The model is capped below what a recorded winner would carry.
    EXPECT_LT(pred->confidence,
              p.predict("a", kCpuDev, 10)->confidence);
}

TEST(Predictor, CalibrationCollapsesUnderDemotions)
{
    SelectionPredictor p;
    p.observeProfile(example("k", kCpuDev, 10, "fast"));
    ASSERT_GE(p.predict("k", kCpuDev, 10)->confidence,
              p.config().threshold);
    const double before = p.calibration();

    // Each demotion charges demotionPenalty shadow misses; a
    // predictor that keeps being wrong talks itself below the gate
    // even where it still has a recorded winner.
    for (int i = 0; i < 5; ++i)
        p.observeDemotion("other", kCpuDev, 20 + static_cast<unsigned>(i));
    EXPECT_EQ(p.demotions(), 5u);
    EXPECT_LT(p.calibration(), before);
    EXPECT_LT(p.calibration(), 0.5);
    const auto pred = p.predict("k", kCpuDev, 10);
    ASSERT_TRUE(pred.has_value()); // still has an opinion...
    EXPECT_LT(pred->confidence, p.config().threshold); // ...ungated
}

TEST(Predictor, DemotionUnlearnsTheWinner)
{
    SelectionPredictor p;
    p.observeProfile(example("k", kCpuDev, 10, "fast"));
    ASSERT_EQ(p.predict("k", kCpuDev, 10)->source, Source::Exact);

    p.observeDemotion("k", kCpuDev, 10);
    EXPECT_EQ(p.winnerCount(), 0u);
    const auto pred = p.predict("k", kCpuDev, 10);
    // The erased winner no longer backs an exact prediction; at most
    // the (penalized) model still answers.
    if (pred.has_value()) {
        EXPECT_NE(pred->source, Source::Exact);
        EXPECT_LT(pred->confidence, p.config().threshold);
    }

    // The corrective re-profile re-establishes the (new) winner.
    p.observeProfile(example("k", kCpuDev, 10, "slow"));
    const auto fixed = p.predict("k", kCpuDev, 10);
    ASSERT_TRUE(fixed.has_value());
    EXPECT_EQ(fixed->source, Source::Exact);
    EXPECT_EQ(fixed->variant, "slow");
}

TEST(Predictor, PersistenceRoundTrip)
{
    SelectionPredictor p;
    p.noteKernel("k", sampleInfo("k"));
    p.observeProfile(example("k", kCpuDev, 10, "fast"));
    p.observeProfile(example("k", kCpuDev, 12, "slow"));
    p.observeDemotion("k", kCpuDev, 12);

    SelectionPredictor q;
    q.loadJson(p.toJson());
    EXPECT_EQ(q.trainingExamples(), p.trainingExamples());
    EXPECT_EQ(q.demotions(), p.demotions());
    EXPECT_DOUBLE_EQ(q.calibration(), p.calibration());
    EXPECT_EQ(q.winnerCount(), p.winnerCount());
    for (unsigned b = 8; b <= 14; ++b) {
        const auto a = p.predict("k", kCpuDev, b);
        const auto c = q.predict("k", kCpuDev, b);
        ASSERT_EQ(a.has_value(), c.has_value()) << "bucket " << b;
        if (a.has_value()) {
            EXPECT_EQ(a->variant, c->variant) << "bucket " << b;
            EXPECT_DOUBLE_EQ(a->confidence, c->confidence)
                << "bucket " << b;
            EXPECT_EQ(a->source, c->source) << "bucket " << b;
        }
    }
}

TEST(Predictor, LoadRejectsMalformedDocumentsIntact)
{
    SelectionPredictor p;
    p.observeProfile(example("k", kCpuDev, 10, "fast"));

    EXPECT_THROW(p.loadJson(support::Json::parse("{\"version\":99}")),
                 std::runtime_error);
    // Wrong feature dimensionality inside a weight vector.
    EXPECT_THROW(
        p.loadJson(support::Json::parse(
            R"({"version":1,"weights":[{"device_class":0,)"
            R"("variant":"fast","w":[1,2,3]}]})")),
        std::runtime_error);
    // The failed loads left the learned state untouched.
    EXPECT_EQ(p.winnerCount(), 1u);
    EXPECT_TRUE(p.predict("k", kCpuDev, 10).has_value());

    // clear() drops everything.
    p.clear();
    EXPECT_EQ(p.winnerCount(), 0u);
    EXPECT_EQ(p.trainingExamples(), 0u);
    EXPECT_FALSE(p.predict("k", kCpuDev, 10).has_value());
}

// ---------------------------------------------------------------------
// Dispatch-service integration.

namespace {

constexpr std::uint32_t laneCount = 8;
constexpr std::uint64_t kUnits = 512;

/**
 * Variant-invariant kernel: every variant writes 3*u + 7 into out[u],
 * so a profiling pass that splits units across variants, a warm
 * launch, and a predicted launch all produce identical bytes; only
 * the flops cost differs.
 */
kdp::KernelVariant
workKernel(const char *name, std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [flops_per_unit](kdp::GroupCtx &g,
                            const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, static_cast<std::int32_t>(3 * u + 7), lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

/** Service harness: devices share a fingerprint (identical CPUs). */
struct Harness
{
    store::SelectionStore store;
    SelectionPredictor predictor;
    DispatchService svc;
    sim::FaultInjector faults;

    explicit Harness(unsigned devices = 2,
                     ServiceConfig cfg = ServiceConfig())
        : svc(store, cfg)
    {
        for (unsigned d = 0; d < devices; ++d) {
            const unsigned idx =
                svc.addDevice(std::make_unique<sim::CpuDevice>());
            svc.device(idx).setFaultInjector(&faults);
        }
        svc.registerKernelPool([](runtime::Runtime &rt) {
               rt.addKernel("pk", workKernel("slow", 4000));
               rt.addKernel("pk", workKernel("fast", 100));
               rt.setKernelInfo("pk", regularInfo("pk"));
           }).throwIfError();
        svc.setPredictor(&predictor);
        svc.start();
    }

    JobResult run(std::uint64_t units)
    {
        kdp::Buffer<std::int32_t> out(units, kdp::MemSpace::Global,
                                      "pk.out");
        out.fill(-1);
        Job job;
        job.signature = "pk";
        job.units = units;
        job.args.add(out).add(static_cast<std::int64_t>(units));
        JobResult res = svc.submit(std::move(job)).result();
        if (res.ok()) {
            for (std::uint64_t u = 0; u < units; ++u)
                EXPECT_EQ(out.at(u), static_cast<std::int32_t>(3 * u + 7))
                    << "unit " << u;
        }
        return res;
    }

    std::uint64_t counter(const char *name)
    {
        return svc.metrics().counterValue(name);
    }
};

} // namespace

TEST(PredictService, ConfidentPredictionSkipsProfiling)
{
    Harness h;

    // Cold key: no evidence yet -- the predictor misses and the job
    // micro-profiles, which trains the predictor through the store's
    // profile feed.
    const JobResult first = h.run(kUnits);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first.predicted);
    EXPECT_GT(first.report.profiledUnits, 0u);
    EXPECT_EQ(h.counter("predict.hit"), 0u);
    EXPECT_EQ(h.counter("predict.miss"), 1u);
    EXPECT_EQ(h.counter("predict.train"), 1u);
    EXPECT_EQ(h.predictor.trainingExamples(), 1u);

    // Simulate a restart that lost the store but kept the model: the
    // exact remembered winner serves the key with ZERO profiled units.
    h.store.clear();
    const JobResult second = h.run(kUnits);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.predicted);
    EXPECT_TRUE(second.warmStart);
    EXPECT_EQ(second.report.profiledUnits, 0u);
    EXPECT_EQ(second.report.selectedName, "fast");
    EXPECT_EQ(h.counter("predict.hit"), 1u);

    // The seeded record is a normal store record: the next launch of
    // the key is a plain warm start, no prediction needed.
    const JobResult third = h.run(kUnits);
    ASSERT_TRUE(third.ok());
    EXPECT_TRUE(third.warmStart);
    EXPECT_EQ(h.counter("predict.hit"), 1u);
    h.svc.stop();
}

TEST(PredictService, InterpolatedPredictionAcrossBuckets)
{
    Harness h;

    // Bucket 9 profiles and trains; bucket 10 (2x the units, a store
    // miss) rides the neighbouring winner without any profiling.
    const JobResult base = h.run(kUnits);
    ASSERT_TRUE(base.ok());
    EXPECT_GT(base.report.profiledUnits, 0u);

    const JobResult doubled = h.run(kUnits * 2);
    ASSERT_TRUE(doubled.ok());
    EXPECT_TRUE(doubled.predicted);
    EXPECT_EQ(doubled.report.profiledUnits, 0u);
    EXPECT_EQ(doubled.report.selectedName, "fast");
    EXPECT_EQ(h.counter("predict.hit"), 1u);

    // Far outside the interpolation radius the model's capped
    // confidence does not clear the gate: profiling runs.
    const JobResult far = h.run(kUnits * 1024);
    ASSERT_TRUE(far.ok());
    EXPECT_FALSE(far.predicted);
    EXPECT_GT(far.report.profiledUnits, 0u);
    h.svc.stop();
}

TEST(PredictService, MispredictionDemotesToForcedProfile)
{
    Harness h;

    // Train, then lose the store so the next launch is prediction-
    // served.
    ASSERT_TRUE(h.run(kUnits).ok());
    h.store.clear();

    // Seed exactly one launch failure: it lands on the predicted warm
    // launch, which demotes the predicted record, feeds the corrective
    // observer, and retries into a forced (corrective) profile.
    h.faults.failNext(1);
    const JobResult res = h.run(kUnits);
    ASSERT_TRUE(res.ok()) << res.status.toString();
    EXPECT_EQ(res.attempts, 2u);
    EXPECT_GT(res.report.profiledUnits, 0u); // the corrective profile

    // predict.* counters reconcile 1:1 against the injector log: one
    // scripted LaunchFail, one predicted hit, one demotion, and the
    // corrective example retrained the predictor.
    EXPECT_EQ(h.faults.count(sim::FaultKind::LaunchFail), 1u);
    EXPECT_EQ(h.counter("predict.hit"), 1u);
    EXPECT_EQ(h.counter("predict.demoted"), 1u);
    EXPECT_EQ(h.predictor.demotions(), 1u);
    EXPECT_EQ(h.counter("predict.train"), 2u);
    EXPECT_EQ(h.predictor.trainingExamples(), 2u);

    // The demotion unlearned the bad winner, and the corrective
    // example replaced it: a later store loss is served by prediction
    // again, now backed by the fresh measurement.
    h.store.clear();
    const JobResult after = h.run(kUnits);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(after.predicted);
    EXPECT_EQ(h.counter("predict.hit"), 2u);
    EXPECT_EQ(h.counter("predict.demoted"), 1u); // no new demotion
    h.svc.stop();
}

TEST(PredictService, BelowThresholdFallsBackToProfiling)
{
    // A predictor gated at an unreachable threshold never skips
    // profiling -- every key pays the normal cold cost.
    PredictorConfig pcfg;
    pcfg.threshold = 1.01;
    store::SelectionStore store;
    SelectionPredictor predictor(pcfg);
    DispatchService svc(store, ServiceConfig());
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    svc.registerKernelPool([](runtime::Runtime &rt) {
           rt.addKernel("pk", workKernel("slow", 4000));
           rt.addKernel("pk", workKernel("fast", 100));
           rt.setKernelInfo("pk", regularInfo("pk"));
       }).throwIfError();
    svc.setPredictor(&predictor);
    svc.start();

    for (int round = 0; round < 2; ++round) {
        kdp::Buffer<std::int32_t> out(kUnits, kdp::MemSpace::Global,
                                      "pk.out");
        Job job;
        job.signature = "pk";
        job.units = kUnits;
        job.args.add(out).add(static_cast<std::int64_t>(kUnits));
        const JobResult res = svc.submit(std::move(job)).result();
        ASSERT_TRUE(res.ok());
        EXPECT_FALSE(res.predicted);
        if (round == 1)
            store.clear(); // force a miss for the next round
    }
    svc.stop();
    EXPECT_EQ(svc.metrics().counterValue("predict.hit"), 0u);
    EXPECT_GT(svc.metrics().counterValue("predict.miss"), 0u);
    // Training still happened: gating affects serving, not learning.
    EXPECT_GT(predictor.trainingExamples(), 0u);
}
