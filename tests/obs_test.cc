/**
 * @file
 * Live introspection plane + selection-quality audit tests
 * (DESIGN §11).
 *
 * The admin plane must answer every endpoint with a valid, parseable
 * response WHILE a fault-injected storm hammers the service -- both
 * driven directly (AdminPlane::handleTarget) and over the loopback
 * HTTP front.  The audit's exactly-once contract is checked by
 * reconciling the audit.* counters 1:1 against the tracer's
 * job-correlated instants, and the auditor's demotion decision is
 * pinned down deterministically at the unit level.  The batched-path
 * reconciliation test asserts the fused launch path keeps the job
 * metrics exactly-once against the handles the submitters hold.  CI
 * runs this binary under ASan and TSan (ctest label
 * `observability`).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "serve/admin/admin_plane.hh"
#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"
#include "sim/fault.hh"
#include "support/json.hh"
#include "support/net/http.hh"
#include "support/rng.hh"

using namespace dysel;
using namespace dysel::serve;

namespace {

constexpr std::uint32_t laneCount = 8;

std::int32_t
digestOf(std::uint64_t u)
{
    return static_cast<std::int32_t>((u * 2654435761ull) & 0x7fffffff);
}

kdp::KernelVariant
workKernel(const char *name, std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [flops_per_unit](kdp::GroupCtx &g,
                            const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, digestOf(u), lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

support::Status
installPools(DispatchService &svc, const std::vector<std::string> &sigs)
{
    return svc.registerKernelPool([sigs](runtime::Runtime &rt) {
        for (const auto &sig : sigs) {
            rt.addKernel(sig, workKernel("slow", 4000));
            rt.addKernel(sig, workKernel("fast", 100));
            rt.setKernelInfo(sig, regularInfo(sig));
        }
    });
}

/** Every page must parse as its declared content type. */
void
expectValidResponse(const admin::AdminResponse &resp,
                    const std::string &endpoint)
{
    if (endpoint == "/readyz") {
        EXPECT_TRUE(resp.status == 200 || resp.status == 503)
            << endpoint;
    } else {
        EXPECT_EQ(resp.status, 200) << endpoint;
    }
    ASSERT_FALSE(resp.body.empty()) << endpoint;
    if (resp.contentType.rfind("application/json", 0) == 0) {
        EXPECT_NO_THROW(support::Json::parse(resp.body))
            << endpoint << ": " << resp.body.substr(0, 200);
    } else if (endpoint == "/metrics") {
        // Prometheus exposition: every non-comment line must end in
        // a parseable number.
        std::istringstream in(resp.body);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            const auto sp = line.rfind(' ');
            ASSERT_NE(sp, std::string::npos) << line;
            char *end = nullptr;
            std::strtod(line.c_str() + sp + 1, &end);
            EXPECT_TRUE(end && *end == '\0') << line;
        }
    }
}

} // namespace

// ---- request parsing ------------------------------------------------

TEST(AdminPlaneParse, SplitsPathAndDecodesQuery)
{
    auto req = admin::AdminPlane::parseTarget(
        "/debug/flight?worker=3&verbose=");
    EXPECT_EQ(req.path, "/debug/flight");
    EXPECT_EQ(req.query.at("worker"), "3");
    EXPECT_EQ(req.query.at("verbose"), "");

    req = admin::AdminPlane::parseTarget("/metrics");
    EXPECT_EQ(req.path, "/metrics");
    EXPECT_TRUE(req.query.empty());

    // %-decoding and '+' for spaces.
    req = admin::AdminPlane::parseTarget("/x?key=a%2Fb+c");
    EXPECT_EQ(req.query.at("key"), "a/b c");

    // Degenerate inputs parse without throwing.
    req = admin::AdminPlane::parseTarget("/x?");
    EXPECT_TRUE(req.query.empty());
    req = admin::AdminPlane::parseTarget("/x?&&=v&");
    EXPECT_EQ(req.path, "/x");
}

// ---- live endpoints under storm -------------------------------------

TEST(AdminPlane, EveryEndpointAnswersDuringAFaultInjectedStorm)
{
    constexpr unsigned kSubmitters = 4;
    constexpr std::uint64_t kJobsPerSubmitter = 150;
    constexpr std::uint64_t kUnits = 512; // profilable

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.audit.sampleRate = 0.25;
    DispatchService svc(store, cfg);

    sim::FaultConfig fcfg;
    fcfg.launchFailProb = 0.05;
    fcfg.latencySpikeProb = 0.03;
    fcfg.seed = 0x0b5;
    sim::FaultInjector faults(fcfg);
    for (unsigned d = 0; d < 2; ++d) {
        const unsigned idx =
            svc.addDevice(std::make_unique<sim::CpuDevice>());
        svc.device(idx).setFaultInjector(&faults);
    }
    std::vector<std::string> sigs = {"obs0", "obs1", "obs2"};
    ASSERT_TRUE(installPools(svc, sigs).ok());
    svc.tracer().setEnabled(true);
    svc.start();

    admin::AdminPlane plane(svc);

    // The HTTP front on an ephemeral loopback port, serving the same
    // plane the direct queries hit.
    support::net::HttpServer http;
    ASSERT_TRUE(http.start(0,
                           [&plane](const support::net::HttpRequest &r) {
                               const admin::AdminResponse a =
                                   plane.handleTarget(r.target);
                               support::net::HttpResponse out;
                               out.status = a.status;
                               out.contentType = a.contentType;
                               out.body = a.body;
                               return out;
                           })
                    .ok());
    ASSERT_NE(http.port(), 0);

    std::atomic<unsigned> submittersDone{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&, t] {
            support::Rng rng(0x0b50 + t);
            kdp::Buffer<std::int32_t> out(kUnits, kdp::MemSpace::Global,
                                          "obs.out");
            for (std::uint64_t j = 0; j < kJobsPerSubmitter; ++j) {
                Job job;
                job.signature = sigs[rng.nextBelow(sigs.size())];
                job.units = kUnits;
                job.args.add(out).add(
                    static_cast<std::int64_t>(kUnits));
                JobHandle h = svc.submit(std::move(job));
                (void)h.result(); // closed loop
            }
            submittersDone.fetch_add(1, std::memory_order_release);
        });
    }

    const std::vector<std::string> endpoints = {
        "/metrics",       "/healthz",
        "/readyz",        "/debug/selections",
        "/debug/flight?worker=0", "/debug/trace?last=32",
        "/debug/audit",   "/debug/predictor",
        "/"};

    // Query every endpoint repeatedly while the storm runs; the loop
    // is guaranteed to overlap the storm because the submitters are
    // still running until the counter says otherwise.
    std::size_t laps = 0;
    while (submittersDone.load(std::memory_order_acquire)
           < kSubmitters) {
        for (const auto &ep : endpoints) {
            const admin::AdminResponse resp = plane.handleTarget(ep);
            expectValidResponse(resp, ep);
        }
        ++laps;
    }
    EXPECT_GE(laps, 1u);

    // One full pass over the HTTP front too (the service is still
    // running -- stop() hasn't been called).
    for (const auto &ep : endpoints) {
        std::string body;
        int status = 0;
        const auto st = support::net::httpGet("127.0.0.1", http.port(),
                                              ep, body, status);
        ASSERT_TRUE(st.ok()) << ep << ": " << st.toString();
        admin::AdminResponse resp;
        resp.status = status;
        resp.body = body;
        resp.contentType = ep == "/metrics"
                                   || ep.rfind("/debug/flight", 0) == 0
                               ? "text/plain"
                               : "application/json";
        expectValidResponse(resp, ep);
    }

    // Error paths stay structured JSON.
    EXPECT_EQ(plane.handleTarget("/nope").status, 404);
    EXPECT_EQ(plane.handleTarget("/debug/flight").status, 400);
    EXPECT_EQ(plane.handleTarget("/debug/flight?worker=banana").status,
              400);
    EXPECT_EQ(plane.handleTarget("/debug/flight?worker=99").status,
              404);
    {
        std::string body;
        int status = 0;
        ASSERT_TRUE(support::net::httpGet("127.0.0.1", http.port(),
                                          "/nope", body, status)
                        .ok());
        EXPECT_EQ(status, 404);
        EXPECT_NO_THROW(support::Json::parse(body));
    }

    for (auto &th : threads)
        th.join();
    svc.drain();

    // While running with closed breakers, the service is ready.
    EXPECT_EQ(plane.handleTarget("/readyz").status, 200);
    // The health snapshot agrees with a drained service.
    {
        const auto h = svc.health();
        EXPECT_TRUE(h.running);
        EXPECT_EQ(h.inFlight, 0u);
        EXPECT_EQ(h.devices.size(), 2u);
    }

    http.stop();
    svc.stop();

    // Stopped means not ready (503), but /healthz still answers.
    EXPECT_EQ(plane.handleTarget("/readyz").status, 503);
    EXPECT_EQ(plane.handleTarget("/healthz").status, 200);

    // The selections debug page reflects the storm's records.
    const auto sel = plane.handleTarget("/debug/selections");
    const auto parsed = support::Json::parse(sel.body);
    EXPECT_FALSE(parsed.at("records").items().empty());
}

// ---- audit reconciliation -------------------------------------------

TEST(SelectionAudit, CountersReconcileOneToOneAgainstTracerInstants)
{
    constexpr unsigned kSubmitters = 4;
    constexpr std::uint64_t kJobsPerSubmitter = 100;
    constexpr std::uint64_t kUnits = 512;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.audit.sampleRate = 0.5; // every 2nd eligible warm hit
    DispatchService svc(store, cfg);
    for (unsigned d = 0; d < 2; ++d)
        svc.addDevice(std::make_unique<sim::CpuDevice>());
    std::vector<std::string> sigs = {"aud0", "aud1"};
    ASSERT_TRUE(installPools(svc, sigs).ok());
    svc.tracer().setEnabled(true);
    svc.start();

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&, t] {
            support::Rng rng(0xa0d + t);
            kdp::Buffer<std::int32_t> out(kUnits, kdp::MemSpace::Global,
                                          "aud.out");
            for (std::uint64_t j = 0; j < kJobsPerSubmitter; ++j) {
                Job job;
                job.signature = sigs[rng.nextBelow(sigs.size())];
                job.units = kUnits;
                job.args.add(out).add(
                    static_cast<std::int64_t>(kUnits));
                JobHandle h = svc.submit(std::move(job));
                (void)h.result();
            }
        });
    }
    for (auto &th : threads)
        th.join();
    svc.drain();
    svc.stop();

    auto &m = svc.metrics();
    const auto &tr = svc.tracer();
    ASSERT_NE(svc.auditor(), nullptr);

    // The storm is warm-hit dominated, so the auditor must have
    // sampled; every sample is exactly one counter increment and
    // exactly one job-correlated tracer instant.
    EXPECT_GT(m.counterValue("audit.samples"), 0u);
    EXPECT_EQ(m.counterValue("audit.samples"),
              tr.countNamed("audit.sample"));
    EXPECT_EQ(m.counterValue("audit.demotions"),
              tr.countNamed("audit.demoted"));
    EXPECT_EQ(m.counterValue("audit.probe_failed"),
              tr.countNamed("audit.probe_failed"));

    // The auditor's own totals agree with the registry.
    EXPECT_EQ(svc.auditor()->samples(),
              m.counterValue("audit.samples"));
    EXPECT_EQ(svc.auditor()->demotions(),
              m.counterValue("audit.demotions"));
    EXPECT_EQ(svc.auditor()->probeFailures(),
              m.counterValue("audit.probe_failed"));

    // The regret histogram saw exactly the sampled population.
    EXPECT_EQ(m.histogram("audit.regret_pct").count(),
              m.counterValue("audit.samples"));

    // Both variants agree on the output, so the winner is the truly
    // faster one and sampled regret stays moderate on average.
    EXPECT_LT(svc.auditor()->meanRegret(), 1.0);
}

TEST(SelectionAudit, ShadowProbesNeverPolluteTheDriftBaseline)
{
    // A served-from-cache run (fromCache, !profiled) normally feeds
    // the store's drift EMA via noteServed/observePlain.  The audit's
    // shadow probes run the *runner-up*, whose unit time is way off
    // the winner's baseline -- if they leaked into the baseline they
    // would trigger bogus drift invalidations.  With audit at 100%
    // and hundreds of warm hits, surviving records must stay valid
    // and undemoted (both variants agree on outputs, so the fast
    // winner is genuinely best).
    constexpr std::uint64_t kUnits = 512;
    constexpr unsigned kWarmHits = 60;

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.audit.sampleRate = 1.0; // sample every warm hit
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPools(svc, {"drift0"}).ok());
    svc.start();

    kdp::Buffer<std::int32_t> out(kUnits, kdp::MemSpace::Global,
                                  "drift.out");
    for (unsigned j = 0; j < kWarmHits; ++j) {
        Job job;
        job.signature = "drift0";
        job.units = kUnits;
        job.args.add(out).add(static_cast<std::int64_t>(kUnits));
        JobHandle h = svc.submit(std::move(job));
        ASSERT_TRUE(h.result().ok()) << h.result().status.toString();
    }
    svc.drain();
    svc.stop();

    ASSERT_NE(svc.auditor(), nullptr);
    EXPECT_GT(svc.auditor()->samples(), 10u);
    EXPECT_EQ(svc.auditor()->demotions(), 0u);
    EXPECT_EQ(svc.metrics().counterValue("store.drift_invalidation"),
              0u);
    EXPECT_EQ(svc.metrics().counterValue("store.quarantine"), 0u);
    for (const auto &rec : store.records()) {
        EXPECT_TRUE(rec.valid) << rec.signature;
        EXPECT_EQ(rec.quarantinedVariant, -1) << rec.signature;
        EXPECT_EQ(rec.selectedName, "fast") << rec.signature;
    }
}

TEST(SelectionAudit, DemotesAPersistentlyRegrettedSelection)
{
    // Unit-level determinism: feed the auditor samples whose served
    // winner is 2x slower than the runner-up.  After minSamples the
    // EMA crosses the threshold and the auditor demotes through the
    // store's quarantine path -- all observable via counters, the
    // tracer, and the verdict.
    store::SelectionStore store;
    support::MetricsRegistry metrics;
    support::tracing::Tracer tracer;
    tracer.setEnabled(true);
    const std::uint64_t track = tracer.track("audit-test");

    obs::AuditConfig cfg;
    cfg.sampleRate = 1.0;
    cfg.regretThreshold = 0.25;
    cfg.minSamples = 3;
    obs::SelectionAuditor auditor(store, metrics, &tracer, cfg);

    obs::AuditSample s;
    s.signature = "k";
    s.device = "cpu/fake";
    s.units = 512;
    s.winner = "slow";
    s.runnerUp = "fast";
    s.winnerUnitNs = 200.0;
    s.runnerUpUnitNs = 100.0;
    s.traceTrack = track;
    s.jobId = 42;
    s.nowNs = 1000;

    obs::AuditVerdict v;
    for (unsigned i = 0; i < 3; ++i) {
        v = auditor.ingest(s);
        EXPECT_DOUBLE_EQ(v.regret, 1.0);
    }
    EXPECT_TRUE(v.demoted);
    EXPECT_EQ(auditor.samples(), 3u);
    EXPECT_EQ(auditor.demotions(), 1u);
    EXPECT_EQ(metrics.counterValue("audit.samples"), 3u);
    EXPECT_EQ(metrics.counterValue("audit.demotions"), 1u);
    EXPECT_EQ(tracer.countNamed("audit.sample"), 3u);
    EXPECT_EQ(tracer.countNamed("audit.demoted"), 1u);

    // Post-demotion the key state restarts: one fresh good sample
    // must not re-demote.
    s.winnerUnitNs = 100.0;
    s.runnerUpUnitNs = 100.0;
    v = auditor.ingest(s);
    EXPECT_DOUBLE_EQ(v.regret, 0.0);
    EXPECT_FALSE(v.demoted);
    EXPECT_EQ(v.keySamples, 1u);

    // Degenerate probes count as failures, never as samples.
    s.winnerUnitNs = 0.0;
    (void)auditor.ingest(s);
    EXPECT_EQ(auditor.probeFailures(), 1u);
    EXPECT_EQ(tracer.countNamed("audit.probe_failed"), 1u);
    EXPECT_EQ(auditor.samples(), 4u);
}

TEST(SelectionAudit, ConfigValidationRejectsNonsense)
{
    obs::AuditConfig cfg;
    EXPECT_TRUE(cfg.validate().ok()); // disabled default

    cfg.sampleRate = 1.5;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.sampleRate = 0.02;
    EXPECT_TRUE(cfg.validate().ok());
    EXPECT_EQ(cfg.stride(), 50u);

    cfg.regretThreshold = 0.0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.regretThreshold = 0.25;
    cfg.emaAlpha = 0.0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.emaAlpha = 0.3;
    cfg.minSamples = 0;
    EXPECT_FALSE(cfg.validate().ok());
    cfg.minSamples = 3;
    cfg.probeUnitsMax = 1;
    cfg.probeUnitsMin = 32;
    EXPECT_FALSE(cfg.validate().ok());

    // The service config surfaces the same check.
    ServiceConfig scfg;
    scfg.audit.sampleRate = 2.0;
    EXPECT_FALSE(scfg.validate().ok());
}

// ---- batched-path metrics reconciliation ----------------------------

TEST(BatchedMetrics, FusedStormReconcilesExactlyOnceAgainstHandles)
{
    // A fused-launch storm: bursts of same-key non-profilable jobs
    // that the batcher gathers into fused launches.  Whatever mix of
    // fused, demoted, and solo execution results, the metrics must
    // reconcile exactly-once against the handles the submitter holds:
    // every ok handle is one jobs.completed increment and exactly one
    // job.device_ns / per-worker latency histogram observation.
    constexpr std::uint64_t kBursts = 40;
    constexpr std::size_t kBurst = 6;
    constexpr std::uint64_t kUnits = 96; // same bucket, not profilable

    store::SelectionStore store;
    ServiceConfig cfg;
    cfg.batch.maxJobs = 8;
    cfg.batch.windowNs = 200'000;
    DispatchService svc(store, cfg);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    ASSERT_TRUE(installPools(svc, {"fuse0"}).ok());
    svc.start();

    std::uint64_t okJobs = 0, badJobs = 0, fusedJobs = 0;
    std::vector<kdp::Buffer<std::int32_t>> outs;
    for (std::size_t i = 0; i < kBurst; ++i)
        outs.emplace_back(kUnits, kdp::MemSpace::Global, "fuse.out");
    for (std::uint64_t b = 0; b < kBursts; ++b) {
        std::vector<JobSpec> specs(kBurst);
        for (std::size_t i = 0; i < kBurst; ++i) {
            specs[i].signature("fuse0").units(kUnits);
            specs[i].mutableArgs().add(outs[i]).add(
                static_cast<std::int64_t>(kUnits));
        }
        auto handles = svc.submitMany(specs);
        for (auto &h : handles) {
            const JobResult &r = h.result();
            if (r.ok()) {
                ++okJobs;
                if (r.report.fused)
                    ++fusedJobs;
            } else {
                ++badJobs;
            }
        }
    }
    svc.drain();
    svc.stop();

    auto &m = svc.metrics();
    const std::uint64_t total = kBursts * kBurst;
    EXPECT_EQ(okJobs + badJobs, total);
    EXPECT_EQ(m.counterValue("jobs.submitted"), total);
    EXPECT_EQ(m.counterValue("jobs.completed"), okJobs);
    EXPECT_EQ(m.counterValue("jobs.failed"), badJobs);

    // Exactly-once histogram contract: one device-time observation
    // per completed job, fused or solo, never double-counted.
    EXPECT_EQ(m.histogram("job.device_ns").count(), okJobs);
    EXPECT_EQ(m.histogram("job.attempts").count(), total);

    // The storm genuinely exercised fusion, and the batch counters
    // agree with what the handles reported.
    EXPECT_GT(m.counterValue("batch.launches"), 0u);
    EXPECT_EQ(m.counterValue("batch.jobs"), fusedJobs);
    EXPECT_GE(m.counterValue("batch.jobs"),
              m.counterValue("batch.launches"));
    EXPECT_EQ(m.histogram("batch.size").count(),
              m.counterValue("batch.launches"));

    // batch.demoted jobs still completed exactly once above; the
    // counter only explains the fused/solo split.
    EXPECT_LE(m.counterValue("batch.demoted"), total - fusedJobs);
}
