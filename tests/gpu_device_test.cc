/**
 * @file
 * Tests for the GPU device simulator: occupancy, exclusive profiling
 * launches, and cost-model properties (coalescing, divergence,
 * texture path, bank conflicts, lock-step ALU).
 */
#include <gtest/gtest.h>

#include "kdp/context.hh"
#include "sim/gpu/gpu_cost_model.hh"
#include "sim/gpu/gpu_device.hh"

using namespace dysel;
using namespace dysel::sim;

namespace {

kdp::KernelVariant
idKernel(const char *name = "id", std::uint32_t group_size = 64)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = group_size;
    v.fn = [](kdp::GroupCtx &g, const kdp::KernelArgs &args) {
        auto &out = args.buf<std::uint32_t>(0);
        kdp::forEachItem(g, [&](kdp::ItemCtx &item) {
            item.store(out, item.globalId(),
                       static_cast<std::uint32_t>(item.globalId()));
            item.flops(2);
        });
    };
    return v;
}

} // namespace

TEST(GpuDevice, ExecutesAllGroups)
{
    GpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(64 * 32, kdp::MemSpace::Global, "out");

    Launch launch;
    launch.variant = &variant;
    launch.args.add(out);
    launch.numGroups = 32;
    dev.submit(std::move(launch));
    dev.run();
    for (std::uint32_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out.at(i), i);
}

TEST(GpuDevice, OccupancyLimitedByThreads)
{
    GpuDevice dev;
    kdp::KernelVariant v = idKernel("big", 512);
    // 2048 threads / 512 = 4 blocks.
    EXPECT_EQ(dev.occupancy(v), 4u);
}

TEST(GpuDevice, OccupancyLimitedByBlockCap)
{
    GpuDevice dev;
    kdp::KernelVariant v = idKernel("small", 64);
    EXPECT_EQ(dev.occupancy(v), 16u); // blocksPerSm cap
}

TEST(GpuDevice, OccupancyLimitedByScratchpad)
{
    GpuDevice dev;
    kdp::KernelVariant v = idKernel("scratchy", 64);
    v.traits.scratchBytes = 16 * 1024; // 48K / 16K = 3 blocks
    EXPECT_EQ(dev.occupancy(v), 3u);
}

TEST(GpuDevice, OccupancyLimitedByRegisters)
{
    GpuDevice dev;
    kdp::KernelVariant v = idKernel("regs", 64);
    v.traits.regsPerThread = 128; // 65536 / (128*64) = 8 blocks
    EXPECT_EQ(dev.occupancy(v), 8u);
}

TEST(GpuDevice, ExclusiveLaunchesSerialize)
{
    GpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(64 * 64, kdp::MemSpace::Global, "out");

    LaunchStats stats_a, stats_b;
    Launch a;
    a.variant = &variant;
    a.args.add(out);
    a.numGroups = 26;
    a.stream = 1;
    a.exclusive = true;
    a.onComplete = [&](const LaunchStats &s) { stats_a = s; };

    Launch b;
    b.variant = &variant;
    b.args.add(out);
    b.firstGroup = 26;
    b.numGroups = 26;
    b.stream = 2;
    b.exclusive = true;
    b.onComplete = [&](const LaunchStats &s) { stats_b = s; };

    dev.submit(std::move(a));
    dev.submit(std::move(b));
    dev.run();
    // No overlap: b starts only after a fully drained.
    EXPECT_GE(stats_b.firstStamp, stats_a.lastStamp);
}

TEST(GpuDevice, NonExclusiveLaunchesOverlap)
{
    GpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(64 * 64, kdp::MemSpace::Global, "out");

    LaunchStats stats_a, stats_b;
    Launch a;
    a.variant = &variant;
    a.args.add(out);
    a.numGroups = 26;
    a.stream = 1;
    a.onComplete = [&](const LaunchStats &s) { stats_a = s; };
    Launch b;
    b.variant = &variant;
    b.args.add(out);
    b.firstGroup = 26;
    b.numGroups = 26;
    b.stream = 2;
    b.onComplete = [&](const LaunchStats &s) { stats_b = s; };

    dev.submit(std::move(a));
    dev.submit(std::move(b));
    dev.run();
    EXPECT_LT(stats_b.firstStamp, stats_a.lastStamp);
}

TEST(GpuDevice, LaunchOverheadDelaysStart)
{
    GpuDevice dev;
    auto variant = idKernel();
    kdp::Buffer<std::uint32_t> out(64, kdp::MemSpace::Global, "out");
    Launch launch;
    launch.variant = &variant;
    launch.args.add(out);
    launch.numGroups = 1;
    LaunchStats stats;
    launch.onComplete = [&](const LaunchStats &s) { stats = s; };
    dev.submit(std::move(launch));
    dev.run();
    EXPECT_GE(stats.firstStamp, dev.launchOverheadNs());
}

// ---- Cost model properties -----------------------------------------

namespace {

GpuWgCost
costOf(const kdp::WorkGroupTrace &t, std::uint32_t group_size,
       const kdp::VariantTraits &traits = {})
{
    GpuConfig cfg;
    GpuSmState sm(cfg.tex);
    Cache l2(cfg.l2);
    return gpuWorkGroupCost(t, traits, group_size, sm, l2, cfg.cost);
}

} // namespace

TEST(GpuCostModel, CoalescedBeatsScattered)
{
    kdp::Buffer<float> buf(1 << 20, kdp::MemSpace::Global, "b");

    kdp::WorkGroupTrace coalesced;
    coalesced.reset(32);
    kdp::GroupCtx gc(0, 32, 1, &coalesced);
    for (unsigned i = 0; i < 64; ++i)
        for (unsigned lane = 0; lane < 32; ++lane)
            gc.load(buf, std::uint64_t{i} * 32 + lane, lane);

    kdp::WorkGroupTrace scattered;
    scattered.reset(32);
    kdp::GroupCtx gs(0, 32, 1, &scattered);
    for (unsigned i = 0; i < 64; ++i)
        for (unsigned lane = 0; lane < 32; ++lane)
            gs.load(buf, (std::uint64_t{i} * 32 + lane) * 997 % (1 << 20),
                    lane);

    EXPECT_GT(costOf(scattered, 32).throughputCycles,
              8 * costOf(coalesced, 32).throughputCycles);
}

TEST(GpuCostModel, LockStepAluChargesWorstLane)
{
    kdp::WorkGroupTrace balanced;
    balanced.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &balanced);
        for (unsigned lane = 0; lane < 32; ++lane)
            g.flops(lane, 100);
    }
    kdp::WorkGroupTrace skewed;
    skewed.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &skewed);
        g.flops(0, 100); // one busy lane, 31 idle
    }
    // The warp pays for its busiest lane either way.
    EXPECT_DOUBLE_EQ(costOf(balanced, 32).throughputCycles,
                     costOf(skewed, 32).throughputCycles);
}

TEST(GpuCostModel, DivergentBranchesCost)
{
    kdp::WorkGroupTrace uniform, divergent;
    uniform.reset(32);
    divergent.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &uniform);
        for (unsigned i = 0; i < 32; ++i)
            for (unsigned lane = 0; lane < 32; ++lane)
                g.branch(lane, true);
    }
    {
        kdp::GroupCtx g(0, 32, 1, &divergent);
        for (unsigned i = 0; i < 32; ++i)
            for (unsigned lane = 0; lane < 32; ++lane)
                g.branch(lane, lane % 2 == 0);
    }
    EXPECT_GT(costOf(divergent, 32).throughputCycles,
              costOf(uniform, 32).throughputCycles);
}

TEST(GpuCostModel, ScratchpadBankConflictsSerialize)
{
    kdp::WorkGroupTrace clean, conflicted;
    clean.reset(32);
    conflicted.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &clean);
        auto local = g.allocLocal<float>(1024);
        for (unsigned i = 0; i < 16; ++i)
            for (unsigned lane = 0; lane < 32; ++lane)
                local.set(g, i * 32 + lane, 0.0f, lane); // distinct banks
    }
    {
        kdp::GroupCtx g(0, 32, 1, &conflicted);
        auto local = g.allocLocal<float>(1024);
        for (unsigned i = 0; i < 16; ++i)
            for (unsigned lane = 0; lane < 32; ++lane)
                local.set(g, lane * 32, 0.0f, lane); // same bank
    }
    EXPECT_GT(costOf(conflicted, 32).throughputCycles,
              costOf(clean, 32).throughputCycles);
}

TEST(GpuCostModel, TextureCacheHelpsReusedGathers)
{
    kdp::Buffer<float> x_global(2048, kdp::MemSpace::Global, "x");
    kdp::Buffer<float> x_tex(2048, kdp::MemSpace::Texture, "xt");

    auto gather = [](kdp::Buffer<float> &buf) {
        kdp::WorkGroupTrace t;
        t.reset(32);
        kdp::GroupCtx g(0, 32, 1, &t);
        std::uint64_t state = 12345;
        for (unsigned i = 0; i < 128; ++i) {
            for (unsigned lane = 0; lane < 32; ++lane) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                g.load(buf, state % 2048, lane);
            }
        }
        return t;
    };

    const auto t_global = gather(x_global);
    const auto t_tex = gather(x_tex);
    EXPECT_LT(costOf(t_tex, 32).throughputCycles,
              costOf(t_global, 32).throughputCycles);
}

TEST(GpuCostModel, AtomicsSerialize)
{
    kdp::Buffer<std::uint32_t> bins(64, kdp::MemSpace::Global, "bins");
    kdp::WorkGroupTrace plain, atomic;
    plain.reset(32);
    atomic.reset(32);
    {
        kdp::GroupCtx g(0, 32, 1, &plain);
        for (unsigned lane = 0; lane < 32; ++lane)
            g.store(bins, lane, 1u, lane);
    }
    {
        kdp::GroupCtx g(0, 32, 1, &atomic);
        for (unsigned lane = 0; lane < 32; ++lane)
            g.atomicAdd(bins, lane, 1u, lane);
    }
    EXPECT_GT(costOf(atomic, 32).throughputCycles,
              costOf(plain, 32).throughputCycles);
}

TEST(GpuCostModel, PrefetchReducesLatencyComponent)
{
    kdp::Buffer<float> buf(1 << 20, kdp::MemSpace::Global, "b");
    kdp::WorkGroupTrace t;
    t.reset(32);
    kdp::GroupCtx g(0, 32, 1, &t);
    for (unsigned i = 0; i < 64; ++i)
        for (unsigned lane = 0; lane < 32; ++lane)
            g.load(buf, std::uint64_t{i} * 4096 + lane, lane);
    kdp::VariantTraits plain, prefetch;
    prefetch.softwarePrefetch = true;
    EXPECT_LT(costOf(t, 32, prefetch).latencyCycles,
              costOf(t, 32, plain).latencyCycles);
    EXPECT_DOUBLE_EQ(costOf(t, 32, prefetch).throughputCycles,
                     costOf(t, 32, plain).throughputCycles);
}
