/**
 * @file
 * Tests of the selection-federation layer (DESIGN §13): the
 * replicated SelectionStore with its delta-sync protocol.
 *
 * The suite climbs from transport to fleet:
 *
 *   - transport: the httpGet deadline against a stalled server, the
 *     query-string codec;
 *   - protocol: delta sync over real loopback HTTP, redelivery
 *     idempotence, the incarnation handshake that turns a replica
 *     crash-restart into a full resync;
 *   - ownership: rendezvous hashing is deterministic and covers the
 *     fleet;
 *   - leases: the owner-side grant/wait/record/expiry state machine
 *     and the follower's bounded fallback when the owner is dead;
 *   - convergence: randomized writes under randomized partitions
 *     heal to byte-identical stores once sync resumes;
 *   - the acceptance storm: three full replicas (store + replicator +
 *     HTTP front + dispatch service) under concurrent load profile
 *     every key exactly once fleet-wide, serve nearly everything
 *     warm, and drain to byte-identical stores.
 *
 * Everything binds ephemeral loopback ports; nothing here touches
 * the network proper or another process.
 */
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include "dysel/fed/ownership.hh"
#include "dysel/fed/replicator.hh"
#include "dysel/store/selection_store.hh"
#include "serve/loadgen.hh"
#include "support/metrics.hh"
#include "support/net/http.hh"

using namespace dysel;
namespace net = dysel::support::net;

namespace {

constexpr const char *kDev = "cpu/test-device/c8@3.60GHz";

/** A synthetic profiled launch report with two variants. */
runtime::LaunchReport
profiledReport(const std::string &sig, std::uint64_t units,
               int selected = 1)
{
    runtime::LaunchReport r;
    r.signature = sig;
    r.profiled = true;
    r.totalUnits = units;
    r.profiledUnits = 256;
    r.selected = selected;
    r.profiles.resize(2);
    r.profiles[0] = {"slow", 4000, 4200, 3900, 128};
    r.profiles[1] = {"fast", 1000, 1100, 950, 128};
    r.selectedName = r.profiles[static_cast<std::size_t>(selected)].name;
    return r;
}

/**
 * One in-process replica: a store, its HTTP front, and (once the
 * fleet's ports are known) a replicator.  The handler indirects
 * through rep under a lock so the crash-restart test can swap the
 * replicator while peers keep pulling.
 */
struct Node
{
    store::SelectionStore store;
    net::HttpServer http;
    std::unique_ptr<fed::Replicator> rep;
    std::mutex repMu;

    bool listen()
    {
        return http.start(0,
                          [this](const net::HttpRequest &req) {
                              net::HttpResponse out;
                              std::lock_guard<std::mutex> lock(repMu);
                              if (!rep) {
                                  out.status = 503;
                                  out.body = "starting\n";
                                  return out;
                              }
                              const auto r = rep->handleFed(req.target);
                              out.status = r.status;
                              out.contentType = "application/json";
                              out.body = r.body;
                              return out;
                          })
            .ok();
    }

    void attach(std::uint32_t replica, std::uint32_t fleetSize,
                const std::vector<std::uint16_t> &ports,
                int syncIntervalMs = 10)
    {
        fed::ReplicatorConfig cfg;
        cfg.replica = replica;
        cfg.fleetSize = fleetSize;
        cfg.syncIntervalMs = syncIntervalMs;
        cfg.leasePollMs = 2;
        for (std::uint32_t p = 0; p < ports.size(); ++p)
            if (p != replica)
                cfg.peers.push_back("127.0.0.1:"
                                    + std::to_string(ports[p]));
        std::lock_guard<std::mutex> lock(repMu);
        rep = std::make_unique<fed::Replicator>(store, cfg);
    }

    std::string dump() const { return store.toJson().dump(0); }
};

/** Bring up @p n listening nodes and wire them into a full mesh. */
std::vector<std::unique_ptr<Node>>
makeFleet(std::uint32_t n, int syncIntervalMs = 10)
{
    std::vector<std::unique_ptr<Node>> nodes;
    std::vector<std::uint16_t> ports;
    for (std::uint32_t i = 0; i < n; ++i) {
        nodes.push_back(std::make_unique<Node>());
        EXPECT_TRUE(nodes.back()->listen());
        ports.push_back(nodes.back()->http.port());
    }
    for (std::uint32_t i = 0; i < n; ++i)
        nodes[i]->attach(i, n, ports, syncIntervalMs);
    return nodes;
}

} // namespace

// ---------------------------------------------------------------
// Transport
// ---------------------------------------------------------------

TEST(FedTransport, StalledServerTripsTypedDeadline)
{
    // A listener that backlogs the connection but never serves it:
    // the client must come back with DEADLINE_EXCEEDED in bounded
    // time, not block on the read forever.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(fd, 4), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const std::uint16_t port = ntohs(addr.sin_port);

    std::string body;
    int status = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const auto st =
        net::httpGet("127.0.0.1", port, "/fed/info", body, status, 150);
    const auto elapsedMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(st.code(), support::StatusCode::DeadlineExceeded)
        << st.toString();
    EXPECT_GE(elapsedMs, 100.0);
    EXPECT_LT(elapsedMs, 2000.0); // the deadline, not TCP's patience
    ::close(fd);
}

TEST(FedTransport, UrlCodecRoundTripsFederationKeys)
{
    // Lease targets carry device fingerprints and signatures with
    // '/', '@', spaces, and '%' through the query string.
    const std::vector<std::string> samples = {
        kDev, "a b&c=d%e+f", "plain", ""};
    for (const std::string &s : samples)
        EXPECT_EQ(net::urlDecode(net::urlEncode(s)), s) << s;
    EXPECT_EQ(net::urlDecode("a+b"), "a b");
}

// ---------------------------------------------------------------
// Delta sync protocol
// ---------------------------------------------------------------

TEST(Federation, DeltaSyncReplicatesAllItemTypes)
{
    auto nodes = makeFleet(2);
    Node &a = *nodes[0];
    Node &b = *nodes[1];

    support::MetricsRegistry reg;
    b.rep->bindMetrics(&reg);

    a.store.recordProfile(kDev, profiledReport("hot0", 2048), 777);
    a.store.blacklistVariant("hot0", "oob-writer", kDev, "redzone");
    support::Json model = support::Json::object();
    model.set("weights", support::Json(3));
    a.store.setExtension("predictor", model);

    b.rep->syncNow();

    auto rec = b.store.peek("hot0", kDev, 2048);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->selectedName, "fast");
    // Provenance rides replication: the follower can correlate this
    // record to the owner's profiling pass.
    EXPECT_EQ(rec->profileCid, 777u);
    EXPECT_EQ(rec->profileOrigin, 0u);
    EXPECT_TRUE(b.store.isBlacklisted("hot0", "oob-writer", kDev));
    ASSERT_TRUE(b.store.extension("predictor").has_value());

    a.rep->syncNow(); // pull back the nothing b wrote
    EXPECT_EQ(a.dump(), b.dump());
    EXPECT_GE(reg.counter("fed.apply_record").value(), 1u);
    EXPECT_GE(reg.counter("fed.apply_blacklist").value(), 1u);
    EXPECT_GE(reg.counter("fed.apply_extension").value(), 1u);
}

TEST(Federation, RedeliveryAndCursorResetAreIdempotent)
{
    auto nodes = makeFleet(2);
    Node &a = *nodes[0];
    Node &b = *nodes[1];

    a.store.recordProfile(kDev, profiledReport("hot0", 2048));
    a.store.recordProfile(kDev, profiledReport("hot1", 4096, 0));
    b.rep->syncNow();
    const std::string converged = b.dump();

    // Pulling again and again changes nothing.
    for (int i = 0; i < 5; ++i)
        b.rep->syncNow();
    EXPECT_EQ(b.dump(), converged);

    // A brand-new replicator at b starts at cursor 0 and re-applies
    // the full history -- still a no-op on the store.
    std::vector<std::uint16_t> ports = {a.http.port(), b.http.port()};
    b.attach(1, 2, ports);
    b.rep->syncNow();
    EXPECT_EQ(b.dump(), converged);
}

TEST(Federation, CrashRestartIncarnationForcesFullResync)
{
    auto nodes = makeFleet(2);
    Node &a = *nodes[0];
    Node &b = *nodes[1];
    const std::vector<std::uint16_t> ports = {a.http.port(),
                                              b.http.port()};

    a.store.recordProfile(kDev, profiledReport("pre-crash", 2048));
    b.rep->syncNow();
    ASSERT_TRUE(b.store.peek("pre-crash", kDev, 2048).has_value());
    const std::uint64_t firstInc = a.rep->incarnation();

    // "Crash" replica 0: its replicator dies and its store restarts
    // empty (the worst case -- nothing persisted), then writes new
    // state.  The new incarnation voids b's cursor into a, so b
    // resyncs from 0 instead of trusting a stale sequence space.
    {
        std::lock_guard<std::mutex> lock(a.repMu);
        a.rep.reset();
    }
    a.store.clear();
    a.store.recordProfile(kDev, profiledReport("post-crash", 4096));
    a.attach(0, 2, ports);
    EXPECT_NE(a.rep->incarnation(), firstInc);

    b.rep->syncNow(); // learns the new incarnation, resyncs from 0
    EXPECT_TRUE(b.store.peek("post-crash", kDev, 4096).has_value());
    // b still remembers pre-crash (merge never deletes), and a gets
    // it back on its own pull: the fleet re-converges on the union.
    EXPECT_TRUE(b.store.peek("pre-crash", kDev, 2048).has_value());
    a.rep->syncNow();
    b.rep->syncNow();
    EXPECT_EQ(a.dump(), b.dump());
    EXPECT_TRUE(a.store.peek("pre-crash", kDev, 2048).has_value());
}

// ---------------------------------------------------------------
// Ownership
// ---------------------------------------------------------------

TEST(Federation, RendezvousOwnershipIsDeterministicAndCoversFleet)
{
    std::vector<unsigned> owned(3, 0);
    for (int k = 0; k < 120; ++k) {
        const std::string sig = "sig" + std::to_string(k);
        const auto owner = fed::ownerOf(sig, kDev, 11, 3);
        ASSERT_LT(owner, 3u);
        // Deterministic: every call agrees.
        EXPECT_EQ(fed::ownerOf(sig, kDev, 11, 3), owner);
        owned[owner]++;
        // Different buckets of one signature may land elsewhere --
        // ownership is per-key, not per-signature.
        EXPECT_EQ(fed::ownerOf(sig, kDev, 12, 3),
                  fed::ownerOf(sig, kDev, 12, 3));
    }
    // Rendezvous hashing spreads 120 keys over all three replicas.
    for (unsigned r = 0; r < 3; ++r)
        EXPECT_GT(owned[r], 0u) << "replica " << r << " owns nothing";
    // Degenerate fleets collapse to self-ownership.
    EXPECT_EQ(fed::ownerOf("anything", kDev, 11, 1), 0u);
    EXPECT_EQ(fed::ownerOf("anything", kDev, 11, 0), 0u);
}

// ---------------------------------------------------------------
// The lease protocol
// ---------------------------------------------------------------

TEST(Federation, LeaseLifecycleGrantWaitRecordExpiry)
{
    store::SelectionStore store;
    fed::ReplicatorConfig cfg;
    cfg.replica = 0;
    cfg.fleetSize = 3;
    cfg.leaseTimeoutMs = 80;
    fed::Replicator rep(store, cfg);

    const std::string target = "/fed/lease?sig=hot0&device="
                               + net::urlEncode(kDev)
                               + "&bucket=11&requester=";
    auto statusOf = [&](const std::string &body) {
        return support::Json::parse(body).at("status").asString();
    };

    // First requester gets the fleet-wide profiling lease.
    auto r = rep.handleFed(target + "1");
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(statusOf(r.body), "granted");
    // A second requester parks while the lease is live.
    r = rep.handleFed(target + "2");
    EXPECT_EQ(statusOf(r.body), "wait");
    // The holder retrying is re-granted, not told to wait on itself.
    r = rep.handleFed(target + "1");
    EXPECT_EQ(statusOf(r.body), "granted");

    // The grantee crashed: after the expiry the key is re-grantable.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    r = rep.handleFed(target + "2");
    EXPECT_EQ(statusOf(r.body), "granted");

    // Once the record exists the lease is moot: the owner hands the
    // record itself over, whoever asks.
    store.recordProfile(kDev, profiledReport("hot0", 2048), 42);
    r = rep.handleFed(target + "3");
    const auto doc = support::Json::parse(r.body);
    EXPECT_EQ(doc.at("status").asString(), "record");
    const auto rec = store::recordFromJson(doc.at("record"));
    EXPECT_EQ(rec.selectedName, "fast");
    EXPECT_EQ(rec.profileCid, 42u);

    // Malformed lease queries are 400s, not crashes.
    EXPECT_EQ(rep.handleFed("/fed/lease?bucket=11").status, 400);
    EXPECT_EQ(rep.handleFed("/fed/nope").status, 404);
}

TEST(Federation, ResolveColdFallsBackWhenOwnerIsUnreachable)
{
    store::SelectionStore store;
    fed::ReplicatorConfig cfg;
    cfg.replica = 0;
    cfg.fleetSize = 2;
    cfg.peers = {"127.0.0.1:9"}; // discard port: nothing listens
    cfg.leaseWaitMs = 300;
    cfg.httpTimeoutMs = 100;
    fed::Replicator rep(store, cfg);

    // Find a key replica 1 owns; our cold miss on it needs the peer.
    std::string sig = "hot0";
    for (int i = 0; !rep.owns(sig, kDev, store::bucketOf(2048))
                    && i < 64;
         ++i)
        sig = "hot" + std::to_string(i + 1);
    // Invert: we want a key we do NOT own.
    for (int i = 0; i < 64; ++i) {
        const std::string cand = "cold" + std::to_string(i);
        if (!rep.owns(cand, kDev, store::bucketOf(2048))) {
            sig = cand;
            break;
        }
    }
    ASSERT_FALSE(rep.owns(sig, kDev, store::bucketOf(2048)));

    const auto t0 = std::chrono::steady_clock::now();
    const auto rs = rep.resolveCold(sig, kDev, 2048);
    const auto elapsedMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    // Federation is an optimization: a dead owner costs bounded time
    // and degrades to profiling locally, never an error.
    EXPECT_EQ(rs.kind, fed::Replicator::Resolve::Fallback);
    EXPECT_LT(elapsedMs, 5000.0);

    // A key we own resolves to LocalProfile immediately.
    std::string mine = "hot0";
    for (int i = 0; !rep.owns(mine, kDev, store::bucketOf(2048))
                    && i < 64;
         ++i)
        mine = "mine" + std::to_string(i);
    ASSERT_TRUE(rep.owns(mine, kDev, store::bucketOf(2048)));
    EXPECT_EQ(rep.resolveCold(mine, kDev, 2048).kind,
              fed::Replicator::Resolve::LocalProfile);
}

// ---------------------------------------------------------------
// Convergence under randomized orderings and partitions
// ---------------------------------------------------------------

TEST(Federation, RandomizedPartitionsHealToByteIdenticalStores)
{
    // Writes land at random replicas while sync is randomly withheld
    // (partitions); once every link heals, three pull rounds carry
    // every write everywhere and the stores must be byte-identical.
    // Seeded: a failure replays exactly.
    std::mt19937_64 rng(0x9A27171u);
    auto nodes = makeFleet(3);

    const std::vector<std::string> sigs = {"c0", "c1", "c2", "c3"};
    for (int round = 0; round < 40; ++round) {
        const auto at = rng() % nodes.size();
        Node &n = *nodes[at];
        const auto &sig = sigs[rng() % sigs.size()];
        switch (rng() % 4) {
          case 0:
          case 1:
            // Conflicting re-profiles of a shared key: the freshest
            // stamp must win identically everywhere.
            n.store.recordProfile(
                kDev,
                profiledReport(sig, 2048,
                               static_cast<int>(rng() % 2)),
                rng() % 1000);
            break;
          case 2:
            n.store.blacklistVariant(sig, "oob-writer", kDev,
                                     "redzone@"
                                         + std::to_string(at));
            break;
          default: {
            support::Json v = support::Json::object();
            v.set("round", support::Json(round));
            v.set("by", support::Json(
                            static_cast<std::uint64_t>(at)));
            n.store.setExtension("model", std::move(v));
          }
        }
        // Partition: each replica independently may or may not get
        // to sync this round.
        for (auto &node : nodes)
            if (rng() % 2)
                node->rep->syncNow();
    }

    // Heal: everyone pulls everyone, enough rounds for transitive
    // propagation across the mesh.
    for (int i = 0; i < 3; ++i)
        for (auto &node : nodes)
            node->rep->syncNow();

    const std::string want = nodes[0]->dump();
    EXPECT_EQ(nodes[1]->dump(), want);
    EXPECT_EQ(nodes[2]->dump(), want);
    EXPECT_GT(nodes[0]->store.size(), 0u);
}

// ---------------------------------------------------------------
// The acceptance storm: three live replicas under load
// ---------------------------------------------------------------

TEST(Federation, ThreeReplicaStormProfilesEachKeyOnceFleetWide)
{
    constexpr std::uint32_t kReplicas = 3;
    constexpr unsigned kSignatures = 5;
    constexpr unsigned kSizeClasses = 2;

    auto nodes = makeFleet(kReplicas);
    for (auto &node : nodes) {
        // Generous lease windows: under sanitizers a profiling pass
        // can be slow, and a premature takeover would double-profile.
        fed::ReplicatorConfig cfg = node->rep->config();
        cfg.leaseWaitMs = 10000;
        cfg.leaseTimeoutMs = 15000;
        cfg.httpTimeoutMs = 2000;
        std::lock_guard<std::mutex> lock(node->repMu);
        node->rep = std::make_unique<fed::Replicator>(node->store, cfg);
    }
    for (auto &node : nodes) {
        node->rep->start();
        ASSERT_TRUE(node->rep->awaitPeers(10000));
    }

    std::vector<serve::LoadGenReport> reports(kReplicas);
    std::vector<std::thread> storms;
    for (std::uint32_t r = 0; r < kReplicas; ++r) {
        storms.emplace_back([&, r] {
            serve::LoadGenConfig cfg;
            cfg.submitters = 3;
            cfg.devices = 1;
            cfg.signatures = kSignatures;
            cfg.sizeClasses = kSizeClasses;
            cfg.jobsPerSubmitter = 50;
            cfg.variants = 2;
            cfg.seed = 1000 + r;
            cfg.externalStore = &nodes[r]->store;
            cfg.federation = nodes[r]->rep.get();
            reports[r] = serve::runLoadGen(cfg);
        });
    }
    for (auto &t : storms)
        t.join();

    // Every job completed everywhere.
    std::uint64_t submitted = 0, completed = 0, hits = 0;
    for (const auto &rep : reports) {
        EXPECT_EQ(rep.jobsCompleted, rep.jobsSubmitted);
        EXPECT_EQ(rep.jobsFailed, 0u);
        submitted += rep.jobsSubmitted;
        completed += rep.jobsCompleted;
        hits += rep.storeHits;
    }
    ASSERT_GT(submitted, 0u);
    EXPECT_EQ(completed, submitted);

    // Exactly-once global profiling: the union of every replica's
    // locally profiled keys has no duplicates and covers exactly the
    // keyspace (one device fingerprint, so signatures x size
    // classes keys).
    std::set<std::string> uniq;
    std::size_t total = 0;
    for (const auto &rep : reports) {
        for (const auto &key : rep.profiledKeys) {
            uniq.insert(key);
            ++total;
        }
    }
    EXPECT_EQ(total, uniq.size()) << "a key was profiled twice";
    EXPECT_EQ(uniq.size(),
              static_cast<std::size_t>(kSignatures) * kSizeClasses);

    // The fleet served (nearly) everything warm: only the first
    // touch of each key anywhere pays a profile; everyone else warm
    // starts from the store or the federation.
    const double fleetHitRate = static_cast<double>(hits)
                                / static_cast<double>(submitted);
    EXPECT_GE(fleetHitRate, 0.95);

    // Drain to fleet-wide quiescence: every replica must see every
    // peer drained with a matching digest...
    for (auto &node : nodes)
        node->rep->markDrained();
    std::vector<int> quiesced(kReplicas, 0);
    std::vector<std::thread> waiters;
    for (std::uint32_t r = 0; r < kReplicas; ++r)
        waiters.emplace_back([&, r] {
            quiesced[r] = nodes[r]->rep->awaitQuiescence(30000) ? 1 : 0;
        });
    for (auto &t : waiters)
        t.join();
    for (std::uint32_t r = 0; r < kReplicas; ++r)
        EXPECT_EQ(quiesced[r], 1) << "replica " << r
                                  << " never quiesced";

    // ...and the stores must be byte-identical, the paper's
    // convergence claim made literal.
    const std::string want = nodes[0]->dump();
    for (std::uint32_t r = 1; r < kReplicas; ++r)
        EXPECT_EQ(nodes[r]->dump(), want)
            << "replica " << r << " diverged";

    // The introspection surface agrees: every peer row is reachable
    // with applied history.
    const auto peers = nodes[0]->rep->peersJson();
    ASSERT_TRUE(peers.has("peers"));
    for (const auto &jp : peers.at("peers").items())
        EXPECT_TRUE(jp.boolOr("reachable", false));

    for (auto &node : nodes)
        node->rep->stop();
}
