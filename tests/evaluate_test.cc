/**
 * @file
 * Tests for the measurement harness (workloads/evaluate) and the
 * Workload plumbing the benches rely on: fresh-device isolation,
 * oracle best/worst indexing, iterative accounting, and relative-time
 * arithmetic.
 */
#include <gtest/gtest.h>

#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"

using namespace dysel;
using namespace dysel::workloads;

TEST(Evaluate, RelativeArithmetic)
{
    EXPECT_DOUBLE_EQ(relative(200, 100), 2.0);
    EXPECT_DOUBLE_EQ(relative(100, 100), 1.0);
}

TEST(EvaluateDeath, RelativeZeroBase)
{
    EXPECT_DEATH(relative(100, 0), "");
}

TEST(Evaluate, OracleIndexesBestAndWorst)
{
    Workload w = makeSgemmVectorCpu();
    w.iterations = 1;
    const auto oracle = runOracle(cpuFactory(), w);
    ASSERT_EQ(oracle.runs.size(), 3u);
    for (const auto &run : oracle.runs) {
        EXPECT_GE(run.elapsed, oracle.best());
        EXPECT_LE(run.elapsed, oracle.worst());
        EXPECT_TRUE(run.ok);
    }
    EXPECT_EQ(oracle.runs[oracle.bestIndex].elapsed, oracle.best());
    EXPECT_EQ(oracle.runs[oracle.worstIndex].elapsed, oracle.worst());
    EXPECT_NE(oracle.bestIndex, oracle.worstIndex);
}

TEST(Evaluate, FreshDevicesMakeRunsReproducible)
{
    // Two identical measurements must agree exactly: the factory
    // hands every run a fresh device, so no cache or clock state
    // leaks between measurements.
    Workload w = makeSgemmVectorCpu();
    w.iterations = 1;
    const auto a = runSingleVariant(cpuFactory(), w, 0);
    const auto b = runSingleVariant(cpuFactory(), w, 0);
    EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(Evaluate, IterationsMultiplyElapsedTime)
{
    Workload once = makeSpmvCsrCpuLc(SpmvInput::Random);
    once.iterations = 1;
    const auto single = runSingleVariant(cpuFactory(), once, 0);

    Workload many = makeSpmvCsrCpuLc(SpmvInput::Random);
    many.iterations = 4;
    const auto quad = runSingleVariant(cpuFactory(), many, 0);

    // Later iterations run on warm caches, so the total grows
    // sub-linearly but strictly.
    EXPECT_GT(quad.elapsed, single.elapsed);
    EXPECT_LT(quad.elapsed, 5 * single.elapsed);
}

TEST(Evaluate, DyselRunReportsFirstIteration)
{
    Workload w = makeSpmvCsrCpuLc(SpmvInput::Random);
    const auto run = runDysel(cpuFactory(), w, runtime::LaunchOptions{});
    EXPECT_TRUE(run.ok);
    EXPECT_TRUE(run.firstIteration.profiled);
    EXPECT_EQ(run.firstIteration.signature, w.signature);
    EXPECT_GT(run.elapsed, run.firstIteration.elapsed());
}

TEST(Evaluate, ConfiguredRunHonoursRuntimeConfig)
{
    Workload w = makeSpmvCsrCpuLc(SpmvInput::Random);
    runtime::RuntimeConfig config;
    config.minUnitsForProfiling = w.units + 1; // force deactivation
    const auto run = runDyselConfigured(cpuFactory(), w,
                                        runtime::LaunchOptions{}, config);
    EXPECT_FALSE(run.firstIteration.profiled);
    EXPECT_TRUE(run.ok);
}

TEST(WorkloadClass, VariantIndexLookup)
{
    Workload w = makeSgemmVectorCpu();
    EXPECT_EQ(w.variantIndex("scalar"), 0);
    EXPECT_EQ(w.variantIndex("8-way"), 2);
    EXPECT_EQ(w.variantIndex("nope"), -1);
}

TEST(WorkloadClass, ResetOutputEnablesReruns)
{
    Workload w = makeSgemmVectorCpu();
    w.iterations = 1;
    const auto first = runSingleVariant(cpuFactory(), w, 0);
    EXPECT_TRUE(first.ok);
    // Corrupt the output, reset, rerun: still correct.
    w.args.buf<float>(2).fill(-123.0f);
    EXPECT_FALSE(w.check());
    const auto second = runSingleVariant(cpuFactory(), w, 1);
    EXPECT_TRUE(second.ok);
}
