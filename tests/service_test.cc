/**
 * @file
 * Tests for the multi-device dispatch service: multi-threaded smoke
 * test against single-runtime ground truth, warm start from the
 * shared selection store, size-bucket sensitivity, drift-triggered
 * quarantine and re-profiling, job handles and cancellation, error
 * propagation for unknown signatures, and the metrics export.
 */
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/dispatch_service.hh"
#include "sim/cpu/cpu_device.hh"

using namespace dysel;
using namespace dysel::serve;

namespace {

constexpr std::uint32_t laneCount = 8;

/** Same marker-kernel scheme as runtime_test: writes `marker` into
 *  out[unit] and burns `flops_per_unit` ALU ops per unit. */
kdp::KernelVariant
markerKernel(const char *name, std::int32_t marker,
             std::uint64_t flops_per_unit)
{
    kdp::KernelVariant v;
    v.name = name;
    v.groupSize = laneCount;
    v.waFactor = 1;
    v.sandboxIndex = {0};
    v.fn = [marker, flops_per_unit](kdp::GroupCtx &g,
                                    const kdp::KernelArgs &args) {
        auto &out = args.buf<std::int32_t>(0);
        const auto units = static_cast<std::uint64_t>(args.scalarInt(1));
        for (std::uint64_t u = g.unitBase();
             u < g.unitBase() + g.waFactor(); ++u) {
            if (u >= units)
                break;
            const auto lane = static_cast<std::uint32_t>(u % laneCount);
            g.store(out, u, marker, lane);
            g.flops(lane, flops_per_unit);
        }
    };
    return v;
}

compiler::KernelInfo
regularInfo(const std::string &sig)
{
    compiler::KernelInfo info;
    info.signature = sig;
    info.loops = {{"wi", compiler::BoundKind::Constant, true, false,
                   laneCount}};
    info.outputArgs = {0};
    return info;
}

void
registerPool(runtime::Runtime &rt, const std::string &sig,
             std::uint64_t slow_flops = 4000,
             std::uint64_t fast_flops = 100)
{
    rt.removeKernel(sig);
    rt.addKernel(sig, markerKernel("slow", 1, slow_flops));
    rt.addKernel(sig, markerKernel("fast", 2, fast_flops));
    rt.setKernelInfo(sig, regularInfo(sig));
}

/** One job's state: its output buffer, args, and completion record. */
struct Probe
{
    std::string sig;
    std::uint64_t units;
    kdp::Buffer<std::int32_t> out;
    kdp::KernelArgs args;
    JobResult result;
    bool finished = false;

    Probe(std::string s, std::uint64_t n)
        : sig(std::move(s)), units(n),
          out(n, kdp::MemSpace::Global, "out")
    {
        out.fill(-1);
        args.add(out).add(static_cast<std::int64_t>(n));
    }
};

Job
makeJob(Probe &p, std::mutex &mu, std::uint64_t slow_flops = 4000,
        std::uint64_t fast_flops = 100)
{
    Job job;
    job.signature = p.sig;
    job.units = p.units;
    job.args = p.args;
    job.ensureRegistered = [&p, slow_flops,
                            fast_flops](runtime::Runtime &rt) {
        registerPool(rt, p.sig, slow_flops, fast_flops);
    };
    job.done = [&p, &mu](const JobResult &r) {
        std::lock_guard<std::mutex> lock(mu);
        p.result = r;
        p.finished = true;
    };
    return job;
}

struct ServiceFixture
{
    store::SelectionStore store;
    DispatchService svc;
    std::mutex mu;

    explicit ServiceFixture(unsigned devices = 2,
                            store::StoreConfig scfg =
                                store::StoreConfig(),
                            ServiceConfig cfg = ServiceConfig())
        : store(scfg), svc(store, cfg)
    {
        for (unsigned i = 0; i < devices; ++i)
            svc.addDevice(std::make_unique<sim::CpuDevice>());
        svc.start();
    }
};

} // namespace

TEST(DispatchService, SmokeMatchesSingleRuntime)
{
    // N jobs with distinct signatures spread across two identical CPU
    // devices; each job's output must match the same launch on a
    // standalone single-device runtime.
    constexpr unsigned N = 8;
    constexpr std::uint64_t units = 2048;

    ServiceFixture f;
    std::vector<std::unique_ptr<Probe>> probes;
    for (unsigned i = 0; i < N; ++i)
        probes.push_back(
            std::make_unique<Probe>("k" + std::to_string(i), units));
    for (auto &p : probes)
        f.svc.submit(makeJob(*p, f.mu));
    f.svc.stop();

    for (auto &p : probes) {
        ASSERT_TRUE(p->finished);
        ASSERT_TRUE(p->result.ok()) << p->result.status.toString();
        EXPECT_EQ(p->result.attempts, 1u);
        EXPECT_TRUE(p->result.report.profiled); // cold store
        EXPECT_EQ(p->result.report.selectedName, "fast");

        // Ground truth: the same cold launch on a lone runtime.
        sim::CpuDevice dev;
        runtime::Runtime rt(dev);
        registerPool(rt, p->sig);
        Probe ref(p->sig, units);
        auto report = rt.launchKernel(ref.sig, units, ref.args);
        EXPECT_EQ(report.selectedName, p->result.report.selectedName);
        EXPECT_EQ(report.profiledUnits, p->result.report.profiledUnits);
        for (std::uint64_t u = 0; u < units; ++u)
            ASSERT_EQ(p->out.at(u), ref.out.at(u))
                << p->sig << " unit " << u;
    }

    // Least-loaded routing used both devices.
    const auto &m = f.svc.metrics();
    const auto devJobs = [](unsigned i) {
        return support::MetricsRegistry::labeled(
            "device.jobs", "device", "dev" + std::to_string(i));
    };
    EXPECT_GT(m.counterValue(devJobs(0)), 0u);
    EXPECT_GT(m.counterValue(devJobs(1)), 0u);
    EXPECT_EQ(m.counterValue(devJobs(0)) + m.counterValue(devJobs(1)),
              std::uint64_t{N});
    EXPECT_EQ(m.counterValue("jobs.completed"), std::uint64_t{N});
    EXPECT_EQ(m.counterValue("jobs.failed"), 0u);
}

TEST(DispatchService, SecondLaunchWarmStartsFromStore)
{
    ServiceFixture f;
    Probe first("k", 2048);
    f.svc.submit(makeJob(first, f.mu));
    f.svc.drain();
    ASSERT_TRUE(first.result.ok()) << first.result.status.toString();
    EXPECT_FALSE(first.result.warmStart);
    EXPECT_TRUE(first.result.report.profiled);

    Probe second("k", 2048);
    f.svc.submit(makeJob(second, f.mu));
    f.svc.drain();
    ASSERT_TRUE(second.result.ok()) << second.result.status.toString();
    EXPECT_TRUE(second.result.warmStart);
    EXPECT_EQ(second.result.report.profiledUnits, 0u);
    EXPECT_EQ(second.result.report.selectedName, "fast");
    // The whole output carries the winner's marker: no profiling ran.
    for (std::uint64_t u = 0; u < second.units; ++u)
        ASSERT_EQ(second.out.at(u), 2);
    // Affinity pinned the signature to the profiling device.
    EXPECT_EQ(second.result.deviceIndex, first.result.deviceIndex);

    EXPECT_EQ(f.store.hits(), 1u);
    EXPECT_EQ(f.store.misses(), 1u);
    EXPECT_EQ(f.svc.metrics().counterValue("store.hit"), 1u);
    EXPECT_EQ(f.svc.metrics().counterValue("store.miss"), 1u);
}

TEST(DispatchService, ChangedSizeBucketReprofiles)
{
    ServiceFixture f;
    Probe small("k", 2048); // bucket 11
    f.svc.submit(makeJob(small, f.mu));
    f.svc.drain();

    Probe large("k", 8192); // bucket 13: a store miss
    f.svc.submit(makeJob(large, f.mu));
    f.svc.drain();
    ASSERT_TRUE(large.result.ok()) << large.result.status.toString();
    EXPECT_FALSE(large.result.warmStart);
    EXPECT_TRUE(large.result.report.profiled);
    EXPECT_GT(large.result.report.profiledUnits, 0u);
    EXPECT_EQ(f.store.size(), 2u);
}

TEST(DispatchService, DriftQuarantinesThenReprofilesAfterCooldown)
{
    store::StoreConfig scfg;
    scfg.quarantineCooldown = 2;
    ServiceFixture f(1, scfg);
    // Job 1 profiles; jobs 2-3 warm-start and seed/confirm the plain
    // throughput baseline.
    for (int i = 0; i < 3; ++i) {
        Probe p("k", 2048);
        f.svc.submit(makeJob(p, f.mu));
        f.svc.drain();
        ASSERT_TRUE(p.result.ok()) << p.result.status.toString();
        EXPECT_EQ(p.result.warmStart, i > 0);
    }

    // The kernel's behaviour shifts: the cached winner is now 20x
    // slower.  The plain run deviates from the stored baseline beyond
    // the drift factor, quarantining the winner...
    Probe shifted("k", 2048);
    f.svc.submit(makeJob(shifted, f.mu, 4000, 2000));
    f.svc.drain();
    ASSERT_TRUE(shifted.result.ok()) << shifted.result.status.toString();
    EXPECT_TRUE(shifted.result.warmStart); // served before detection
    EXPECT_EQ(f.store.quarantineCount(), 1u);
    EXPECT_EQ(f.svc.metrics().counterValue("store.quarantine"), 1u);

    // ...so the record still serves warm, but with the runner-up.
    Probe fallback("k", 2048);
    f.svc.submit(makeJob(fallback, f.mu, 4000, 2000));
    f.svc.drain();
    ASSERT_TRUE(fallback.result.ok())
        << fallback.result.status.toString();
    EXPECT_TRUE(fallback.result.warmStart);
    EXPECT_EQ(fallback.result.report.selectedName, "slow");
    // The whole output carries the fallback's marker.
    for (std::uint64_t u = 0; u < fallback.units; ++u)
        ASSERT_EQ(fallback.out.at(u), 1);

    // The second cooldown observation invalidates the record...
    Probe cooled("k", 2048);
    f.svc.submit(makeJob(cooled, f.mu, 4000, 2000));
    f.svc.drain();
    ASSERT_TRUE(cooled.result.ok()) << cooled.result.status.toString();
    EXPECT_EQ(f.store.driftInvalidations(), 0u);
    EXPECT_EQ(
        f.svc.metrics().counterValue("store.drift_invalidation"), 1u);

    // ...so the next launch re-profiles against the new behaviour,
    // and the once-quarantined pool competes from scratch.
    Probe after("k", 2048);
    f.svc.submit(makeJob(after, f.mu, 4000, 2000));
    f.svc.drain();
    ASSERT_TRUE(after.result.ok()) << after.result.status.toString();
    EXPECT_FALSE(after.result.warmStart);
    EXPECT_TRUE(after.result.report.profiled);
}

TEST(DispatchService, UnknownSignatureFailsTheJobNotTheService)
{
    ServiceFixture f;
    Probe bad("unregistered", 2048);
    Job job = makeJob(bad, f.mu);
    job.ensureRegistered = nullptr; // nothing registers the kernel
    f.svc.submit(job);
    f.svc.drain();
    ASSERT_TRUE(bad.finished);
    EXPECT_FALSE(bad.result.ok());
    EXPECT_EQ(bad.result.status.code(),
              support::StatusCode::NotFound);
    EXPECT_NE(bad.result.status.message().find("unregistered"),
              std::string::npos);
    // NotFound is not retryable: one attempt, no re-routing.
    EXPECT_EQ(bad.result.attempts, 1u);
    EXPECT_EQ(f.svc.metrics().counterValue("jobs.failed"), 1u);
    EXPECT_EQ(f.svc.metrics().counterValue("recover.retries"), 0u);

    // The worker survives and serves the next job.
    Probe good("k", 2048);
    f.svc.submit(makeJob(good, f.mu));
    f.svc.drain();
    ASSERT_TRUE(good.result.ok()) << good.result.status.toString();
}

TEST(DispatchService, SubmitBeforeStartThrows)
{
    store::SelectionStore store;
    DispatchService svc(store);
    svc.addDevice(std::make_unique<sim::CpuDevice>());
    std::mutex mu;
    Probe p("k", 2048);
    EXPECT_THROW(svc.submit(makeJob(p, mu)), std::logic_error);
}

TEST(DispatchService, HandleWaitsAndExposesResult)
{
    ServiceFixture f;
    Probe p("k", 2048);
    JobHandle h = f.svc.submit(makeJob(p, f.mu));
    ASSERT_TRUE(h.valid());
    EXPECT_GT(h.id(), 0u);
    const JobResult &r = h.result(); // blocks until completion
    EXPECT_TRUE(h.done());
    EXPECT_TRUE(r.ok()) << r.status.toString();
    EXPECT_EQ(r.id, h.id());
    EXPECT_EQ(r.report.selectedName, "fast");
    // Too late to cancel a finished job.
    EXPECT_FALSE(h.cancel());

    JobHandle empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_FALSE(empty.done());
    EXPECT_FALSE(empty.cancel());
    EXPECT_THROW(empty.result(), std::logic_error);
}

TEST(DispatchService, CancelPendingJobBeforeDispatch)
{
    ServiceFixture f(1); // one device: jobs queue strictly in order
    std::promise<void> release;
    auto released = release.get_future().share();

    // Job 1 parks the single worker inside ensureRegistered, so job 2
    // is guaranteed to still be queued when it is cancelled.
    Probe blocker("k", 2048);
    Job job1 = makeJob(blocker, f.mu);
    auto inner = job1.ensureRegistered;
    job1.ensureRegistered = [inner, released](runtime::Runtime &rt) {
        released.wait();
        inner(rt);
    };
    JobHandle h1 = f.svc.submit(std::move(job1));

    Probe victim("k", 2048);
    JobHandle h2 = f.svc.submit(makeJob(victim, f.mu));
    EXPECT_TRUE(h2.cancel());
    EXPECT_FALSE(h2.cancel()); // idempotence: already cancelled
    EXPECT_TRUE(h2.done());
    EXPECT_EQ(h2.result().status.code(),
              support::StatusCode::Cancelled);

    release.set_value();
    f.svc.drain();
    EXPECT_TRUE(h1.result().ok()) << h1.result().status.toString();
    // The cancelled job never ran: no output was written.  Its done
    // callback still fires exactly once, with the Cancelled result
    // (every job reaches its callback on every terminal path).
    for (std::uint64_t u = 0; u < victim.units; ++u)
        ASSERT_EQ(victim.out.at(u), -1);
    EXPECT_TRUE(victim.finished);
    EXPECT_EQ(victim.result.status.code(),
              support::StatusCode::Cancelled);
    EXPECT_EQ(f.svc.metrics().counterValue("jobs.cancelled"), 1u);
    EXPECT_EQ(f.svc.metrics().counterValue("jobs.completed"), 1u);
}

TEST(DispatchService, MetricsExportCoversJobsAndStore)
{
    ServiceFixture f;
    for (int i = 0; i < 2; ++i) {
        Probe p("k", 2048);
        f.svc.submit(makeJob(p, f.mu));
        f.svc.drain();
    }
    const std::string text = f.svc.metrics().renderText();
    EXPECT_NE(text.find("jobs.completed 2"), std::string::npos);
    EXPECT_NE(text.find("store.hit 1"), std::string::npos);
    EXPECT_NE(text.find("store.miss 1"), std::string::npos);
    EXPECT_NE(text.find("job.device_ns{"), std::string::npos);

    const auto json = f.svc.metrics().renderJson();
    EXPECT_EQ(json.at("counters").at("jobs.completed").asUint(), 2u);
    EXPECT_TRUE(json.at("histograms").has("job.device_ns"));
}
