/**
 * @file
 * Tests for the mixed-version execution extension (the paper's §4.1
 * future work): per-segment micro-profiling and selection.
 */
#include <gtest/gtest.h>

#include "dysel/mixed.hh"
#include "sim/gpu/gpu_device.hh"
#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/spmv_csr.hh"

using namespace dysel;
using namespace dysel::workloads;

namespace {

/** Run the workload with per-segment selection on a fresh device. */
runtime::MixedReport
runMixed(Workload &w, unsigned segments, sim::TimeNs *elapsed = nullptr)
{
    auto device = gpuFactory()();
    runtime::Runtime rt(*device);
    w.registerWith(rt);
    w.resetOutput();
    const sim::TimeNs start = device->now();
    // Profile segments once, reuse the partitioned selection for the
    // remaining iterations (the mixed analogue of the paper's
    // profiling activation flag).
    runtime::MixedReport report = runtime::launchKernelMixed(
        rt, w.signature, w.units, w.args, segments);
    for (unsigned it = 1; it < w.iterations; ++it)
        runtime::launchKernelMixedCached(rt, w.signature, w.units,
                                         w.args, report);
    if (elapsed)
        *elapsed = device->now() - start;
    return report;
}

} // namespace

TEST(MixedVersion, AdaptsPerSegmentOnHeterogeneousMatrix)
{
    Workload w = makeSpmvCsrGpuHetero();
    w.iterations = 1;
    const auto report = runMixed(w, 8);
    EXPECT_TRUE(w.check());
    EXPECT_TRUE(report.heterogeneous());

    // First segments cover the random half (vector wins), last
    // segments the diagonal half (scalar wins).
    const int vector_idx = w.variantIndex("vector");
    const int scalar_idx = w.variantIndex("scalar");
    EXPECT_EQ(report.segmentSelection.front(), vector_idx);
    EXPECT_EQ(report.segmentSelection.back(), scalar_idx);
}

TEST(MixedVersion, BeatsEveryPureVariant)
{
    // The headline of the extension: on input whose structure varies
    // across the data, the mixed version outperforms the "oracle"
    // pure variant.
    Workload w = makeSpmvCsrGpuHetero();
    const auto oracle = runOracle(gpuFactory(), w);

    Workload w2 = makeSpmvCsrGpuHetero();
    sim::TimeNs mixed_elapsed = 0;
    const auto report = runMixed(w2, 8, &mixed_elapsed);
    EXPECT_TRUE(w2.check());
    EXPECT_TRUE(report.heterogeneous());
    EXPECT_LT(mixed_elapsed, oracle.best());
}

TEST(MixedVersion, HomogeneousInputSelectsUniformly)
{
    Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Diagonal);
    w.iterations = 1;
    const auto report = runMixed(w, 4);
    EXPECT_TRUE(w.check());
    EXPECT_FALSE(report.heterogeneous());
    EXPECT_EQ(report.segmentSelection[0], w.variantIndex("scalar"));
}

TEST(MixedVersion, ShrinksSegmentsWhenTooSmall)
{
    Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Random);
    w.iterations = 1;
    // Absurd segment count: the implementation must fall back to a
    // feasible partitioning rather than failing.
    const auto report = runMixed(w, 1024);
    EXPECT_TRUE(w.check());
    EXPECT_GE(report.segmentSelection.size(), 1u);
    EXPECT_LE(report.segmentSelection.size(), 1024u);
}

TEST(MixedVersion, CoversTheWholeWorkload)
{
    Workload w = makeSpmvCsrGpuHetero();
    w.iterations = 1;
    const auto report = runMixed(w, 8);
    EXPECT_EQ(report.totalUnits, w.units);
    EXPECT_GT(report.profiledUnits, 0u);
    EXPECT_LT(report.profiledUnits, w.units);
    EXPECT_TRUE(w.check()); // every unit written correctly
}

TEST(MixedVersion, TypedStatusForCallerErrors)
{
    // The mixed launchers are fallible entry points now: caller
    // errors come back as typed Statuses instead of fatalling, and
    // the legacy wrappers translate them to the standard exceptions.
    auto device = gpuFactory()();
    runtime::Runtime rt(*device);
    Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Random);
    w.registerWith(rt);

    runtime::MixedReport report;
    EXPECT_EQ(runtime::tryLaunchKernelMixed(rt, "nope", w.units, w.args,
                                            4, report)
                  .code(),
              support::StatusCode::NotFound);
    EXPECT_THROW(runtime::launchKernelMixed(rt, "nope", w.units, w.args,
                                            4),
                 std::out_of_range);

    // A workload below one safe-point slice cannot profile even a
    // single segment.
    EXPECT_EQ(runtime::tryLaunchKernelMixed(rt, w.signature, 1, w.args,
                                            1, report)
                  .code(),
              support::StatusCode::FailedPrecondition);

    // Cached re-execution validates the selection against the
    // workload it claims to describe.
    const support::Status ok = runtime::tryLaunchKernelMixed(
        rt, w.signature, w.units, w.args, 4, report);
    ASSERT_TRUE(ok.ok()) << ok.toString();
    EXPECT_EQ(runtime::tryLaunchKernelMixedCached(rt, "nope", w.units,
                                                  w.args, report)
                  .code(),
              support::StatusCode::NotFound);
    EXPECT_EQ(runtime::tryLaunchKernelMixedCached(rt, w.signature,
                                                  w.units + 1, w.args,
                                                  report)
                  .code(),
              support::StatusCode::InvalidArgument);
    runtime::MixedReport bogus = report;
    bogus.segmentSelection.assign(bogus.segmentSelection.size(), 99);
    EXPECT_EQ(runtime::tryLaunchKernelMixedCached(rt, w.signature,
                                                  w.units, w.args,
                                                  bogus)
                  .code(),
              support::StatusCode::InvalidArgument);
    EXPECT_THROW(runtime::launchKernelMixedCached(rt, w.signature,
                                                  w.units, w.args,
                                                  bogus),
                 std::invalid_argument);
}
