/**
 * @file
 * Tests for the mixed-version execution extension (the paper's §4.1
 * future work): per-segment micro-profiling and selection.
 */
#include <gtest/gtest.h>

#include "dysel/mixed.hh"
#include "sim/gpu/gpu_device.hh"
#include "workloads/devices.hh"
#include "workloads/evaluate.hh"
#include "workloads/spmv_csr.hh"

using namespace dysel;
using namespace dysel::workloads;

namespace {

/** Run the workload with per-segment selection on a fresh device. */
runtime::MixedReport
runMixed(Workload &w, unsigned segments, sim::TimeNs *elapsed = nullptr)
{
    auto device = gpuFactory()();
    runtime::Runtime rt(*device);
    w.registerWith(rt);
    w.resetOutput();
    const sim::TimeNs start = device->now();
    // Profile segments once, reuse the partitioned selection for the
    // remaining iterations (the mixed analogue of the paper's
    // profiling activation flag).
    runtime::MixedReport report = runtime::launchKernelMixed(
        rt, w.signature, w.units, w.args, segments);
    for (unsigned it = 1; it < w.iterations; ++it)
        runtime::launchKernelMixedCached(rt, w.signature, w.units,
                                         w.args, report);
    if (elapsed)
        *elapsed = device->now() - start;
    return report;
}

} // namespace

TEST(MixedVersion, AdaptsPerSegmentOnHeterogeneousMatrix)
{
    Workload w = makeSpmvCsrGpuHetero();
    w.iterations = 1;
    const auto report = runMixed(w, 8);
    EXPECT_TRUE(w.check());
    EXPECT_TRUE(report.heterogeneous());

    // First segments cover the random half (vector wins), last
    // segments the diagonal half (scalar wins).
    const int vector_idx = w.variantIndex("vector");
    const int scalar_idx = w.variantIndex("scalar");
    EXPECT_EQ(report.segmentSelection.front(), vector_idx);
    EXPECT_EQ(report.segmentSelection.back(), scalar_idx);
}

TEST(MixedVersion, BeatsEveryPureVariant)
{
    // The headline of the extension: on input whose structure varies
    // across the data, the mixed version outperforms the "oracle"
    // pure variant.
    Workload w = makeSpmvCsrGpuHetero();
    const auto oracle = runOracle(gpuFactory(), w);

    Workload w2 = makeSpmvCsrGpuHetero();
    sim::TimeNs mixed_elapsed = 0;
    const auto report = runMixed(w2, 8, &mixed_elapsed);
    EXPECT_TRUE(w2.check());
    EXPECT_TRUE(report.heterogeneous());
    EXPECT_LT(mixed_elapsed, oracle.best());
}

TEST(MixedVersion, HomogeneousInputSelectsUniformly)
{
    Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Diagonal);
    w.iterations = 1;
    const auto report = runMixed(w, 4);
    EXPECT_TRUE(w.check());
    EXPECT_FALSE(report.heterogeneous());
    EXPECT_EQ(report.segmentSelection[0], w.variantIndex("scalar"));
}

TEST(MixedVersion, ShrinksSegmentsWhenTooSmall)
{
    Workload w = makeSpmvCsrGpuInputDep(SpmvInput::Random);
    w.iterations = 1;
    // Absurd segment count: the implementation must fall back to a
    // feasible partitioning rather than failing.
    const auto report = runMixed(w, 1024);
    EXPECT_TRUE(w.check());
    EXPECT_GE(report.segmentSelection.size(), 1u);
    EXPECT_LE(report.segmentSelection.size(), 1024u);
}

TEST(MixedVersion, CoversTheWholeWorkload)
{
    Workload w = makeSpmvCsrGpuHetero();
    w.iterations = 1;
    const auto report = runMixed(w, 8);
    EXPECT_EQ(report.totalUnits, w.units);
    EXPECT_GT(report.profiledUnits, 0u);
    EXPECT_LT(report.profiledUnits, w.units);
    EXPECT_TRUE(w.check()); // every unit written correctly
}
