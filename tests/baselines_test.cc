/**
 * @file
 * Tests for the static baseline heuristics: the LC scheduler must
 * reproduce the selections the paper reports for it (right on regular
 * kernels, DFO-always on spmv), and the vectorizer heuristic must
 * make Fig. 1's counterintuitive choices.
 */
#include <gtest/gtest.h>

#include "baselines/intel_vectorizer.hh"
#include "baselines/lc_scheduler.hh"
#include "workloads/kmeans.hh"
#include "workloads/sgemm.hh"
#include "workloads/spmv_csr.hh"
#include "workloads/spmv_jds.hh"
#include "workloads/stencil.hh"

using namespace dysel;
using namespace dysel::baselines;
using namespace dysel::workloads;

TEST(LcScheduler, PrefersUnitStrideInnermost)
{
    compiler::KernelInfo info;
    info.loops = {{"i", compiler::BoundKind::Constant, true, false, 64},
                  {"j", compiler::BoundKind::Constant, false, false, 64}};
    // A[i*64 + j]: unit stride in j, big stride in i.
    info.accesses = {{0, false, true, {64, 1}, 4, 4096}};
    const auto schedules = compiler::allSchedules(2);
    const auto pick = lcSelect(info, schedules);
    EXPECT_EQ(schedules[pick].order.back(), 1u); // j innermost
}

TEST(LcScheduler, InvariantAccessBeatsUnitStride)
{
    compiler::KernelInfo info;
    info.loops = {{"i", compiler::BoundKind::Constant, true, false, 64},
                  {"j", compiler::BoundKind::Constant, false, false, 64}};
    // Two accesses invariant in i, one unit-stride in i: i-innermost
    // makes two of three invariant.
    info.accesses = {{0, false, true, {0, 1}, 4, 100},
                     {1, false, true, {0, 1}, 4, 100},
                     {2, false, true, {1, 64}, 4, 100}};
    const auto schedules = compiler::allSchedules(2);
    const auto pick = lcSelect(info, schedules);
    EXPECT_EQ(schedules[pick].order.back(), 0u);
}

TEST(LcScheduler, PicksDfoForSpmvCsrUnconditionally)
{
    // The paper's §4.4 observation: LC chooses to iterate the
    // in-kernel (nnz) loop first for spmv regardless of the input
    // matrix, because the data-dependent stride in the work-item
    // dimension looks pessimistic to it.
    for (SpmvInput input : {SpmvInput::Random, SpmvInput::Diagonal}) {
        Workload w = makeSpmvCsrCpuLc(input);
        ASSERT_EQ(w.schedules.size(), w.variants.size());
        const auto pick = lcSelect(w.info, w.schedules);
        EXPECT_EQ(w.variants[pick].name, "scalar-dfo");
    }
}

TEST(LcScheduler, PicksBfoForSpmvJds)
{
    // JDS stores diagonals contiguously across work-items, so the
    // stride heuristic correctly favors the work-item loop innermost.
    Workload w = makeSpmvJdsCpuLc();
    const auto pick = lcSelect(w.info, w.schedules);
    EXPECT_EQ(w.variants[pick].name, "bfo");
}

TEST(LcScheduler, PicksAnXInnermostScheduleForStencil)
{
    Workload w = makeStencilLcCpu();
    const auto pick = lcSelect(w.info, w.schedules);
    EXPECT_EQ(w.schedules[pick].order.back(), 0u); // wi-x innermost
}

TEST(LcScheduler, SgemmPickAvoidsTheWorstSchedules)
{
    Workload w = makeSgemmLcCpu();
    const auto pick = lcSelect(w.info, w.schedules);
    // k-innermost schedules stride B by a full row; LC must avoid
    // them.
    EXPECT_NE(w.schedules[pick].order.back(), 2u);
}

TEST(LcScheduler, CostIsDeterministic)
{
    Workload w = makeKmeansLcCpu();
    const double a = lcScheduleCost(w.info, w.schedules[0]);
    const double b = lcScheduleCost(w.info, w.schedules[0]);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(IntelVectorizer, Fig1Choices)
{
    // Regular sgemm: heuristic picks 4-wide (8-wide is actually
    // best); irregular spmv-jds: heuristic picks 8-wide (4-wide is
    // actually best).
    Workload sgemm = makeSgemmVectorCpu();
    EXPECT_EQ(intelVectorWidth(sgemm.info), 4u);

    Workload jds = makeSpmvJdsVectorCpu();
    EXPECT_EQ(intelVectorWidth(jds.info), 8u);
}
